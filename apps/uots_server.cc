// The UOTS query server binary.
//
//   $ ./uots_server --city=BRN --port=7670 --threads=8
//   $ ./uots_server --dataset=/path/to/brn.snap     # snapshot or text file
//   $ ./uots_server --city=BRN --admin-port=7671    # + introspection plane
//
// With --admin-port the server also answers HTTP on that port: /metrics
// (Prometheus), /statusz, /healthz, /slowqueries, and POST
// /tracing?sample=N — see src/server/admin.h.
//
// Loads (or generates+caches) a benchmark city — or, with --dataset, any
// snapshot/text dataset path — binds the TCP front-end,
// and serves length-prefixed JSON queries until SIGINT/SIGTERM, which
// trigger a graceful drain: the listener closes, in-flight requests finish,
// buffered responses flush, and the process exits 0 after printing the
// metrics surface (server.request_latency / server.queue_wait /
// server.execute percentiles plus the reactor counters).

#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <chrono>

#include "cache/distance_field_cache.h"
#include "common/datasets.h"
#include "server/server.h"
#include "storage/resolver.h"
#include "util/metrics.h"

namespace {

using uots::bench::City;

struct Flags {
  std::string bind = "127.0.0.1";
  int port = 7670;
  std::string city = "BRN";
  std::string dataset;   // snapshot or text path; overrides --city
  int trajectories = 0;  // 0 = city default
  int threads = 0;       // 0 = hardware concurrency
  int max_inflight = 256;
  double default_deadline_ms = 0.0;
  double idle_timeout_ms = 60000.0;
  double drain_timeout_ms = 10000.0;
  int max_connections = 1024;
  int cache_max_entries = 0;  // 0 = result cache off
  double cache_ttl_ms = 0.0;
  int cache_shards = 8;
  int distance_cache_mb = 0;  // 0 = tier-2 expansion cache off
  bool oracle = true;  // use a snapshot-baked distance oracle when present
  int admin_port = -1;  // -1 = admin plane off; 0 = ephemeral
  std::string admin_bind = "127.0.0.1";
  std::string compact_snapshot;     // empty = compaction off
  double compact_interval_ms = 0.0; // 0 = manual (POST /compact) only
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--bind=ADDR] [--port=N] [--city=BRN|NRN]\n"
      "          [--dataset=PATH (.snap or .network/.trajectories)]\n"
      "          [--trajectories=N] [--threads=N] [--max-inflight=N]\n"
      "          [--default-deadline-ms=MS] [--idle-timeout-ms=MS]\n"
      "          [--drain-timeout-ms=MS] [--max-connections=N]\n"
      "          [--cache-max-entries=N] [--cache-ttl-ms=MS]\n"
      "          [--cache-shards=N] [--distance-cache-mb=N]\n"
      "          [--oracle=on|off] [--admin-port=N] [--admin-bind=ADDR]\n"
      "          [--compact-snapshot=PATH] [--compact-interval-ms=MS]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--bind", &v)) {
      flags.bind = v;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      flags.port = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--city", &v)) {
      flags.city = v;
    } else if (ParseFlag(argv[i], "--dataset", &v)) {
      flags.dataset = v;
    } else if (ParseFlag(argv[i], "--trajectories", &v)) {
      flags.trajectories = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--threads", &v)) {
      flags.threads = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--max-inflight", &v)) {
      flags.max_inflight = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--default-deadline-ms", &v)) {
      flags.default_deadline_ms = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--idle-timeout-ms", &v)) {
      flags.idle_timeout_ms = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--drain-timeout-ms", &v)) {
      flags.drain_timeout_ms = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--max-connections", &v)) {
      flags.max_connections = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--cache-max-entries", &v)) {
      flags.cache_max_entries = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--cache-ttl-ms", &v)) {
      flags.cache_ttl_ms = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--cache-shards", &v)) {
      flags.cache_shards = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--distance-cache-mb", &v)) {
      flags.distance_cache_mb = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--oracle", &v)) {
      if (v != "on" && v != "off") {
        std::fprintf(stderr, "--oracle takes on or off\n");
        return 2;
      }
      flags.oracle = v == "on";
    } else if (ParseFlag(argv[i], "--admin-port", &v)) {
      flags.admin_port = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--admin-bind", &v)) {
      flags.admin_bind = v;
    } else if (ParseFlag(argv[i], "--compact-snapshot", &v)) {
      flags.compact_snapshot = v;
    } else if (ParseFlag(argv[i], "--compact-interval-ms", &v)) {
      flags.compact_interval_ms = std::atof(v.c_str());
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  std::unique_ptr<uots::TrajectoryDatabase> db;
  double load_seconds = 0.0;
  const char* source = "generated/cached";
  if (!flags.dataset.empty()) {
    std::printf("loading %s...\n", flags.dataset.c_str());
    std::fflush(stdout);
    auto loaded = uots::storage::LoadDatabaseFromPath(flags.dataset);
    if (!loaded.ok()) {
      std::fprintf(stderr, "dataset: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded->db);
    load_seconds = loaded->load_seconds;
    source = uots::storage::ToString(loaded->source);
  } else {
    City city;
    if (flags.city == "BRN") {
      city = City::kBRN;
    } else if (flags.city == "NRN") {
      city = City::kNRN;
    } else {
      std::fprintf(stderr, "unknown city %s (use BRN or NRN)\n",
                   flags.city.c_str());
      return 2;
    }
    std::printf("loading %s...\n", flags.city.c_str());
    std::fflush(stdout);
    const auto t0 = std::chrono::steady_clock::now();
    db = flags.trajectories > 0
             ? uots::bench::LoadCity(city, flags.trajectories)
             : uots::bench::LoadCity(city);
    load_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  const uots::MemoryBreakdown mem = db->Memory();
  std::printf(
      "dataset: %zu vertices, %zu trajectories, %zu terms (%s, %.3fs)\n"
      "memory: %.1f MB heap + %.1f MB snapshot-mapped\n",
      db->network().NumVertices(), db->store().size(),
      db->vocabulary().size(), source, load_seconds,
      static_cast<double>(mem.heap_bytes) / (1024.0 * 1024.0),
      static_cast<double>(mem.mmap_bytes) / (1024.0 * 1024.0));

  uots::ServerOptions opts;
  opts.bind_address = flags.bind;
  opts.port = static_cast<uint16_t>(flags.port);
  opts.max_connections = static_cast<size_t>(flags.max_connections);
  opts.idle_timeout_ms = flags.idle_timeout_ms;
  opts.drain_timeout_ms = flags.drain_timeout_ms;
  opts.service.threads = flags.threads;
  opts.service.max_inflight = static_cast<size_t>(flags.max_inflight);
  opts.service.default_deadline_ms = flags.default_deadline_ms;
  if (flags.cache_max_entries > 0) {
    opts.service.cache_max_entries =
        static_cast<size_t>(flags.cache_max_entries);
    opts.service.cache_ttl_ms = flags.cache_ttl_ms;
    opts.service.cache_shards = static_cast<size_t>(
        flags.cache_shards > 0 ? flags.cache_shards : 8);
  }
  std::shared_ptr<uots::DistanceFieldCache> dcache;
  if (flags.distance_cache_mb > 0) {
    uots::DistanceFieldCache::Options dopts;
    dopts.max_bytes = static_cast<size_t>(flags.distance_cache_mb) << 20;
    dcache = std::make_shared<uots::DistanceFieldCache>(dopts);
    opts.service.uots.distance_cache = dcache;
  }
  opts.service.uots.use_oracle = flags.oracle;
  opts.admin.port = flags.admin_port;
  opts.admin.bind_address = flags.admin_bind;
  opts.compact_snapshot_path = flags.compact_snapshot;
  opts.compact_interval_ms = flags.compact_interval_ms;
  opts.dataset_source =
      !flags.dataset.empty()
          ? flags.dataset + " (" + source + ")"
          : flags.city + " (" + std::string(source) + ")";

  // SIGINT/SIGTERM ride the event loop via a signalfd so shutdown is just
  // another loop event — no async-signal-safety gymnastics. Block them
  // BEFORE the server spawns its worker pool: the signal mask is inherited
  // at thread creation, and a process-directed signal may be delivered to
  // any thread that has it unblocked.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  sigprocmask(SIG_BLOCK, &mask, nullptr);

  std::shared_ptr<const uots::TrajectoryDatabase> shared_db = std::move(db);
  uots::UotsServer server(shared_db, opts);
  uots::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  const int sig_fd = signalfd(-1, &mask, SFD_NONBLOCK | SFD_CLOEXEC);
  if (sig_fd < 0) {
    std::fprintf(stderr, "signalfd: %s\n", std::strerror(errno));
    return 1;
  }
  st = server.loop().AddFd(sig_fd, EPOLLIN, [&server, sig_fd](uint32_t) {
    signalfd_siginfo info;
    while (read(sig_fd, &info, sizeof(info)) == sizeof(info)) {
      std::printf("signal %u: draining...\n", info.ssi_signo);
      std::fflush(stdout);
      server.RequestShutdown();
    }
  });
  if (!st.ok()) {
    std::fprintf(stderr, "signal hookup: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("serving on %s:%u (%zu workers, max %zu in flight)\n",
              flags.bind.c_str(), server.port(), server.service().num_threads(),
              opts.service.max_inflight);
  if (server.admin_port() != 0) {
    std::printf(
        "admin on http://%s:%u (/metrics /statusz /healthz /slowqueries "
        "/tracing)\n",
        flags.admin_bind.c_str(), server.admin_port());
  }
  if (opts.service.cache_max_entries > 0) {
    std::printf("result cache: %zu entries, ttl %.0f ms, %zu shards\n",
                opts.service.cache_max_entries, opts.service.cache_ttl_ms,
                opts.service.cache_shards);
  }
  if (dcache != nullptr) {
    std::printf("distance cache: %d MB\n", flags.distance_cache_mb);
  }
  if (shared_db->oracle() != nullptr) {
    std::printf("distance oracle: %zu vertices, %zu upward arcs (%s)\n",
                shared_db->oracle()->NumVertices(),
                shared_db->oracle()->NumUpEdges(),
                flags.oracle ? "on" : "off");
  }
  if (!flags.compact_snapshot.empty()) {
    std::printf("compaction: -> %s (%s)\n", flags.compact_snapshot.c_str(),
                flags.compact_interval_ms > 0.0 ? "periodic" : "manual");
  }
  std::fflush(stdout);

  server.Run();
  close(sig_fd);

  const uots::ServerCounters& c = server.counters();
  std::printf(
      "--- server counters ---\n"
      "connections accepted=%lld closed=%lld rejected=%lld\n"
      "requests=%lld ok=%lld overloaded=%lld shutting_down=%lld\n"
      "deadline_exceeded=%lld parse_errors=%lld oversized=%lld internal=%lld\n",
      static_cast<long long>(c.connections_accepted),
      static_cast<long long>(c.connections_closed),
      static_cast<long long>(c.connections_rejected),
      static_cast<long long>(c.requests),
      static_cast<long long>(c.responses_ok),
      static_cast<long long>(c.rejected_overloaded),
      static_cast<long long>(c.rejected_shutting_down),
      static_cast<long long>(c.deadline_exceeded),
      static_cast<long long>(c.parse_errors),
      static_cast<long long>(c.oversized_frames),
      static_cast<long long>(c.errors_internal));
  if (c.ingest_requests > 0 || c.compactions > 0) {
    std::printf(
        "ingest: requests=%lld accepted_trips=%lld rejected_batches=%lld "
        "compactions=%lld\n",
        static_cast<long long>(c.ingest_requests),
        static_cast<long long>(c.ingest_accepted_trips),
        static_cast<long long>(c.ingest_rejected_batches),
        static_cast<long long>(c.compactions));
  }
  if (const uots::ResultCache* rc = server.service().result_cache()) {
    const uots::ResultCache::Stats s = rc->stats();
    std::printf(
        "result cache: hits=%lld misses=%lld (served %lld) evictions=%lld "
        "expired=%lld entries=%lld bytes=%lld\n",
        static_cast<long long>(s.hits), static_cast<long long>(s.misses),
        static_cast<long long>(c.cache_hits),
        static_cast<long long>(s.evictions), static_cast<long long>(s.expired),
        static_cast<long long>(s.entries), static_cast<long long>(s.bytes));
  }
  if (dcache != nullptr) {
    const uots::DistanceFieldCache::Stats s = dcache->stats();
    std::printf(
        "distance cache: hits=%lld misses=%lld publishes=%lld rejected=%lld "
        "evictions=%lld entries=%lld bytes=%lld\n",
        static_cast<long long>(s.hits), static_cast<long long>(s.misses),
        static_cast<long long>(s.publishes), static_cast<long long>(s.rejected),
        static_cast<long long>(s.evictions), static_cast<long long>(s.entries),
        static_cast<long long>(s.bytes));
  }
  server.service().PublishCacheMetrics();
  std::printf("--- metrics ---\n%s",
              uots::MetricsRegistry::Global().ToString().c_str());
  return 0;
}

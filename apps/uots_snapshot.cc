// Snapshot tool: build, inspect, and verify binary dataset snapshots.
//
//   $ ./uots_snapshot build --out=brn.snap --city=BRN --trajectories=15000
//   $ ./uots_snapshot build --out=d.snap --network=g.network --trips=t.trajectories
//   $ ./uots_snapshot build --out=g.snap --gen-rows=60 --gen-cols=60 --gen-trips=5000
//   $ ./uots_snapshot build --out=brn.snap --city=BRN --oracle
//   $ ./uots_snapshot inspect brn.snap
//   $ ./uots_snapshot verify brn.snap
//
// `build` produces a checksummed format-v2 snapshot from any dataset
// source (`--oracle` additionally contracts the network and bakes the
// distance oracle into the file); `inspect` dumps the superblock, meta
// record, and section table of a structurally valid snapshot; `verify`
// additionally sweeps every payload checksum and id-range check (exit 0
// only on a fully intact file).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "common/datasets.h"
#include "net/generators.h"
#include "net/io.h"
#include "oracle/ch_oracle.h"
#include "storage/format.h"
#include "storage/resolver.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "traj/generator.h"
#include "traj/io.h"

namespace {

using uots::storage::SnapshotInfo;

struct BuildFlags {
  std::string out;
  std::string network;
  std::string trips;
  std::string city;
  int trajectories = 0;
  int gen_rows = 0;
  int gen_cols = 0;
  int gen_trips = 0;
  uint64_t seed = 1;
  bool oracle = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: uots_snapshot build --out=FILE [--oracle]\n"
      "           ( --network=FILE --trips=FILE\n"
      "           | --city=BRN|NRN [--trajectories=N]\n"
      "           | --gen-rows=R --gen-cols=C --gen-trips=N [--seed=S] )\n"
      "       uots_snapshot inspect FILE\n"
      "       uots_snapshot verify FILE\n");
}

int RunBuild(const BuildFlags& flags) {
  if (flags.out.empty()) {
    std::fprintf(stderr, "build: --out is required\n");
    return 2;
  }

  std::unique_ptr<uots::TrajectoryDatabase> db;
  if (!flags.network.empty() || !flags.trips.empty()) {
    if (flags.network.empty() || flags.trips.empty()) {
      std::fprintf(stderr, "build: --network and --trips go together\n");
      return 2;
    }
    auto loaded = uots::storage::LoadTextDataset(flags.network, flags.trips);
    if (!loaded.ok()) {
      std::fprintf(stderr, "build: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded->db);
  } else if (!flags.city.empty()) {
    uots::bench::City city;
    if (flags.city == "BRN") {
      city = uots::bench::City::kBRN;
    } else if (flags.city == "NRN") {
      city = uots::bench::City::kNRN;
    } else {
      std::fprintf(stderr, "build: unknown city %s\n", flags.city.c_str());
      return 2;
    }
    db = flags.trajectories > 0
             ? uots::bench::LoadCity(city, flags.trajectories)
             : uots::bench::LoadCity(city);
  } else if (flags.gen_rows > 0 && flags.gen_cols > 0 && flags.gen_trips > 0) {
    uots::GridNetworkOptions net_opts;
    net_opts.rows = flags.gen_rows;
    net_opts.cols = flags.gen_cols;
    net_opts.seed = flags.seed;
    auto g = uots::MakeGridNetwork(net_opts);
    if (!g.ok()) {
      std::fprintf(stderr, "build: network generation: %s\n",
                   g.status().ToString().c_str());
      return 1;
    }
    uots::TripGeneratorOptions trip_opts;
    trip_opts.num_trajectories = flags.gen_trips;
    trip_opts.seed = flags.seed + 1;
    auto trips = uots::GenerateTrips(*g, trip_opts);
    if (!trips.ok()) {
      std::fprintf(stderr, "build: trip generation: %s\n",
                   trips.status().ToString().c_str());
      return 1;
    }
    db = std::make_unique<uots::TrajectoryDatabase>(
        std::move(*g), std::move(trips->store), std::move(trips->vocabulary));
  } else {
    std::fprintf(stderr, "build: pick one dataset source\n");
    Usage();
    return 2;
  }

  if (flags.oracle) {
    uots::OracleBuildStats ostats;
    auto oracle = uots::DistanceOracle::Build(db->network(), {}, &ostats);
    if (!oracle.ok()) {
      std::fprintf(stderr, "build: oracle construction: %s\n",
                   oracle.status().ToString().c_str());
      return 1;
    }
    std::printf("oracle: %zu vertices, %zu upward arcs (%" PRIu64
                " shortcuts), %" PRIu64 " witness searches, built in %.2fs\n",
                oracle->NumVertices(), oracle->NumUpEdges(), ostats.shortcuts,
                ostats.witness_searches, ostats.seconds);
    db->AttachOracle(
        std::make_shared<uots::DistanceOracle>(std::move(*oracle)));
  }

  const uots::Status st = uots::storage::WriteSnapshot(*db, flags.out);
  if (!st.ok()) {
    std::fprintf(stderr, "build: %s\n", st.ToString().c_str());
    return 1;
  }
  auto info = uots::storage::InspectSnapshot(flags.out);
  if (!info.ok()) {
    std::fprintf(stderr, "build: wrote a snapshot that fails inspection: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s: %" PRIu64 " bytes, %" PRIu64 " vertices, %" PRIu64
      " trajectories, fingerprint %08x\n",
      flags.out.c_str(), info->file_size, info->meta.num_vertices,
      info->meta.num_trajectories, info->superblock.dataset_fingerprint);
  return 0;
}

int RunInspect(const std::string& path) {
  auto info_r = uots::storage::InspectSnapshot(path);
  if (!info_r.ok()) {
    std::fprintf(stderr, "inspect: %s\n", info_r.status().ToString().c_str());
    return 1;
  }
  const SnapshotInfo& info = *info_r;
  char created[32] = "unknown";
  const time_t created_s = static_cast<time_t>(info.superblock.created_unix_s);
  struct tm tm_buf;
  if (gmtime_r(&created_s, &tm_buf) != nullptr) {
    std::strftime(created, sizeof(created), "%Y-%m-%dT%H:%M:%SZ", &tm_buf);
  }
  std::printf(
      "snapshot %s\n"
      "  format v%u, %" PRIu64 " bytes, built %s by %.28s\n"
      "  dataset fingerprint %08x\n"
      "  %" PRIu64 " vertices, %" PRIu64 " directed edges\n"
      "  %" PRIu64 " trajectories, %" PRIu64 " samples, %" PRIu64
      " keyword terms\n"
      "  vocabulary %" PRIu64 " terms; inverted index %" PRIu64 " terms / %"
      PRIu64 " postings\n"
      "  vertex index %" PRIu64 " postings; time index %" PRIu64 " entries\n",
      path.c_str(), info.superblock.format_version, info.file_size, created,
      info.superblock.tool, info.superblock.dataset_fingerprint,
      info.meta.num_vertices, info.meta.num_directed_edges,
      info.meta.num_trajectories, info.meta.num_samples,
      info.meta.num_keyword_terms, info.meta.num_vocab_terms,
      info.meta.num_index_terms, info.meta.num_index_postings,
      info.meta.num_vertex_postings, info.meta.num_time_entries);
  if (info.superblock.format_version < 2) {
    std::printf("  no oracle (format v1 predates distance oracles)\n");
  } else if (info.meta.num_oracle_vertices == 0) {
    std::printf("  no oracle (build with uots_snapshot build --oracle)\n");
  } else {
    std::printf("  distance oracle: %" PRIu64 " vertices, %" PRIu64
                " upward arcs\n",
                info.meta.num_oracle_vertices, info.meta.num_oracle_edges);
  }
  std::printf("  %-24s %12s %6s %14s %10s\n", "section", "count", "elem",
              "bytes", "crc32c");
  for (const auto& e : info.sections) {
    std::printf("  %-24s %12" PRIu64 " %6u %14" PRIu64 "   %08x\n",
                uots::storage::SectionName(
                    static_cast<uots::storage::SectionId>(e.id)),
                e.count, e.elem_size, e.size_bytes, e.crc32c);
  }
  return 0;
}

int RunVerify(const std::string& path) {
  const uots::Status st = uots::storage::VerifySnapshot(path);
  if (!st.ok()) {
    std::printf("%s: FAILED: %s\n", path.c_str(), st.ToString().c_str());
    return 1;
  }
  auto info = uots::storage::InspectSnapshot(path);
  std::printf("%s: OK (fingerprint %08x, %" PRIu64 " bytes)\n", path.c_str(),
              info.ok() ? info->superblock.dataset_fingerprint : 0,
              info.ok() ? info->file_size : 0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "build") {
    BuildFlags flags;
    for (int i = 2; i < argc; ++i) {
      std::string v;
      if (ParseFlag(argv[i], "--out", &v)) {
        flags.out = v;
      } else if (ParseFlag(argv[i], "--network", &v)) {
        flags.network = v;
      } else if (ParseFlag(argv[i], "--trips", &v)) {
        flags.trips = v;
      } else if (ParseFlag(argv[i], "--city", &v)) {
        flags.city = v;
      } else if (ParseFlag(argv[i], "--trajectories", &v)) {
        flags.trajectories = std::atoi(v.c_str());
      } else if (ParseFlag(argv[i], "--gen-rows", &v)) {
        flags.gen_rows = std::atoi(v.c_str());
      } else if (ParseFlag(argv[i], "--gen-cols", &v)) {
        flags.gen_cols = std::atoi(v.c_str());
      } else if (ParseFlag(argv[i], "--gen-trips", &v)) {
        flags.gen_trips = std::atoi(v.c_str());
      } else if (ParseFlag(argv[i], "--seed", &v)) {
        flags.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
      } else if (std::strcmp(argv[i], "--oracle") == 0) {
        flags.oracle = true;
      } else {
        std::fprintf(stderr, "unknown flag %s\n", argv[i]);
        Usage();
        return 2;
      }
    }
    return RunBuild(flags);
  }
  if ((cmd == "inspect" || cmd == "verify") && argc == 3) {
    return cmd == "inspect" ? RunInspect(argv[2]) : RunVerify(argv[2]);
  }
  Usage();
  return 2;
}

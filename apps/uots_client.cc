// Load generator and correctness checker for uots_server.
//
//   $ ./uots_client --port=7670 --connections=8 --requests=2000
//   $ ./uots_client --port=7670 --rate=500 --duration-s=10   # open loop
//   $ ./uots_client --port=7670 --verify                     # bit-for-bit
//
// Closed loop: each connection keeps exactly one request outstanding;
// throughput is supply-limited, latency excludes queueing at the client.
// Open loop: requests are launched on a fixed schedule regardless of
// completions (the honest way to measure a saturated server — latency then
// includes the time requests spend waiting for a connection slot).
//
// --verify replays the workload through the server AND through the
// in-process engine and requires identical trajectory ids and score bits —
// the wire protocol's round-trip double encoding makes this exact.
//
// Results print as a table and land in BENCH_server.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/datasets.h"
#include "common/report.h"
#include "core/batch.h"
#include "core/workload.h"
#include "server/client.h"
#include "server/http.h"
#include "storage/resolver.h"
#include "text/zipf.h"
#include "traj/generator.h"
#include "trip/planner.h"
#include "trip/workload.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace {

using uots::bench::City;

struct Flags {
  std::string host = "127.0.0.1";
  int port = 7670;
  std::string city = "BRN";
  std::string dataset;  // snapshot or text path; overrides --city
  int trajectories = 0;
  int connections = 8;
  int requests = 2000;       // closed-loop total
  double rate = 0.0;         // open-loop qps; 0 = closed loop
  double duration_s = 10.0;  // open-loop run length
  int num_queries = 64;      // distinct workload queries to cycle through
  int locations = 5;
  int keywords = 5;
  double lambda = 0.5;
  int k = 10;
  uint64_t seed = 7;
  std::string algorithm = "UOTS";
  double deadline_ms = 0.0;
  bool verify = false;
  /// Live-ingest drill: generate N fresh trips, push them over the wire,
  /// then verify every workload query bit-for-bit against a local cold
  /// rebuild over base + ingested trips. 0 = off.
  int ingest = 0;
  int ingest_batch = 64;
  /// Trip-assembly mode: the workload becomes trip queries ("type":"trip"
  /// frames); --verify then compares assembled trips bit-for-bit against a
  /// cold in-process TripPlanner. The JSON report defaults to
  /// BENCH_trip.json and --scrape-admin folds the trip.* histograms in.
  bool trip = false;
  double trip_gap = 0.0;  ///< connector gap budget in meters (0 = unlimited)
  /// Zipf exponent for query selection; 0 = uniform rotation. Skewed picks
  /// model real trip-recommendation traffic (popular POI combos repeat)
  /// and are what make the server's result cache earn hits.
  double zipf = 0.0;
  std::string cache = "default";  // or "bypass"
  /// Fail (exit 1) when the observed cache hit rate is below this; < 0
  /// disables the assertion.
  double min_hit_rate = -1.0;
  std::string json_out = "BENCH_server.json";  // --trip: BENCH_trip.json
  bool json_out_set = false;  ///< --json-out given explicitly
  /// "HOST:PORT" of the server's admin plane. When set, /metrics is
  /// scraped before and after the load run and the server-observed
  /// run-window latency quantiles + cache hit rate are folded into the
  /// report next to the client-observed numbers.
  std::string scrape_admin;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

bool ParseBoolFlag(const char* arg, const char* name) {
  return std::strcmp(arg, name) == 0;
}

/// Latencies + error tallies for one worker thread. Hit/miss latencies are
/// kept separately — a cache hit and a computed answer are different
/// service classes, and averaging them hides both.
struct WorkerStats {
  uots::LatencyHistogram latency;
  uots::LatencyHistogram hit_latency;
  uots::LatencyHistogram miss_latency;
  int64_t ok = 0;
  int64_t cache_hits = 0;
  int64_t overloaded = 0;
  int64_t deadline_exceeded = 0;
  int64_t other_errors = 0;
  int64_t transport_errors = 0;

  void Count(uots::ResponseStatus status, bool cached, int64_t latency_ns) {
    latency.Record(latency_ns);
    switch (status) {
      case uots::ResponseStatus::kOk:
        ++ok;
        if (cached) {
          ++cache_hits;
          hit_latency.Record(latency_ns);
        } else {
          miss_latency.Record(latency_ns);
        }
        break;
      case uots::ResponseStatus::kOverloaded:
      case uots::ResponseStatus::kShuttingDown:
        ++overloaded;
        break;
      case uots::ResponseStatus::kDeadlineExceeded:
        ++deadline_exceeded;
        break;
      default:
        ++other_errors;
        break;
    }
  }

  void Merge(const WorkerStats& o) {
    latency.Merge(o.latency);
    hit_latency.Merge(o.hit_latency);
    miss_latency.Merge(o.miss_latency);
    ok += o.ok;
    cache_hits += o.cache_hits;
    overloaded += o.overloaded;
    deadline_exceeded += o.deadline_exceeded;
    other_errors += o.other_errors;
    transport_errors += o.transport_errors;
  }
};

/// One /metrics scrape, reduced to what the report folds in.
struct AdminScrape {
  double requests = 0.0;       // uots_server_requests_total
  double trip_requests = 0.0;  // uots_server_trip_requests_total
  double responses_ok = 0.0;   // uots_server_responses_ok_total
  double cache_hits = 0.0;     // uots_server_request_cache_hits_total
  std::vector<uots::promtext::HistogramBucket> latency_buckets;
  // Trip-plane histograms (server-side planner wall time + phase split).
  std::vector<uots::promtext::HistogramBucket> trip_plan_buckets;
  std::vector<uots::promtext::HistogramBucket> trip_harvest_buckets;
  std::vector<uots::promtext::HistogramBucket> trip_assemble_buckets;
};

bool ScrapeAdmin(const std::string& host, uint16_t port, AdminScrape* out) {
  auto r = uots::HttpFetch(host, port, "/metrics");
  if (!r.ok()) {
    std::fprintf(stderr, "scrape-admin: %s\n", r.status().ToString().c_str());
    return false;
  }
  if (r->status != 200) {
    std::fprintf(stderr, "scrape-admin: /metrics returned %d\n", r->status);
    return false;
  }
  const std::string& text = r->body;
  uots::promtext::FindValue(text, "uots_server_requests_total",
                            &out->requests);
  uots::promtext::FindValue(text, "uots_server_responses_ok_total",
                            &out->responses_ok);
  uots::promtext::FindValue(text, "uots_server_request_cache_hits_total",
                            &out->cache_hits);
  uots::promtext::FindValue(text, "uots_server_trip_requests_total",
                            &out->trip_requests);
  out->latency_buckets = uots::promtext::ParseHistogramBuckets(
      text, "uots_server_request_latency_seconds");
  out->trip_plan_buckets = uots::promtext::ParseHistogramBuckets(
      text, "uots_trip_plan_seconds");
  out->trip_harvest_buckets = uots::promtext::ParseHistogramBuckets(
      text, "uots_trip_harvest_seconds");
  out->trip_assemble_buckets = uots::promtext::ParseHistogramBuckets(
      text, "uots_trip_assemble_seconds");
  return true;
}

/// Splits "HOST:PORT"; a bare "PORT" means 127.0.0.1.
bool ParseHostPort(const std::string& s, std::string* host, uint16_t* port) {
  const size_t colon = s.rfind(':');
  const std::string port_str =
      colon == std::string::npos ? s : s.substr(colon + 1);
  *host = colon == std::string::npos ? "127.0.0.1" : s.substr(0, colon);
  const int p = std::atoi(port_str.c_str());
  if (p <= 0 || p > 65535) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

int RunVerify(const Flags& flags, const uots::TrajectoryDatabase& db,
              const std::vector<uots::UotsQuery>& queries,
              uots::AlgorithmKind kind) {
  uots::BlockingClient client;
  uots::Status st =
      client.Connect(flags.host, static_cast<uint16_t>(flags.port));
  if (!st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    return 1;
  }
  uots::QueryOptions local_opts;
  local_opts.algorithm = kind;
  int mismatches = 0;
  int64_t hits_observed = 0;
  // Three passes per query: cache-default (miss or hit), cache-default
  // again (a hit if the server caches), and cache-bypass (always computed).
  // Every pass must match the in-process engine bit for bit — this is the
  // "caching changes no output bit" check, exercised over the real wire.
  static constexpr const char* kPassName[] = {"default", "default-again",
                                              "bypass"};
  for (size_t i = 0; i < queries.size(); ++i) {
    auto local = uots::RunQuery(db, queries[i], local_opts);
    if (!local.ok()) {
      std::fprintf(stderr, "query %zu: local: %s\n", i,
                   local.status().ToString().c_str());
      return 1;
    }
    for (int pass = 0; pass < 3; ++pass) {
      uots::QueryRequest req;
      req.id = static_cast<int64_t>(i) * 4 + pass;
      req.query = queries[i];
      req.algorithm = kind;
      req.has_algorithm = true;
      req.cache = pass == 2 ? uots::CacheMode::kBypass
                            : uots::CacheMode::kDefault;
      auto remote = client.Call(req);
      if (!remote.ok()) {
        std::fprintf(stderr, "query %zu (%s): transport: %s\n", i,
                     kPassName[pass], remote.status().ToString().c_str());
        return 1;
      }
      if (!remote->ok()) {
        std::fprintf(stderr, "query %zu (%s): server: %s (%s)\n", i,
                     kPassName[pass], ToString(remote->status),
                     remote->error.c_str());
        return 1;
      }
      if (remote->cached) ++hits_observed;
      bool same = remote->results.size() == local->items.size();
      for (size_t j = 0; same && j < local->items.size(); ++j) {
        const auto& a = remote->results[j];
        const auto& b = local->items[j];
        same = a.id == b.id && a.score == b.score &&
               a.spatial_sim == b.spatial_sim &&
               a.textual_sim == b.textual_sim;
      }
      if (!same) {
        ++mismatches;
        std::fprintf(stderr, "query %zu (%s): MISMATCH (%zu vs %zu results)\n",
                     i, kPassName[pass], remote->results.size(),
                     local->items.size());
      }
    }
  }
  if (mismatches == 0) {
    std::printf(
        "verify: %zu/%zu queries bit-for-bit identical across "
        "default/repeat/bypass (%" PRId64 " cache hits observed)\n",
        queries.size(), queries.size(), hits_observed);
    return 0;
  }
  std::printf("verify: %d mismatches over %zu queries\n", mismatches,
              queries.size());
  return 1;
}

/// Trip-mode verify: the same three-pass cache drill as RunVerify, but the
/// reference is a cold in-process TripPlanner over the locally built
/// database. AssembledTrip::operator== compares every score bit and every
/// segment's provenance, so "identical" here is exact, not approximate.
int RunTripVerify(const Flags& flags, const uots::TrajectoryDatabase& db,
                  const std::vector<uots::TripQuery>& queries) {
  uots::BlockingClient client;
  uots::Status st =
      client.Connect(flags.host, static_cast<uint16_t>(flags.port));
  if (!st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    return 1;
  }
  uots::TripPlanner planner(db);
  int mismatches = 0;
  int64_t hits_observed = 0;
  static constexpr const char* kPassName[] = {"default", "default-again",
                                              "bypass"};
  for (size_t i = 0; i < queries.size(); ++i) {
    auto local = planner.Plan(queries[i]);
    if (!local.ok()) {
      std::fprintf(stderr, "trip %zu: local: %s\n", i,
                   local.status().ToString().c_str());
      return 1;
    }
    for (int pass = 0; pass < 3; ++pass) {
      uots::TripRequest req;
      req.id = static_cast<int64_t>(i) * 4 + pass;
      req.query = queries[i];
      req.cache = pass == 2 ? uots::CacheMode::kBypass
                            : uots::CacheMode::kDefault;
      auto remote = client.Call(req);
      if (!remote.ok()) {
        std::fprintf(stderr, "trip %zu (%s): transport: %s\n", i,
                     kPassName[pass], remote.status().ToString().c_str());
        return 1;
      }
      if (!remote->ok()) {
        std::fprintf(stderr, "trip %zu (%s): server: %s (%s)\n", i,
                     kPassName[pass], ToString(remote->status),
                     remote->error.c_str());
        return 1;
      }
      if (remote->cached) ++hits_observed;
      if (remote->trips != local->trips) {
        ++mismatches;
        std::fprintf(stderr, "trip %zu (%s): MISMATCH (%zu vs %zu trips)\n",
                     i, kPassName[pass], remote->trips.size(),
                     local->trips.size());
      }
    }
  }
  if (mismatches == 0) {
    std::printf(
        "trip verify: %zu/%zu queries bit-for-bit identical across "
        "default/repeat/bypass (%" PRId64 " cache hits observed)\n",
        queries.size(), queries.size(), hits_observed);
    return 0;
  }
  std::printf("trip verify: %d mismatches over %zu queries\n", mismatches,
              queries.size());
  return 1;
}

/// Live-ingest drill. Generates `flags.ingest` fresh trips over the base
/// dataset's network, pushes them to the server over the wire, then runs
/// the full three-pass verify against a *local cold rebuild* over
/// base + ingested trips — the server's merged base+delta view must be
/// indistinguishable, bit for bit, from an index built from scratch.
int RunIngest(const Flags& flags, const uots::TrajectoryDatabase& db,
              const uots::WorkloadOptions& wopts, uots::AlgorithmKind kind) {
  // Fresh trips: same generator the datasets use, but a displaced seed so
  // no trip collides with the base set (the server dedups by content), and
  // terms drawn from the server's own vocabulary so ingest validation
  // accepts them.
  uots::TripGeneratorOptions gopts;
  gopts.num_trajectories = flags.ingest;
  if (db.vocabulary().size() > 0) {
    gopts.vocabulary_size = static_cast<int>(db.vocabulary().size());
  }
  gopts.seed = flags.seed + 0xA11CEULL;
  auto gen = uots::GenerateTrips(db.network(), gopts);
  if (!gen.ok()) {
    std::fprintf(stderr, "ingest: generate: %s\n",
                 gen.status().ToString().c_str());
    return 1;
  }
  std::vector<uots::Trajectory> trips;
  trips.reserve(gen->store.size());
  for (size_t i = 0; i < gen->store.size(); ++i) {
    trips.push_back(gen->store.Materialize(static_cast<uots::TrajId>(i)));
  }

  uots::BlockingClient client;
  uots::Status st =
      client.Connect(flags.host, static_cast<uint16_t>(flags.port));
  if (!st.ok()) {
    std::fprintf(stderr, "ingest: connect: %s\n", st.ToString().c_str());
    return 1;
  }
  const int64_t base_count = static_cast<int64_t>(db.store().size());
  const size_t batch =
      flags.ingest_batch > 0 ? static_cast<size_t>(flags.ingest_batch) : 64;
  size_t sent = 0;
  int64_t generation = 0;
  while (sent < trips.size()) {
    uots::IngestRequest req;
    req.id = static_cast<int64_t>(sent);
    const size_t end = std::min(sent + batch, trips.size());
    req.trajectories.assign(trips.begin() + static_cast<ptrdiff_t>(sent),
                            trips.begin() + static_cast<ptrdiff_t>(end));
    auto resp = client.Call(req);
    if (!resp.ok()) {
      std::fprintf(stderr, "ingest: transport: %s\n",
                   resp.status().ToString().c_str());
      return 1;
    }
    if (!resp->ok()) {
      std::fprintf(stderr, "ingest: server: %s (%s)\n", ToString(resp->status),
                   resp->error.c_str());
      return 1;
    }
    // Ids must land contiguously on top of the base range — that is the
    // contract that makes the local rebuild's ids line up with the server's.
    if (resp->first_traj != base_count + static_cast<int64_t>(sent) ||
        resp->accepted != static_cast<int64_t>(end - sent)) {
      std::fprintf(stderr,
                   "ingest: id drift: first_traj=%" PRId64 " accepted=%" PRId64
                   " (expected %" PRId64 " / %zu)\n",
                   resp->first_traj, resp->accepted,
                   base_count + static_cast<int64_t>(sent), end - sent);
      return 1;
    }
    generation = resp->generation;
    sent = end;
  }
  std::printf("ingest: %zu trips accepted over the wire (generation %" PRId64
              ")\n",
              sent, generation);

  // Reference: a from-scratch rebuild over base + ingested, exactly what a
  // restart after compaction would serve.
  uots::TrajectoryStore merged;
  for (size_t i = 0; i < db.store().size(); ++i) {
    auto added = merged.Add(db.store().Materialize(static_cast<uots::TrajId>(i)));
    if (!added.ok()) {
      std::fprintf(stderr, "ingest: rebuild: %s\n",
                   added.status().ToString().c_str());
      return 1;
    }
  }
  for (const auto& t : trips) {
    auto added = merged.Add(t);
    if (!added.ok()) {
      std::fprintf(stderr, "ingest: rebuild: %s\n",
                   added.status().ToString().c_str());
      return 1;
    }
  }
  uots::SimilarityOptions sim;
  sim.sigma_m = db.model().sigma_m();
  sim.sigma_s = db.model().sigma_s();
  sim.measure = db.model().textual().measure();
  uots::TrajectoryDatabase ref(db.network(), std::move(merged),
                               db.vocabulary(), sim);

  // The workload is regenerated over the merged database so queries can
  // (and do) surface ingested trips in their top-k.
  auto queries_r = uots::MakeWorkload(ref, wopts);
  if (!queries_r.ok()) {
    std::fprintf(stderr, "ingest: workload: %s\n",
                 queries_r.status().ToString().c_str());
    return 1;
  }
  return RunVerify(flags, ref, *queries_r, kind);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--host", &v)) {
      flags.host = v;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      flags.port = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--city", &v)) {
      flags.city = v;
    } else if (ParseFlag(argv[i], "--dataset", &v)) {
      flags.dataset = v;
    } else if (ParseFlag(argv[i], "--trajectories", &v)) {
      flags.trajectories = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--connections", &v)) {
      flags.connections = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--requests", &v)) {
      flags.requests = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--rate", &v)) {
      flags.rate = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--duration-s", &v)) {
      flags.duration_s = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--num-queries", &v)) {
      flags.num_queries = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--locations", &v)) {
      flags.locations = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--keywords", &v)) {
      flags.keywords = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--lambda", &v)) {
      flags.lambda = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--k", &v)) {
      flags.k = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      flags.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "--algorithm", &v)) {
      flags.algorithm = v;
    } else if (ParseFlag(argv[i], "--deadline-ms", &v)) {
      flags.deadline_ms = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--zipf", &v)) {
      flags.zipf = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--cache", &v)) {
      flags.cache = v;
    } else if (ParseFlag(argv[i], "--min-hit-rate", &v)) {
      flags.min_hit_rate = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--json-out", &v)) {
      flags.json_out = v;
      flags.json_out_set = true;
    } else if (ParseFlag(argv[i], "--trip-gap", &v)) {
      flags.trip_gap = std::atof(v.c_str());
    } else if (ParseBoolFlag(argv[i], "--trip")) {
      flags.trip = true;
    } else if (ParseFlag(argv[i], "--scrape-admin", &v)) {
      flags.scrape_admin = v;
    } else if (ParseFlag(argv[i], "--ingest", &v)) {
      flags.ingest = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--ingest-batch", &v)) {
      flags.ingest_batch = std::atoi(v.c_str());
    } else if (ParseBoolFlag(argv[i], "--verify")) {
      flags.verify = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  auto kind_r = uots::ParseAlgorithmKind(flags.algorithm);
  if (!kind_r.ok()) {
    std::fprintf(stderr, "unknown algorithm %s\n", flags.algorithm.c_str());
    return 2;
  }
  const uots::AlgorithmKind kind = *kind_r;
  if (flags.cache != "default" && flags.cache != "bypass") {
    std::fprintf(stderr, "--cache must be default or bypass\n");
    return 2;
  }
  const uots::CacheMode cache_mode = flags.cache == "bypass"
                                         ? uots::CacheMode::kBypass
                                         : uots::CacheMode::kDefault;
  if (flags.trip && !flags.json_out_set) {
    flags.json_out = "BENCH_trip.json";
  }

  // The same deterministic dataset + workload the server loaded: needed for
  // --verify, and it gives the load generator realistic queries.
  std::unique_ptr<uots::TrajectoryDatabase> db;
  if (!flags.dataset.empty()) {
    std::printf("loading %s workload...\n", flags.dataset.c_str());
    std::fflush(stdout);
    auto loaded = uots::storage::LoadDatabaseFromPath(flags.dataset);
    if (!loaded.ok()) {
      std::fprintf(stderr, "dataset: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = std::move(loaded->db);
  } else {
    City city;
    if (flags.city == "BRN") {
      city = City::kBRN;
    } else if (flags.city == "NRN") {
      city = City::kNRN;
    } else {
      std::fprintf(stderr, "unknown city %s\n", flags.city.c_str());
      return 2;
    }
    std::printf("loading %s workload...\n", flags.city.c_str());
    std::fflush(stdout);
    db = flags.trajectories > 0
             ? uots::bench::LoadCity(city, flags.trajectories)
             : uots::bench::LoadCity(city);
  }
  uots::WorkloadOptions wopts;
  wopts.num_queries = flags.num_queries;
  wopts.num_locations = flags.locations;
  wopts.num_keywords = flags.keywords;
  wopts.lambda = flags.lambda;
  wopts.k = flags.k;
  wopts.seed = flags.seed;

  if (flags.ingest > 0) {
    return RunIngest(flags, *db, wopts, kind);
  }

  // Trip mode swaps the workload family; everything downstream (loop
  // shape, zipf selection, latency accounting) is shared.
  std::vector<uots::UotsQuery> queries;
  std::vector<uots::TripQuery> trip_queries;
  if (flags.trip) {
    uots::TripWorkloadOptions topts;
    topts.num_queries = flags.num_queries;
    topts.num_locations = flags.locations;
    topts.num_keywords = flags.keywords;
    topts.lambda = flags.lambda;
    topts.k = flags.k;
    topts.gap_budget_m = flags.trip_gap;
    topts.seed = flags.seed;
    auto tq = uots::MakeTripWorkload(*db, topts);
    if (!tq.ok()) {
      std::fprintf(stderr, "trip workload: %s\n",
                   tq.status().ToString().c_str());
      return 1;
    }
    trip_queries = std::move(*tq);
  } else {
    auto queries_r = uots::MakeWorkload(*db, wopts);
    if (!queries_r.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   queries_r.status().ToString().c_str());
      return 1;
    }
    queries = std::move(*queries_r);
  }
  const size_t workload_size =
      flags.trip ? trip_queries.size() : queries.size();

  if (flags.verify) {
    return flags.trip ? RunTripVerify(flags, *db, trip_queries)
                      : RunVerify(flags, *db, queries, kind);
  }

  std::string admin_host;
  uint16_t admin_port = 0;
  AdminScrape scrape_before;
  const bool scrape = !flags.scrape_admin.empty();
  if (scrape) {
    if (!ParseHostPort(flags.scrape_admin, &admin_host, &admin_port)) {
      std::fprintf(stderr, "--scrape-admin wants HOST:PORT, got %s\n",
                   flags.scrape_admin.c_str());
      return 2;
    }
    if (!ScrapeAdmin(admin_host, admin_port, &scrape_before)) return 1;
  }

  const bool open_loop = flags.rate > 0.0;
  const int nconn = std::max(1, flags.connections);
  std::vector<WorkerStats> stats(static_cast<size_t>(nconn));
  std::vector<std::thread> threads;
  std::atomic<int64_t> next_request{0};
  std::atomic<bool> abort_run{false};

  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < nconn; ++t) {
    threads.emplace_back([&, t] {
      WorkerStats& my = stats[static_cast<size_t>(t)];
      uots::BlockingClient client;
      uots::Status st =
          client.Connect(flags.host, static_cast<uint16_t>(flags.port));
      if (!st.ok()) {
        std::fprintf(stderr, "conn %d: %s\n", t, st.ToString().c_str());
        ++my.transport_errors;
        abort_run.store(true);
        return;
      }
      // Open loop: this thread owns every rate/nconn-th tick of the global
      // schedule; a late tick is sent immediately (no coordinated omission
      // hiding — the latency clock starts at the *scheduled* time).
      const double per_thread_interval_ns =
          open_loop ? 1e9 * nconn / flags.rate : 0.0;
      const auto deadline_end =
          t0 + std::chrono::duration<double>(flags.duration_s);
      int64_t tick = 0;
      // Skewed query selection: per-thread sampler + RNG (seeded per
      // thread) so threads don't serialize on a shared generator.
      std::unique_ptr<uots::ZipfSampler> zipf_sampler;
      if (flags.zipf > 0.0) {
        zipf_sampler =
            std::make_unique<uots::ZipfSampler>(workload_size, flags.zipf);
      }
      uots::Rng rng(flags.seed + static_cast<uint64_t>(t) * 0x9e3779b9ULL);
      for (;;) {
        if (abort_run.load(std::memory_order_relaxed)) break;
        std::chrono::steady_clock::time_point scheduled;
        if (open_loop) {
          scheduled =
              t0 + std::chrono::nanoseconds(static_cast<int64_t>(
                       (static_cast<double>(tick) + t / double(nconn)) *
                       per_thread_interval_ns));
          if (scheduled >= deadline_end) break;
          std::this_thread::sleep_until(scheduled);
          ++tick;
        } else {
          const int64_t n = next_request.fetch_add(1);
          if (n >= flags.requests) break;
          scheduled = std::chrono::steady_clock::now();
        }
        int64_t qi;
        if (zipf_sampler != nullptr) {
          qi = static_cast<int64_t>(zipf_sampler->Sample(rng));
        } else if (open_loop) {
          qi = (tick + t) % static_cast<int64_t>(workload_size);
        } else {
          qi = next_request.load() % static_cast<int64_t>(workload_size);
        }
        if (flags.trip) {
          uots::TripRequest req;
          req.id = tick + t * 1000000;
          req.query = trip_queries[static_cast<size_t>(qi)];
          req.deadline_ms = flags.deadline_ms;
          req.cache = cache_mode;
          auto resp = client.Call(req);
          const auto done = std::chrono::steady_clock::now();
          if (!resp.ok()) {
            ++my.transport_errors;
            break;
          }
          my.Count(resp->status, resp->cached,
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       done - scheduled)
                       .count());
          continue;
        }
        uots::QueryRequest req;
        req.id = tick + t * 1000000;
        req.query = queries[static_cast<size_t>(qi)];
        req.algorithm = kind;
        req.has_algorithm = true;
        req.deadline_ms = flags.deadline_ms;
        req.cache = cache_mode;
        auto resp = client.Call(req);
        const auto done = std::chrono::steady_clock::now();
        if (!resp.ok()) {
          ++my.transport_errors;
          break;
        }
        my.Count(resp->status, resp->cached,
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     done - scheduled)
                     .count());
      }
    });
  }
  for (auto& th : threads) th.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  WorkerStats total;
  for (const auto& s : stats) total.Merge(s);
  const int64_t completed = total.ok + total.overloaded +
                            total.deadline_exceeded + total.other_errors;
  const double qps = wall_s > 0 ? static_cast<double>(completed) / wall_s : 0;

  const double hit_rate =
      total.ok > 0 ? static_cast<double>(total.cache_hits) / total.ok : 0.0;
  std::printf(
      "mode=%s connections=%d wall=%.2fs zipf=%.2f cache=%s\n"
      "completed=%" PRId64 " (%.1f qps)  ok=%" PRId64 " overloaded=%" PRId64
      " deadline=%" PRId64 " errors=%" PRId64 " transport=%" PRId64 "\n"
      "latency: %s\n",
      open_loop ? "open" : "closed", nconn, wall_s, flags.zipf,
      flags.cache.c_str(), completed, qps, total.ok, total.overloaded,
      total.deadline_exceeded, total.other_errors, total.transport_errors,
      total.latency.ToString().c_str());
  std::printf("cache: hits=%" PRId64 "/%" PRId64 " (%.1f%%)  hit p50=%.3f ms"
              "  miss p50=%.3f ms\n",
              total.cache_hits, total.ok, 100.0 * hit_rate,
              total.hit_latency.PercentileMs(50),
              total.miss_latency.PercentileMs(50));

  uots::bench::JsonReport report(flags.trip ? "trip_load" : "server_load");
  auto& row = report.AddRow();
  row.Set("mode", std::string(open_loop ? "open" : "closed"))
      .Set("city", flags.city)
      .Set("algorithm", flags.trip ? std::string("TRIP") : flags.algorithm)
      .Set("connections", static_cast<int64_t>(nconn))
      .Set("wall_seconds", wall_s)
      .Set("completed", completed)
      .Set("qps", qps)
      .Set("ok", total.ok)
      .Set("overloaded", total.overloaded)
      .Set("deadline_exceeded", total.deadline_exceeded)
      .Set("errors", total.other_errors)
      .Set("transport_errors", total.transport_errors)
      .Set("mean_ms", total.latency.MeanNs() / 1e6)
      .Set("p50_ms", total.latency.PercentileMs(50))
      .Set("p95_ms", total.latency.PercentileMs(95))
      .Set("p99_ms", total.latency.PercentileMs(99))
      .Set("max_ms", static_cast<double>(total.latency.max_ns()) / 1e6)
      .Set("zipf", flags.zipf)
      .Set("cache_mode", flags.cache)
      .Set("cache_hits", total.cache_hits)
      .Set("hit_rate", hit_rate)
      .Set("hit_p50_ms", total.hit_latency.PercentileMs(50))
      .Set("hit_p99_ms", total.hit_latency.PercentileMs(99))
      .Set("miss_p50_ms", total.miss_latency.PercentileMs(50))
      .Set("miss_p99_ms", total.miss_latency.PercentileMs(99));

  if (scrape) {
    AdminScrape after;
    if (!ScrapeAdmin(admin_host, admin_port, &after)) return 1;
    const double d_requests = after.requests - scrape_before.requests;
    const double d_ok = after.responses_ok - scrape_before.responses_ok;
    const double d_hits = after.cache_hits - scrape_before.cache_hits;
    const double server_hit_rate = d_ok > 0 ? d_hits / d_ok : 0.0;
    // Run-window quantiles from the cumulative-bucket deltas: what the
    // *server* measured arrival-to-response for exactly this run (the
    // lifetime quantile gauges would mix in whatever ran before us).
    const double sp50 = uots::promtext::DeltaQuantileSeconds(
        scrape_before.latency_buckets, after.latency_buckets, 50.0);
    const double sp95 = uots::promtext::DeltaQuantileSeconds(
        scrape_before.latency_buckets, after.latency_buckets, 95.0);
    const double sp99 = uots::promtext::DeltaQuantileSeconds(
        scrape_before.latency_buckets, after.latency_buckets, 99.0);
    std::printf(
        "server (scraped): requests=%.0f ok=%.0f hit_rate=%.1f%%  "
        "p50<=%.3f ms p95<=%.3f ms p99<=%.3f ms\n",
        d_requests, d_ok, 100.0 * server_hit_rate, sp50 * 1e3, sp95 * 1e3,
        sp99 * 1e3);
    row.Set("server_requests", d_requests)
        .Set("server_ok", d_ok)
        .Set("server_cache_hits", d_hits)
        .Set("server_hit_rate", server_hit_rate)
        .Set("server_p50_ms", sp50 * 1e3)
        .Set("server_p95_ms", sp95 * 1e3)
        .Set("server_p99_ms", sp99 * 1e3);
    if (flags.trip) {
      // The trip.* histogram family, folded in like server.*: run-window
      // planner wall time plus its harvest/assemble phase split.
      const double d_trips = after.trip_requests - scrape_before.trip_requests;
      const double tp50 = uots::promtext::DeltaQuantileSeconds(
          scrape_before.trip_plan_buckets, after.trip_plan_buckets, 50.0);
      const double tp95 = uots::promtext::DeltaQuantileSeconds(
          scrape_before.trip_plan_buckets, after.trip_plan_buckets, 95.0);
      const double tp99 = uots::promtext::DeltaQuantileSeconds(
          scrape_before.trip_plan_buckets, after.trip_plan_buckets, 99.0);
      const double th95 = uots::promtext::DeltaQuantileSeconds(
          scrape_before.trip_harvest_buckets, after.trip_harvest_buckets,
          95.0);
      const double ta95 = uots::promtext::DeltaQuantileSeconds(
          scrape_before.trip_assemble_buckets, after.trip_assemble_buckets,
          95.0);
      // An all-hits window computes no plans, so the trip.* histograms
      // gain no samples and every window quantile is NaN (null in the
      // JSON report) — say so instead of printing nan.
      if (std::isnan(tp50)) {
        std::printf(
            "server (trip.*): requests=%.0f (all served from cache; no "
            "planner samples in window)\n",
            d_trips);
      } else {
        std::printf(
            "server (trip.*): requests=%.0f plan p50<=%.3f ms p95<=%.3f ms "
            "p99<=%.3f ms  harvest p95<=%.3f ms assemble p95<=%.3f ms\n",
            d_trips, tp50 * 1e3, tp95 * 1e3, tp99 * 1e3, th95 * 1e3,
            ta95 * 1e3);
      }
      row.Set("server_trip_requests", d_trips)
          .Set("trip_plan_p50_ms", tp50 * 1e3)
          .Set("trip_plan_p95_ms", tp95 * 1e3)
          .Set("trip_plan_p99_ms", tp99 * 1e3)
          .Set("trip_harvest_p95_ms", th95 * 1e3)
          .Set("trip_assemble_p95_ms", ta95 * 1e3);
    }
  }
  if (!flags.json_out.empty()) report.WriteFile(flags.json_out);

  if (flags.min_hit_rate >= 0.0 && hit_rate < flags.min_hit_rate) {
    std::fprintf(stderr, "hit rate %.3f below required %.3f\n", hit_rate,
                 flags.min_hit_rate);
    return 1;
  }
  return total.transport_errors == 0 ? 0 : 1;
}

#include "cache/distance_field_cache.h"

namespace uots {

DistanceFieldCache::DistanceFieldCache(const Options& opts)
    : max_bytes_(opts.max_bytes),
      max_events_per_source_(opts.max_events_per_source) {}

int64_t DistanceFieldCache::ApproxBytes(const ExpansionPrefix& prefix) {
  return static_cast<int64_t>(
      sizeof(ExpansionPrefix) +
      prefix.size() * (sizeof(VertexId) + sizeof(double)));
}

std::shared_ptr<const ExpansionPrefix> DistanceFieldCache::Acquire(
    VertexId source, uint64_t* version_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (version_out != nullptr) *version_out = version_;
  auto it = index_.find(source);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->prefix;
}

bool DistanceFieldCache::Publish(
    std::shared_ptr<const ExpansionPrefix> prefix, uint64_t version) {
  if (prefix == nullptr || prefix->size() == 0) return false;
  const int64_t bytes = ApproxBytes(*prefix);
  std::lock_guard<std::mutex> lock(mu_);
  if (version != version_ || bytes > static_cast<int64_t>(max_bytes_)) {
    ++stats_.rejected;
    return false;
  }
  auto it = index_.find(prefix->source);
  if (it != index_.end()) {
    const ExpansionPrefix& existing = *it->second->prefix;
    // Only replace for strictly more information: a longer prefix, or the
    // same-length prefix gaining the `complete` bit.
    const bool improves =
        prefix->size() > existing.size() ||
        (prefix->size() == existing.size() && prefix->complete &&
         !existing.complete);
    if (!improves) {
      ++stats_.rejected;
      return false;
    }
    bytes_ -= it->second->bytes;
    --stats_.entries;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{prefix->source, std::move(prefix), bytes});
  index_.emplace(lru_.front().source, lru_.begin());
  bytes_ += bytes;
  ++stats_.entries;
  ++stats_.publishes;
  EvictLocked();
  return true;
}

void DistanceFieldCache::EvictLocked() {
  while (bytes_ > static_cast<int64_t>(max_bytes_) && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    --stats_.entries;
    ++stats_.evictions;
    index_.erase(victim.source);
    lru_.pop_back();
  }
}

void DistanceFieldCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  ++version_;
  ++stats_.invalidations;
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  stats_.entries = 0;
}

uint64_t DistanceFieldCache::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

DistanceFieldCache::Stats DistanceFieldCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.bytes = bytes_;
  return s;
}

}  // namespace uots

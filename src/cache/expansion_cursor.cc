#include "cache/expansion_cursor.h"

#include <cassert>

namespace uots {

void ExpansionCursor::Begin(VertexId source, DistanceFieldCache* cache) {
  source_ = source;
  cache_ = cache;
  version_ = 0;
  prefix_.reset();
  adopted_ = false;
  exhausted_ = false;
  replay_pos_ = 0;
  replay_radius_ = 0.0;
  logical_settled_ = 0;
  replayed_ = 0;
  record_ = false;
  record_truncated_ = false;
  rec_v_.clear();
  rec_d_.clear();

  if (cache_ != nullptr) {
    record_ = true;
    prefix_ = cache_->Acquire(source, &version_);
    if (prefix_ != nullptr && prefix_->source == source) {
      adopted_ = true;
      live_ = false;  // GoLive() positions the real expansion if needed
      return;
    }
    prefix_.reset();
  }
  live_ = true;
  ex_.Reset(source);
}

bool ExpansionCursor::Step(VertexId* v, double* dist) {
  if (exhausted_) return false;
  if (!live_) {
    if (replay_pos_ < prefix_->size()) {
      *v = prefix_->vertices[replay_pos_];
      *dist = prefix_->dists[replay_pos_];
      ++replay_pos_;
      ++logical_settled_;
      ++replayed_;
      replay_radius_ = *dist;
      return true;
    }
    if (prefix_->complete) {
      exhausted_ = true;
      return false;
    }
    GoLive();
  }
  if (!ex_.Step(v, dist)) {
    exhausted_ = true;
    return false;
  }
  ++logical_settled_;
  if (record_) {
    if (!record_truncated_ &&
        replay_pos_ + rec_v_.size() < cache_->max_events_per_source()) {
      rec_v_.push_back(*v);
      rec_d_.push_back(*dist);
    } else {
      record_truncated_ = true;
    }
  }
  return true;
}

void ExpansionCursor::GoLive() {
  // The search outran the (incomplete) prefix: re-run the real expansion
  // and discard exactly the events we replayed. Determinism of a fresh
  // expansion makes the discarded events identical to the replayed ones,
  // so the emitted stream is seamless.
  ex_.Reset(source_);
  for (size_t i = 0; i < replay_pos_; ++i) {
    VertexId fv = kInvalidVertex;
    double fd = 0.0;
    const bool ok = ex_.Step(&fv, &fd);
    (void)ok;
    assert(ok && "cached prefix longer than the component");
    assert(fv == prefix_->vertices[i] && fd == prefix_->dists[i] &&
           "cached prefix diverged from a fresh expansion");
  }
  live_ = true;
}

bool ExpansionCursor::Publish() {
  // rec_v_ non-empty implies we went live, which implies the whole adopted
  // prefix (if any) was consumed — so prefix + recording is contiguous.
  if (cache_ == nullptr || rec_v_.empty()) return false;
  auto out = std::make_shared<ExpansionPrefix>();
  out->source = source_;
  const size_t head = prefix_ != nullptr ? prefix_->size() : 0;
  out->vertices.reserve(head + rec_v_.size());
  out->dists.reserve(head + rec_d_.size());
  if (prefix_ != nullptr) {
    out->vertices.assign(prefix_->vertices.begin(), prefix_->vertices.end());
    out->dists.assign(prefix_->dists.begin(), prefix_->dists.end());
  }
  out->vertices.insert(out->vertices.end(), rec_v_.begin(), rec_v_.end());
  out->dists.insert(out->dists.end(), rec_d_.begin(), rec_d_.end());
  out->complete = exhausted_ && !record_truncated_;
  return cache_->Publish(std::move(out), version_);
}

}  // namespace uots

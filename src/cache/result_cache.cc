#include "cache/result_cache.h"

#include <algorithm>
#include <chrono>

#include "cache/query_key.h"

namespace uots {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ResultCache::ResultCache(const Options& opts) {
  const size_t nshards =
      RoundUpPow2(std::clamp<size_t>(opts.shards, 1, 256));
  per_shard_capacity_ = std::max<size_t>(1, opts.max_entries / nshards);
  ttl_ns_ = opts.ttl_ms > 0.0
                ? static_cast<int64_t>(opts.ttl_ms * 1e6)
                : 0;
  shards_.reserve(nshards);
  for (size_t i = 0; i < nshards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[HashCacheKey(key) & (shards_.size() - 1)];
}

int64_t ResultCache::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ResultCache::ApproxBytes(const CachedResult& value) {
  int64_t bytes = static_cast<int64_t>(
      sizeof(CachedResult) + value.items.size() * sizeof(ScoredTrajectory));
  for (const AssembledTrip& trip : value.trips) {
    bytes += static_cast<int64_t>(sizeof(AssembledTrip) +
                                  trip.segments.size() * sizeof(TripSegment));
  }
  return bytes;
}

std::shared_ptr<const CachedResult> ResultCache::Lookup(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second->expires_ns != 0 && NowNs() >= it->second->expires_ns) {
    bytes_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    expired_.fetch_add(1, std::memory_order_relaxed);
    shard.lru.erase(it->second);
    shard.index.erase(it);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void ResultCache::Insert(const std::string& key,
                         std::shared_ptr<const CachedResult> value) {
  if (value == nullptr) return;
  Entry entry;
  entry.key = key;
  entry.bytes = ApproxBytes(*value);
  entry.expires_ns = ttl_ns_ > 0 ? NowNs() + ttl_ns_ : 0;
  entry.value = std::move(value);

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    bytes_.fetch_add(entry.bytes - it->second->bytes,
                     std::memory_order_relaxed);
    *it->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  entries_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(shard.lru.front().bytes, std::memory_order_relaxed);
  while (shard.lru.size() > per_shard_capacity_) {
    const Entry& victim = shard.lru.back();
    bytes_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
  }
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& e : shard->lru) {
      bytes_.fetch_sub(e.bytes, std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard->index.clear();
    shard->lru.clear();
  }
}

void ResultCache::InvalidateGeneration() {
  int64_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& e : shard->lru) {
      bytes_.fetch_sub(e.bytes, std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      ++dropped;
    }
    shard->index.clear();
    shard->lru.clear();
  }
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  invalidated_entries_.fetch_add(dropped, std::memory_order_relaxed);
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.invalidated_entries =
      invalidated_entries_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace uots

// ExpansionCursor — a NetworkExpansion front-end that replays cached
// settle-sequence prefixes and records fresh ones (tier-2 caching).
//
// Drop-in for the searcher's direct NetworkExpansion use: Begin() instead
// of Reset(), then the same Step()/radius()/exhausted()/settled_count()
// surface. With no cache attached the cursor is a thin pass-through.
//
// With a cache: Begin() tries to adopt a stored prefix for the source. While
// one is adopted, Step() emits the recorded events verbatim — no heap work.
// If the search outruns the prefix (and the prefix is not complete), the
// cursor *fast-forwards*: it resets the real expansion and discards exactly
// as many live Step() events as were replayed. Because a fresh expansion's
// settle sequence is deterministic, the discarded events are identical to
// the replayed ones (debug builds assert this), so the overall event stream
// — and therefore every downstream score bit — matches a cache-off run.
// Fast-forward re-pays the heap cost of the prefix; the win is that most
// searches terminate inside the prefix and never go live at all.
//
// Step() events are recorded up to the cache's per-source cap; Publish()
// (call after the search settles its last event) offers prefix + recording
// back to the cache so later queries benefit from the deepest run so far.

#ifndef UOTS_CACHE_EXPANSION_CURSOR_H_
#define UOTS_CACHE_EXPANSION_CURSOR_H_

#include <memory>
#include <vector>

#include "cache/distance_field_cache.h"
#include "net/expansion.h"
#include "net/graph.h"

namespace uots {

/// \brief Replaying/recording cursor over one expansion source.
class ExpansionCursor {
 public:
  explicit ExpansionCursor(const RoadNetwork& g) : ex_(g) {}

  /// (Re)starts from `source`. `cache` may be null (pass-through mode).
  void Begin(VertexId source, DistanceFieldCache* cache);

  /// Same contract as NetworkExpansion::Step — settles (or replays) the
  /// next-nearest vertex; false once the component is exhausted.
  bool Step(VertexId* v, double* dist);

  /// Exact distance of the last emitted event (replayed or live); lower
  /// bound for everything not yet emitted. 0 before the first Step().
  double radius() const { return live_ ? ex_.radius() : replay_radius_; }

  bool exhausted() const { return exhausted_; }
  VertexId source() const { return source_; }

  /// Logical events emitted (replayed + live) — what scheduling heuristics
  /// must see so cache-on decisions match cache-off ones.
  int64_t settled_count() const { return logical_settled_; }

  /// Heap work actually performed this run (0 while replaying). During
  /// fast-forward the discarded events' heap work IS counted — it really
  /// happened.
  int64_t heap_pops() const { return live_ ? ex_.heap_pops() : 0; }
  int64_t heap_pushes() const { return live_ ? ex_.heap_pushes() : 0; }
  int64_t heap_decreases() const { return live_ ? ex_.heap_decreases() : 0; }
  /// Live settles (= heap_pops() here; the expansion has no stale pops).
  int64_t live_settled_count() const { return live_ ? ex_.settled_count() : 0; }

  bool from_cache() const { return adopted_; }
  int64_t replayed_count() const { return replayed_; }

  /// Offers this run's events to the cache (adopted prefix + anything
  /// recorded past it). Returns true if the cache accepted — i.e. this run
  /// deepened (or completed) the stored prefix.
  bool Publish();

 private:
  void GoLive();

  NetworkExpansion ex_;
  DistanceFieldCache* cache_ = nullptr;
  uint64_t version_ = 0;
  std::shared_ptr<const ExpansionPrefix> prefix_;

  VertexId source_ = kInvalidVertex;
  bool adopted_ = false;    ///< a prefix was adopted at Begin()
  bool live_ = true;        ///< real expansion is positioned past replay
  bool exhausted_ = false;
  size_t replay_pos_ = 0;   ///< next prefix event to emit
  double replay_radius_ = 0.0;
  int64_t logical_settled_ = 0;
  int64_t replayed_ = 0;

  bool record_ = false;
  bool record_truncated_ = false;
  std::vector<VertexId> rec_v_;
  std::vector<double> rec_d_;
};

}  // namespace uots

#endif  // UOTS_CACHE_EXPANSION_CURSOR_H_

// Sharded, capacity-bounded LRU cache of finished query answers.
//
// The serving tier in front of the search engines: a hit returns the full
// scored top-k plus the QueryStats of the run that produced it, without
// touching the thread pool. Keys come from EncodeResultCacheKey (which
// already folds in the dataset fingerprint), values are immutable and
// shared, so a hit costs one shard mutex plus a shared_ptr copy and the
// entry can be evicted while readers still hold it.

#ifndef UOTS_CACHE_RESULT_CACHE_H_
#define UOTS_CACHE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "trip/trip_query.h"

namespace uots {

/// \brief A cached answer: what a fresh run would return, bit for bit,
/// plus the stats of the run that computed them. Retrieval answers fill
/// `items`; trip answers fill `trips` (the key schema byte keeps the two
/// families disjoint, so an entry never mixes both).
struct CachedResult {
  std::vector<ScoredTrajectory> items;
  std::vector<AssembledTrip> trips;
  QueryStats stats;
};

/// \brief Thread-safe sharded LRU with optional TTL.
class ResultCache {
 public:
  struct Options {
    /// Total entry budget across all shards (each shard gets an equal cut,
    /// at least 1). 0 entries would make every Insert a no-op; callers
    /// disable caching by not constructing a cache instead.
    size_t max_entries = 4096;
    /// Entry lifetime; 0 = never expires.
    double ttl_ms = 0.0;
    /// Rounded up to a power of two, clamped to [1, 256].
    size_t shards = 8;
  };

  /// Monotonic totals since construction (Clear() resets entries/bytes
  /// but not the event counters).
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;  ///< capacity evictions only
    int64_t expired = 0;    ///< TTL drops (counted in misses too)
    int64_t invalidations = 0;      ///< InvalidateGeneration calls
    int64_t invalidated_entries = 0;  ///< entries dropped by those calls
    int64_t entries = 0;
    int64_t bytes = 0;  ///< approximate payload bytes of live entries
  };

  ResultCache() : ResultCache(Options{}) {}
  explicit ResultCache(const Options& opts);

  /// Returns the cached value or null; a TTL-expired entry is erased and
  /// counted as a miss.
  std::shared_ptr<const CachedResult> Lookup(const std::string& key);

  /// Inserts (or replaces) `value` under `key` and evicts LRU entries past
  /// the shard capacity.
  void Insert(const std::string& key, std::shared_ptr<const CachedResult> value);

  /// Drops every entry (event counters keep their totals).
  void Clear();

  /// \brief All-or-nothing invalidation on a dataset-generation change.
  ///
  /// Live ingest salts every key with the dataset's live fingerprint, so
  /// entries minted under an older generation are already unreachable —
  /// but unreachable is not gone: dead keys would squat in the LRU until
  /// capacity churn evicted them. This drops every entry at once and
  /// tallies the event, so "a stale-generation hit can never be served"
  /// is enforced twice (unreachable keys AND an empty cache) and is
  /// observable in stats().invalidations.
  void InvalidateGeneration();

  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedResult> value;
    int64_t expires_ns = 0;  ///< 0 = never
    int64_t bytes = 0;
  };
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(const std::string& key);
  static int64_t NowNs();
  static int64_t ApproxBytes(const CachedResult& value);

  size_t per_shard_capacity_;
  int64_t ttl_ns_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> invalidated_entries_{0};
  std::atomic<int64_t> entries_{0};
  std::atomic<int64_t> bytes_{0};
};

}  // namespace uots

#endif  // UOTS_CACHE_RESULT_CACHE_H_

// Cross-query cache of network-expansion prefixes (tier 2).
//
// A UOTS search runs one resumable Dijkstra per query location. Distinct
// queries frequently share locations (popular POIs), and a fresh expansion
// from the same source settles exactly the same vertex/distance sequence
// every time — so the settle-sequence prefix one query produced can be
// *replayed* by the next query from that source instead of re-running the
// heap. This store holds those prefixes, bounded by bytes with LRU
// eviction, and versioned so Invalidate() atomically orphans every
// outstanding prefix (publishers carry the version they acquired under).
//
// Correctness rests on determinism: a prefix is a verbatim recording of the
// first N Step() events of a real run, and replaying it then fast-forwarding
// a live expansion past N events reproduces the identical event stream (see
// cache/expansion_cursor.h). The cache itself never inspects the graph.

#ifndef UOTS_CACHE_DISTANCE_FIELD_CACHE_H_
#define UOTS_CACHE_DISTANCE_FIELD_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/graph.h"

namespace uots {

/// \brief A recorded settle-sequence prefix of one expansion source.
///
/// `vertices[i]` was the i-th vertex settled at distance `dists[i]`
/// (nondecreasing). `complete` means the expansion exhausted the component,
/// so a replayer never needs to go live.
struct ExpansionPrefix {
  VertexId source = 0;
  std::vector<VertexId> vertices;
  std::vector<double> dists;
  bool complete = false;

  size_t size() const { return vertices.size(); }
};

/// \brief Bounded, versioned, thread-safe store of expansion prefixes.
class DistanceFieldCache {
 public:
  struct Options {
    /// Approximate payload budget; LRU-evicted past this.
    size_t max_bytes = 64 << 20;
    /// Per-source recording cap, in settle events. Prefixes are truncated
    /// here (and marked incomplete) so one huge expansion cannot own the
    /// whole budget.
    size_t max_events_per_source = 1 << 20;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t publishes = 0;  ///< accepted publications
    int64_t rejected = 0;   ///< stale-version or not-an-improvement
    int64_t evictions = 0;
    int64_t invalidations = 0;
    int64_t entries = 0;
    int64_t bytes = 0;
  };

  DistanceFieldCache() : DistanceFieldCache(Options{}) {}
  explicit DistanceFieldCache(const Options& opts);

  /// Returns the best known prefix for `source` (null on miss) and the
  /// current cache version, which must accompany any later Publish derived
  /// from this acquisition.
  std::shared_ptr<const ExpansionPrefix> Acquire(VertexId source,
                                                 uint64_t* version_out);

  /// Offers a prefix recorded under `version`. Rejected (returns false) if
  /// the cache was invalidated since, if an equal-or-longer prefix is
  /// already stored (unless this one is newly complete), or if the prefix
  /// alone exceeds the byte budget.
  bool Publish(std::shared_ptr<const ExpansionPrefix> prefix,
               uint64_t version);

  /// Drops everything and bumps the version; outstanding publishes under
  /// older versions will be rejected. Call whenever the dataset changes.
  void Invalidate();

  /// Generation-change entry point, named to match ResultCache: a
  /// compaction swap retires the base this cache's prefixes were recorded
  /// against. (Plain ingest never calls this — the network is untouched,
  /// so settle sequences stay exact.) Observable in stats().invalidations.
  void InvalidateGeneration() { Invalidate(); }

  uint64_t version() const;
  size_t max_events_per_source() const { return max_events_per_source_; }
  Stats stats() const;

 private:
  struct Entry {
    VertexId source;
    std::shared_ptr<const ExpansionPrefix> prefix;
    int64_t bytes;
  };

  static int64_t ApproxBytes(const ExpansionPrefix& prefix);
  void EvictLocked();

  const size_t max_bytes_;
  const size_t max_events_per_source_;

  mutable std::mutex mu_;
  uint64_t version_ = 1;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<VertexId, std::list<Entry>::iterator> index_;
  int64_t bytes_ = 0;
  Stats stats_;
};

}  // namespace uots

#endif  // UOTS_CACHE_DISTANCE_FIELD_CACHE_H_

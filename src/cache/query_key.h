// Canonical result-cache keys for UOTS queries.
//
// Two requests that must produce bit-identical answers must map to the same
// key; two requests that may differ in any output bit must not. The key is
// therefore the full canonicalized query *value*, binary-encoded — not a
// hash — so equal keys imply equal queries with no collision risk; hashing
// happens only for shard selection. Canonicalization sorts the query
// locations (the UOTS score is permutation-invariant in them) and relies on
// KeywordSet already being sorted + deduplicated. The dataset fingerprint
// salts every key so a cache can never serve answers computed against a
// different dataset build (see TrajectoryDatabase::fingerprint()).

#ifndef UOTS_CACHE_QUERY_KEY_H_
#define UOTS_CACHE_QUERY_KEY_H_

#include <cstdint>
#include <string>

#include "core/algorithm.h"
#include "core/query.h"
#include "trip/trip_query.h"

namespace uots {

/// Binary key: schema version, fingerprint, algorithm kind, the
/// UotsSearchOptions knobs that steer the search (scheduling, batch size),
/// lambda bits, k, sorted locations, sorted keyword terms.
std::string EncodeResultCacheKey(const UotsQuery& query, AlgorithmKind kind,
                                 const UotsSearchOptions& opts,
                                 uint64_t fingerprint);

/// \brief Canonical key for a trip-assembly query (schema '\x02', disjoint
/// from retrieval keys by construction).
///
/// Every answer-steering field participates: the constraint flags
/// (ordered, categories), gap budget bits, harvest shape (segments per
/// location, window), lambda bits, k, locations, keyword terms. Trip
/// locations are encoded IN QUERY ORDER even for unordered queries — the
/// nearest-neighbor tour starts at the first location and breaks ties by
/// index, so the answer is not permutation-invariant the way retrieval
/// scores are.
std::string EncodeTripCacheKey(const TripQuery& query, uint64_t fingerprint);

/// 64-bit FNV-1a over the key bytes (shard selection, not identity).
uint64_t HashCacheKey(const std::string& key);

}  // namespace uots

#endif  // UOTS_CACHE_QUERY_KEY_H_

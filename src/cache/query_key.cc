#include "cache/query_key.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace uots {

namespace {

void PutU32(uint32_t v, std::string* out) {
  char b[4];
  std::memcpy(b, &v, sizeof(b));
  out->append(b, sizeof(b));
}

void PutU64(uint64_t v, std::string* out) {
  char b[8];
  std::memcpy(b, &v, sizeof(b));
  out->append(b, sizeof(b));
}

}  // namespace

std::string EncodeResultCacheKey(const UotsQuery& query, AlgorithmKind kind,
                                 const UotsSearchOptions& opts,
                                 uint64_t fingerprint) {
  std::string out;
  out.reserve(32 + 4 * query.locations.size() +
              4 * query.keywords.terms().size());
  out.push_back('\x01');  // key schema version
  PutU64(fingerprint, &out);
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(opts.scheduling));
  PutU32(static_cast<uint32_t>(opts.batch_size), &out);
  uint64_t lambda_bits;
  static_assert(sizeof(lambda_bits) == sizeof(query.lambda));
  std::memcpy(&lambda_bits, &query.lambda, sizeof(lambda_bits));
  PutU64(lambda_bits, &out);
  PutU32(static_cast<uint32_t>(query.k), &out);

  // The score is permutation-invariant in the query locations, so sort
  // them; duplicates are kept (m and the per-source decay sum both see
  // them). Keywords are canonical already (KeywordSet sorts + dedups).
  std::vector<VertexId> locations = query.locations;
  std::sort(locations.begin(), locations.end());
  PutU32(static_cast<uint32_t>(locations.size()), &out);
  for (VertexId v : locations) PutU32(static_cast<uint32_t>(v), &out);
  const auto terms = query.keywords.terms();
  PutU32(static_cast<uint32_t>(terms.size()), &out);
  for (TermId t : terms) PutU32(static_cast<uint32_t>(t), &out);
  return out;
}

std::string EncodeTripCacheKey(const TripQuery& query, uint64_t fingerprint) {
  std::string out;
  out.reserve(48 + 4 * query.locations.size() +
              4 * query.keywords.terms().size());
  out.push_back('\x02');  // trip key schema (disjoint from retrieval '\x01')
  PutU64(fingerprint, &out);
  out.push_back(query.ordered ? '\x01' : '\x00');
  out.push_back(query.use_categories ? '\x01' : '\x00');
  uint64_t gap_bits;
  static_assert(sizeof(gap_bits) == sizeof(query.gap_budget_m));
  std::memcpy(&gap_bits, &query.gap_budget_m, sizeof(gap_bits));
  PutU64(gap_bits, &out);
  PutU32(static_cast<uint32_t>(query.segments_per_location), &out);
  PutU32(static_cast<uint32_t>(query.window), &out);
  uint64_t lambda_bits;
  static_assert(sizeof(lambda_bits) == sizeof(query.lambda));
  std::memcpy(&lambda_bits, &query.lambda, sizeof(lambda_bits));
  PutU64(lambda_bits, &out);
  PutU32(static_cast<uint32_t>(query.k), &out);
  PutU32(static_cast<uint32_t>(query.locations.size()), &out);
  for (VertexId v : query.locations) PutU32(static_cast<uint32_t>(v), &out);
  const auto terms = query.keywords.terms();
  PutU32(static_cast<uint32_t>(terms.size()), &out);
  for (TermId t : terms) PutU32(static_cast<uint32_t>(t), &out);
  return out;
}

uint64_t HashCacheKey(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace uots

// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The checksum every snapshot section carries. CRC32C rather than CRC32
// because its error-detection properties are at least as good and it is the
// variant storage systems standardised on (iSCSI, ext4, RocksDB), so
// snapshots can be cross-checked with standard tooling. Software
// slicing-by-8 implementation (~GB/s) — fast enough that verifying a whole
// snapshot is dwarfed by the page-in cost of reading it.

#ifndef UOTS_STORAGE_CRC32C_H_
#define UOTS_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace uots {
namespace storage {

/// CRC32C of `[data, data + n)`.
uint32_t Crc32c(const void* data, size_t n);

/// Incremental form: extends `crc` (result of a previous call, or 0 for an
/// empty prefix) with `n` more bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

}  // namespace storage
}  // namespace uots

#endif  // UOTS_STORAGE_CRC32C_H_

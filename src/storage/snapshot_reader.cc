#include "storage/snapshot_reader.h"

#include <cstdio>
#include <cstring>
#include <span>
#include <string>

#include "storage/crc32c.h"
#include "storage/mapped_file.h"
#include "traj/time_index.h"

namespace uots {
namespace storage {

namespace {

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("corrupt snapshot: " + what);
}

/// Expected element size per section. The meta record grew between format
/// versions, so its expected size depends on the file's version.
uint32_t ExpectedElemSize(SectionId id, uint32_t format_version) {
  switch (id) {
    case SectionId::kMeta:
      return format_version >= 2
                 ? static_cast<uint32_t>(sizeof(SnapshotMeta))
                 : static_cast<uint32_t>(kSnapshotMetaBytesV1);
    case SectionId::kNetPositions: return sizeof(Point);
    case SectionId::kNetAdjacency: return sizeof(AdjacencyEntry);
    case SectionId::kTrajSamples: return sizeof(Sample);
    case SectionId::kTrajKeywordTerms: return sizeof(TermId);
    case SectionId::kVocabBlob: return 1;
    case SectionId::kVertexIndexEntries: return sizeof(TrajId);
    case SectionId::kKeywordIndexPostings: return sizeof(DocId);
    case SectionId::kKeywordIndexDocSizes: return sizeof(uint32_t);
    case SectionId::kTimeIndexEntries: return sizeof(TimeIndex::Entry);
    case SectionId::kOracleRanks: return sizeof(uint32_t);
    case SectionId::kOracleUpEdges: return sizeof(OracleEdge);
    case SectionId::kNetOffsets:
    case SectionId::kTrajOffsets:
    case SectionId::kTrajKeywordOffsets:
    case SectionId::kVocabOffsets:
    case SectionId::kVertexIndexOffsets:
    case SectionId::kKeywordIndexOffsets:
    case SectionId::kOracleUpOffsets: return sizeof(uint64_t);
  }
  return 0;
}

/// Typed view of a validated section payload.
template <typename T>
std::span<const T> SectionSpan(const MappedFile& f, const SectionEntry& e) {
  return {reinterpret_cast<const T*>(f.data() + e.offset),
          static_cast<size_t>(e.count)};
}

/// Decodes superblock + directory + meta and checks everything that does
/// not require touching payloads other than kMeta.
Status ValidateStructure(const MappedFile& f, SnapshotInfo* info) {
  if (f.size() < sizeof(Superblock)) {
    return Corrupt("file smaller than the superblock (" +
                   std::to_string(f.size()) + " bytes)");
  }
  Superblock sb;
  std::memcpy(&sb, f.data(), sizeof(sb));
  if (std::memcmp(sb.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic (not a uots snapshot)");
  }
  if (sb.endian_tag != kEndianTag) {
    return Corrupt("endianness mismatch (snapshot written on a " +
                   std::string(sb.endian_tag == 0x04030201u ? "big" : "unknown") +
                   "-endian machine)");
  }
  if (sb.format_version < kMinSupportedFormatVersion ||
      sb.format_version > kFormatVersion) {
    return Corrupt("unsupported format version " +
                   std::to_string(sb.format_version) + " (reader supports " +
                   std::to_string(kMinSupportedFormatVersion) + ".." +
                   std::to_string(kFormatVersion) + ")");
  }
  Superblock crc_copy = sb;
  crc_copy.superblock_crc = 0;
  if (Crc32c(&crc_copy, sizeof(crc_copy)) != sb.superblock_crc) {
    return Corrupt("superblock checksum mismatch");
  }
  const uint32_t want_sections = SectionCountForVersion(sb.format_version);
  if (sb.section_count != want_sections) {
    return Corrupt("section count " + std::to_string(sb.section_count) +
                   " != " + std::to_string(want_sections) + " (version " +
                   std::to_string(sb.format_version) + ")");
  }
  if (sb.file_size != f.size()) {
    return Corrupt("file size mismatch: superblock says " +
                   std::to_string(sb.file_size) + ", file has " +
                   std::to_string(f.size()) + " (truncated?)");
  }
  const uint64_t table_bytes = sb.section_count * sizeof(SectionEntry);
  if (sizeof(Superblock) + table_bytes > f.size()) {
    return Corrupt("section table extends past end of file");
  }
  const uint8_t* table_raw = f.data() + sizeof(Superblock);
  if (Crc32c(table_raw, table_bytes) != sb.section_table_crc) {
    return Corrupt("section table checksum mismatch");
  }

  std::vector<SectionEntry> sections(sb.section_count);
  std::memcpy(sections.data(), table_raw, table_bytes);
  for (uint32_t i = 0; i < sb.section_count; ++i) {
    const SectionEntry& e = sections[i];
    const std::string name = SectionName(static_cast<SectionId>(i));
    if (e.id != i) {
      return Corrupt("section " + std::to_string(i) + " has id " +
                     std::to_string(e.id));
    }
    if (e.offset % kSectionAlignment != 0) {
      return Corrupt("section " + name + " is misaligned");
    }
    if (e.offset > f.size() || e.size_bytes > f.size() - e.offset) {
      return Corrupt("section " + name + " extends past end of file");
    }
    const uint32_t want =
        ExpectedElemSize(static_cast<SectionId>(i), sb.format_version);
    if (e.elem_size != want) {
      return Corrupt("section " + name + " element size " +
                     std::to_string(e.elem_size) + " != " +
                     std::to_string(want));
    }
    // Divide rather than multiply: `count * elem_size` wraps mod 2^64, so a
    // crafted count of ~2^61 with elem_size 8 would otherwise pass and make
    // SectionSpan hand out views far past the mapping. elem_size is nonzero
    // here (the ExpectedElemSize check above rejected 0).
    if (e.size_bytes % e.elem_size != 0 ||
        e.count != e.size_bytes / e.elem_size) {
      return Corrupt("section " + name + " count/size disagree");
    }
  }

  const SectionEntry& meta_entry = sections[0];
  if (meta_entry.count != 1) {
    return Corrupt("meta section must hold exactly one record");
  }
  // Version 1 wrote the 80-byte meta record (no oracle counts); the
  // in-memory struct's tail stays zero, meaning "no oracle".
  SnapshotMeta meta = {};
  std::memcpy(&meta, f.data() + meta_entry.offset,
              static_cast<size_t>(meta_entry.size_bytes));

  // Cross-check every section's count against the meta record.
  const struct {
    SectionId id;
    uint64_t want;
  } counts[] = {
      {SectionId::kNetPositions, meta.num_vertices},
      {SectionId::kNetOffsets, meta.num_vertices + 1},
      {SectionId::kNetAdjacency, meta.num_directed_edges},
      {SectionId::kTrajOffsets, meta.num_trajectories + 1},
      {SectionId::kTrajSamples, meta.num_samples},
      {SectionId::kTrajKeywordOffsets, meta.num_trajectories + 1},
      {SectionId::kTrajKeywordTerms, meta.num_keyword_terms},
      {SectionId::kVocabOffsets, meta.num_vocab_terms + 1},
      {SectionId::kVertexIndexOffsets, meta.num_vertices + 1},
      {SectionId::kVertexIndexEntries, meta.num_vertex_postings},
      {SectionId::kKeywordIndexOffsets, meta.num_index_terms + 1},
      {SectionId::kKeywordIndexPostings, meta.num_index_postings},
      {SectionId::kKeywordIndexDocSizes, meta.num_trajectories},
      {SectionId::kTimeIndexEntries, meta.num_time_entries},
  };
  for (const auto& c : counts) {
    const SectionEntry& e = sections[static_cast<uint32_t>(c.id)];
    if (e.count != c.want) {
      return Corrupt(std::string("section ") + SectionName(c.id) +
                     " count " + std::to_string(e.count) +
                     " contradicts meta (" + std::to_string(c.want) + ")");
    }
  }
  if (sb.format_version >= 2) {
    // The oracle is either absent (all three sections empty) or covers the
    // whole network; a partial oracle is never valid.
    if (meta.num_oracle_vertices != 0 &&
        meta.num_oracle_vertices != meta.num_vertices) {
      return Corrupt("oracle vertex count contradicts the network");
    }
    if (meta.num_oracle_vertices == 0 && meta.num_oracle_edges != 0) {
      return Corrupt("oracle edges present without oracle vertices");
    }
    const struct {
      SectionId id;
      uint64_t want;
    } oracle_counts[] = {
        {SectionId::kOracleRanks, meta.num_oracle_vertices},
        {SectionId::kOracleUpOffsets,
         meta.num_oracle_vertices != 0 ? meta.num_oracle_vertices + 1 : 0},
        {SectionId::kOracleUpEdges, meta.num_oracle_edges},
    };
    for (const auto& c : oracle_counts) {
      const SectionEntry& e = sections[static_cast<uint32_t>(c.id)];
      if (e.count != c.want) {
        return Corrupt(std::string("section ") + SectionName(c.id) +
                       " count " + std::to_string(e.count) +
                       " contradicts meta (" + std::to_string(c.want) + ")");
      }
    }
  }

  info->superblock = sb;
  info->sections = std::move(sections);
  info->meta = meta;
  info->file_size = f.size();
  return Status::OK();
}

Status VerifyPayloadChecksums(const MappedFile& f, const SnapshotInfo& info) {
  for (const SectionEntry& e : info.sections) {
    if (Crc32c(f.data() + e.offset, static_cast<size_t>(e.size_bytes)) !=
        e.crc32c) {
      return Corrupt(std::string("section ") +
                     SectionName(static_cast<SectionId>(e.id)) +
                     " checksum mismatch (bit rot or tampering)");
    }
  }
  return Status::OK();
}

/// A CSR offsets array must start at 0, end at the entry count of the
/// array it indexes, and never decrease — otherwise container accessors
/// would read out of bounds regardless of what the checksums say.
Status CheckOffsets(const char* name, std::span<const uint64_t> offsets,
                    uint64_t total) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != total) {
    return Corrupt(std::string(name) + " offsets do not span their payload");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Corrupt(std::string(name) + " offsets decrease at index " +
                     std::to_string(i));
    }
  }
  return Status::OK();
}

/// Per-slice order check for CSR payloads whose query-time consumers
/// assume sorted + deduplicated data: KeywordSet::View's merge
/// intersection, VertexTrajectoryIndex::TrajectoriesAt, and the inverted
/// index's posting merges all binary-search or two-pointer over these
/// slices, so an out-of-order snapshot would return silently wrong results
/// rather than crash. Call only with offsets that already passed
/// CheckOffsets (indexing into `values` is then in bounds by construction).
template <typename T>
Status CheckAscendingSlices(const char* name,
                            std::span<const uint64_t> offsets,
                            std::span<const T> values) {
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    for (uint64_t i = offsets[s] + 1; i < offsets[s + 1]; ++i) {
      if (values[i] <= values[i - 1]) {
        return Corrupt(std::string(name) + " slice " + std::to_string(s) +
                       " is not strictly ascending");
      }
    }
  }
  return Status::OK();
}

/// Every stored id must stay below its domain size; one linear pass per
/// id-bearing section keeps even checksum-rewritten files memory-safe.
/// The same pass enforces the sort orders the query path depends on.
Status ValidateRanges(const MappedFile& f, const SnapshotInfo& info) {
  const SnapshotMeta& m = info.meta;
  const auto& sec = info.sections;
  const auto entry = [&](SectionId id) -> const SectionEntry& {
    return sec[static_cast<uint32_t>(id)];
  };

  UOTS_RETURN_NOT_OK(CheckOffsets(
      "network", SectionSpan<uint64_t>(f, entry(SectionId::kNetOffsets)),
      m.num_directed_edges));
  UOTS_RETURN_NOT_OK(CheckOffsets(
      "trajectory", SectionSpan<uint64_t>(f, entry(SectionId::kTrajOffsets)),
      m.num_samples));
  UOTS_RETURN_NOT_OK(CheckOffsets(
      "keyword",
      SectionSpan<uint64_t>(f, entry(SectionId::kTrajKeywordOffsets)),
      m.num_keyword_terms));
  UOTS_RETURN_NOT_OK(CheckOffsets(
      "vocabulary", SectionSpan<uint64_t>(f, entry(SectionId::kVocabOffsets)),
      entry(SectionId::kVocabBlob).count));
  UOTS_RETURN_NOT_OK(CheckOffsets(
      "vertex-index",
      SectionSpan<uint64_t>(f, entry(SectionId::kVertexIndexOffsets)),
      m.num_vertex_postings));
  UOTS_RETURN_NOT_OK(CheckOffsets(
      "keyword-index",
      SectionSpan<uint64_t>(f, entry(SectionId::kKeywordIndexOffsets)),
      m.num_index_postings));

  for (const AdjacencyEntry& a :
       SectionSpan<AdjacencyEntry>(f, entry(SectionId::kNetAdjacency))) {
    if (a.to >= m.num_vertices) {
      return Corrupt("adjacency entry points at nonexistent vertex");
    }
  }
  for (const Sample& s :
       SectionSpan<Sample>(f, entry(SectionId::kTrajSamples))) {
    if (s.vertex >= m.num_vertices) {
      return Corrupt("sample references nonexistent vertex");
    }
  }
  for (const TermId t :
       SectionSpan<TermId>(f, entry(SectionId::kTrajKeywordTerms))) {
    if (t >= m.num_vocab_terms) {
      return Corrupt("trajectory keyword references nonexistent vocab term");
    }
  }
  for (const TrajId t :
       SectionSpan<TrajId>(f, entry(SectionId::kVertexIndexEntries))) {
    if (t >= m.num_trajectories) {
      return Corrupt("vertex-index posting references nonexistent trajectory");
    }
  }
  for (const DocId d :
       SectionSpan<DocId>(f, entry(SectionId::kKeywordIndexPostings))) {
    if (d >= m.num_trajectories) {
      return Corrupt("keyword-index posting references nonexistent document");
    }
  }

  // Order invariants. Trajectory keyword slices and both index posting
  // arrays must be strictly ascending within each slice; the timeline must
  // be sorted by (time_s, traj) for LowerBound's binary search (equal
  // entries are legal: one trajectory can revisit a timestamp).
  UOTS_RETURN_NOT_OK(CheckAscendingSlices(
      "trajectory keyword",
      SectionSpan<uint64_t>(f, entry(SectionId::kTrajKeywordOffsets)),
      SectionSpan<TermId>(f, entry(SectionId::kTrajKeywordTerms))));
  UOTS_RETURN_NOT_OK(CheckAscendingSlices(
      "vertex-index",
      SectionSpan<uint64_t>(f, entry(SectionId::kVertexIndexOffsets)),
      SectionSpan<TrajId>(f, entry(SectionId::kVertexIndexEntries))));
  UOTS_RETURN_NOT_OK(CheckAscendingSlices(
      "keyword-index",
      SectionSpan<uint64_t>(f, entry(SectionId::kKeywordIndexOffsets)),
      SectionSpan<DocId>(f, entry(SectionId::kKeywordIndexPostings))));

  const auto timeline =
      SectionSpan<TimeIndex::Entry>(f, entry(SectionId::kTimeIndexEntries));
  for (size_t i = 0; i < timeline.size(); ++i) {
    if (timeline[i].traj >= m.num_trajectories) {
      return Corrupt("time-index entry references nonexistent trajectory");
    }
    if (i > 0 && (timeline[i].time_s < timeline[i - 1].time_s ||
                  (timeline[i].time_s == timeline[i - 1].time_s &&
                   timeline[i].traj < timeline[i - 1].traj))) {
      return Corrupt("time-index entries are not sorted by (time, traj)");
    }
  }

  // Oracle sections (version 2, when present): reuse the oracle's own
  // structural validation over zero-copy views — rank permutation, offset
  // span, strictly-upward in-range arcs with positive finite weights, and
  // per-vertex target order. Even a checksum-rewritten oracle can then
  // never send the query kernel out of bounds or into an infinite loop.
  if (info.sections.size() > static_cast<uint32_t>(SectionId::kOracleUpEdges) &&
      m.num_oracle_vertices != 0) {
    DistanceOracle oracle = DistanceOracle::FromColumns(
        ColumnVec<uint32_t>::View(
            reinterpret_cast<const uint32_t*>(
                f.data() + entry(SectionId::kOracleRanks).offset),
            static_cast<size_t>(entry(SectionId::kOracleRanks).count)),
        ColumnVec<uint64_t>::View(
            reinterpret_cast<const uint64_t*>(
                f.data() + entry(SectionId::kOracleUpOffsets).offset),
            static_cast<size_t>(entry(SectionId::kOracleUpOffsets).count)),
        ColumnVec<OracleEdge>::View(
            reinterpret_cast<const OracleEdge*>(
                f.data() + entry(SectionId::kOracleUpEdges).offset),
            static_cast<size_t>(entry(SectionId::kOracleUpEdges).count)));
    const Status s = oracle.Validate();
    if (!s.ok()) return Corrupt("oracle sections: " + s.message());
  }
  return Status::OK();
}

template <typename T>
ColumnVec<T> ViewOf(const MappedFile& f, const SnapshotInfo& info,
                    SectionId id) {
  const SectionEntry& e = info.sections[static_cast<uint32_t>(id)];
  return ColumnVec<T>::View(reinterpret_cast<const T*>(f.data() + e.offset),
                            static_cast<size_t>(e.count));
}

}  // namespace

Result<SnapshotInfo> InspectSnapshot(const std::string& path) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  SnapshotInfo info;
  UOTS_RETURN_NOT_OK(ValidateStructure(**file, &info));
  return info;
}

Status VerifySnapshot(const std::string& path) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  SnapshotInfo info;
  UOTS_RETURN_NOT_OK(ValidateStructure(**file, &info));
  UOTS_RETURN_NOT_OK(VerifyPayloadChecksums(**file, info));
  return ValidateRanges(**file, info);
}

Result<std::unique_ptr<TrajectoryDatabase>> LoadSnapshot(
    const std::string& path, const LoadOptions& opts) {
  auto file_or = MappedFile::Open(path);
  if (!file_or.ok()) return file_or.status();
  std::shared_ptr<MappedFile> file = std::move(*file_or);

  SnapshotInfo info;
  UOTS_RETURN_NOT_OK(ValidateStructure(*file, &info));
  if (opts.verify_checksums) {
    UOTS_RETURN_NOT_OK(VerifyPayloadChecksums(*file, info));
  }
  UOTS_RETURN_NOT_OK(ValidateRanges(*file, info));

  // Vocabulary strings are the one owned piece; everything else is a view.
  auto vocab = Vocabulary::FromFlat(
      SectionSpan<uint64_t>(*file, info.sections[static_cast<uint32_t>(
                                       SectionId::kVocabOffsets)]),
      SectionSpan<char>(*file, info.sections[static_cast<uint32_t>(
                                   SectionId::kVocabBlob)]));
  if (!vocab.ok()) return vocab.status();

  TrajectoryDatabase::Parts parts{
      RoadNetwork::FromColumns(
          ViewOf<Point>(*file, info, SectionId::kNetPositions),
          ViewOf<uint64_t>(*file, info, SectionId::kNetOffsets),
          ViewOf<AdjacencyEntry>(*file, info, SectionId::kNetAdjacency)),
      TrajectoryStore::FromColumns(
          ViewOf<uint64_t>(*file, info, SectionId::kTrajOffsets),
          ViewOf<Sample>(*file, info, SectionId::kTrajSamples),
          ViewOf<uint64_t>(*file, info, SectionId::kTrajKeywordOffsets),
          ViewOf<TermId>(*file, info, SectionId::kTrajKeywordTerms)),
      std::move(*vocab),
      std::make_unique<VertexTrajectoryIndex>(
          VertexTrajectoryIndex::FromColumns(
              ViewOf<uint64_t>(*file, info, SectionId::kVertexIndexOffsets),
              ViewOf<TrajId>(*file, info, SectionId::kVertexIndexEntries))),
      std::make_unique<InvertedKeywordIndex>(InvertedKeywordIndex::FromColumns(
          ViewOf<uint64_t>(*file, info, SectionId::kKeywordIndexOffsets),
          ViewOf<DocId>(*file, info, SectionId::kKeywordIndexPostings),
          ViewOf<uint32_t>(*file, info, SectionId::kKeywordIndexDocSizes))),
      std::make_unique<TimeIndex>(TimeIndex::FromColumns(
          ViewOf<TimeIndex::Entry>(*file, info, SectionId::kTimeIndexEntries))),
      std::shared_ptr<const void>(file, file->data()),
      info.superblock.dataset_fingerprint};

  // Version-2 snapshots may bake in a distance oracle; assemble it from
  // the validated sections, zero-copy like everything else. The database's
  // `backing` already pins the mapping the views point into.
  if (info.sections.size() >
          static_cast<uint32_t>(SectionId::kOracleUpEdges) &&
      info.meta.num_oracle_vertices != 0) {
    parts.oracle = std::make_shared<DistanceOracle>(DistanceOracle::FromColumns(
        ViewOf<uint32_t>(*file, info, SectionId::kOracleRanks),
        ViewOf<uint64_t>(*file, info, SectionId::kOracleUpOffsets),
        ViewOf<OracleEdge>(*file, info, SectionId::kOracleUpEdges)));
  }

  return std::make_unique<TrajectoryDatabase>(std::move(parts),
                                              opts.similarity);
}

bool SniffSnapshotMagic(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char head[sizeof(kMagic)];
  const bool ok = std::fread(head, 1, sizeof(head), f) == sizeof(head) &&
                  std::memcmp(head, kMagic, sizeof(kMagic)) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace storage
}  // namespace uots

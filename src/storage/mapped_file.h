// Read-only mmap wrapper.
//
// A MappedFile owns one PROT_READ mapping of a whole file. Snapshot-backed
// databases hold it through a shared_ptr<const void> (TrajectoryDatabase::
// Parts::backing), so the mapping outlives every container view into it.

#ifndef UOTS_STORAGE_MAPPED_FILE_H_
#define UOTS_STORAGE_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace uots {
namespace storage {

/// \brief One read-only mapping of one file; unmapped on destruction.
class MappedFile {
 public:
  /// Maps `path` read-only. An empty file yields a valid object with
  /// data() == nullptr and size() == 0 (nothing to map).
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }

 private:
  MappedFile(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_;
  size_t size_;
};

}  // namespace storage
}  // namespace uots

#endif  // UOTS_STORAGE_MAPPED_FILE_H_

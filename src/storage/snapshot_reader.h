// Snapshot loading: validation, inspection, and zero-copy assembly.
//
// LoadSnapshot mmaps the file read-only, validates it (see below), and
// assembles a TrajectoryDatabase whose containers are views into the
// mapping — no per-record parsing, no index rebuilding; the mapping is
// pinned by the database for its lifetime. Cold-start cost is therefore
// page-in plus one pass to re-intern vocabulary strings (the only owned
// piece) plus the optional checksum sweep.
//
// Validation layers, all returning a precise Status (never UB on bad
// input): magic/version/endianness, superblock CRC, directory CRC and
// per-section bounds/alignment/element-size checks against the real file
// size (catches truncation before any payload read), meta cross-checks
// (every section's element count restated and compared), CSR offset-array
// monotonicity and id-range scans (so even a file with deliberately
// rewritten checksums cannot make a container index out of bounds), and —
// on by default — a CRC32C sweep of every payload (catches bit flips).

#ifndef UOTS_STORAGE_SNAPSHOT_READER_H_
#define UOTS_STORAGE_SNAPSHOT_READER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "storage/format.h"
#include "util/status.h"

namespace uots {
namespace storage {

/// \brief Decoded header of a structurally valid snapshot.
struct SnapshotInfo {
  Superblock superblock;
  std::vector<SectionEntry> sections;
  SnapshotMeta meta;
  uint64_t file_size = 0;
};

/// Decodes and structurally validates the snapshot at `path` (no payload
/// checksum sweep — use VerifySnapshot for that).
Result<SnapshotInfo> InspectSnapshot(const std::string& path);

/// Full integrity check: structural validation plus every payload CRC.
/// The error message names the first failing section.
Status VerifySnapshot(const std::string& path);

struct LoadOptions {
  SimilarityOptions similarity;
  /// Sweep every section's CRC32C before trusting the payloads. Costs one
  /// sequential read of the file; disable only for trusted local caches.
  bool verify_checksums = true;
};

/// Maps and assembles the snapshot at `path` into a ready database.
Result<std::unique_ptr<TrajectoryDatabase>> LoadSnapshot(
    const std::string& path, const LoadOptions& opts = {});

/// True if `path` starts with the snapshot magic (cheap 8-byte sniff; false
/// for unreadable or short files).
bool SniffSnapshotMagic(const std::string& path);

}  // namespace storage
}  // namespace uots

#endif  // UOTS_STORAGE_SNAPSHOT_READER_H_

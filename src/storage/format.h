// On-disk snapshot layout (format version 2; version-1 files still load).
//
// A snapshot is one file:
//
//   [Superblock : 128 bytes]
//   [SectionEntry x kSectionCount : 40 bytes each]
//   [zero padding to 64-byte boundary]
//   [section 0 payload] [pad] [section 1 payload] [pad] ...
//
// Every section payload starts on a 64-byte boundary (cache-line aligned,
// and far stricter than any element's alignof), is a raw little-endian
// array of trivially-copyable elements, and carries its own CRC32C. The
// loader therefore never parses records: after validation each section is
// either viewed in place from the mmap or (vocabulary strings only)
// re-interned in one pass.
//
// Integrity is layered: magic/version/endian-tag gate the decode at all,
// the superblock CRC covers the header fields, the table CRC covers the
// section directory, each section CRC covers its payload, and a dataset
// fingerprint (CRC over all (id, count, crc) triples) names the dataset so
// tools can tell two snapshots apart without hashing gigabytes twice.
// Bounds/alignment/monotonicity checks are separate from the CRCs so a
// truncated file fails fast with a precise error instead of a checksum
// mismatch after reading past EOF.

#ifndef UOTS_STORAGE_FORMAT_H_
#define UOTS_STORAGE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace uots {
namespace storage {

/// First 8 bytes of every snapshot (not NUL-terminated on disk).
inline constexpr char kMagic[8] = {'U', 'O', 'T', 'S', 'S', 'N', 'A', 'P'};

/// Version written by this build. Version 2 appended the three distance-
/// oracle sections (ids 16-18) and widened SnapshotMeta by two counts; a
/// version-2 file without an oracle simply carries them with count 0.
/// Readers accept [kMinSupportedFormatVersion, kFormatVersion] and reject
/// anything newer or older.
inline constexpr uint32_t kFormatVersion = 2;
/// Oldest version this reader still loads (version-1 files have 16
/// sections, an 80-byte meta record, and never an oracle).
inline constexpr uint32_t kMinSupportedFormatVersion = 1;

/// Written as the literal 0x01020304 on a little-endian machine; a reader
/// on the wrong endianness sees 0x04030201 and rejects the file instead of
/// silently byte-swapping garbage into indexes.
inline constexpr uint32_t kEndianTag = 0x01020304u;

/// Every section payload starts on this boundary.
inline constexpr uint64_t kSectionAlignment = 64;

/// Section identifiers. Sections appear in the file in exactly this order,
/// and entry[i].id must equal i — the directory doubles as a schema check.
enum class SectionId : uint32_t {
  kMeta = 0,                ///< one SnapshotMeta (cross-validation counts)
  kNetPositions = 1,        ///< Point per vertex
  kNetOffsets = 2,          ///< uint64_t, num_vertices + 1
  kNetAdjacency = 3,        ///< AdjacencyEntry (both directions per edge)
  kTrajOffsets = 4,         ///< uint64_t, num_trajectories + 1
  kTrajSamples = 5,         ///< Sample, all trajectories concatenated
  kTrajKeywordOffsets = 6,  ///< uint64_t, num_trajectories + 1
  kTrajKeywordTerms = 7,    ///< TermId, sorted slices per trajectory
  kVocabOffsets = 8,        ///< uint64_t, vocab size + 1, into kVocabBlob
  kVocabBlob = 9,           ///< char, all term strings concatenated
  kVertexIndexOffsets = 10,   ///< uint64_t, num_vertices + 1
  kVertexIndexEntries = 11,   ///< TrajId postings per vertex
  kKeywordIndexOffsets = 12,  ///< uint64_t, num_index_terms + 1
  kKeywordIndexPostings = 13, ///< DocId postings per term
  kKeywordIndexDocSizes = 14, ///< uint32_t, |keywords| per doc
  kTimeIndexEntries = 15,     ///< TimeIndex::Entry sorted by (time, traj)
  // --- format version 2 additions (distance oracle; may be empty) ---
  kOracleRanks = 16,          ///< uint32_t contraction rank per vertex
  kOracleUpOffsets = 17,      ///< uint64_t, num_oracle_vertices + 1
  kOracleUpEdges = 18,        ///< OracleEdge upward arcs (see oracle/)
};

inline constexpr uint32_t kSectionCountV1 = 16;
inline constexpr uint32_t kSectionCount = 19;

/// Directory size of a given format version.
inline constexpr uint32_t SectionCountForVersion(uint32_t version) {
  return version >= 2 ? kSectionCount : kSectionCountV1;
}

/// Human-readable section name ("unknown" for out-of-range ids).
const char* SectionName(SectionId id);

/// \brief Fixed 128-byte file header.
struct Superblock {
  char magic[8];            ///< kMagic
  uint32_t format_version;  ///< kFormatVersion
  uint32_t endian_tag;      ///< kEndianTag
  uint32_t section_count;   ///< SectionCountForVersion(format_version)
  uint32_t superblock_crc;  ///< CRC32C of this struct with this field = 0
  uint64_t file_size;       ///< total snapshot size in bytes
  int64_t created_unix_s;   ///< build wall-clock time
  uint32_t dataset_fingerprint;  ///< CRC32C over all (id, count, crc) triples
  uint32_t section_table_crc;    ///< CRC32C of the SectionEntry array
  char tool[28];            ///< NUL-padded builder name, e.g. "uots_snapshot"
  uint8_t reserved[52];     ///< zero; room for future fields without a bump
};
static_assert(sizeof(Superblock) == 128, "superblock layout drifted");
static_assert(std::is_trivially_copyable_v<Superblock>);

/// \brief One directory entry; the table follows the superblock directly.
struct SectionEntry {
  uint32_t id;         ///< SectionId, equals its index in the table
  uint32_t elem_size;  ///< sizeof one element (1 for the string blob)
  uint64_t offset;     ///< payload start, from file start; 64-byte aligned
  uint64_t size_bytes; ///< payload bytes; == count * elem_size
  uint64_t count;      ///< number of elements
  uint32_t crc32c;     ///< CRC32C of the payload bytes
  uint32_t reserved;   ///< zero
};
static_assert(sizeof(SectionEntry) == 40, "section entry layout drifted");
static_assert(std::is_trivially_copyable_v<SectionEntry>);

/// \brief Payload of SectionId::kMeta: element counts restated so the
/// loader can cross-check the directory against itself (a directory whose
/// CRCs validate but whose sections disagree about num_trajectories is
/// still rejected).
struct SnapshotMeta {
  uint64_t num_vertices;
  uint64_t num_directed_edges;  ///< adjacency entries (2x undirected edges)
  uint64_t num_trajectories;
  uint64_t num_samples;
  uint64_t num_keyword_terms;  ///< total terms across all trajectories
  uint64_t num_vocab_terms;
  uint64_t num_index_terms;     ///< distinct terms in the inverted index
  uint64_t num_index_postings;
  uint64_t num_vertex_postings;
  uint64_t num_time_entries;
  // --- format version 2 additions; zero-filled when reading version 1 ---
  uint64_t num_oracle_vertices;  ///< 0 = no oracle; else == num_vertices
  uint64_t num_oracle_edges;     ///< upward arcs (roads + shortcuts)
};
/// On-disk meta record size per version (version 1 predates the oracle
/// counts; the reader zero-fills the missing tail).
inline constexpr uint64_t kSnapshotMetaBytesV1 = 80;
static_assert(sizeof(SnapshotMeta) == 96, "meta layout drifted");
static_assert(std::is_trivially_copyable_v<SnapshotMeta>);

/// Rounds `n` up to the next multiple of kSectionAlignment.
inline constexpr uint64_t AlignUp(uint64_t n) {
  return (n + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

/// Byte offset where the first section payload begins. Depends on the
/// directory size, hence on the format version.
inline constexpr uint64_t HeaderBytes(uint32_t section_count = kSectionCount) {
  return AlignUp(sizeof(Superblock) + section_count * sizeof(SectionEntry));
}

}  // namespace storage
}  // namespace uots

#endif  // UOTS_STORAGE_FORMAT_H_

#include "storage/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace uots {
namespace storage {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("fstat " + path + ": " + std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(path + " is not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("mmap " + path + ": " + std::strerror(err));
    }
  }
  ::close(fd);  // the mapping keeps the inode alive
  return std::shared_ptr<MappedFile>(new MappedFile(addr, size));
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

}  // namespace storage
}  // namespace uots

#include "storage/crc32c.h"

#include <array>

namespace uots {
namespace storage {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

/// 8 tables x 256 entries: table[0] is the classic byte-at-a-time table,
/// table[k][b] = crc of byte b followed by k zero bytes. Built at compile
/// time so there is no init-order or threading concern.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 8; ++k) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
    }
  }
  return t;
}

constexpr auto kTables = MakeTables();

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Align to 8 bytes so the slicing loop can load words.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *p++) & 0xFFu];
    --n;
  }
  while (n >= 8) {
    // Little-endian word fold; the format is little-endian only (the
    // superblock carries an endianness tag the loader rejects on mismatch).
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    word ^= crc;
    crc = kTables[7][word & 0xFFu] ^ kTables[6][(word >> 8) & 0xFFu] ^
          kTables[5][(word >> 16) & 0xFFu] ^ kTables[4][(word >> 24) & 0xFFu] ^
          kTables[3][(word >> 32) & 0xFFu] ^ kTables[2][(word >> 40) & 0xFFu] ^
          kTables[1][(word >> 48) & 0xFFu] ^ kTables[0][(word >> 56) & 0xFFu];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *p++) & 0xFFu];
    --n;
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace storage
}  // namespace uots

#include "storage/resolver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "net/io.h"
#include "storage/snapshot_reader.h"
#include "traj/io.h"

namespace uots {
namespace storage {

namespace {

/// Replaces a trailing `from` with `to`; empty if `path` lacks the suffix.
std::string SwapSuffix(const std::string& path, const std::string& from,
                       const std::string& to) {
  if (path.size() <= from.size() ||
      path.compare(path.size() - from.size(), from.size(), from) != 0) {
    return {};
  }
  return path.substr(0, path.size() - from.size()) + to;
}

/// Reads the first whitespace-delimited token ("uots-network", ...).
std::string FirstToken(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  char buf[64] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string head(buf, n);
  const size_t end = head.find_first_of(" \t\r\n");
  return end == std::string::npos ? head : head.substr(0, end);
}

}  // namespace

Result<LoadedDatabase> LoadTextDataset(const std::string& net_path,
                                       const std::string& traj_path,
                                       const ResolveOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  auto network = LoadNetwork(net_path);
  if (!network.ok()) return network.status();
  auto store = LoadTrajectories(traj_path);
  if (!store.ok()) return store.status();

  // Text files carry term ids, not strings; synthesize a dictionary big
  // enough that every referenced id resolves.
  TermId max_term = 0;
  bool any_term = false;
  for (const TermId t : store->keyword_terms()) {
    max_term = std::max(max_term, t);
    any_term = true;
  }
  Vocabulary vocab = Vocabulary::Synthetic(any_term ? max_term + 1 : 0);

  LoadedDatabase out;
  out.db = std::make_unique<TrajectoryDatabase>(
      std::move(*network), std::move(*store), std::move(vocab),
      opts.similarity);
  out.source = DatasetSource::kText;
  out.load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

const char* ToString(DatasetSource source) {
  switch (source) {
    case DatasetSource::kSnapshot: return "snapshot";
    case DatasetSource::kText: return "text";
  }
  return "unknown";
}

Result<LoadedDatabase> LoadDatabaseFromPath(const std::string& path,
                                            const ResolveOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  Result<LoadedDatabase> result = [&]() -> Result<LoadedDatabase> {
    if (SniffSnapshotMagic(path)) {
      LoadOptions load_opts;
      load_opts.similarity = opts.similarity;
      load_opts.verify_checksums = opts.verify_checksums;
      auto db = LoadSnapshot(path, load_opts);
      if (!db.ok()) return db.status();
      LoadedDatabase out;
      out.db = std::move(*db);
      out.source = DatasetSource::kSnapshot;
      return out;
    }

    // Either half of a text dataset names the pair.
    std::string net_path = SwapSuffix(path, ".trajectories", ".network");
    std::string traj_path = SwapSuffix(path, ".network", ".trajectories");
    if (!net_path.empty()) return LoadTextDataset(net_path, path, opts);
    if (!traj_path.empty()) return LoadTextDataset(path, traj_path, opts);

    const std::string token = FirstToken(path);
    if (token == "uots-network" || token == "uots-trajectories") {
      return Status::InvalidArgument(
          path + " is a text dataset but lacks the .network/.trajectories "
                 "extension needed to locate its sibling file");
    }
    return Status::InvalidArgument(
        path + ": not a snapshot (bad magic) and not a recognized text "
               "dataset");
  }();
  if (!result.ok()) return result;

  result->load_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace storage
}  // namespace uots

// One path in, one database out.
//
// Every tool that takes a dataset (server, client --verify, benches,
// examples) accepts a single path and routes through LoadDatabaseFromPath,
// which sniffs the first bytes: the snapshot magic goes to the zero-copy
// loader, a "uots-network"/"uots-trajectories" text header goes to the
// parse-and-index path (deriving the sibling file by swapping the
// .network/.trajectories extension and synthesizing a vocabulary that
// covers every referenced term id).

#ifndef UOTS_STORAGE_RESOLVER_H_
#define UOTS_STORAGE_RESOLVER_H_

#include <memory>
#include <string>

#include "core/database.h"
#include "util/status.h"

namespace uots {
namespace storage {

enum class DatasetSource {
  kSnapshot,  ///< binary snapshot, mmap'd zero-copy
  kText,      ///< text files, parsed and fully re-indexed
};

const char* ToString(DatasetSource source);

/// \brief A database plus where it came from and what loading cost.
struct LoadedDatabase {
  std::unique_ptr<TrajectoryDatabase> db;
  DatasetSource source = DatasetSource::kText;
  double load_seconds = 0.0;
};

struct ResolveOptions {
  SimilarityOptions similarity;
  /// Forwarded to LoadSnapshot for snapshot paths; ignored for text.
  bool verify_checksums = true;
};

/// Loads the dataset at `path`, whatever its format.
Result<LoadedDatabase> LoadDatabaseFromPath(const std::string& path,
                                            const ResolveOptions& opts = {});

/// Loads an explicitly named text pair (parse + full re-index), for tools
/// whose files do not follow the extension convention.
Result<LoadedDatabase> LoadTextDataset(const std::string& network_path,
                                       const std::string& trajectories_path,
                                       const ResolveOptions& opts = {});

}  // namespace storage
}  // namespace uots

#endif  // UOTS_STORAGE_RESOLVER_H_

#include "storage/format.h"

namespace uots {
namespace storage {

const char* SectionName(SectionId id) {
  switch (id) {
    case SectionId::kMeta: return "meta";
    case SectionId::kNetPositions: return "net.positions";
    case SectionId::kNetOffsets: return "net.offsets";
    case SectionId::kNetAdjacency: return "net.adjacency";
    case SectionId::kTrajOffsets: return "traj.offsets";
    case SectionId::kTrajSamples: return "traj.samples";
    case SectionId::kTrajKeywordOffsets: return "traj.keyword_offsets";
    case SectionId::kTrajKeywordTerms: return "traj.keyword_terms";
    case SectionId::kVocabOffsets: return "vocab.offsets";
    case SectionId::kVocabBlob: return "vocab.blob";
    case SectionId::kVertexIndexOffsets: return "vertex_index.offsets";
    case SectionId::kVertexIndexEntries: return "vertex_index.entries";
    case SectionId::kKeywordIndexOffsets: return "keyword_index.offsets";
    case SectionId::kKeywordIndexPostings: return "keyword_index.postings";
    case SectionId::kKeywordIndexDocSizes: return "keyword_index.doc_sizes";
    case SectionId::kTimeIndexEntries: return "time_index.entries";
    case SectionId::kOracleRanks: return "oracle.ranks";
    case SectionId::kOracleUpOffsets: return "oracle.up_offsets";
    case SectionId::kOracleUpEdges: return "oracle.up_edges";
  }
  return "unknown";
}

}  // namespace storage
}  // namespace uots

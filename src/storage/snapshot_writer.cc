#include "storage/snapshot_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <vector>

#include "storage/crc32c.h"
#include "storage/format.h"

namespace uots {
namespace storage {

namespace {

/// One section staged for writing: directory fields plus the source bytes.
struct PendingSection {
  SectionId id;
  uint32_t elem_size;
  const void* data;
  uint64_t size_bytes;
  uint64_t count;
};

template <typename T>
PendingSection Stage(SectionId id, std::span<const T> column) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {id, static_cast<uint32_t>(sizeof(T)), column.data(),
          column.size_bytes(), column.size()};
}

/// RAII temp-file handle: every error path closes the stream AND unlinks
/// the temp file, so a failed write never leaves a stray `.tmp.*` behind.
struct TmpFile {
  std::FILE* f = nullptr;
  std::string path;
  bool committed = false;
  ~TmpFile() {
    if (f != nullptr) std::fclose(f);
    if (!committed && !path.empty()) std::remove(path.c_str());
  }
};

Status WriteBlock(std::FILE* f, const void* data, size_t n,
                  const std::string& what) {
  if (n == 0) return Status::OK();
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::IOError("short write (" + what + ")");
  }
  return Status::OK();
}

Status WritePadding(std::FILE* f, uint64_t n) {
  static const char kZeros[kSectionAlignment] = {};
  while (n > 0) {
    const size_t chunk = static_cast<size_t>(
        n < kSectionAlignment ? n : kSectionAlignment);
    UOTS_RETURN_NOT_OK(WriteBlock(f, kZeros, chunk, "padding"));
    n -= chunk;
  }
  return Status::OK();
}

/// fsyncs the directory containing `path` so the rename itself is durable
/// (without this a crash after rename can roll the directory entry back).
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? "."
                              : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open " + dir + " for fsync: " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync " + dir + ": " +
                           std::strerror(saved_errno));
  }
  return Status::OK();
}

}  // namespace

Status WriteSnapshot(const TrajectoryDatabase& db, const std::string& path,
                     const WriteOptions& opts) {
  // Flatten the one non-columnar piece (term strings) up front.
  std::string vocab_blob;
  std::vector<uint64_t> vocab_offsets;
  db.vocabulary().Flatten(&vocab_blob, &vocab_offsets);

  const RoadNetwork& net = db.network();
  const TrajectoryStore& store = db.store();
  const VertexTrajectoryIndex& vidx = db.vertex_index();
  const InvertedKeywordIndex& kidx = db.keyword_index();
  const TimeIndex& tidx = db.time_index();

  SnapshotMeta meta = {};
  meta.num_vertices = net.NumVertices();
  meta.num_directed_edges = net.adjacency().size();
  meta.num_trajectories = store.size();
  meta.num_samples = store.TotalSamples();
  meta.num_keyword_terms = store.TotalKeywordTerms();
  meta.num_vocab_terms = db.vocabulary().size();
  meta.num_index_terms = kidx.num_terms();
  meta.num_index_postings = kidx.postings().size();
  meta.num_vertex_postings = vidx.TotalEntries();
  meta.num_time_entries = tidx.size();

  // A database without an attached oracle still writes a version-2 file;
  // its three oracle sections are present with count 0 (CRC of an empty
  // payload is 0, and readers treat num_oracle_vertices == 0 as "none").
  const DistanceOracle* oracle = db.oracle();
  std::span<const uint32_t> oracle_ranks;
  std::span<const uint64_t> oracle_up_offsets;
  std::span<const OracleEdge> oracle_up_edges;
  if (oracle != nullptr) {
    oracle_ranks = oracle->ranks();
    oracle_up_offsets = oracle->up_offsets();
    oracle_up_edges = oracle->up_edges();
    meta.num_oracle_vertices = oracle->NumVertices();
    meta.num_oracle_edges = oracle->NumUpEdges();
  }

  // Sections in SectionId order; the directory index IS the id.
  const PendingSection sections[kSectionCount] = {
      {SectionId::kMeta, sizeof(SnapshotMeta), &meta, sizeof(SnapshotMeta), 1},
      Stage(SectionId::kNetPositions, net.positions()),
      Stage(SectionId::kNetOffsets, net.offsets()),
      Stage(SectionId::kNetAdjacency, net.adjacency()),
      Stage(SectionId::kTrajOffsets, store.offsets()),
      Stage(SectionId::kTrajSamples, store.samples()),
      Stage(SectionId::kTrajKeywordOffsets, store.keyword_offsets()),
      Stage(SectionId::kTrajKeywordTerms, store.keyword_terms()),
      Stage(SectionId::kVocabOffsets,
            std::span<const uint64_t>(vocab_offsets)),
      Stage(SectionId::kVocabBlob,
            std::span<const char>(vocab_blob.data(), vocab_blob.size())),
      Stage(SectionId::kVertexIndexOffsets, vidx.offsets()),
      Stage(SectionId::kVertexIndexEntries, vidx.entries()),
      Stage(SectionId::kKeywordIndexOffsets, kidx.offsets()),
      Stage(SectionId::kKeywordIndexPostings, kidx.postings()),
      Stage(SectionId::kKeywordIndexDocSizes, kidx.doc_sizes()),
      Stage(SectionId::kTimeIndexEntries, tidx.entries()),
      Stage(SectionId::kOracleRanks, oracle_ranks),
      Stage(SectionId::kOracleUpOffsets, oracle_up_offsets),
      Stage(SectionId::kOracleUpEdges, oracle_up_edges),
  };

  // Lay out offsets and checksum every payload.
  SectionEntry table[kSectionCount] = {};
  uint64_t cursor = HeaderBytes();
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    const PendingSection& s = sections[i];
    SectionEntry& e = table[i];
    e.id = static_cast<uint32_t>(s.id);
    e.elem_size = s.elem_size;
    e.offset = cursor;
    e.size_bytes = s.size_bytes;
    e.count = s.count;
    e.crc32c = Crc32c(s.data, static_cast<size_t>(s.size_bytes));
    cursor = AlignUp(cursor + s.size_bytes);
  }

  uint32_t fingerprint = 0;
  for (const SectionEntry& e : table) {
    const uint32_t triple[3] = {e.id, static_cast<uint32_t>(e.count), e.crc32c};
    fingerprint = Crc32cExtend(fingerprint, triple, sizeof(triple));
  }

  Superblock sb = {};
  std::memcpy(sb.magic, kMagic, sizeof(kMagic));
  sb.format_version = kFormatVersion;
  sb.endian_tag = kEndianTag;
  sb.section_count = kSectionCount;
  sb.file_size = cursor;
  sb.created_unix_s =
      opts.created_unix_s != 0 ? opts.created_unix_s : std::time(nullptr);
  sb.dataset_fingerprint = fingerprint;
  sb.section_table_crc = Crc32c(table, sizeof(table));
  std::strncpy(sb.tool, opts.tool.c_str(), sizeof(sb.tool) - 1);
  sb.superblock_crc = 0;
  sb.superblock_crc = Crc32c(&sb, sizeof(sb));

  // Unique per process and per call: concurrent writers of the same target
  // (e.g. parallel bench processes sharing a snapshot cache) must not
  // interleave into one shared tmp file and rename a corrupt mix into
  // place. Each writes its own tmp; the renames then race atomically and
  // whichever lands last wins with a complete file.
  static std::atomic<uint64_t> tmp_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_seq.fetch_add(1));
  TmpFile out;
  out.path = tmp;
  out.f = std::fopen(tmp.c_str(), "wb");
  if (out.f == nullptr) {
    return Status::IOError("create " + tmp + ": " + std::strerror(errno));
  }
  UOTS_RETURN_NOT_OK(WriteBlock(out.f, &sb, sizeof(sb), "superblock"));
  UOTS_RETURN_NOT_OK(WriteBlock(out.f, table, sizeof(table), "section table"));
  uint64_t written = sizeof(sb) + sizeof(table);
  for (uint32_t i = 0; i < kSectionCount; ++i) {
    UOTS_RETURN_NOT_OK(WritePadding(out.f, table[i].offset - written));
    UOTS_RETURN_NOT_OK(WriteBlock(out.f, sections[i].data,
                                  static_cast<size_t>(table[i].size_bytes),
                                  SectionName(sections[i].id)));
    written = table[i].offset + table[i].size_bytes;
  }
  UOTS_RETURN_NOT_OK(WritePadding(out.f, cursor - written));

  if (std::fflush(out.f) != 0 || ::fsync(::fileno(out.f)) != 0) {
    return Status::IOError("flush " + tmp + ": " + std::strerror(errno));
  }
  std::fclose(out.f);
  out.f = nullptr;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  out.committed = true;
  return SyncParentDir(path);
}

}  // namespace storage
}  // namespace uots

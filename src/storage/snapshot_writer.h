// Snapshot builder: serializes a fully-indexed TrajectoryDatabase.
//
// The writer never re-derives anything: every section is a byte-for-byte
// dump of a container column already in memory (plus the flattened
// vocabulary), so build-then-write equals what the zero-copy loader views
// back in. Writes go to `<path>.tmp` and are renamed into place after
// fsync, so readers never observe a half-written snapshot.

#ifndef UOTS_STORAGE_SNAPSHOT_WRITER_H_
#define UOTS_STORAGE_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <string>

#include "core/database.h"
#include "util/status.h"

namespace uots {
namespace storage {

struct WriteOptions {
  /// Recorded in the superblock's tool field (truncated to 27 chars).
  std::string tool = "uots_snapshot";
  /// Build timestamp for the superblock; 0 means "use the current time".
  int64_t created_unix_s = 0;
};

/// Writes `db` as a format-version-1 snapshot at `path` (atomic replace).
Status WriteSnapshot(const TrajectoryDatabase& db, const std::string& path,
                     const WriteOptions& opts = {});

}  // namespace storage
}  // namespace uots

#endif  // UOTS_STORAGE_SNAPSHOT_WRITER_H_

#include "traj/simplify.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace uots {

namespace {

/// Euclidean distance from p to segment [a, b].
double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  if (len2 == 0.0) return EuclideanDistance(p, a);
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return EuclideanDistance(p, Point{a.x + t * abx, a.y + t * aby});
}

/// Recursive Douglas-Peucker over samples[lo..hi]; marks kept indices.
void DouglasPeucker(const RoadNetwork& g, const std::vector<Sample>& samples,
                    size_t lo, size_t hi, double tolerance,
                    std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  const Point& a = g.PositionOf(samples[lo].vertex);
  const Point& b = g.PositionOf(samples[hi].vertex);
  double worst = -1.0;
  size_t worst_i = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double d = PointSegmentDistance(g.PositionOf(samples[i].vertex), a, b);
    if (d > worst) {
      worst = d;
      worst_i = i;
    }
  }
  if (worst > tolerance) {
    (*keep)[worst_i] = true;
    DouglasPeucker(g, samples, lo, worst_i, tolerance, keep);
    DouglasPeucker(g, samples, worst_i, hi, tolerance, keep);
  }
}

}  // namespace

Trajectory SimplifyDouglasPeucker(const RoadNetwork& network,
                                  const Trajectory& traj, double tolerance_m) {
  Trajectory out;
  out.keywords = traj.keywords;
  if (traj.samples.size() <= 2) {
    out.samples = traj.samples;
    return out;
  }
  std::vector<bool> keep(traj.samples.size(), false);
  keep.front() = keep.back() = true;
  DouglasPeucker(network, traj.samples, 0, traj.samples.size() - 1,
                 std::max(tolerance_m, 0.0), &keep);
  for (size_t i = 0; i < traj.samples.size(); ++i) {
    if (keep[i]) out.samples.push_back(traj.samples[i]);
  }
  return out;
}

Trajectory DownsampleUniform(const Trajectory& traj, size_t max_samples) {
  assert(max_samples >= 2);
  Trajectory out;
  out.keywords = traj.keywords;
  const size_t n = traj.samples.size();
  if (n <= max_samples) {
    out.samples = traj.samples;
    return out;
  }
  for (size_t i = 0; i < max_samples; ++i) {
    const size_t pick = i * (n - 1) / (max_samples - 1);
    out.samples.push_back(traj.samples[pick]);
  }
  return out;
}

double SimplificationError(const RoadNetwork& network,
                           const Trajectory& original,
                           const Trajectory& simplified) {
  if (simplified.samples.empty()) return 0.0;
  double worst = 0.0;
  // The simplified trajectory is a subsequence of the original, so a
  // single forward scan matches each kept sample by identity and assigns
  // every dropped sample to the segment between its kept neighbors.
  size_t seg = 0;  // current segment [seg, seg+1] of the simplified traj
  for (const Sample& s : original.samples) {
    if (seg + 1 < simplified.samples.size() &&
        s == simplified.samples[seg + 1]) {
      ++seg;
      continue;  // kept sample: zero deviation by definition
    }
    const Point& p = network.PositionOf(s.vertex);
    const Point& a = network.PositionOf(simplified.samples[seg].vertex);
    const Point& b = network.PositionOf(
        simplified.samples[std::min(seg + 1, simplified.samples.size() - 1)]
            .vertex);
    worst = std::max(worst, PointSegmentDistance(p, a, b));
  }
  return worst;
}

}  // namespace uots

// Plain-text persistence for trajectory stores.
//
// Format:
//   uots-trajectories 1
//   <count>
//   t <num_samples> <num_keywords>
//   <vertex> <time_s>        -- num_samples lines
//   <term> <term> ...        -- single line, num_keywords ids (may be empty)

#ifndef UOTS_TRAJ_IO_H_
#define UOTS_TRAJ_IO_H_

#include <string>

#include "traj/store.h"
#include "util/status.h"

namespace uots {

/// Writes the store to `path`.
Status SaveTrajectories(const TrajectoryStore& store, const std::string& path);

/// Reads a store from `path`.
Result<TrajectoryStore> LoadTrajectories(const std::string& path);

}  // namespace uots

#endif  // UOTS_TRAJ_IO_H_

#include "traj/stats.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <sstream>

namespace uots {

DistributionSummary Summarize(std::vector<double> values) {
  DistributionSummary out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.min = values.front();
  out.max = values.back();
  out.p50 = values[values.size() / 2];
  out.p90 = values[values.size() * 9 / 10];
  out.mean = std::accumulate(values.begin(), values.end(), 0.0) /
             static_cast<double>(values.size());
  return out;
}

std::string DistributionSummary::ToString() const {
  std::ostringstream os;
  os << "min=" << min << " p50=" << p50 << " p90=" << p90 << " max=" << max
     << " mean=" << mean;
  return os.str();
}

DatasetStats ComputeDatasetStats(const RoadNetwork& network,
                                 const TrajectoryStore& store) {
  DatasetStats out;
  out.num_trajectories = store.size();
  out.total_samples = store.TotalSamples();

  std::vector<double> lengths, durations, keyword_counts;
  std::vector<bool> covered(network.NumVertices(), false);
  std::array<int64_t, 24> hour_histogram{};
  lengths.reserve(store.size());
  durations.reserve(store.size());
  keyword_counts.reserve(store.size());
  for (TrajId id = 0; id < store.size(); ++id) {
    const auto samples = store.SamplesOf(id);
    lengths.push_back(static_cast<double>(samples.size()));
    const auto [t0, t1] = store.TimeRangeOf(id);
    durations.push_back((t1 - t0) / 60.0);
    keyword_counts.push_back(static_cast<double>(store.KeywordsOf(id).size()));
    for (const Sample& s : samples) {
      covered[s.vertex] = true;
      ++hour_histogram[std::min(23, s.time_s / 3600)];
    }
  }
  out.samples_per_trajectory = Summarize(std::move(lengths));
  out.duration_minutes = Summarize(std::move(durations));
  out.keywords_per_trajectory = Summarize(std::move(keyword_counts));

  size_t covered_count = 0;
  for (bool c : covered) covered_count += c ? 1 : 0;
  out.vertex_coverage = network.NumVertices() > 0
                            ? static_cast<double>(covered_count) /
                                  static_cast<double>(network.NumVertices())
                            : 0.0;

  // Busiest ~10% of hours (top 2 of 24) as a share of all sample events.
  std::array<int64_t, 24> sorted = hour_histogram;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const int64_t total =
      std::accumulate(hour_histogram.begin(), hour_histogram.end(), int64_t{0});
  out.temporal_skew =
      total > 0 ? static_cast<double>(sorted[0] + sorted[1]) / total : 0.0;
  return out;
}

std::string DatasetStats::ToString() const {
  std::ostringstream os;
  os << "trajectories=" << num_trajectories << " samples=" << total_samples
     << "\n  samples/traj: " << samples_per_trajectory.ToString()
     << "\n  duration(min): " << duration_minutes.ToString()
     << "\n  keywords/traj: " << keywords_per_trajectory.ToString()
     << "\n  vertex coverage=" << vertex_coverage
     << " temporal skew(top2h)=" << temporal_skew;
  return os.str();
}

}  // namespace uots

#include "traj/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "geo/grid_index.h"
#include "net/astar.h"
#include "text/zipf.h"
#include "util/rng.h"

namespace uots {

namespace {

/// Picks one trip endpoint: hotspot-biased or uniform.
VertexId PickEndpoint(const RoadNetwork& g, const GridIndex& grid,
                      const std::vector<VertexId>& hotspots,
                      const TripGeneratorOptions& opts, Rng& rng,
                      int* hotspot_out) {
  if (!hotspots.empty() && rng.Bernoulli(opts.hotspot_bias)) {
    const int h = static_cast<int>(rng.Uniform(hotspots.size()));
    const Point& c = g.PositionOf(hotspots[h]);
    const Point p{c.x + rng.Normal(0.0, opts.hotspot_sigma_m),
                  c.y + rng.Normal(0.0, opts.hotspot_sigma_m)};
    const int64_t v = grid.Nearest(p);
    if (hotspot_out != nullptr) *hotspot_out = h;
    return static_cast<VertexId>(v);
  }
  if (hotspot_out != nullptr) *hotspot_out = -1;
  return static_cast<VertexId>(rng.Uniform(g.NumVertices()));
}

/// Departure time: 50/50 mixture of two rush-hour Gaussians plus a uniform
/// background, wrapped into [0, kSecondsPerDay).
int32_t SampleDeparture(Rng& rng) {
  double t;
  const double u = rng.UniformDouble();
  if (u < 0.35) {
    t = rng.Normal(8.0 * 3600, 1.2 * 3600);  // morning rush
  } else if (u < 0.70) {
    t = rng.Normal(18.0 * 3600, 1.5 * 3600);  // evening rush
  } else {
    t = rng.UniformDouble(0.0, kSecondsPerDay);
  }
  int64_t s = static_cast<int64_t>(std::llround(t)) % kSecondsPerDay;
  if (s < 0) s += kSecondsPerDay;
  return static_cast<int32_t>(s);
}

}  // namespace

Result<TripDataset> GenerateTrips(const RoadNetwork& g,
                                  const TripGeneratorOptions& opts) {
  if (opts.num_trajectories < 0) {
    return Status::InvalidArgument("num_trajectories must be >= 0");
  }
  if (opts.sample_stride < 1) {
    return Status::InvalidArgument("sample_stride must be >= 1");
  }
  if (opts.min_keywords < 1 || opts.max_keywords < opts.min_keywords) {
    return Status::InvalidArgument("bad keyword count range");
  }
  if (opts.vocabulary_size < opts.max_keywords) {
    return Status::InvalidArgument("vocabulary too small for max_keywords");
  }
  if (opts.speed_mps <= 0.0) {
    return Status::InvalidArgument("speed must be positive");
  }
  if (opts.topic_affinity < 0.0 || opts.topic_affinity > 1.0 ||
      opts.hotspot_bias < 0.0 || opts.hotspot_bias > 1.0) {
    return Status::InvalidArgument("probabilities must be in [0,1]");
  }

  Rng rng(opts.seed);
  TripDataset out;
  out.vocabulary = Vocabulary::Synthetic(opts.vocabulary_size);

  // Hotspots: random vertices kept apart by rejection (best effort).
  GridIndex grid(g.positions());
  const double min_sep = std::max(g.Bounds().Width(), g.Bounds().Height()) /
                         (2.0 * std::max(1, opts.num_hotspots));
  for (int h = 0; h < opts.num_hotspots; ++h) {
    VertexId best = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    for (int attempt = 0; attempt < 32; ++attempt) {
      const VertexId cand = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
      bool far_enough = true;
      for (VertexId prev : out.hotspots) {
        if (EuclideanDistance(g.PositionOf(cand), g.PositionOf(prev)) <
            min_sep) {
          far_enough = false;
          break;
        }
      }
      if (far_enough) {
        best = cand;
        break;
      }
    }
    out.hotspots.push_back(best);
  }

  ZipfSampler zipf(opts.vocabulary_size, opts.zipf_s);
  AStarEngine router(g);
  // Topic blocks: hotspot h prefers terms in a contiguous block of the
  // vocabulary; drawing the block offset through the same Zipf sampler
  // keeps per-block popularity skewed too.
  const int block =
      std::max(1, opts.vocabulary_size / std::max(1, opts.num_hotspots));

  int generated = 0;
  int attempts = 0;
  const int max_attempts = opts.num_trajectories * 20 + 100;
  while (generated < opts.num_trajectories && attempts < max_attempts) {
    ++attempts;
    int src_hotspot = -1, dst_hotspot = -1;
    const VertexId src =
        PickEndpoint(g, grid, out.hotspots, opts, rng, &src_hotspot);
    const VertexId dst =
        PickEndpoint(g, grid, out.hotspots, opts, rng, &dst_hotspot);
    if (src == dst) continue;
    PathResult route = router.FindPath(src, dst);
    if (route.path.size() < static_cast<size_t>(opts.min_route_vertices)) {
      continue;
    }

    Trajectory traj;
    // Subsample the route: endpoints always kept.
    std::vector<VertexId> kept;
    for (size_t i = 0; i < route.path.size(); ++i) {
      if (i == 0 || i + 1 == route.path.size() ||
          i % static_cast<size_t>(opts.sample_stride) == 0) {
        kept.push_back(route.path[i]);
      }
    }
    // Timestamps: cumulative network distance over a jittered trip speed.
    const double speed = opts.speed_mps * rng.UniformDouble(0.7, 1.3);
    const int32_t depart = SampleDeparture(rng);
    double cum = 0.0;
    Point prev = g.PositionOf(kept.front());
    for (size_t i = 0; i < kept.size(); ++i) {
      if (i > 0) {
        // Straight-line between kept samples underestimates slightly; the
        // exact route distance is not needed for plausible timestamps.
        cum += EuclideanDistance(prev, g.PositionOf(kept[i]));
        prev = g.PositionOf(kept[i]);
      }
      int64_t t = depart + static_cast<int64_t>(cum / speed);
      // Trips crossing midnight are clamped to the end of day to keep
      // timestamps monotone within [0, kSecondsPerDay).
      if (t >= kSecondsPerDay) t = kSecondsPerDay - 1;
      traj.samples.push_back(Sample{kept[i], static_cast<int32_t>(t)});
    }

    // Keywords: Zipf global draws, redirected into the destination
    // hotspot's topic block with probability topic_affinity.
    const int nkeys = static_cast<int>(
        rng.UniformInt(opts.min_keywords, opts.max_keywords));
    std::vector<TermId> keys;
    keys.reserve(nkeys);
    const int topic = dst_hotspot >= 0 ? dst_hotspot : src_hotspot;
    for (int i = 0; i < nkeys; ++i) {
      size_t term = zipf.Sample(rng);
      if (topic >= 0 && rng.Bernoulli(opts.topic_affinity)) {
        term = (static_cast<size_t>(topic) * block + term % block) %
               opts.vocabulary_size;
      }
      keys.push_back(static_cast<TermId>(term));
    }
    traj.keywords = KeywordSet(std::move(keys));

    auto added = out.store.Add(traj);
    if (!added.ok()) return added.status();
    out.topics.push_back(topic);
    ++generated;
  }
  if (generated < opts.num_trajectories) {
    return Status::Internal("trip generation stalled; relax options");
  }
  return out;
}

std::vector<Trajectory> SplitByDuration(const Trajectory& traj,
                                        int32_t max_duration_s) {
  assert(max_duration_s > 0);
  std::vector<Trajectory> out;
  Trajectory cur;
  cur.keywords = traj.keywords;
  int32_t window_start = 0;
  for (const Sample& s : traj.samples) {
    if (cur.samples.empty()) {
      window_start = s.time_s;
    } else if (s.time_s - window_start > max_duration_s) {
      out.push_back(cur);
      cur.samples.clear();
      window_start = s.time_s;
    }
    cur.samples.push_back(s);
  }
  if (!cur.samples.empty()) out.push_back(cur);
  return out;
}

}  // namespace uots

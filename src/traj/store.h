// Columnar in-memory trajectory store.
//
// Samples of all trajectories live in one contiguous array addressed
// through per-trajectory offsets (CSR layout), which keeps scans cache
// friendly and makes the memory footprint predictable — the paper family
// holds trajectory sets memory-resident during join/search processing.
// Keyword sets use the same layout (flat sorted term slices + offsets), so
// every column can be persisted byte-for-byte in a snapshot and loaded back
// as a zero-copy view (src/storage/).

#ifndef UOTS_TRAJ_STORE_H_
#define UOTS_TRAJ_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "traj/trajectory.h"
#include "util/column_vec.h"
#include "util/status.h"

namespace uots {

/// \brief Append-only columnar container of trajectories.
class TrajectoryStore {
 public:
  TrajectoryStore() {
    offsets_.mutable_vec().push_back(0);
    keyword_offsets_.mutable_vec().push_back(0);
  }

  /// Appends a trajectory; returns its id or an error if invalid.
  Result<TrajId> Add(const Trajectory& traj);

  /// \brief Reassembles a store from prebuilt columns (e.g. views over
  /// validated snapshot sections) without per-record work. The caller
  /// guarantees CSR validity and backing-byte lifetime.
  static TrajectoryStore FromColumns(ColumnVec<uint64_t> offsets,
                                     ColumnVec<Sample> samples,
                                     ColumnVec<uint64_t> keyword_offsets,
                                     ColumnVec<TermId> keyword_terms);

  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Samples of trajectory `id`, time-ordered.
  std::span<const Sample> SamplesOf(TrajId id) const {
    return {samples_.data() + offsets_[id],
            samples_.data() + offsets_[id + 1]};
  }

  /// Number of samples of trajectory `id`.
  size_t LengthOf(TrajId id) const { return offsets_[id + 1] - offsets_[id]; }

  /// Keyword set of trajectory `id` (a zero-copy view into the store).
  KeywordSet KeywordsOf(TrajId id) const {
    return KeywordSet::View({keyword_terms_.data() + keyword_offsets_[id],
                             keyword_terms_.data() + keyword_offsets_[id + 1]});
  }

  /// Temporal range [first sample time, last sample time] of `id`.
  std::pair<int32_t, int32_t> TimeRangeOf(TrajId id) const {
    const auto s = SamplesOf(id);
    return {s.front().time_s, s.back().time_s};
  }

  /// Mean samples per trajectory (0 if empty).
  double AverageLength() const;

  /// Total sample count across all trajectories.
  size_t TotalSamples() const { return samples_.size(); }

  /// Total keyword terms across all trajectories.
  size_t TotalKeywordTerms() const { return keyword_terms_.size(); }

  /// Raw columns (snapshot persistence; see src/storage/).
  std::span<const uint64_t> offsets() const { return offsets_.span(); }
  std::span<const Sample> samples() const { return samples_.span(); }
  std::span<const uint64_t> keyword_offsets() const {
    return keyword_offsets_.span();
  }
  std::span<const TermId> keyword_terms() const {
    return keyword_terms_.span();
  }

  size_t MemoryUsage() const { return Memory().total(); }
  MemoryBreakdown Memory() const;

  /// Materializes trajectory `id` back to row form (tests, IO). The returned
  /// trajectory owns its data and is independent of the store's lifetime.
  Trajectory Materialize(TrajId id) const;

 private:
  ColumnVec<uint64_t> offsets_;  // size() + 1
  ColumnVec<Sample> samples_;
  ColumnVec<uint64_t> keyword_offsets_;  // size() + 1
  ColumnVec<TermId> keyword_terms_;      // per-trajectory sorted slices
};

}  // namespace uots

#endif  // UOTS_TRAJ_STORE_H_

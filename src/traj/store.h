// Columnar in-memory trajectory store.
//
// Samples of all trajectories live in one contiguous array addressed
// through per-trajectory offsets (CSR layout), which keeps scans cache
// friendly and makes the memory footprint predictable — the paper family
// holds trajectory sets memory-resident during join/search processing.

#ifndef UOTS_TRAJ_STORE_H_
#define UOTS_TRAJ_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "traj/trajectory.h"
#include "util/status.h"

namespace uots {

/// \brief Append-only columnar container of trajectories.
class TrajectoryStore {
 public:
  TrajectoryStore() { offsets_.push_back(0); }

  /// Appends a trajectory; returns its id or an error if invalid.
  Result<TrajId> Add(const Trajectory& traj);

  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Samples of trajectory `id`, time-ordered.
  std::span<const Sample> SamplesOf(TrajId id) const {
    return {samples_.data() + offsets_[id],
            samples_.data() + offsets_[id + 1]};
  }

  /// Number of samples of trajectory `id`.
  size_t LengthOf(TrajId id) const { return offsets_[id + 1] - offsets_[id]; }

  /// Keyword set of trajectory `id`.
  const KeywordSet& KeywordsOf(TrajId id) const { return keywords_[id]; }

  /// Temporal range [first sample time, last sample time] of `id`.
  std::pair<int32_t, int32_t> TimeRangeOf(TrajId id) const {
    const auto s = SamplesOf(id);
    return {s.front().time_s, s.back().time_s};
  }

  /// Mean samples per trajectory (0 if empty).
  double AverageLength() const;

  /// Total sample count across all trajectories.
  size_t TotalSamples() const { return samples_.size(); }

  size_t MemoryUsage() const;

  /// Materializes trajectory `id` back to row form (tests, IO).
  Trajectory Materialize(TrajId id) const;

 private:
  std::vector<uint64_t> offsets_;  // size() + 1
  std::vector<Sample> samples_;
  std::vector<KeywordSet> keywords_;
};

}  // namespace uots

#endif  // UOTS_TRAJ_STORE_H_

// Trajectory model.
//
// A trajectory is a finite time-ordered sequence of map-matched sample
// points <v1..vn>, vi = (pi, ti), where pi is a road-network vertex and ti
// a time-of-day timestamp (seconds in [0, 86400); dates are dropped because
// urban movement is largely daily-periodic — same convention as the paper
// family). Each trajectory additionally carries the keyword set describing
// the activities/POIs of the trip, which the UOTS textual domain matches
// against the user's preference keywords.

#ifndef UOTS_TRAJ_TRAJECTORY_H_
#define UOTS_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "text/keyword_set.h"

namespace uots {

/// Trajectory identifier; dense in [0, store.size()).
using TrajId = uint32_t;

inline constexpr TrajId kInvalidTraj = static_cast<TrajId>(-1);

/// Seconds in a day; all timestamps are reduced modulo this.
inline constexpr int32_t kSecondsPerDay = 86400;

/// \brief One timestamped, map-matched sample point.
struct Sample {
  VertexId vertex;
  int32_t time_s;  ///< time of day, seconds in [0, kSecondsPerDay)

  friend bool operator==(const Sample& a, const Sample& b) {
    return a.vertex == b.vertex && a.time_s == b.time_s;
  }
};

/// \brief A trajectory under construction (row form). The columnar
/// TrajectoryStore is the query-time representation.
struct Trajectory {
  std::vector<Sample> samples;
  KeywordSet keywords;

  bool IsValid() const {
    if (samples.empty()) return false;
    for (size_t i = 0; i < samples.size(); ++i) {
      if (samples[i].time_s < 0 || samples[i].time_s >= kSecondsPerDay) {
        return false;
      }
      if (i > 0 && samples[i].time_s < samples[i - 1].time_s) return false;
    }
    return true;
  }
};

}  // namespace uots

#endif  // UOTS_TRAJ_TRAJECTORY_H_

// Synthetic taxi-trip generator.
//
// Substitutes for the T-drive (Beijing) and NYC taxi datasets used by the
// paper. Each generated trip:
//   * picks origin/destination vertices biased toward a set of spatial
//     hotspots (city centres, stations) — reproducing the skewed spatial
//     density of real taxi data;
//   * routes along the network shortest path (the paper assumes movement
//     between adjacent samples follows shortest paths) and subsamples it;
//   * stamps times from a bimodal rush-hour departure distribution plus a
//     per-trip cruising speed — reproducing realistic trip durations;
//   * draws Zipf-skewed activity keywords correlated with the destination
//     hotspot — reproducing the keyword skew and the spatial-textual
//     correlation ("people going to the museum district talk about
//     museums") that make the textual domain informative.
// All randomness derives from a single seed: identical options => identical
// dataset.

#ifndef UOTS_TRAJ_GENERATOR_H_
#define UOTS_TRAJ_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "text/vocabulary.h"
#include "traj/store.h"
#include "util/status.h"

namespace uots {

/// \brief Knobs for TripGenerator.
struct TripGeneratorOptions {
  int num_trajectories = 10000;

  // --- spatial ---
  int num_hotspots = 8;
  /// Probability that a trip endpoint is drawn near a hotspot (vs uniform).
  double hotspot_bias = 0.7;
  /// Gaussian spread of endpoints around a hotspot, meters.
  double hotspot_sigma_m = 800.0;
  /// Keep every `stride`-th route vertex as a sample (plus both endpoints).
  int sample_stride = 3;
  /// Reject trips whose route has fewer vertices than this.
  int min_route_vertices = 8;

  // --- temporal ---
  /// Mean cruising speed, m/s (jittered +-30% per trip).
  double speed_mps = 8.0;

  // --- textual ---
  /// Vocabulary size (synthetic POI/activity terms).
  int vocabulary_size = 1000;
  /// Zipf skew of keyword popularity.
  double zipf_s = 0.8;
  int min_keywords = 3;
  int max_keywords = 10;
  /// Probability a keyword is drawn from the destination hotspot's topic
  /// block instead of the global distribution (spatial-textual correlation).
  double topic_affinity = 0.5;

  uint64_t seed = 42;
};

/// \brief Generated dataset: trajectories plus the vocabulary and the
/// hotspot vertices that shaped them.
struct TripDataset {
  TrajectoryStore store;
  Vocabulary vocabulary;
  std::vector<VertexId> hotspots;
  /// Per trajectory: the hotspot whose topic block biased its keywords
  /// (-1 when both endpoints were uniform draws).
  std::vector<int> topics;
};

/// Generates a trip dataset over `g`. Fails only on invalid options.
Result<TripDataset> GenerateTrips(const RoadNetwork& g,
                                  const TripGeneratorOptions& opts);

/// Splits a (long) trajectory into sub-trajectories of at most
/// `max_duration_s` seconds each — the preprocessing the paper applies to
/// day-long T-drive traces to obtain trip-scale trajectories.
std::vector<Trajectory> SplitByDuration(const Trajectory& traj,
                                        int32_t max_duration_s);

}  // namespace uots

#endif  // UOTS_TRAJ_GENERATOR_H_

// Timeline index and incremental temporal expansion.
//
// The temporal analogue of the spatial network expansion: all trajectory
// samples are sorted on their time-of-day, and a TemporalExpansion walks
// outward from a query timestamp, settling samples in nondecreasing
// absolute time difference. Exactly like Dijkstra's settle order makes the
// first scanned vertex of a trajectory its network distance, the first
// settled sample of a trajectory here IS d(t, tau) = min_i |t - t_i|, and
// the current radius lower-bounds every unseen trajectory's temporal
// distance. This powers the three-domain (spatial + temporal + textual)
// extension of the UOTS search (core/temporal.h).

#ifndef UOTS_TRAJ_TIME_INDEX_H_
#define UOTS_TRAJ_TIME_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "traj/store.h"
#include "util/column_vec.h"

namespace uots {

/// \brief Immutable sorted (time, trajectory) timeline over one store.
class TimeIndex {
 public:
  explicit TimeIndex(const TrajectoryStore& store);

  /// One timeline entry.
  struct Entry {
    int32_t time_s;
    TrajId traj;
  };

  /// \brief Reassembles the index from a prebuilt sorted column (e.g. a view
  /// over a validated snapshot section); skips the sort entirely.
  static TimeIndex FromColumns(ColumnVec<Entry> entries);

  std::span<const Entry> entries() const { return entries_.span(); }
  size_t size() const { return entries_.size(); }

  /// Index of the first entry with time >= t (size() if none).
  size_t LowerBound(int32_t t) const;

  size_t MemoryUsage() const { return Memory().total(); }
  MemoryBreakdown Memory() const { return entries_.Memory(); }

 private:
  TimeIndex() = default;

  ColumnVec<Entry> entries_;  // sorted by (time_s, traj)
};

/// \brief Resumable outward walk from a query timestamp.
class TemporalExpansion {
 public:
  explicit TemporalExpansion(const TimeIndex& index) : index_(&index) {}

  /// (Re)starts the walk from time-of-day `t` (seconds).
  void Reset(int32_t t);

  /// \brief Settles the next-nearest sample.
  /// \param[out] traj  the trajectory owning the settled sample
  /// \param[out] dt    its absolute time difference from the query time
  /// \return false when the whole timeline is exhausted.
  bool Step(TrajId* traj, double* dt);

  /// |Δt| of the last settled sample; lower bound for everything unseen.
  double radius() const { return radius_; }
  bool exhausted() const { return exhausted_; }
  int64_t settled_count() const { return settled_count_; }

 private:
  const TimeIndex* index_;
  int32_t origin_ = 0;
  // Entries below lo_ (exclusive, moving left) and from hi_ (moving right)
  // are unsettled; [lo_, hi_) has been consumed.
  size_t lo_ = 0;
  size_t hi_ = 0;
  double radius_ = 0.0;
  bool exhausted_ = false;
  int64_t settled_count_ = 0;
};

}  // namespace uots

#endif  // UOTS_TRAJ_TIME_INDEX_H_

// Trajectory simplification — preprocessing for data cleaning and storage
// reduction (the paper's data-cleaning motivation).
//
// Two reducers are provided:
//  * Douglas-Peucker on the sample positions, keeping every sample whose
//    removal would displace the polyline by more than `tolerance_m`;
//  * uniform downsampling to a target sample count.
// Both keep the endpoints, preserve timestamp order, and keep the keyword
// set intact, so the output is always a valid Trajectory.

#ifndef UOTS_TRAJ_SIMPLIFY_H_
#define UOTS_TRAJ_SIMPLIFY_H_

#include "net/graph.h"
#include "traj/trajectory.h"

namespace uots {

/// \brief Douglas-Peucker simplification.
///
/// `network` supplies sample positions. The Euclidean point-to-segment
/// distance drives the retention decision; tolerance_m <= 0 keeps only the
/// endpoints of straight runs (exact collinear removal).
Trajectory SimplifyDouglasPeucker(const RoadNetwork& network,
                                  const Trajectory& traj, double tolerance_m);

/// \brief Uniform downsampling to at most `max_samples` samples (>= 2),
/// always keeping the first and last sample.
Trajectory DownsampleUniform(const Trajectory& traj, size_t max_samples);

/// Maximum Euclidean deviation (meters) of `simplified` from `original`:
/// for every dropped sample, its distance to the segment between its
/// surviving neighbors. Returns 0 when nothing was dropped.
double SimplificationError(const RoadNetwork& network,
                           const Trajectory& original,
                           const Trajectory& simplified);

}  // namespace uots

#endif  // UOTS_TRAJ_SIMPLIFY_H_

#include "traj/store.h"

namespace uots {

Result<TrajId> TrajectoryStore::Add(const Trajectory& traj) {
  if (!traj.IsValid()) {
    return Status::InvalidArgument(
        "trajectory must be non-empty with nondecreasing in-range timestamps");
  }
  const TrajId id = static_cast<TrajId>(size());
  samples_.insert(samples_.end(), traj.samples.begin(), traj.samples.end());
  offsets_.push_back(samples_.size());
  keywords_.push_back(traj.keywords);
  return id;
}

double TrajectoryStore::AverageLength() const {
  if (empty()) return 0.0;
  return static_cast<double>(samples_.size()) / static_cast<double>(size());
}

size_t TrajectoryStore::MemoryUsage() const {
  size_t bytes = offsets_.capacity() * sizeof(uint64_t) +
                 samples_.capacity() * sizeof(Sample) +
                 keywords_.capacity() * sizeof(KeywordSet);
  for (const auto& k : keywords_) bytes += k.terms().capacity() * sizeof(TermId);
  return bytes;
}

Trajectory TrajectoryStore::Materialize(TrajId id) const {
  Trajectory t;
  const auto s = SamplesOf(id);
  t.samples.assign(s.begin(), s.end());
  t.keywords = KeywordsOf(id);
  return t;
}

}  // namespace uots

#include "traj/store.h"

namespace uots {

Result<TrajId> TrajectoryStore::Add(const Trajectory& traj) {
  if (!traj.IsValid()) {
    return Status::InvalidArgument(
        "trajectory must be non-empty with nondecreasing in-range timestamps");
  }
  const TrajId id = static_cast<TrajId>(size());
  auto& samples = samples_.mutable_vec();
  samples.insert(samples.end(), traj.samples.begin(), traj.samples.end());
  offsets_.mutable_vec().push_back(samples.size());
  // KeywordSet is sorted and deduplicated by construction, so the flat slice
  // keeps the invariant KeywordsOf relies on.
  auto& terms = keyword_terms_.mutable_vec();
  const auto keys = traj.keywords.terms();
  terms.insert(terms.end(), keys.begin(), keys.end());
  keyword_offsets_.mutable_vec().push_back(terms.size());
  return id;
}

TrajectoryStore TrajectoryStore::FromColumns(ColumnVec<uint64_t> offsets,
                                             ColumnVec<Sample> samples,
                                             ColumnVec<uint64_t> keyword_offsets,
                                             ColumnVec<TermId> keyword_terms) {
  TrajectoryStore s;
  s.offsets_ = std::move(offsets);
  s.samples_ = std::move(samples);
  s.keyword_offsets_ = std::move(keyword_offsets);
  s.keyword_terms_ = std::move(keyword_terms);
  return s;
}

double TrajectoryStore::AverageLength() const {
  if (empty()) return 0.0;
  return static_cast<double>(samples_.size()) / static_cast<double>(size());
}

MemoryBreakdown TrajectoryStore::Memory() const {
  MemoryBreakdown m;
  m += offsets_.Memory();
  m += samples_.Memory();
  m += keyword_offsets_.Memory();
  m += keyword_terms_.Memory();
  return m;
}

Trajectory TrajectoryStore::Materialize(TrajId id) const {
  Trajectory t;
  const auto s = SamplesOf(id);
  t.samples.assign(s.begin(), s.end());
  t.keywords = KeywordSet(KeywordsOf(id).ToVector());
  return t;
}

}  // namespace uots

// Dataset statistics — sanity-checking generated or imported trajectory
// sets against the properties the search algorithms assume (trip length,
// duration, keyword skew, spatial coverage).

#ifndef UOTS_TRAJ_STATS_H_
#define UOTS_TRAJ_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/graph.h"
#include "traj/store.h"

namespace uots {

/// \brief Simple five-number-ish summary of a distribution.
struct DistributionSummary {
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  double mean = 0.0;

  std::string ToString() const;
};

/// Summarizes a sample vector (empty input yields all zeros).
DistributionSummary Summarize(std::vector<double> values);

/// \brief Aggregate statistics of a trajectory store.
struct DatasetStats {
  size_t num_trajectories = 0;
  size_t total_samples = 0;
  DistributionSummary samples_per_trajectory;
  DistributionSummary duration_minutes;
  DistributionSummary keywords_per_trajectory;
  /// Fraction of network vertices covered by at least one trajectory.
  double vertex_coverage = 0.0;
  /// Fraction of all sample events in the busiest 10% of day-hours —
  /// > 0.1 means temporally skewed (rush hours).
  double temporal_skew = 0.0;

  std::string ToString() const;
};

/// Computes dataset statistics over `store` on `network`.
DatasetStats ComputeDatasetStats(const RoadNetwork& network,
                                 const TrajectoryStore& store);

}  // namespace uots

#endif  // UOTS_TRAJ_STATS_H_

#include "traj/io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace uots {

Status SaveTrajectories(const TrajectoryStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "uots-trajectories 1\n" << store.size() << "\n";
  for (TrajId id = 0; id < store.size(); ++id) {
    const auto samples = store.SamplesOf(id);
    const auto& keys = store.KeywordsOf(id);
    out << "t " << samples.size() << " " << keys.size() << "\n";
    for (const Sample& s : samples) out << s.vertex << " " << s.time_s << "\n";
    for (size_t i = 0; i < keys.terms().size(); ++i) {
      if (i > 0) out << " ";
      out << keys.terms()[i];
    }
    out << "\n";
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<TrajectoryStore> LoadTrajectories(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || !StartsWith(line, "uots-trajectories")) {
    return Status::IOError("bad header in " + path);
  }
  size_t count = 0;
  if (!std::getline(in, line)) return Status::IOError("missing count");
  {
    std::istringstream is(line);
    if (!(is >> count)) return Status::IOError("bad count: " + line);
  }
  TrajectoryStore store;
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return Status::IOError("truncated file");
    std::istringstream hd(line);
    char tag = 0;
    size_t nsamples = 0, nkeys = 0;
    if (!(hd >> tag >> nsamples >> nkeys) || tag != 't') {
      return Status::IOError("bad trajectory header: " + line);
    }
    Trajectory traj;
    traj.samples.reserve(nsamples);
    for (size_t s = 0; s < nsamples; ++s) {
      if (!std::getline(in, line)) return Status::IOError("truncated samples");
      std::istringstream is(line);
      uint64_t v = 0;
      int64_t t = 0;
      if (!(is >> v >> t)) return Status::IOError("bad sample: " + line);
      traj.samples.push_back(
          Sample{static_cast<VertexId>(v), static_cast<int32_t>(t)});
    }
    if (!std::getline(in, line)) return Status::IOError("truncated keywords");
    {
      std::istringstream is(line);
      std::vector<TermId> terms;
      terms.reserve(nkeys);
      uint64_t t = 0;
      while (is >> t) terms.push_back(static_cast<TermId>(t));
      if (terms.size() != nkeys) {
        return Status::IOError("keyword count mismatch: " + line);
      }
      traj.keywords = KeywordSet(std::move(terms));
    }
    auto added = store.Add(traj);
    if (!added.ok()) return added.status();
  }
  return store;
}

}  // namespace uots

#include "traj/vertex_index.h"

#include <algorithm>
#include <cassert>

namespace uots {

VertexTrajectoryIndex::VertexTrajectoryIndex(const TrajectoryStore& store,
                                             size_t num_vertices) {
  // Two-pass counting sort over (vertex, traj) pairs, deduplicating
  // repeated visits of the same vertex within one trajectory.
  std::vector<std::pair<VertexId, TrajId>> pairs;
  pairs.reserve(store.TotalSamples());
  for (TrajId id = 0; id < store.size(); ++id) {
    for (const Sample& s : store.SamplesOf(id)) {
      assert(s.vertex < num_vertices);
      pairs.emplace_back(s.vertex, id);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  std::vector<uint64_t> offsets(num_vertices + 1, 0);
  for (const auto& [v, id] : pairs) ++offsets[v + 1];
  for (size_t v = 0; v < num_vertices; ++v) offsets[v + 1] += offsets[v];
  std::vector<TrajId> entries(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) entries[i] = pairs[i].second;
  offsets_ = std::move(offsets);
  entries_ = std::move(entries);
}

VertexTrajectoryIndex VertexTrajectoryIndex::FromColumns(
    ColumnVec<uint64_t> offsets, ColumnVec<TrajId> entries) {
  VertexTrajectoryIndex idx;
  idx.offsets_ = std::move(offsets);
  idx.entries_ = std::move(entries);
  return idx;
}

}  // namespace uots

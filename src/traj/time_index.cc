#include "traj/time_index.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace uots {

TimeIndex::TimeIndex(const TrajectoryStore& store) {
  std::vector<Entry> entries;
  entries.reserve(store.TotalSamples());
  for (TrajId id = 0; id < store.size(); ++id) {
    for (const Sample& s : store.SamplesOf(id)) {
      entries.push_back(Entry{s.time_s, id});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.traj < b.traj;
            });
  entries_ = std::move(entries);
}

TimeIndex TimeIndex::FromColumns(ColumnVec<Entry> entries) {
  TimeIndex idx;
  idx.entries_ = std::move(entries);
  return idx;
}

size_t TimeIndex::LowerBound(int32_t t) const {
  return static_cast<size_t>(
      std::lower_bound(entries_.begin(), entries_.end(), t,
                       [](const Entry& e, int32_t v) { return e.time_s < v; }) -
      entries_.begin());
}

void TemporalExpansion::Reset(int32_t t) {
  origin_ = t;
  lo_ = hi_ = index_->LowerBound(t);
  radius_ = 0.0;
  exhausted_ = index_->size() == 0;
  settled_count_ = 0;
}

bool TemporalExpansion::Step(TrajId* traj, double* dt) {
  const auto& entries = index_->entries();
  const bool has_left = lo_ > 0;
  const bool has_right = hi_ < entries.size();
  if (!has_left && !has_right) {
    exhausted_ = true;
    return false;
  }
  const double left_dt =
      has_left ? static_cast<double>(origin_) - entries[lo_ - 1].time_s
               : std::numeric_limits<double>::infinity();
  const double right_dt =
      has_right ? static_cast<double>(entries[hi_].time_s) - origin_
                : std::numeric_limits<double>::infinity();
  if (left_dt <= right_dt) {
    *traj = entries[--lo_].traj;
    *dt = left_dt;
  } else {
    *traj = entries[hi_++].traj;
    *dt = right_dt;
  }
  assert(*dt >= radius_);
  radius_ = *dt;
  ++settled_count_;
  return true;
}

}  // namespace uots

// Vertex -> trajectory inverted index.
//
// When a network expansion settles vertex v, the search must learn which
// trajectories pass through v. This index stores, per vertex, the sorted
// deduplicated list of trajectory ids containing the vertex — the network
// analogue of the posting lists the paper family stores per vertex/node for
// expansion-driven trajectory discovery.

#ifndef UOTS_TRAJ_VERTEX_INDEX_H_
#define UOTS_TRAJ_VERTEX_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "net/graph.h"
#include "traj/store.h"
#include "util/column_vec.h"

namespace uots {

/// \brief Immutable vertex -> trajectories index over one store.
class VertexTrajectoryIndex {
 public:
  /// Builds the index for `store` on a network with `num_vertices` vertices.
  VertexTrajectoryIndex(const TrajectoryStore& store, size_t num_vertices);

  /// \brief Reassembles the index from prebuilt CSR columns (e.g. views over
  /// validated snapshot sections); skips the counting sort entirely.
  static VertexTrajectoryIndex FromColumns(ColumnVec<uint64_t> offsets,
                                           ColumnVec<TrajId> entries);

  /// Ids of trajectories with a sample at `v` (ascending, deduplicated).
  std::span<const TrajId> TrajectoriesAt(VertexId v) const {
    return {entries_.data() + offsets_[v], entries_.data() + offsets_[v + 1]};
  }

  /// Number of (vertex, trajectory) postings.
  size_t TotalEntries() const { return entries_.size(); }

  /// Raw columns (snapshot persistence; see src/storage/).
  std::span<const uint64_t> offsets() const { return offsets_.span(); }
  std::span<const TrajId> entries() const { return entries_.span(); }

  size_t MemoryUsage() const { return Memory().total(); }
  MemoryBreakdown Memory() const {
    MemoryBreakdown m;
    m += offsets_.Memory();
    m += entries_.Memory();
    return m;
  }

 private:
  VertexTrajectoryIndex() = default;

  ColumnVec<uint64_t> offsets_;  // num_vertices + 1
  ColumnVec<TrajId> entries_;
};

}  // namespace uots

#endif  // UOTS_TRAJ_VERTEX_INDEX_H_

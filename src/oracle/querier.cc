#include "oracle/querier.h"

namespace uots {

OracleQuerier::OracleQuerier(const DistanceOracle& oracle)
    : oracle_(&oracle),
      fwd_dist_(oracle.NumVertices()),
      fwd_heap_(oracle.NumVertices()),
      bucket_head_(oracle.NumVertices()),
      row_of_(oracle.NumVertices()),
      up_dist_(oracle.NumVertices()),
      up_heap_(oracle.NumVertices()) {}

bool OracleQuerier::Stalled(uint32_t u, double d,
                            const DistanceField& dist) const {
  for (const OracleEdge& e : oracle_->UpNeighbors(u)) {
    const double lx = dist.Get(e.to);
    if (lx + e.weight < d) return true;
  }
  return false;
}

double OracleQuerier::Distance(VertexId s, VertexId t) {
  ++lookups_;
  if (s == t) return 0.0;
  // Both searches run in rank space (ids translate once, right here).
  // Forward side runs to exhaustion (upward search spaces are tiny); the
  // backward side then probes its labels and stops once its own frontier
  // key cannot beat the best meet found so far.
  const uint32_t rs = oracle_->RankOf(s);
  const uint32_t rt = oracle_->RankOf(t);
  UpwardSearch(rs, &fwd_dist_, &fwd_heap_, [](uint32_t, double) {});
  double best = kInfDistance;
  up_dist_.Reset();
  up_heap_.Reset();
  up_dist_.Set(rt, 0.0);
  up_heap_.Push(rt, 0.0);
  while (!up_heap_.empty()) {
    const auto [d, u] = up_heap_.Pop();
    if (d >= best) break;  // every later pop is at least this far
    const double f = fwd_dist_.Get(u);
    if (f != kInfDistance && f + d < best) best = f + d;
    if (Stalled(u, d, up_dist_)) continue;
    for (const OracleEdge& e : oracle_->UpNeighbors(u)) {
      const double nd = d + e.weight;
      const double old = up_dist_.Get(e.to);
      if (nd < old) {
        up_dist_.Set(e.to, nd);
        if (old == kInfDistance) {
          up_heap_.Push(e.to, nd);
        } else {
          up_heap_.DecreaseKey(e.to, nd);
        }
      }
    }
  }
  return best;
}

void OracleQuerier::BeginQuery(std::span<const VertexId> sources) {
  num_sources_ = sources.size();
  bucket_head_.Reset();
  bucket_pool_.clear();
  row_of_.Reset();
  row_pool_.clear();
  for (size_t i = 0; i < sources.size(); ++i) {
    UpwardSearch(oracle_->RankOf(sources[i]), &up_dist_, &up_heap_,
                 [&](uint32_t u, double d) {
                   const int32_t head = bucket_head_.Get(u, -1);
                   bucket_head_.Set(
                       u, static_cast<int32_t>(bucket_pool_.size()));
                   bucket_pool_.push_back(
                       BucketEntry{static_cast<uint32_t>(i), d, head});
                 });
  }
}

std::span<const double> OracleQuerier::DistancesTo(VertexId v) {
  if (row_of_.Has(v)) {
    return {row_pool_.data() + row_of_.Get(v), num_sources_};
  }
  const size_t base = row_pool_.size();
  row_pool_.resize(base + num_sources_, kInfDistance);
  row_of_.Set(v, static_cast<int64_t>(base));
  ++lookups_;
  UpwardSearch(oracle_->RankOf(v), &up_dist_, &up_heap_,
               [&](uint32_t u, double d) {
    for (int32_t e = bucket_head_.Get(u, -1); e >= 0;
         e = bucket_pool_[e].next) {
      const BucketEntry& b = bucket_pool_[e];
      double& slot = row_pool_[base + b.source];
      const double cand = b.dist + d;
      if (cand < slot) slot = cand;
    }
  });
  return {row_pool_.data() + base, num_sources_};
}

std::span<const double> OracleQuerier::MinDistancesTo(
    std::span<const VertexId> set) {
  ++lookups_;
  min_row_.assign(num_sources_, kInfDistance);
  up_dist_.Reset();
  up_heap_.Reset();
  for (const VertexId v : set) {
    const uint32_t r = oracle_->RankOf(v);
    if (up_dist_.Get(r) != 0.0) {  // skip duplicate set vertices
      up_dist_.Set(r, 0.0);
      up_heap_.Push(r, 0.0);
    }
  }
  RunUpward(&up_dist_, &up_heap_, [&](uint32_t u, double d) {
    for (int32_t e = bucket_head_.Get(u, -1); e >= 0;
         e = bucket_pool_[e].next) {
      const BucketEntry& b = bucket_pool_[e];
      const double cand = b.dist + d;
      if (cand < min_row_[b.source]) min_row_[b.source] = cand;
    }
  });
  return {min_row_.data(), num_sources_};
}

}  // namespace uots

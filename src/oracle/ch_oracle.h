// Contraction-hierarchy distance oracle over the road network.
//
// Offline, every vertex is assigned a rank by repeated contraction
// (edge-difference heuristic with lazy priority updates): contracting v
// removes it from an overlay graph and inserts shortcut arcs between its
// remaining neighbors wherever no witness path of equal-or-smaller length
// survives without v. The result is an *upward* graph: for each vertex,
// the original arcs and shortcuts leading to higher-ranked endpoints. On
// an undirected network that single upward CSR serves both directions of
// the bidirectional query kernel (oracle/querier.h), which answers exact
// sd(u, v) in microseconds independent of graph diameter.
//
// Exactness, not approximation: edge weights are floats (24-bit mantissa)
// accumulated in doubles (53-bit), so every path-length sum at realistic
// scales is computed without rounding. Sums of the same arc multiset are
// therefore bit-equal regardless of association order, which makes oracle
// distances *bitwise identical* to Dijkstra's settled labels — the
// property the search layer relies on to keep answers bit-identical with
// the oracle on or off.
//
// Layout: the upward CSR is stored in *rank space* — node r of the CSR is
// the vertex contracted r-th, and arc targets are rank ids too. Upward
// searches therefore walk monotonically increasing node ids and converge
// into the top of the hierarchy, which occupies the contiguous hot tail of
// the arrays; with the original-id layout every probe was a random access
// over the whole vertex universe and the kernel was memory-latency-bound.
// `ranks` maps original vertex id -> rank; queriers translate endpoints
// once on entry. Shortcut `via` vertices stay in original-id space (they
// name road vertices for path unpacking, not CSR nodes).
//
// The three columns (ranks, upward CSR offsets, upward arcs) are plain
// trivially-copyable arrays, so the oracle serializes as snapshot sections
// (storage/format.h, format v2) and loads back zero-copy via FromColumns.

#ifndef UOTS_ORACLE_CH_ORACLE_H_
#define UOTS_ORACLE_CH_ORACLE_H_

#include <cstdint>
#include <span>
#include <type_traits>

#include "net/graph.h"
#include "util/column_vec.h"
#include "util/status.h"

namespace uots {

/// \brief One upward arc of the hierarchy: an original road segment or a
/// contraction shortcut, pointing at a strictly higher-ranked vertex.
struct OracleEdge {
  VertexId to;     ///< higher-ranked endpoint, as a rank-space node id
  VertexId via;    ///< contracted middle vertex (shortcuts), original id;
                   ///< kInvalidVertex for original road segments
  double weight;   ///< exact double sum of the constituent float weights
};
static_assert(sizeof(OracleEdge) == 16, "oracle edge layout drifted");
static_assert(std::is_trivially_copyable_v<OracleEdge>,
              "oracle edges are persisted byte-for-byte in snapshots");

/// \brief Construction knobs.
struct OracleBuildOptions {
  /// Witness searches stop after settling this many vertices and add the
  /// shortcut conservatively. Redundant shortcuts cost query time, never
  /// correctness: their weight equals some real path, so they can only tie
  /// the minimum, not lower it.
  int witness_settle_limit = 256;
};

/// \brief Construction instrumentation (bench_oracle reports these).
struct OracleBuildStats {
  double seconds = 0.0;            ///< wall-clock construction time
  uint64_t shortcuts = 0;          ///< shortcut arcs added to the overlay
  uint64_t witness_searches = 0;   ///< bounded witness Dijkstras run
  uint64_t witness_settled = 0;    ///< vertices settled across all of them
};

/// \brief Immutable contraction hierarchy: ranks plus the upward CSR.
class DistanceOracle {
 public:
  /// Contracts every vertex of `g` and assembles the upward graph.
  /// Works on disconnected networks too (components never interact).
  static Result<DistanceOracle> Build(const RoadNetwork& g,
                                      const OracleBuildOptions& opts = {},
                                      OracleBuildStats* stats = nullptr);

  /// \brief Reassembles an oracle from prebuilt columns (e.g. views over
  /// validated snapshot sections) with no recomputation. The caller
  /// guarantees structural validity and backing-byte lifetime.
  static DistanceOracle FromColumns(ColumnVec<uint32_t> ranks,
                                    ColumnVec<uint64_t> up_offsets,
                                    ColumnVec<OracleEdge> up_edges);

  size_t NumVertices() const { return ranks_.size(); }
  size_t NumUpEdges() const { return up_edges_.size(); }
  /// Arcs that are contraction shortcuts rather than road segments (O(E)).
  size_t NumShortcuts() const;

  /// Contraction order of v; higher rank = contracted later.
  uint32_t RankOf(VertexId v) const { return ranks_[v]; }

  /// Upward arcs of rank-space node r (all targets are rank ids > r).
  std::span<const OracleEdge> UpNeighbors(uint32_t r) const {
    return {up_edges_.data() + up_offsets_[r],
            up_edges_.data() + up_offsets_[r + 1]};
  }

  /// Raw columns (snapshot persistence; see src/storage/).
  std::span<const uint32_t> ranks() const { return ranks_.span(); }
  std::span<const uint64_t> up_offsets() const { return up_offsets_.span(); }
  std::span<const OracleEdge> up_edges() const { return up_edges_.span(); }

  /// Structural self-check mirroring the snapshot loader's validation:
  /// ranks form a permutation, offsets span the arc array, every arc
  /// points at a strictly higher, in-range rank node with a positive
  /// finite weight, and per-node arc lists are strictly ascending by
  /// target. Used by tests and the `--oracle` build path.
  Status Validate() const;

  MemoryBreakdown Memory() const;

 private:
  DistanceOracle() = default;

  ColumnVec<uint32_t> ranks_;       ///< original vertex id -> rank node
  ColumnVec<uint64_t> up_offsets_;  ///< rank-indexed; size NumVertices()+1
  ColumnVec<OracleEdge> up_edges_;  ///< upward arcs, sorted by target per slice
};

}  // namespace uots

#endif  // UOTS_ORACLE_CH_ORACLE_H_

// Pluggable exact-distance source for the search layer.
//
// The UOTS searcher consults a DistanceProvider — when one is available —
// to resolve a candidate trajectory's per-source network distances exactly
// and immediately, instead of waiting for every expansion to reach it.
// The contract is strict: distances must be bitwise identical to what the
// incremental Dijkstra expansions would settle, so enabling a provider
// never changes answers, only the work needed to reach them.
//
// The one production implementation wraps the contraction-hierarchy
// querier. Providers hold per-thread scratch; construct one per engine.

#ifndef UOTS_ORACLE_DISTANCE_PROVIDER_H_
#define UOTS_ORACLE_DISTANCE_PROVIDER_H_

#include <memory>
#include <span>

#include "net/graph.h"
#include "oracle/querier.h"

namespace uots {

/// \brief Exact one-to-many network distances for one query at a time.
class DistanceProvider {
 public:
  virtual ~DistanceProvider() = default;

  virtual const char* name() const = 0;

  /// Starts a new query with the given source vertices.
  virtual void BeginQuery(std::span<const VertexId> sources) = 0;

  /// Exact sd(source_i, v) for every query source; the span (size m) is
  /// valid until the next DistancesTo call.
  virtual std::span<const double> DistancesTo(VertexId v) = 0;

  /// Exact min_{v in set} sd(source_i, v) for every query source in one
  /// shot — resolving a whole trajectory (its sample-vertex set) costs one
  /// search instead of |set|. The span (size m) is valid until the next
  /// MinDistancesTo call.
  virtual std::span<const double> MinDistancesTo(
      std::span<const VertexId> set) = 0;

  /// Exact pairwise sd(s, t); kInfDistance if disconnected.
  virtual double Distance(VertexId s, VertexId t) = 0;

  /// Drains the provider's lookup counter (for QueryStats::oracle_lookups).
  virtual int64_t TakeLookups() = 0;
};

/// \brief DistanceProvider backed by the contraction-hierarchy oracle.
class ChDistanceProvider final : public DistanceProvider {
 public:
  explicit ChDistanceProvider(const DistanceOracle& oracle)
      : querier_(oracle) {}

  const char* name() const override { return "ch-oracle"; }
  void BeginQuery(std::span<const VertexId> sources) override {
    querier_.BeginQuery(sources);
  }
  std::span<const double> DistancesTo(VertexId v) override {
    return querier_.DistancesTo(v);
  }
  std::span<const double> MinDistancesTo(
      std::span<const VertexId> set) override {
    return querier_.MinDistancesTo(set);
  }
  double Distance(VertexId s, VertexId t) override {
    return querier_.Distance(s, t);
  }
  int64_t TakeLookups() override { return querier_.TakeLookups(); }

 private:
  OracleQuerier querier_;
};

inline std::unique_ptr<DistanceProvider> MakeChProvider(
    const DistanceOracle& oracle) {
  return std::make_unique<ChDistanceProvider>(oracle);
}

}  // namespace uots

#endif  // UOTS_ORACLE_DISTANCE_PROVIDER_H_

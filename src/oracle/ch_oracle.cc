#include "oracle/ch_oracle.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/dijkstra.h"
#include "util/dary_heap.h"
#include "util/timer.h"

namespace uots {

namespace {

/// One live arc of the mutable overlay graph used during contraction.
struct OverlayArc {
  VertexId to;
  VertexId via;  ///< kInvalidVertex for original road segments
  double weight;
};

/// \brief The contraction state machine. Owns the overlay adjacency, the
/// lazy priority queue, and the witness-search scratch.
class Contractor {
 public:
  Contractor(const RoadNetwork& g, const OracleBuildOptions& opts,
             OracleBuildStats* stats)
      : g_(g),
        opts_(opts),
        stats_(stats),
        n_(g.NumVertices()),
        overlay_(n_),
        contracted_(n_, 0),
        deleted_neighbors_(n_, 0),
        ranks_(n_, 0),
        up_lists_(n_),
        witness_dist_(n_),
        witness_heap_(n_),
        queue_(n_) {
    for (VertexId v = 0; v < n_; ++v) {
      const auto nbrs = g.Neighbors(v);
      overlay_[v].reserve(nbrs.size());
      for (const AdjacencyEntry& e : nbrs) {
        overlay_[v].push_back(
            OverlayArc{e.to, kInvalidVertex, static_cast<double>(e.weight)});
      }
    }
  }

  void Run() {
    for (VertexId v = 0; v < n_; ++v) queue_.Push(v, Priority(v));
    uint32_t next_rank = 0;
    while (!queue_.empty()) {
      const VertexId v = queue_.Top().id;
      queue_.Pop();
      // Lazy update: the stored key may predate neighbor contractions.
      // Recompute; if the fresh priority no longer wins, requeue and try
      // the new top instead of contracting a stale minimum.
      const double p = Priority(v);
      if (!queue_.empty() && p > queue_.Top().key) {
        queue_.Push(v, p);
        continue;
      }
      Contract(v);
      ranks_[v] = next_rank++;
    }
  }

  std::vector<uint32_t> TakeRanks() { return std::move(ranks_); }
  std::vector<std::vector<OracleEdge>> TakeUpLists() {
    return std::move(up_lists_);
  }

 private:
  /// Live (uncontracted) neighbors of v with their current best arcs.
  std::vector<OverlayArc> LiveNeighbors(VertexId v) const {
    std::vector<OverlayArc> out;
    out.reserve(overlay_[v].size());
    for (const OverlayArc& a : overlay_[v]) {
      if (!contracted_[a.to]) out.push_back(a);
    }
    return out;
  }

  /// Inserts (or min-merges) the undirected overlay arc u <-> w.
  void AddOverlayArc(VertexId u, VertexId w, double weight, VertexId via) {
    const auto merge = [&](VertexId from, VertexId to) {
      for (OverlayArc& a : overlay_[from]) {
        if (a.to == to) {
          if (weight < a.weight) {
            a.weight = weight;
            a.via = via;
          }
          return;
        }
      }
      overlay_[from].push_back(OverlayArc{to, via, weight});
    };
    merge(u, w);
    merge(w, u);
  }

  /// Counts (and, when `commit`, materializes) the shortcuts required to
  /// contract v: one per neighbor pair (u, w) with no witness path of
  /// length <= w(u,v) + w(v,w) avoiding v in the remaining overlay.
  size_t SimulateContraction(VertexId v, bool commit) {
    const std::vector<OverlayArc> nbrs = LiveNeighbors(v);
    size_t shortcuts = 0;
    for (size_t ui = 0; ui + 1 < nbrs.size(); ++ui) {
      const VertexId u = nbrs[ui].to;
      const double w_uv = nbrs[ui].weight;
      double limit = 0.0;
      for (size_t wi = ui + 1; wi < nbrs.size(); ++wi) {
        limit = std::max(limit, w_uv + nbrs[wi].weight);
      }
      WitnessSearch(u, v, limit);
      for (size_t wi = ui + 1; wi < nbrs.size(); ++wi) {
        const VertexId w = nbrs[wi].to;
        const double through_v = w_uv + nbrs[wi].weight;
        // Any label (settled or tentative) names a real path, so a label
        // <= through_v is a witness even if the search stopped early.
        if (witness_dist_.Get(w) <= through_v) continue;
        ++shortcuts;
        if (commit) AddOverlayArc(u, w, through_v, v);
      }
    }
    return shortcuts;
  }

  /// Bounded Dijkstra from `source` over the live overlay, never entering
  /// `excluded` (the vertex being contracted), stopping past `limit` or
  /// after the settle cap. Labels land in witness_dist_.
  void WitnessSearch(VertexId source, VertexId excluded, double limit) {
    if (stats_ != nullptr) ++stats_->witness_searches;
    witness_dist_.Reset();
    witness_heap_.Reset();
    witness_dist_.Set(source, 0.0);
    witness_heap_.Push(source, 0.0);
    int settled = 0;
    while (!witness_heap_.empty()) {
      const auto [d, x] = witness_heap_.Pop();
      if (d > limit) break;
      if (++settled > opts_.witness_settle_limit) break;
      if (stats_ != nullptr) ++stats_->witness_settled;
      for (const OverlayArc& a : overlay_[x]) {
        if (contracted_[a.to] || a.to == excluded) continue;
        const double nd = d + a.weight;
        const double old = witness_dist_.Get(a.to);
        if (nd < old) {
          witness_dist_.Set(a.to, nd);
          if (old == kInfDistance) {
            witness_heap_.Push(a.to, nd);
          } else {
            witness_heap_.DecreaseKey(a.to, nd);
          }
        }
      }
    }
  }

  /// Edge difference plus a deleted-neighbors term: prefer vertices whose
  /// contraction adds few shortcuts and whose neighborhood is still mostly
  /// intact (spreads contraction evenly instead of chewing through one
  /// region first).
  double Priority(VertexId v) {
    const std::vector<OverlayArc> nbrs = LiveNeighbors(v);
    const size_t shortcuts = SimulateContraction(v, /*commit=*/false);
    return 2.0 * (static_cast<double>(shortcuts) -
                  static_cast<double>(nbrs.size())) +
           static_cast<double>(deleted_neighbors_[v]);
  }

  void Contract(VertexId v) {
    const size_t added = SimulateContraction(v, /*commit=*/true);
    if (stats_ != nullptr) stats_->shortcuts += added;
    // v's live arcs become its upward arcs: every remaining neighbor is
    // contracted later, hence ranked higher.
    std::vector<OracleEdge>& up = up_lists_[v];
    for (const OverlayArc& a : overlay_[v]) {
      if (contracted_[a.to]) continue;
      up.push_back(OracleEdge{a.to, a.via, a.weight});
      ++deleted_neighbors_[a.to];
    }
    // Targets are still original ids here; Build() renumbers them to rank
    // space and sorts each slice once the full order is known.
    contracted_[v] = 1;
    overlay_[v].clear();
    overlay_[v].shrink_to_fit();
  }

  const RoadNetwork& g_;
  const OracleBuildOptions opts_;
  OracleBuildStats* stats_;
  const size_t n_;
  std::vector<std::vector<OverlayArc>> overlay_;
  std::vector<uint8_t> contracted_;
  std::vector<uint32_t> deleted_neighbors_;
  std::vector<uint32_t> ranks_;
  std::vector<std::vector<OracleEdge>> up_lists_;
  DistanceField witness_dist_;
  VertexHeap witness_heap_;
  DaryHeap<4> queue_;
};

}  // namespace

Result<DistanceOracle> DistanceOracle::Build(const RoadNetwork& g,
                                             const OracleBuildOptions& opts,
                                             OracleBuildStats* stats) {
  if (opts.witness_settle_limit <= 0) {
    return Status::InvalidArgument(
        "oracle witness_settle_limit must be positive");
  }
  WallTimer timer;
  Contractor contractor(g, opts, stats);
  contractor.Run();

  const size_t n = g.NumVertices();
  std::vector<uint32_t> ranks = contractor.TakeRanks();
  std::vector<std::vector<OracleEdge>> up_lists = contractor.TakeUpLists();

  // Assemble the CSR in rank space: slice r holds the upward arcs of the
  // vertex contracted r-th, with targets renumbered to rank ids (see the
  // header — this keeps the hierarchy's hot top contiguous in memory).
  std::vector<uint64_t> offsets(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    offsets[ranks[v] + 1] = up_lists[v].size();
  }
  for (size_t r = 0; r < n; ++r) offsets[r + 1] += offsets[r];
  std::vector<OracleEdge> edges(static_cast<size_t>(offsets[n]));
  for (size_t v = 0; v < n; ++v) {
    size_t at = static_cast<size_t>(offsets[ranks[v]]);
    for (const OracleEdge& e : up_lists[v]) {
      edges[at++] = OracleEdge{ranks[e.to], e.via, e.weight};
    }
    std::sort(edges.begin() + static_cast<ptrdiff_t>(offsets[ranks[v]]),
              edges.begin() + static_cast<ptrdiff_t>(at),
              [](const OracleEdge& a, const OracleEdge& b) {
                return a.to < b.to;
              });
  }

  DistanceOracle oracle;
  oracle.ranks_ = std::move(ranks);
  oracle.up_offsets_ = std::move(offsets);
  oracle.up_edges_ = std::move(edges);
  if (stats != nullptr) stats->seconds = timer.ElapsedMillis() / 1e3;
  UOTS_RETURN_NOT_OK(oracle.Validate());
  return oracle;
}

DistanceOracle DistanceOracle::FromColumns(ColumnVec<uint32_t> ranks,
                                           ColumnVec<uint64_t> up_offsets,
                                           ColumnVec<OracleEdge> up_edges) {
  DistanceOracle oracle;
  oracle.ranks_ = std::move(ranks);
  oracle.up_offsets_ = std::move(up_offsets);
  oracle.up_edges_ = std::move(up_edges);
  return oracle;
}

size_t DistanceOracle::NumShortcuts() const {
  size_t n = 0;
  for (const OracleEdge& e : up_edges_.span()) {
    if (e.via != kInvalidVertex) ++n;
  }
  return n;
}

Status DistanceOracle::Validate() const {
  const size_t n = ranks_.size();
  if (up_offsets_.size() != n + 1) {
    return Status::InvalidArgument("oracle offsets do not match vertex count");
  }
  if (up_offsets_.front() != 0 || up_offsets_.back() != up_edges_.size()) {
    return Status::InvalidArgument("oracle offsets do not span the arc array");
  }
  std::vector<uint8_t> seen(n, 0);
  for (size_t v = 0; v < n; ++v) {
    if (ranks_[v] >= n || seen[ranks_[v]] != 0) {
      return Status::InvalidArgument("oracle ranks are not a permutation");
    }
    seen[ranks_[v]] = 1;
  }
  for (size_t v = 0; v < n; ++v) {
    if (up_offsets_[v + 1] < up_offsets_[v]) {
      return Status::InvalidArgument("oracle offsets decrease");
    }
    for (uint64_t i = up_offsets_[v]; i < up_offsets_[v + 1]; ++i) {
      const OracleEdge& e = up_edges_[i];
      // Rank-space CSR: "upward" is simply a larger node id.
      if (e.to >= n || e.to <= v) {
        return Status::InvalidArgument("oracle arc is not upward");
      }
      if (e.via != kInvalidVertex && e.via >= n) {
        return Status::InvalidArgument("oracle shortcut via out of range");
      }
      if (!std::isfinite(e.weight) || e.weight <= 0.0) {
        return Status::InvalidArgument("oracle arc weight not positive/finite");
      }
      if (i > up_offsets_[v] && up_edges_[i - 1].to >= e.to) {
        return Status::InvalidArgument("oracle arc slice not ascending");
      }
    }
  }
  return Status::OK();
}

MemoryBreakdown DistanceOracle::Memory() const {
  MemoryBreakdown m;
  m += ranks_.Memory();
  m += up_offsets_.Memory();
  m += up_edges_.Memory();
  return m;
}

}  // namespace uots

// Bidirectional upward-search query kernel over the contraction hierarchy.
//
// Pairwise: Distance(s, t) runs an upward Dijkstra from each endpoint
// (one upward CSR serves both directions on an undirected network) with
// stall-on-demand, and returns the minimum meet-vertex label sum.
//
// One-to-many (the search layer's workhorse): BeginQuery(sources) runs one
// upward search per query location and scatters the settled labels into
// per-vertex buckets; DistancesTo(v) then runs a single upward search from
// v and probes the buckets at every settled vertex, yielding all m exact
// distances sd(o_i, v) at once. Rows are memoized per vertex for the
// duration of the query (hub vertices shared by many trajectories are
// resolved once), with O(1) cross-query reset via version tags.
//
// Exactness: every label is a double sum of float arc weights (computed
// without rounding at realistic scales; see oracle/ch_oracle.h), and the
// returned distance is a min over such sums — bitwise identical to what a
// plain Dijkstra on the road network would settle. Stalled vertices keep
// their labels (valid upper bounds); the optimal meet vertex is never
// stalled, so minima stay exact.

#ifndef UOTS_ORACLE_QUERIER_H_
#define UOTS_ORACLE_QUERIER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "net/dijkstra.h"
#include "oracle/ch_oracle.h"
#include "util/dary_heap.h"
#include "util/versioned.h"

namespace uots {

/// \brief Per-thread query scratch over one (const, shared) oracle.
class OracleQuerier {
 public:
  explicit OracleQuerier(const DistanceOracle& oracle);

  /// Exact network distance sd(s, t); kInfDistance if disconnected.
  double Distance(VertexId s, VertexId t);

  /// Prepares the one-to-many state for a new query's source set.
  void BeginQuery(std::span<const VertexId> sources);

  /// All m exact distances sd(source_i, v), memoized per vertex until the
  /// next BeginQuery. The span is valid until the next DistancesTo call.
  std::span<const double> DistancesTo(VertexId v);

  /// All m exact set distances min_{v in set} sd(source_i, v) — the
  /// spatial kernel of candidate scoring (min over a trajectory's sample
  /// vertices) — via ONE multi-source upward search: every set vertex
  /// seeds the heap at distance zero, labels merge to min_{v} d_up(v, u),
  /// and the bucket probe at each settled node folds the per-source
  /// minima. One search replaces |set| separate rows; the span is valid
  /// until the next MinDistancesTo call. Exact by the same argument as
  /// Distance(): every label sum names a real path, and the optimal
  /// (sample, meet) pair is settled with its exact double sum because the
  /// multi-source label at the optimal meet never exceeds the optimal
  /// single-source label there (and stalling only prunes dominated paths).
  std::span<const double> MinDistancesTo(std::span<const VertexId> set);

  /// Drains the lookup counter (distinct rows computed + pairwise calls).
  int64_t TakeLookups() {
    const int64_t n = lookups_;
    lookups_ = 0;
    return n;
  }

  /// Vertices settled by upward searches since construction (kernel-cost
  /// telemetry: settles per lookup is the hierarchy-quality figure).
  int64_t SettledVertices() const { return settled_; }

 private:
  /// True when rank node u's label `d` is dominated through a higher
  /// neighbor already labeled by the same search — such nodes cannot
  /// improve any shortest up-down path, so their out-arcs are not relaxed.
  bool Stalled(uint32_t u, double d, const DistanceField& dist) const;

  /// Upward Dijkstra from rank node s, invoking visit(u, label) for every
  /// settled node (stalled ones included; their labels are valid upper
  /// bounds). All ids here are rank-space (oracle/ch_oracle.h): searches
  /// ascend through increasing node ids into the cache-hot top of the
  /// hierarchy, which is what makes the kernel fast.
  template <typename Visitor>
  void UpwardSearch(uint32_t s, DistanceField* dist, VertexHeap* heap,
                    Visitor&& visit) {
    dist->Reset();
    heap->Reset();
    dist->Set(s, 0.0);
    heap->Push(s, 0.0);
    RunUpward(dist, heap, visit);
  }

  /// Drains an already-seeded heap to exhaustion (multi-source searches
  /// seed several nodes at zero before calling this).
  template <typename Visitor>
  void RunUpward(DistanceField* dist, VertexHeap* heap, Visitor&& visit) {
    while (!heap->empty()) {
      const auto [d, u] = heap->Pop();
      ++settled_;
      visit(u, d);
      if (Stalled(u, d, *dist)) continue;
      for (const OracleEdge& e : oracle_->UpNeighbors(u)) {
        const double nd = d + e.weight;
        const double old = dist->Get(e.to);
        if (nd < old) {
          dist->Set(e.to, nd);
          if (old == kInfDistance) {
            heap->Push(e.to, nd);
          } else {
            heap->DecreaseKey(e.to, nd);
          }
        }
      }
    }
  }

  const DistanceOracle* oracle_;

  // Pairwise scratch.
  DistanceField fwd_dist_;
  VertexHeap fwd_heap_;

  // One-to-many scratch. Buckets are a pooled linked list headed by a
  // version-tagged per-vertex slot, so BeginQuery resets them in O(1).
  struct BucketEntry {
    uint32_t source;
    double dist;
    int32_t next;
  };
  VersionedArray<int32_t> bucket_head_;
  std::vector<BucketEntry> bucket_pool_;
  size_t num_sources_ = 0;
  VersionedArray<int64_t> row_of_;  ///< vertex -> base index into row_pool_
  std::vector<double> row_pool_;    ///< memoized rows, m doubles each
  DistanceField up_dist_;
  VertexHeap up_heap_;
  std::vector<double> min_row_;  ///< MinDistancesTo result, m doubles

  int64_t lookups_ = 0;
  int64_t settled_ = 0;
};

}  // namespace uots

#endif  // UOTS_ORACLE_QUERIER_H_

// Trip assembly: stitch per-location candidate segments into connected
// trips over the road network.
//
// Given the harvested candidates C_i for each query location o_i, the
// assembler
//
//  1. fixes the visit order — the query order under the `ordered`
//     constraint, otherwise a deterministic nearest-neighbor tour over the
//     exact location-to-location network distances (start at o_1, always
//     hop to the nearest unvisited location, ties to the smaller index);
//  2. runs a k-best dynamic program over positions x candidates: a trip
//     picks one segment per position, consecutive picks joined by the
//     shortest-path connector exit -> entry, which must be finite and
//     within the gap budget when one is set;
//  3. scores each pick sequence with the SimU machinery — the per-position
//     contribution lambda*exp(-d(o_i, seg)/sigma) + (1-lambda)*SimT is
//     position-separable, so the DP maximizes exactly the final score —
//     and resolves ties by the lexicographically smallest (traj, begin)
//     sequence.
//
// Connector distances come from the DistanceProvider when the database
// carries an oracle, else from a local multi-target Dijkstra; the provider
// contract makes the two bitwise identical, so answers do not depend on
// which path ran. When no gap budget constrains the DP, connectors are
// only computed for the k winning trips.

#ifndef UOTS_TRIP_ASSEMBLER_H_
#define UOTS_TRIP_ASSEMBLER_H_

#include <vector>

#include "core/model.h"
#include "net/dijkstra.h"
#include "oracle/distance_provider.h"
#include "trip/harvester.h"
#include "trip/trip_query.h"

namespace uots {

/// \brief Per-engine assembly scratch (Dijkstra fallback state).
class TripAssembler {
 public:
  explicit TripAssembler(const RoadNetwork& g);

  /// \brief Assembles the top-k trips from `cands[i]` (candidates of
  /// locations[i]). `provider` may be null (Dijkstra fallback; bitwise
  /// identical results). Appends nothing when any location has no
  /// candidates or no feasible stitch exists.
  void Assemble(const TripQuery& q,
                std::vector<std::vector<SegmentCandidate>> cands,
                DistanceProvider* provider, QueryStats* stats,
                std::vector<AssembledTrip>* out);

 private:
  /// Deterministic visit order over location indices (see file comment).
  std::vector<uint32_t> VisitOrder(const TripQuery& q,
                                   DistanceProvider* provider,
                                   QueryStats* stats);

  /// Exact sd(source, t) for every t in `targets`, into `*out`.
  /// Multi-target Dijkstra with early exit once all targets settle.
  void FallbackDistances(VertexId source, std::span<const VertexId> targets,
                         QueryStats* stats, std::vector<double>* out);

  /// dist[s][t] = sd(sources[s], targets[t]) via provider or fallback.
  void DistanceMatrix(std::span<const VertexId> sources,
                      std::span<const VertexId> targets,
                      DistanceProvider* provider, QueryStats* stats,
                      std::vector<std::vector<double>>* dist);

  double PairDistance(VertexId s, VertexId t, DistanceProvider* provider,
                      QueryStats* stats);

  const RoadNetwork* g_;
  DistanceField dist_;
  VertexHeap heap_;
};

}  // namespace uots

#endif  // UOTS_TRIP_ASSEMBLER_H_

// Trip-assembly query and result types.
//
// A trip query asks for a *constructed* trip instead of a ranked list of
// existing trajectories: the answer stitches segments of indexed
// trajectories into one connected route over the road network that covers
// every query location, scored with the same SimU machinery as retrieval
// so the numbers are comparable. Each answer carries full provenance
// (source trajectory id + sample range per segment) and the exact network
// distance of every connector between consecutive segments.
//
// This header is intentionally *types only* (no library dependency beyond
// the net/text/traj/util leaves) so the cache layer can canonicalize trip
// queries (cache/query_key.h) without linking the trip engine.

#ifndef UOTS_TRIP_TRIP_QUERY_H_
#define UOTS_TRIP_TRIP_QUERY_H_

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "text/keyword_set.h"
#include "traj/trajectory.h"
#include "util/counters.h"
#include "util/status.h"

namespace uots {

/// Trip queries share the retrieval bound on location count.
inline constexpr size_t kMaxTripLocations = 64;

/// \brief A trip-construction query.
///
/// The traveler names the places the trip must cover (`locations`) and the
/// qualities it should have (`keywords`); the engine harvests trajectory
/// segments near each location and stitches the best combination into one
/// connected trip.
struct TripQuery {
  std::vector<VertexId> locations;
  KeywordSet keywords;
  /// SimU mixing weight (1 = purely spatial, 0 = purely textual).
  double lambda = 0.5;
  /// Number of assembled trips to return, descending by score.
  int k = 1;
  /// Ordered-visit constraint: cover locations[0], then locations[1], ...
  /// in the given order. Unordered trips use a deterministic
  /// nearest-neighbor visit order instead.
  bool ordered = false;
  /// Category-hierarchy keyword matching: a query term also matches any
  /// descendant term in the dataset's category tree.
  bool use_categories = false;
  /// Maximum network distance, in meters, allowed for the connector
  /// between consecutive segments. 0 = unlimited.
  double gap_budget_m = 0.0;
  /// Candidate segments harvested per query location (S).
  int segments_per_location = 8;
  /// Half-width of the sample window cut around the anchor sample: the
  /// segment spans samples [anchor - window, anchor + window].
  int window = 4;
};

/// \brief One harvested trajectory segment placed in an assembled trip.
struct TripSegment {
  /// Source trajectory (global id over base + delta).
  TrajId traj = kInvalidTraj;
  /// Half-open sample range [begin, end) of `traj` forming the segment.
  uint32_t begin = 0;
  uint32_t end = 0;
  /// First / last vertex of the segment (samples[begin] / samples[end-1]).
  VertexId entry = kInvalidVertex;
  VertexId exit = kInvalidVertex;
  /// Exact network distance d(o_i, traj) from the covered query location.
  double loc_distance = 0.0;
  /// Network distance of the shortest-path connector from the *previous*
  /// segment's exit to this segment's entry; 0 for the first segment.
  double connector_m = 0.0;

  friend bool operator==(const TripSegment& a, const TripSegment& b) {
    return a.traj == b.traj && a.begin == b.begin && a.end == b.end &&
           a.entry == b.entry && a.exit == b.exit &&
           a.loc_distance == b.loc_distance && a.connector_m == b.connector_m;
  }
};

/// \brief One assembled trip: one segment per query location, in visit
/// order, consecutive segments joined by shortest-path connectors.
struct AssembledTrip {
  double score = 0.0;        ///< SimU = lambda*spatial + (1-lambda)*textual
  double spatial_sim = 0.0;  ///< mean exp(-d(o_i, seg_i)/sigma) over locations
  double textual_sim = 0.0;  ///< mean SimT(query, keywords(seg_i.traj))
  double connector_total_m = 0.0;  ///< sum of all connector distances
  std::vector<TripSegment> segments;

  friend bool operator==(const AssembledTrip& a, const AssembledTrip& b) {
    return a.score == b.score && a.spatial_sim == b.spatial_sim &&
           a.textual_sim == b.textual_sim &&
           a.connector_total_m == b.connector_total_m &&
           a.segments == b.segments;
  }
};

/// \brief Top-k assembled trips plus instrumentation.
struct TripResult {
  std::vector<AssembledTrip> trips;  ///< descending by (score, id-sequence)
  QueryStats stats;
};

/// Validates a trip query against a network of `num_vertices` vertices.
inline Status ValidateTripQuery(const TripQuery& q, size_t num_vertices) {
  if (q.locations.empty()) {
    return Status::InvalidArgument("trip query needs at least one location");
  }
  if (q.locations.size() > kMaxTripLocations) {
    return Status::InvalidArgument("too many trip locations (max 64)");
  }
  for (VertexId v : q.locations) {
    if (v >= num_vertices) {
      return Status::InvalidArgument("trip location out of range");
    }
  }
  if (q.lambda < 0.0 || q.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0,1]");
  }
  if (q.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (q.segments_per_location < 1 || q.segments_per_location > 64) {
    return Status::InvalidArgument("segments_per_location must be in [1,64]");
  }
  if (q.window < 0 || q.window > 1024) {
    return Status::InvalidArgument("window must be in [0,1024]");
  }
  if (q.gap_budget_m < 0.0) {
    return Status::InvalidArgument("gap_budget_m must be >= 0");
  }
  return Status::OK();
}

}  // namespace uots

#endif  // UOTS_TRIP_TRIP_QUERY_H_

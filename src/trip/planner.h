// TripPlanner — the stateful (per-thread) trip-assembly engine.
//
// Pipeline per query: expand keywords through the category tree (when the
// query opts in), harvest candidate segments per location over the merged
// base+delta view, assemble the k best connected trips, score with SimU.
// Answers are deterministic bit-for-bit across oracle on/off (harvest
// never touches the oracle; connector distances are bitwise identical by
// the provider contract), result cache on/off (the cache stores the
// planner's exact output), and pre/post-compaction (global trajectory ids
// are stable across the base+delta -> base fold).

#ifndef UOTS_TRIP_PLANNER_H_
#define UOTS_TRIP_PLANNER_H_

#include <memory>
#include <vector>

#include "core/database.h"
#include "ingest/merged_view.h"
#include "oracle/distance_provider.h"
#include "trip/assembler.h"
#include "trip/category_tree.h"
#include "trip/harvester.h"
#include "trip/trip_query.h"
#include "util/cancel.h"

namespace uots {

/// \brief Tuning knobs for the trip planner.
struct TripPlannerOptions {
  /// Consult the database's distance oracle (when attached) for visit
  /// ordering and connector distances. Bitwise identical either way.
  bool use_oracle = true;
};

/// \brief Per-thread trip-assembly engine over one database.
class TripPlanner {
 public:
  explicit TripPlanner(const TrajectoryDatabase& db,
                       const TripPlannerOptions& opts = {});

  /// Answers `query`; invalid queries yield an error; a fired cancel token
  /// yields kDeadlineExceeded at the next location boundary.
  Result<TripResult> Plan(const TripQuery& query);

  /// Installs (nullptr clears) the cooperative cancel/deadline token.
  void set_cancel(const CancelToken* cancel) { cancel_ = cancel; }

  /// Replaces the category hierarchy (default: the canonical synthetic
  /// tree over the database vocabulary — see CategoryTree::Synthetic).
  void set_categories(CategoryTree tree) { categories_ = std::move(tree); }
  const CategoryTree& categories() const { return categories_; }

  const char* name() const { return "TRIP"; }

 private:
  const TrajectoryDatabase* db_;
  TripPlannerOptions opts_;
  CategoryTree categories_;
  MergedView view_;
  SegmentHarvester harvester_;
  TripAssembler assembler_;
  /// Oracle front-end for the assembler; null without an oracle.
  std::unique_ptr<DistanceProvider> provider_;
  const CancelToken* cancel_ = nullptr;
};

}  // namespace uots

#endif  // UOTS_TRIP_PLANNER_H_

// Trip-query workload generator (benches, load client, drills).
//
// Same philosophy as core/workload.h: queries are seeded from existing
// trajectories so every query has harvestable segments nearby, and the
// whole batch is a pure function of the options (client --verify replays
// the identical workload in-process against a cold planner).

#ifndef UOTS_TRIP_WORKLOAD_H_
#define UOTS_TRIP_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "trip/trip_query.h"
#include "util/status.h"

namespace uots {

/// \brief Knobs for MakeTripWorkload.
struct TripWorkloadOptions {
  int num_queries = 20;
  /// Query locations per trip (m).
  int num_locations = 4;
  double lambda = 0.5;
  int k = 3;
  /// Random-walk steps applied to each seed sample (location perturbation).
  int location_walk_steps = 3;
  /// Query keywords per query (before deduplication).
  int num_keywords = 5;
  /// Probability a keyword is random noise instead of a seed keyword.
  double keyword_noise = 0.3;
  /// Fraction of queries carrying the ordered-visit constraint.
  double ordered_fraction = 0.5;
  /// Fraction of queries using category-hierarchy keyword matching.
  double category_fraction = 0.5;
  /// Connector gap budget in meters (0 = unlimited) for every query.
  double gap_budget_m = 0.0;
  int segments_per_location = 8;
  int window = 4;
  uint64_t seed = 11;
};

/// Generates a deterministic batch of trip queries over `db`.
Result<std::vector<TripQuery>> MakeTripWorkload(const TrajectoryDatabase& db,
                                                const TripWorkloadOptions& opts);

}  // namespace uots

#endif  // UOTS_TRIP_WORKLOAD_H_

#include "trip/harvester.h"

#include <algorithm>

namespace uots {

void SegmentHarvester::Harvest(const MergedView& view,
                               const SimilarityModel& model,
                               const KeywordSet& expanded_query,
                               VertexId location, int max_segments, int window,
                               QueryStats* stats,
                               std::vector<SegmentCandidate>* out) {
  if (seen_.size() < view.NumTrajectories()) {
    seen_.Resize(view.NumTrajectories());
  }
  seen_.Reset();
  expansion_.Reset(location);

  const int64_t pops0 = expansion_.heap_pops();
  const int64_t pushes0 = expansion_.heap_pushes();
  const int64_t decreases0 = expansion_.heap_decreases();
  const int64_t settled0 = expansion_.settled_count();

  int found = 0;
  VertexId v = kInvalidVertex;
  double dist = 0.0;
  while (found < max_segments && expansion_.Step(&v, &dist)) {
    const MergedView::Postings postings = view.TrajectoriesAt(v);
    for (const auto segment : {postings.base, postings.delta}) {
      for (TrajId traj : segment) {
        if (seen_.Has(traj)) continue;
        seen_.Set(traj, 1);
        ++stats->trajectory_hits;
        EmitCandidate(view, model, expanded_query, traj, v, dist, window, out);
        if (++found >= max_segments) break;
      }
      if (found >= max_segments) break;
    }
  }

  stats->settled_vertices += expansion_.settled_count() - settled0;
  stats->heap_pops += expansion_.heap_pops() - pops0;
  stats->heap_pushes += expansion_.heap_pushes() - pushes0;
  stats->heap_decreases += expansion_.heap_decreases() - decreases0;
}

void SegmentHarvester::EmitCandidate(const MergedView& view,
                                     const SimilarityModel& model,
                                     const KeywordSet& expanded_query,
                                     TrajId traj, VertexId settle_vertex,
                                     double dist, int window,
                                     std::vector<SegmentCandidate>* out) {
  const std::span<const Sample> samples = view.SamplesOf(traj);
  // Anchor = the first sample at the settled vertex: the earliest point of
  // the trip at its closest approach to the query location.
  uint32_t anchor = 0;
  for (; anchor < samples.size(); ++anchor) {
    if (samples[anchor].vertex == settle_vertex) break;
  }

  SegmentCandidate c;
  c.traj = traj;
  c.begin = anchor >= static_cast<uint32_t>(window) ? anchor - window : 0;
  c.end = std::min<uint64_t>(samples.size(), uint64_t{anchor} + window + 1);
  c.entry = samples[c.begin].vertex;
  c.exit = samples[c.end - 1].vertex;
  c.distance = dist;
  c.decay = model.SpatialDecay(dist);
  c.text = model.textual().Score(expanded_query, view.KeywordsOf(traj));
  out->push_back(c);
}

}  // namespace uots

#include "trip/workload.h"

#include <algorithm>

#include "util/rng.h"

namespace uots {

Result<std::vector<TripQuery>> MakeTripWorkload(
    const TrajectoryDatabase& db, const TripWorkloadOptions& opts) {
  if (db.store().empty()) {
    return Status::InvalidArgument("database has no trajectories");
  }
  if (opts.num_queries < 0 || opts.num_locations < 1 ||
      opts.num_locations > static_cast<int>(kMaxTripLocations)) {
    return Status::InvalidArgument("bad trip workload shape");
  }
  if (opts.lambda < 0.0 || opts.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0,1]");
  }
  if (opts.keyword_noise < 0.0 || opts.keyword_noise > 1.0 ||
      opts.ordered_fraction < 0.0 || opts.ordered_fraction > 1.0 ||
      opts.category_fraction < 0.0 || opts.category_fraction > 1.0) {
    return Status::InvalidArgument("workload fractions must be in [0,1]");
  }
  Rng rng(opts.seed);
  const auto& g = db.network();
  const auto& store = db.store();
  const size_t vocab =
      db.vocabulary().size() > 0 ? db.vocabulary().size() : 1000;

  std::vector<TripQuery> out;
  out.reserve(opts.num_queries);
  for (int qi = 0; qi < opts.num_queries; ++qi) {
    const TrajId seed_id = static_cast<TrajId>(rng.Uniform(store.size()));
    const auto samples = store.SamplesOf(seed_id);
    TripQuery q;
    q.lambda = opts.lambda;
    q.k = opts.k;
    q.ordered = rng.Bernoulli(opts.ordered_fraction);
    q.use_categories = rng.Bernoulli(opts.category_fraction);
    q.gap_budget_m = opts.gap_budget_m;
    q.segments_per_location = opts.segments_per_location;
    q.window = opts.window;

    // Locations: evenly spaced seed samples, each perturbed by a short
    // random walk — the traveler wants a trip *like* one that exists.
    for (int li = 0; li < opts.num_locations; ++li) {
      const size_t pick =
          samples.size() <= 1
              ? 0
              : (li * (samples.size() - 1)) / (opts.num_locations > 1
                                                   ? opts.num_locations - 1
                                                   : 1);
      VertexId v = samples[std::min(pick, samples.size() - 1)].vertex;
      for (int s = 0; s < opts.location_walk_steps; ++s) {
        const auto nbrs = g.Neighbors(v);
        if (nbrs.empty()) break;
        v = nbrs[rng.Uniform(nbrs.size())].to;
      }
      q.locations.push_back(v);
    }

    const auto& seed_keys = store.KeywordsOf(seed_id).terms();
    std::vector<TermId> keys;
    for (int ki = 0; ki < opts.num_keywords; ++ki) {
      if (!seed_keys.empty() && !rng.Bernoulli(opts.keyword_noise)) {
        keys.push_back(seed_keys[rng.Uniform(seed_keys.size())]);
      } else {
        keys.push_back(static_cast<TermId>(rng.Uniform(vocab)));
      }
    }
    q.keywords = KeywordSet(std::move(keys));
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace uots

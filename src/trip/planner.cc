#include "trip/planner.h"

#include "util/timer.h"

namespace uots {

TripPlanner::TripPlanner(const TrajectoryDatabase& db,
                         const TripPlannerOptions& opts)
    : db_(&db),
      opts_(opts),
      categories_(CategoryTree::Synthetic(db.vocabulary())),
      harvester_(db.network()),
      assembler_(db.network()) {
  if (opts_.use_oracle && db.oracle() != nullptr) {
    provider_ = MakeChProvider(*db.oracle());
  }
}

Result<TripResult> TripPlanner::Plan(const TripQuery& query) {
  UOTS_RETURN_NOT_OK(ValidateTripQuery(query, db_->network().NumVertices()));

  WallTimer timer;
  TripResult result;
  view_.Bind(*db_);

  KeywordSet matched = query.keywords;
  {
    ScopedPhase phase(&result.stats, QueryPhase::kTextualFilter);
    if (query.use_categories) matched = categories_.ExpandQuery(matched);
  }

  std::vector<std::vector<SegmentCandidate>> cands(query.locations.size());
  {
    ScopedPhase phase(&result.stats, QueryPhase::kTripHarvest);
    for (size_t i = 0; i < query.locations.size(); ++i) {
      if (cancel_ != nullptr && cancel_->ShouldAbort()) {
        return Status::DeadlineExceeded("trip query cancelled during harvest");
      }
      harvester_.Harvest(view_, db_->model(), matched, query.locations[i],
                         query.segments_per_location, query.window,
                         &result.stats, &cands[i]);
      result.stats.candidates += static_cast<int64_t>(cands[i].size());
    }
  }
  // Distinct trajectories touched: per-location dedup only, so a
  // trajectory harvested for two locations counts twice in hits but the
  // candidates counter above is the per-location candidate total.
  result.stats.visited_trajectories = result.stats.trajectory_hits;

  {
    ScopedPhase phase(&result.stats, QueryPhase::kTripAssemble);
    assembler_.Assemble(query, std::move(cands), provider_.get(),
                        &result.stats, &result.trips);
  }

  if (provider_ != nullptr) {
    result.stats.oracle_lookups += provider_->TakeLookups();
  }
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace uots

#include "trip/assembler.h"

#include <algorithm>
#include <cmath>

namespace uots {

namespace {

/// A partial pick sequence in the k-best DP. `W` accumulates the
/// per-position SimU contribution left-to-right in visit order; the two
/// component sums are carried the same way so the final reported score is
/// computed once, canonically, from them.
struct Partial {
  double W = 0.0;
  double sum_decay = 0.0;
  double sum_text = 0.0;
  std::vector<uint16_t> picks;  ///< candidate index per position so far
};

/// DP ordering: higher W first, ties to the lexicographically smaller pick
/// sequence (candidate lists are sorted by (traj, begin), so index order is
/// id-sequence order).
bool BetterPartial(const Partial& a, const Partial& b) {
  if (a.W != b.W) return a.W > b.W;
  return std::lexicographical_compare(a.picks.begin(), a.picks.end(),
                                      b.picks.begin(), b.picks.end());
}

/// Inserts `p` into the at-most-k list `list` kept sorted by BetterPartial.
void InsertBounded(std::vector<Partial>* list, Partial p, size_t k) {
  auto it = std::lower_bound(
      list->begin(), list->end(), p,
      [](const Partial& a, const Partial& b) { return BetterPartial(a, b); });
  if (static_cast<size_t>(it - list->begin()) >= k) return;
  list->insert(it, std::move(p));
  if (list->size() > k) list->pop_back();
}

}  // namespace

TripAssembler::TripAssembler(const RoadNetwork& g)
    : g_(&g), dist_(g.NumVertices()), heap_(g.NumVertices()) {}

void TripAssembler::FallbackDistances(VertexId source,
                                      std::span<const VertexId> targets,
                                      QueryStats* stats,
                                      std::vector<double>* out) {
  out->assign(targets.size(), kInfDistance);
  // Count distinct unsettled targets via a temporary membership pass over
  // the (<= 64-entry) target list; per-settle work is one binary probe.
  std::vector<VertexId> distinct(targets.begin(), targets.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  size_t remaining = distinct.size();

  dist_.Reset();
  heap_.Reset();
  dist_.Set(source, 0.0);
  heap_.Push(source, 0.0);
  ++stats->heap_pushes;
  while (!heap_.empty() && remaining > 0) {
    const auto [d, v] = heap_.Pop();
    ++stats->heap_pops;
    ++stats->settled_vertices;
    if (std::binary_search(distinct.begin(), distinct.end(), v)) {
      --remaining;
      for (size_t j = 0; j < targets.size(); ++j) {
        if (targets[j] == v) (*out)[j] = d;
      }
    }
    const auto neighbors = g_->Neighbors(v);
    for (const auto& e : neighbors) dist_.Prefetch(e.to);
    for (const auto& e : neighbors) {
      const double old = dist_.Get(e.to);
      const double nd = d + e.weight;
      if (nd < old) {
        dist_.Set(e.to, nd);
        if (old == kInfDistance) {
          heap_.Push(e.to, nd);
          ++stats->heap_pushes;
        } else {
          heap_.DecreaseKey(e.to, nd);
          ++stats->heap_decreases;
        }
      }
    }
  }
}

void TripAssembler::DistanceMatrix(std::span<const VertexId> sources,
                                   std::span<const VertexId> targets,
                                   DistanceProvider* provider,
                                   QueryStats* stats,
                                   std::vector<std::vector<double>>* dist) {
  dist->assign(sources.size(), {});
  if (provider != nullptr) {
    provider->BeginQuery(sources);
    for (auto& row : *dist) row.resize(targets.size());
    for (size_t t = 0; t < targets.size(); ++t) {
      const std::span<const double> col = provider->DistancesTo(targets[t]);
      for (size_t s = 0; s < sources.size(); ++s) (*dist)[s][t] = col[s];
    }
    return;
  }
  for (size_t s = 0; s < sources.size(); ++s) {
    FallbackDistances(sources[s], targets, stats, &(*dist)[s]);
  }
}

double TripAssembler::PairDistance(VertexId s, VertexId t,
                                   DistanceProvider* provider,
                                   QueryStats* stats) {
  if (provider != nullptr) return provider->Distance(s, t);
  const VertexId target[1] = {t};
  std::vector<double> d;
  FallbackDistances(s, target, stats, &d);
  return d[0];
}

std::vector<uint32_t> TripAssembler::VisitOrder(const TripQuery& q,
                                                DistanceProvider* provider,
                                                QueryStats* stats) {
  const size_t m = q.locations.size();
  std::vector<uint32_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = static_cast<uint32_t>(i);
  if (q.ordered || m <= 2) return order;  // NN from index 0 is identity at m=2

  std::vector<std::vector<double>> d;
  DistanceMatrix(q.locations, q.locations, provider, stats, &d);
  std::vector<uint8_t> visited(m, 0);
  visited[0] = 1;
  uint32_t cur = 0;
  for (size_t step = 1; step < m; ++step) {
    uint32_t best = static_cast<uint32_t>(-1);
    for (uint32_t j = 0; j < m; ++j) {
      // Strict < with ascending j: ties resolve to the smaller index.
      if (!visited[j] && (best == static_cast<uint32_t>(-1) ||
                          d[cur][j] < d[cur][best])) {
        best = j;
      }
    }
    visited[best] = 1;
    order[step] = best;
    cur = best;
  }
  return order;
}

void TripAssembler::Assemble(const TripQuery& q,
                             std::vector<std::vector<SegmentCandidate>> cands,
                             DistanceProvider* provider, QueryStats* stats,
                             std::vector<AssembledTrip>* out) {
  const size_t m = q.locations.size();
  for (const auto& c : cands) {
    if (c.empty()) return;  // a location with no reachable trajectory
  }

  const std::vector<uint32_t> order = VisitOrder(q, provider, stats);

  // Candidate lists in visit order, each canonically sorted by (traj,
  // begin) so DP pick indexes compare as id sequences.
  std::vector<std::vector<SegmentCandidate>*> C(m);
  for (size_t p = 0; p < m; ++p) {
    C[p] = &cands[order[p]];
    std::sort(C[p]->begin(), C[p]->end(),
              [](const SegmentCandidate& a, const SegmentCandidate& b) {
                return a.traj != b.traj ? a.traj < b.traj : a.begin < b.begin;
              });
  }

  const size_t k = static_cast<size_t>(q.k);
  const bool bounded = q.gap_budget_m > 0.0;

  // k-best DP: lists[c] = the k best partial sequences ending in candidate
  // c of the current position.
  std::vector<std::vector<Partial>> lists(C[0]->size());
  for (size_t c = 0; c < C[0]->size(); ++c) {
    const SegmentCandidate& seg = (*C[0])[c];
    Partial p;
    p.W = SimilarityModel::Combine(q.lambda, seg.decay, seg.text);
    p.sum_decay = seg.decay;
    p.sum_text = seg.text;
    p.picks.push_back(static_cast<uint16_t>(c));
    lists[c].push_back(std::move(p));
  }

  std::vector<VertexId> exits, entries;
  for (size_t p = 1; p < m; ++p) {
    std::vector<std::vector<double>> conn;
    if (bounded) {
      exits.clear();
      entries.clear();
      for (const auto& seg : *C[p - 1]) exits.push_back(seg.exit);
      for (const auto& seg : *C[p]) entries.push_back(seg.entry);
      DistanceMatrix(exits, entries, provider, stats, &conn);
    }
    std::vector<std::vector<Partial>> next(C[p]->size());
    for (size_t c = 0; c < C[p]->size(); ++c) {
      const SegmentCandidate& seg = (*C[p])[c];
      const double w = SimilarityModel::Combine(q.lambda, seg.decay, seg.text);
      for (size_t prev = 0; prev < lists.size(); ++prev) {
        if (bounded && !(conn[prev][c] <= q.gap_budget_m)) continue;
        for (const Partial& base : lists[prev]) {
          Partial ext;
          ext.W = base.W + w;
          ext.sum_decay = base.sum_decay + seg.decay;
          ext.sum_text = base.sum_text + seg.text;
          ext.picks = base.picks;
          ext.picks.push_back(static_cast<uint16_t>(c));
          InsertBounded(&next[c], std::move(ext), k);
        }
      }
    }
    lists = std::move(next);
  }

  // Gather the final pool, rank by the canonical (score, id-sequence)
  // order, and materialize the k winners with their connectors.
  std::vector<Partial> pool;
  for (auto& list : lists) {
    for (auto& p : list) pool.push_back(std::move(p));
  }
  const double dm = static_cast<double>(m);
  std::sort(pool.begin(), pool.end(), [&](const Partial& a, const Partial& b) {
    const double sa = SimilarityModel::Combine(q.lambda, a.sum_decay / dm,
                                               a.sum_text / dm);
    const double sb = SimilarityModel::Combine(q.lambda, b.sum_decay / dm,
                                               b.sum_text / dm);
    if (sa != sb) return sa > sb;
    return std::lexicographical_compare(a.picks.begin(), a.picks.end(),
                                        b.picks.begin(), b.picks.end());
  });

  for (const Partial& p : pool) {
    if (out->size() >= k) break;
    AssembledTrip trip;
    trip.spatial_sim = p.sum_decay / dm;
    trip.textual_sim = p.sum_text / dm;
    trip.score = SimilarityModel::Combine(q.lambda, trip.spatial_sim,
                                          trip.textual_sim);
    bool connected = true;
    for (size_t pos = 0; pos < m; ++pos) {
      const SegmentCandidate& seg = (*C[pos])[p.picks[pos]];
      TripSegment s;
      s.traj = seg.traj;
      s.begin = seg.begin;
      s.end = seg.end;
      s.entry = seg.entry;
      s.exit = seg.exit;
      s.loc_distance = seg.distance;
      if (pos > 0) {
        const SegmentCandidate& prev = (*C[pos - 1])[p.picks[pos - 1]];
        s.connector_m = PairDistance(prev.exit, seg.entry, provider, stats);
        if (!std::isfinite(s.connector_m)) {
          connected = false;
          break;
        }
        trip.connector_total_m += s.connector_m;
      }
      trip.segments.push_back(s);
    }
    if (connected) out->push_back(std::move(trip));
  }
}

}  // namespace uots

// Candidate-segment harvest: the spatial front end of trip assembly.
//
// For each query location o_i, a resumable network expansion (the same
// engine the UOTS searcher schedules) settles vertices in nondecreasing
// distance; the first settle of a trajectory's vertex yields the exact
// d(o_i, tau) and the sample the trip passes closest to the location. A
// window of samples around that anchor becomes a candidate segment. The
// merged base+delta view supplies the postings, so live-ingested trips
// participate the moment their generation is published.
//
// Harvesting never consults the distance oracle — candidate sets (and
// therefore final answers) are identical with and without one attached;
// the oracle only accelerates the assembler's connector distances, which
// are bitwise equal to Dijkstra by the provider contract.

#ifndef UOTS_TRIP_HARVESTER_H_
#define UOTS_TRIP_HARVESTER_H_

#include <vector>

#include "core/model.h"
#include "ingest/merged_view.h"
#include "net/expansion.h"
#include "trip/trip_query.h"
#include "util/versioned.h"

namespace uots {

/// \brief One harvested segment: a sample window of one trajectory
/// anchored at the vertex where the expansion first touched it.
struct SegmentCandidate {
  TrajId traj = kInvalidTraj;
  uint32_t begin = 0;  ///< half-open sample range [begin, end)
  uint32_t end = 0;
  VertexId entry = kInvalidVertex;  ///< samples[begin].vertex
  VertexId exit = kInvalidVertex;   ///< samples[end-1].vertex
  double distance = 0.0;            ///< exact d(o_i, traj)
  double decay = 0.0;               ///< exp(-distance / sigma)
  double text = 0.0;                ///< SimT(expanded query, keywords(traj))
};

/// \brief Per-engine harvest scratch (expansion + dedup array).
class SegmentHarvester {
 public:
  explicit SegmentHarvester(const RoadNetwork& g)
      : expansion_(g), seen_(0) {}

  /// \brief Harvests up to `max_segments` distinct-trajectory segments for
  /// `location`, in expansion (nondecreasing-distance) order, appending to
  /// `*out`. Deterministic: settle order and posting order are both fixed.
  void Harvest(const MergedView& view, const SimilarityModel& model,
               const KeywordSet& expanded_query, VertexId location,
               int max_segments, int window, QueryStats* stats,
               std::vector<SegmentCandidate>* out);

 private:
  void EmitCandidate(const MergedView& view, const SimilarityModel& model,
                     const KeywordSet& expanded_query, TrajId traj,
                     VertexId settle_vertex, double dist, int window,
                     std::vector<SegmentCandidate>* out);

  NetworkExpansion expansion_;
  /// traj id -> already harvested for the current location (O(1) reset).
  VersionedArray<int8_t> seen_;
};

}  // namespace uots

#endif  // UOTS_TRIP_HARVESTER_H_

// Category hierarchy over vocabulary terms.
//
// "Sequenced Route Query with Semantic Hierarchy" answers route queries
// whose keywords are categories: a query term like "restaurant" should
// match any trajectory tagged with a descendant like "ramen". We model the
// hierarchy as a forest over TermIds (each term has at most one parent)
// and implement matching by *query expansion*: ExpandQuery() returns the
// query terms plus all their descendants, after which the unchanged SimT
// machinery scores trajectories against the expanded set. Expansion keeps
// the hot scoring path identical to retrieval and makes category matching
// a pure, deterministic preprocessing step.
//
// A tree is loaded with the dataset ("child parent" lines referencing term
// strings) or derived synthetically as a pure function of the vocabulary
// size — the latter is what the generators and the wire `--verify` path
// use, so a cold in-process rebuild always reconstructs the same tree the
// server holds.

#ifndef UOTS_TRIP_CATEGORY_TREE_H_
#define UOTS_TRIP_CATEGORY_TREE_H_

#include <string_view>
#include <vector>

#include "text/keyword_set.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace uots {

/// \brief Immutable parent/children forest over TermIds.
class CategoryTree {
 public:
  /// An empty tree: every term is its own root; ExpandQuery is identity.
  CategoryTree() = default;

  /// \brief The canonical synthetic hierarchy for a vocabulary of n terms:
  /// term 0 is the root and parent(i) = (i-1)/8 — a complete 8-ary tree.
  /// A pure function of vocabulary size, so any process holding the same
  /// vocabulary derives bit-for-bit the same expansion.
  static CategoryTree Synthetic(const Vocabulary& vocab);

  /// \brief Parses "child parent" lines (term strings, whitespace
  /// separated; blank lines and lines starting with '#' are skipped).
  /// Fails on unknown terms, reassigned parents, or cycles.
  static Result<CategoryTree> Parse(std::string_view text,
                                    const Vocabulary& vocab);

  /// Number of terms the tree spans (0 for the empty tree).
  size_t size() const { return parent_.size(); }

  /// Parent of `t`, or kInvalidTerm for roots / out-of-range terms.
  TermId ParentOf(TermId t) const {
    return t < parent_.size() ? parent_[t] : kInvalidTerm;
  }

  /// Direct children of `t` (ascending).
  std::span<const TermId> ChildrenOf(TermId t) const {
    if (t >= parent_.size()) return {};
    return {children_.data() + child_offsets_[t],
            children_.data() + child_offsets_[t + 1]};
  }

  /// \brief Query terms plus every descendant term (the category-match
  /// closure). Terms outside the tree pass through unchanged. The result
  /// is a normalized KeywordSet, so downstream SimT scoring is identical
  /// to a retrieval query that had listed the descendants explicitly.
  KeywordSet ExpandQuery(const KeywordSet& query) const;

 private:
  void BuildChildren();

  std::vector<TermId> parent_;          ///< parent_[t] or kInvalidTerm (root)
  std::vector<uint32_t> child_offsets_;  ///< CSR offsets, size size()+1
  std::vector<TermId> children_;         ///< CSR payload, ascending per node
};

}  // namespace uots

#endif  // UOTS_TRIP_CATEGORY_TREE_H_

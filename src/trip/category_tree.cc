#include "trip/category_tree.h"

#include <algorithm>
#include <sstream>
#include <string>

namespace uots {

CategoryTree CategoryTree::Synthetic(const Vocabulary& vocab) {
  CategoryTree tree;
  const size_t n = vocab.size();
  tree.parent_.resize(n, kInvalidTerm);
  for (size_t i = 1; i < n; ++i) {
    tree.parent_[i] = static_cast<TermId>((i - 1) / 8);
  }
  tree.BuildChildren();
  return tree;
}

Result<CategoryTree> CategoryTree::Parse(std::string_view text,
                                         const Vocabulary& vocab) {
  CategoryTree tree;
  tree.parent_.resize(vocab.size(), kInvalidTerm);
  std::istringstream lines{std::string(text)};
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string child, parent;
    if (!(fields >> child) || child[0] == '#') continue;
    if (!(fields >> parent)) {
      return Status::InvalidArgument("category line needs 'child parent': " +
                                     line);
    }
    const TermId c = vocab.Lookup(child);
    const TermId p = vocab.Lookup(parent);
    if (c == kInvalidTerm || p == kInvalidTerm) {
      return Status::InvalidArgument("unknown category term in: " + line);
    }
    if (c == p) return Status::InvalidArgument("self-parent term: " + child);
    if (tree.parent_[c] != kInvalidTerm) {
      return Status::InvalidArgument("term has two parents: " + child);
    }
    tree.parent_[c] = p;
  }
  // Cycle check: every term must reach a root within size() steps.
  for (TermId t = 0; t < tree.parent_.size(); ++t) {
    TermId cur = t;
    size_t steps = 0;
    while (cur != kInvalidTerm) {
      if (++steps > tree.parent_.size()) {
        return Status::InvalidArgument("category hierarchy has a cycle");
      }
      cur = tree.parent_[cur];
    }
  }
  tree.BuildChildren();
  return tree;
}

void CategoryTree::BuildChildren() {
  const size_t n = parent_.size();
  child_offsets_.assign(n + 1, 0);
  size_t num_children = 0;
  for (TermId t = 0; t < n; ++t) {
    if (parent_[t] != kInvalidTerm) {
      ++child_offsets_[parent_[t] + 1];
      ++num_children;
    }
  }
  for (size_t i = 1; i <= n; ++i) child_offsets_[i] += child_offsets_[i - 1];
  children_.resize(num_children);
  std::vector<uint32_t> cursor(child_offsets_.begin(), child_offsets_.end() - 1);
  // Iterating t ascending fills each node's child slice in ascending order.
  for (TermId t = 0; t < n; ++t) {
    if (parent_[t] != kInvalidTerm) children_[cursor[parent_[t]]++] = t;
  }
}

KeywordSet CategoryTree::ExpandQuery(const KeywordSet& query) const {
  if (parent_.empty()) return query;
  std::vector<TermId> expanded(query.terms().begin(), query.terms().end());
  // BFS over descendants; KeywordSet normalization dedups shared subtrees.
  std::vector<TermId> frontier(query.terms().begin(), query.terms().end());
  while (!frontier.empty()) {
    const TermId t = frontier.back();
    frontier.pop_back();
    for (TermId child : ChildrenOf(t)) {
      expanded.push_back(child);
      frontier.push_back(child);
    }
  }
  return KeywordSet(std::move(expanded));
}

}  // namespace uots

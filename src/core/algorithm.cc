#include "core/algorithm.h"

#include "core/brute_force.h"
#include "core/euclid_baseline.h"
#include "core/search.h"
#include "core/text_first.h"

namespace uots {

const char* ToString(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kBruteForce:
      return "BF";
    case AlgorithmKind::kTextFirst:
      return "TF";
    case AlgorithmKind::kUots:
      return "UOTS";
    case AlgorithmKind::kUotsNoHeuristic:
      return "UOTS-w/o-h";
    case AlgorithmKind::kUotsSequential:
      return "UOTS-seq";
    case AlgorithmKind::kEuclidean:
      return "EU";
  }
  return "unknown";
}

std::unique_ptr<SearchAlgorithm> CreateAlgorithm(
    const TrajectoryDatabase& db, AlgorithmKind kind,
    const UotsSearchOptions& uots_opts) {
  switch (kind) {
    case AlgorithmKind::kBruteForce:
      return std::make_unique<BruteForceSearch>(db);
    case AlgorithmKind::kTextFirst:
      return std::make_unique<TextFirstSearch>(db);
    case AlgorithmKind::kUots: {
      UotsSearchOptions o = uots_opts;
      o.scheduling = SchedulingPolicy::kHeuristic;
      return std::make_unique<UotsSearcher>(db, o);
    }
    case AlgorithmKind::kUotsNoHeuristic: {
      UotsSearchOptions o = uots_opts;
      o.scheduling = SchedulingPolicy::kRoundRobin;
      return std::make_unique<UotsSearcher>(db, o);
    }
    case AlgorithmKind::kUotsSequential: {
      UotsSearchOptions o = uots_opts;
      o.scheduling = SchedulingPolicy::kSequential;
      return std::make_unique<UotsSearcher>(db, o);
    }
    case AlgorithmKind::kEuclidean:
      return std::make_unique<EuclideanSearch>(db);
  }
  return nullptr;
}

}  // namespace uots

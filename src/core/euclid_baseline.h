// Euclidean-space variant ("EU") — an *approximate* comparator.
//
// Replaces every network distance d(o_i, tau) with the straight-line
// distance to the nearest sample point. This is how Euclidean trajectory
// search (e.g. BCT) would score the query; comparing its ranking against
// the exact network ranking quantifies the error of ignoring the road
// network — the motivation for running UOTS in spatial networks.

#ifndef UOTS_CORE_EUCLID_BASELINE_H_
#define UOTS_CORE_EUCLID_BASELINE_H_

#include "core/algorithm.h"

namespace uots {

/// \brief Euclidean brute-force searcher.
class EuclideanSearch : public SearchAlgorithm {
 public:
  explicit EuclideanSearch(const TrajectoryDatabase& db) : db_(&db) {}

  Result<SearchResult> Search(const UotsQuery& query) override;

  const char* name() const override { return "EU"; }

 private:
  const TrajectoryDatabase* db_;
};

/// Fraction of ids shared by two result lists (overlap@k); 1.0 = identical
/// sets. Used by the Euclidean-error experiment (A2).
double ResultOverlap(const std::vector<ScoredTrajectory>& a,
                     const std::vector<ScoredTrajectory>& b);

}  // namespace uots

#endif  // UOTS_CORE_EUCLID_BASELINE_H_

// The UOTS similarity model (DESIGN.md §1, §5.1-5.2).
//
//   SimU(q, tau) = lambda * SimS(q, tau) + (1 - lambda) * SimT(q, tau)
//   SimS(q, tau) = (1/m) * sum_i exp(-d(o_i, tau) / sigma)
//   SimT(q, tau) = set similarity of keywords (Jaccard by default)
//
// sigma converts meters into decay units; with the default 2 km, a
// trajectory passing 2 km from a query location contributes e^-1 ~ 0.37.

#ifndef UOTS_CORE_MODEL_H_
#define UOTS_CORE_MODEL_H_

#include <cmath>
#include <span>

#include "text/similarity.h"

namespace uots {

/// \brief Model configuration.
struct SimilarityOptions {
  /// Spatial decay scale in meters.
  double sigma_m = 2000.0;
  /// Temporal decay scale in seconds (three-domain extension,
  /// core/temporal.h): a 30-minute offset contributes e^-1.
  double sigma_s = 1800.0;
  /// Which textual set-similarity to use for SimT.
  TextualMeasure measure = TextualMeasure::kJaccard;
};

/// \brief Evaluates the UOTS similarity components.
class SimilarityModel {
 public:
  explicit SimilarityModel(const SimilarityOptions& opts = {})
      : sigma_m_(opts.sigma_m), sigma_s_(opts.sigma_s), textual_(opts.measure) {}

  /// exp(-d/sigma): the contribution of one query location at distance d.
  double SpatialDecay(double d) const { return std::exp(-d / sigma_m_); }

  /// exp(-dt/sigma_s): the contribution of one query time at offset dt.
  double TemporalDecay(double dt_seconds) const {
    return std::exp(-dt_seconds / sigma_s_);
  }

  /// SimP (temporal similarity) from the per-time offsets min_i |t - t_i|.
  double TemporalSim(std::span<const double> offsets) const {
    if (offsets.empty()) return 0.0;
    double sum = 0.0;
    for (double dt : offsets) sum += TemporalDecay(dt);
    return sum / static_cast<double>(offsets.size());
  }

  /// SimS from the m per-location network distances d(o_i, tau).
  double SpatialSim(std::span<const double> distances) const {
    if (distances.empty()) return 0.0;
    double sum = 0.0;
    for (double d : distances) sum += SpatialDecay(d);
    return sum / static_cast<double>(distances.size());
  }

  /// SimU from the two components.
  static double Combine(double lambda, double spatial, double textual) {
    return lambda * spatial + (1.0 - lambda) * textual;
  }

  double sigma_m() const { return sigma_m_; }
  double sigma_s() const { return sigma_s_; }
  TextualSimilarity& textual() { return textual_; }
  const TextualSimilarity& textual() const { return textual_; }

 private:
  double sigma_m_;
  double sigma_s_;
  TextualSimilarity textual_;
};

}  // namespace uots

#endif  // UOTS_CORE_MODEL_H_

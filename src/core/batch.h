// Parallel batch execution of query workloads.
//
// UOTS per-query searches are independent; a trip-recommendation service
// parallelizes across queries. The executor shards a workload over a
// thread pool, one engine instance per worker (engines hold scratch state
// and are not thread-safe; the database is const-shared).

#ifndef UOTS_CORE_BATCH_H_
#define UOTS_CORE_BATCH_H_

#include <cstddef>
#include <vector>

#include "core/algorithm.h"
#include "util/histogram.h"

namespace uots {

/// \brief Batch execution configuration.
struct BatchOptions {
  AlgorithmKind algorithm = AlgorithmKind::kUots;
  UotsSearchOptions uots;
  int threads = 1;
  /// Relative deadline for the whole batch in milliseconds; <= 0 disables
  /// it. All shards share one CancelToken armed with this deadline: when it
  /// expires, every shard stops at its engine's next round boundary and the
  /// batch returns kDeadlineExceeded reporting how many queries completed.
  double deadline_ms = 0.0;
};

/// \brief Configuration for a single RunQuery call.
struct QueryOptions {
  AlgorithmKind algorithm = AlgorithmKind::kUots;
  UotsSearchOptions uots;
  /// Relative deadline in milliseconds; <= 0 disables it. A query past its
  /// deadline aborts at the engine's next round boundary with
  /// kDeadlineExceeded (UOTS and BF poll; see SearchAlgorithm::set_cancel).
  double deadline_ms = 0.0;
};

/// Runs one query, constructing a fresh engine for the call. This is the
/// convenience entry point for services and tools; a server that answers
/// many queries should cache one engine per worker and install its own
/// CancelToken instead (engines hold reusable scratch state).
Result<SearchResult> RunQuery(const TrajectoryDatabase& db,
                              const UotsQuery& query,
                              const QueryOptions& opts = {});

/// \brief Per-worker breakdown of a batch run.
struct ShardStats {
  /// Shard index, dense in [0, shards).
  int shard = 0;
  /// Half-open query range [begin, end) ASSIGNED to this shard. On an
  /// aborted run the shard may have executed fewer — `completed` is the
  /// count actually finished (always from `begin`, in order).
  size_t begin = 0;
  size_t end = 0;
  /// Queries this shard actually completed (== end - begin when OK).
  size_t completed = 0;
  /// Why the shard stopped: OK (range done), the query's own error,
  /// kCancelled (a sibling shard failed first), or kDeadlineExceeded.
  Status status;
  /// Summed counters for the shard's completed queries.
  QueryStats stats;
  /// Wall time of this shard's loop alone.
  double wall_seconds = 0.0;
};

/// \brief Aggregate outcome of a batch run.
struct BatchResult {
  /// Overall outcome. OK when every query completed; otherwise the first
  /// real per-query error (by shard index, with the workload index in the
  /// message), or kDeadlineExceeded reporting how many queries completed.
  /// Never kCancelled — that only appears on sibling shards' ShardStats.
  Status status;
  /// Per-query answers, in workload order. On a failed run, entries for
  /// queries that never executed are empty; completed ones are kept.
  std::vector<std::vector<ScoredTrajectory>> answers;
  /// Queries that actually completed (sum of ShardStats::completed).
  size_t completed = 0;
  /// Summed per-query counters over completed queries.
  QueryStats total;
  /// Per-worker breakdown, indexed by shard.
  std::vector<ShardStats> shards;
  /// Per-query latency distribution (one sample per completed query —
  /// including queries from shards that later failed or aborted).
  LatencyHistogram latency;
  /// End-to-end wall time of the batch (max over workers, not sum).
  double wall_seconds = 0.0;

  double QueriesPerSecond() const {
    return wall_seconds > 0.0 ? answers.size() / wall_seconds : 0.0;
  }
};

/// \brief Runs `queries` against `db`, returning the full breakdown even on
/// failure.
///
/// A real query failure (invalid query, engine error) cancels the shared
/// token: sibling shards stop at their next query boundary with a
/// kCancelled shard status, distinct from the failing shard's own error.
/// With BatchOptions::deadline_ms set, expiry stops all shards with
/// kDeadlineExceeded instead. Either way every completed query's latency
/// and stats are merged (into the result and MetricsRegistry's
/// "batch.query_latency") — partial work is reported, not dropped.
BatchResult RunBatchDetailed(const TrajectoryDatabase& db,
                             const std::vector<UotsQuery>& queries,
                             const BatchOptions& opts);

/// Runs `queries` against `db`; fails on the first invalid query. The
/// failing query's workload index is prepended to the error message.
/// Latencies are also merged into MetricsRegistry::Global() under
/// "batch.query_latency". Thin wrapper over RunBatchDetailed that turns a
/// non-OK BatchResult::status into an error Result.
Result<BatchResult> RunBatch(const TrajectoryDatabase& db,
                             const std::vector<UotsQuery>& queries,
                             const BatchOptions& opts);

}  // namespace uots

#endif  // UOTS_CORE_BATCH_H_

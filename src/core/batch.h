// Parallel batch execution of query workloads.
//
// UOTS per-query searches are independent; a trip-recommendation service
// parallelizes across queries. The executor shards a workload over a
// thread pool, one engine instance per worker (engines hold scratch state
// and are not thread-safe; the database is const-shared).

#ifndef UOTS_CORE_BATCH_H_
#define UOTS_CORE_BATCH_H_

#include <cstddef>
#include <vector>

#include "core/algorithm.h"
#include "util/histogram.h"

namespace uots {

/// \brief Batch execution configuration.
struct BatchOptions {
  AlgorithmKind algorithm = AlgorithmKind::kUots;
  UotsSearchOptions uots;
  int threads = 1;
};

/// \brief Configuration for a single RunQuery call.
struct QueryOptions {
  AlgorithmKind algorithm = AlgorithmKind::kUots;
  UotsSearchOptions uots;
  /// Relative deadline in milliseconds; <= 0 disables it. A query past its
  /// deadline aborts at the engine's next round boundary with
  /// kDeadlineExceeded (UOTS and BF poll; see SearchAlgorithm::set_cancel).
  double deadline_ms = 0.0;
};

/// Runs one query, constructing a fresh engine for the call. This is the
/// convenience entry point for services and tools; a server that answers
/// many queries should cache one engine per worker and install its own
/// CancelToken instead (engines hold reusable scratch state).
Result<SearchResult> RunQuery(const TrajectoryDatabase& db,
                              const UotsQuery& query,
                              const QueryOptions& opts = {});

/// \brief Per-worker breakdown of a batch run.
struct ShardStats {
  /// Shard index, dense in [0, shards).
  int shard = 0;
  /// Half-open query range [begin, end) this shard executed.
  size_t begin = 0;
  size_t end = 0;
  /// Summed counters for the shard's queries.
  QueryStats stats;
  /// Wall time of this shard's loop alone.
  double wall_seconds = 0.0;
};

/// \brief Aggregate outcome of a batch run.
struct BatchResult {
  /// Per-query answers, in workload order.
  std::vector<std::vector<ScoredTrajectory>> answers;
  /// Summed per-query counters.
  QueryStats total;
  /// Per-worker breakdown, indexed by shard.
  std::vector<ShardStats> shards;
  /// Per-query latency distribution (one sample per query).
  LatencyHistogram latency;
  /// End-to-end wall time of the batch (max over workers, not sum).
  double wall_seconds = 0.0;

  double QueriesPerSecond() const {
    return wall_seconds > 0.0 ? answers.size() / wall_seconds : 0.0;
  }
};

/// Runs `queries` against `db`; fails on the first invalid query. The
/// failing query's workload index is prepended to the error message.
/// Latencies are also merged into MetricsRegistry::Global() under
/// "batch.query_latency".
Result<BatchResult> RunBatch(const TrajectoryDatabase& db,
                             const std::vector<UotsQuery>& queries,
                             const BatchOptions& opts);

}  // namespace uots

#endif  // UOTS_CORE_BATCH_H_

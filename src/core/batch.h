// Parallel batch execution of query workloads.
//
// UOTS per-query searches are independent; a trip-recommendation service
// parallelizes across queries. The executor shards a workload over a
// thread pool, one engine instance per worker (engines hold scratch state
// and are not thread-safe; the database is const-shared).

#ifndef UOTS_CORE_BATCH_H_
#define UOTS_CORE_BATCH_H_

#include <vector>

#include "core/algorithm.h"

namespace uots {

/// \brief Batch execution configuration.
struct BatchOptions {
  AlgorithmKind algorithm = AlgorithmKind::kUots;
  UotsSearchOptions uots;
  int threads = 1;
};

/// \brief Aggregate outcome of a batch run.
struct BatchResult {
  /// Per-query answers, in workload order.
  std::vector<std::vector<ScoredTrajectory>> answers;
  /// Summed per-query counters.
  QueryStats total;
  /// End-to-end wall time of the batch (max over workers, not sum).
  double wall_seconds = 0.0;

  double QueriesPerSecond() const {
    return wall_seconds > 0.0 ? answers.size() / wall_seconds : 0.0;
  }
};

/// Runs `queries` against `db`; fails on the first invalid query.
Result<BatchResult> RunBatch(const TrajectoryDatabase& db,
                             const std::vector<UotsQuery>& queries,
                             const BatchOptions& opts);

}  // namespace uots

#endif  // UOTS_CORE_BATCH_H_

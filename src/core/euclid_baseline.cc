#include "core/euclid_baseline.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/topk.h"
#include "ingest/merged_view.h"
#include "util/timer.h"

namespace uots {

Result<SearchResult> EuclideanSearch::Search(const UotsQuery& query) {
  UOTS_RETURN_NOT_OK(ValidateQuery(query, db_->network().NumVertices()));
  UOTS_TRACE_SCOPE(name());
  WallTimer timer;
  SearchResult out;
  MergedView view;
  view.Bind(*db_);
  const auto& g = db_->network();
  const auto& model = db_->model();
  const size_t m = query.locations.size();

  std::vector<Point> origins;
  origins.reserve(m);
  for (VertexId o : query.locations) origins.push_back(g.PositionOf(o));

  {
    // The Euclidean baseline never expands the network: the whole scan is
    // one exact-scoring sweep, so all its time is refinement.
    ScopedPhase phase(&out.stats, QueryPhase::kRefinement);
    TopK topk(static_cast<size_t>(query.k));
    std::vector<double> dists(m);
    for (TrajId id = 0; id < view.NumTrajectories(); ++id) {
      const auto samples = view.SamplesOf(id);
      for (size_t i = 0; i < m; ++i) {
        double best = std::numeric_limits<double>::max();
        for (const Sample& s : samples) {
          const double d2 = SquaredDistance(origins[i], g.PositionOf(s.vertex));
          if (d2 < best) best = d2;
        }
        dists[i] = std::sqrt(best);
        ++out.stats.trajectory_hits;
      }
      const double spatial = model.SpatialSim(dists);
      const double textual =
          model.textual().Score(query.keywords, view.KeywordsOf(id));
      topk.Offer(ScoredTrajectory{
          id, SimilarityModel::Combine(query.lambda, spatial, textual), spatial,
          textual});
      ++out.stats.visited_trajectories;
    }
    out.items = std::move(topk).Finish();
    out.stats.candidates = static_cast<int64_t>(view.NumTrajectories());
  }
  out.stats.elapsed_ms = timer.ElapsedMillis();
  return out;
}

double ResultOverlap(const std::vector<ScoredTrajectory>& a,
                     const std::vector<ScoredTrajectory>& b) {
  if (a.empty() || b.empty()) return a.empty() && b.empty() ? 1.0 : 0.0;
  std::vector<TrajId> ia, ib;
  for (const auto& x : a) ia.push_back(x.id);
  for (const auto& x : b) ib.push_back(x.id);
  std::sort(ia.begin(), ia.end());
  std::sort(ib.begin(), ib.end());
  std::vector<TrajId> common;
  std::set_intersection(ia.begin(), ia.end(), ib.begin(), ib.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) /
         static_cast<double>(std::max(ia.size(), ib.size()));
}

}  // namespace uots

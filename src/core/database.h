// TrajectoryDatabase — the library's main entry point.
//
// Bundles the road network, the trajectory store, the two inverted indexes
// (vertex -> trajectories for the spatial domain, keyword -> trajectories
// for the textual domain) and the similarity model. All search algorithms
// operate on a const database, so one database serves any number of
// concurrent queries.
//
// A database is built one of two ways: the indexing constructor rebuilds
// every index from the raw store (text ingest, generators), or FromParts
// assembles prebuilt containers — typically zero-copy views over an mmap'd
// snapshot (src/storage/) — and skips all index construction.

#ifndef UOTS_CORE_DATABASE_H_
#define UOTS_CORE_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>

#include "core/model.h"
#include "core/query.h"
#include "net/graph.h"
#include "oracle/ch_oracle.h"
#include "text/inverted_index.h"
#include "text/vocabulary.h"
#include "traj/store.h"
#include "traj/time_index.h"
#include "traj/vertex_index.h"
#include "util/column_vec.h"

namespace uots {

class DeltaIndex;  // src/ingest/delta_index.h

/// \brief Immutable, fully-indexed trajectory database.
class TrajectoryDatabase {
 public:
  /// Builds all indexes. `vocabulary` may be empty (ids are still valid).
  TrajectoryDatabase(RoadNetwork network, TrajectoryStore store,
                     Vocabulary vocabulary = {},
                     const SimilarityOptions& opts = {});

  /// \brief Prebuilt pieces for the no-rebuild assembly path.
  ///
  /// `backing` pins whatever memory the containers view (the mmap'd
  /// snapshot file); it is held for the lifetime of the database.
  struct Parts {
    RoadNetwork network;
    TrajectoryStore store;
    Vocabulary vocabulary;
    std::unique_ptr<VertexTrajectoryIndex> vertex_index;
    std::unique_ptr<InvertedKeywordIndex> keyword_index;
    std::unique_ptr<TimeIndex> time_index;
    std::shared_ptr<const void> backing;
    /// Dataset identity (the snapshot superblock's dataset_fingerprint).
    /// 0 = unknown; the database then computes a structural fingerprint.
    uint64_t fingerprint = 0;
    /// Optional precomputed distance oracle (snapshot sections 16-18);
    /// null when the snapshot carries none.
    std::shared_ptr<const DistanceOracle> oracle;
  };

  /// Assembles a database from prebuilt parts without rebuilding any index.
  /// All parts must describe the same dataset (the snapshot loader
  /// validates this before calling).
  TrajectoryDatabase(Parts parts, const SimilarityOptions& opts = {});

  const RoadNetwork& network() const { return network_; }
  const TrajectoryStore& store() const { return store_; }
  const Vocabulary& vocabulary() const { return vocabulary_; }
  const VertexTrajectoryIndex& vertex_index() const { return *vertex_index_; }
  const InvertedKeywordIndex& keyword_index() const { return *keyword_index_; }
  const TimeIndex& time_index() const { return *time_index_; }
  const SimilarityModel& model() const { return model_; }

  /// \brief Precomputed exact-distance oracle, or null when absent.
  ///
  /// Snapshot-loaded databases carry the oracle baked into the file;
  /// text-built databases can attach one built in process. Engines that
  /// find an oracle here use it for oracle-driven candidate pruning
  /// (answers are bit-identical either way; see oracle/ch_oracle.h).
  const DistanceOracle* oracle() const { return oracle_.get(); }

  /// Shared handle to the same oracle, for carrying it across a rebuild
  /// that leaves the network untouched (live compaction).
  std::shared_ptr<const DistanceOracle> oracle_ptr() const { return oracle_; }

  /// Attaches (or clears) a distance oracle after construction. The oracle
  /// must describe this database's network. Not thread-safe; call before
  /// sharing the database across threads.
  void AttachOracle(std::shared_ptr<const DistanceOracle> oracle) {
    oracle_ = std::move(oracle);
  }

  /// \brief Nonzero identity of this dataset build, for salting caches.
  ///
  /// Snapshot-loaded databases carry the superblock's dataset fingerprint;
  /// text-built databases get a structural hash (sizes plus sampled
  /// trajectory shape). The two load paths fingerprint the same data
  /// differently — acceptable for cache salting, where a false mismatch
  /// only costs a recompute while a false match would serve wrong answers.
  uint64_t fingerprint() const { return fingerprint_; }

  /// \brief Publishes a sealed delta generation (live ingest, DESIGN.md
  /// §11), or clears the overlay when `delta` is null (post-compaction).
  ///
  /// The delta slot is the one internally-synchronized piece of mutable
  /// state on an otherwise immutable database: writers (the server's
  /// reactor thread) swap in a fully-built immutable DeltaIndex; readers
  /// snapshot the shared_ptr once per query via delta(). Every index,
  /// column, and the oracle stay frozen — only the overlay pointer moves,
  /// which is why these methods are const.
  void PublishDelta(std::shared_ptr<const DeltaIndex> delta,
                    uint64_t generation) const {
    std::lock_guard<std::mutex> lock(delta_mu_);
    delta_ = std::move(delta);
    delta_generation_.store(generation, std::memory_order_release);
  }

  /// Current delta overlay (null when no trips have been ingested or all
  /// have been compacted into the base). Safe from any thread; pin the
  /// returned pointer for the duration of one query.
  std::shared_ptr<const DeltaIndex> delta() const {
    std::lock_guard<std::mutex> lock(delta_mu_);
    return delta_;
  }

  /// Monotonic ingest generation: 0 until the first PublishDelta, bumped
  /// once per applied batch, and once more (with a null delta) when a
  /// compaction folds the overlay into a fresh base.
  uint64_t delta_generation() const {
    return delta_generation_.load(std::memory_order_acquire);
  }

  /// \brief Dataset identity *including* the live delta generation.
  ///
  /// fingerprint() identifies the immutable base build; every applied
  /// ingest batch changes live_fingerprint(), which is what cache keys
  /// must be salted with so a pre-ingest entry can never satisfy a
  /// post-ingest lookup (see cache/result_cache.h).
  uint64_t live_fingerprint() const;

  /// Total bytes across network, store, and indexes (approximate).
  size_t MemoryUsage() const { return Memory().total(); }

  /// Same, split into process-heap bytes vs snapshot-mapped bytes. A
  /// text-built database is all heap; a snapshot-backed one keeps the bulk
  /// columns in the mapping (clean, shareable pages).
  MemoryBreakdown Memory() const;

 private:
  void ApplyModelWiring(const SimilarityOptions& opts);
  uint64_t ComputeStructuralFingerprint() const;

  RoadNetwork network_;
  TrajectoryStore store_;
  Vocabulary vocabulary_;
  SimilarityModel model_;
  std::unique_ptr<VertexTrajectoryIndex> vertex_index_;
  std::unique_ptr<InvertedKeywordIndex> keyword_index_;
  std::unique_ptr<TimeIndex> time_index_;
  std::shared_ptr<const DistanceOracle> oracle_;
  /// Keeps view-backing memory (mmap'd snapshot) alive; null for heap-built
  /// databases.
  std::shared_ptr<const void> backing_;
  uint64_t fingerprint_ = 0;
  /// Live-ingest overlay (see PublishDelta). Mutable because the overlay
  /// is internally synchronized state layered on a logically-const
  /// database: queries hold `const TrajectoryDatabase&` everywhere.
  mutable std::mutex delta_mu_;
  mutable std::shared_ptr<const DeltaIndex> delta_;
  mutable std::atomic<uint64_t> delta_generation_{0};
};

}  // namespace uots

#endif  // UOTS_CORE_DATABASE_H_

#include "core/brute_force.h"

#include <algorithm>
#include <limits>

#include "core/topk.h"
#include "ingest/merged_view.h"
#include "net/dijkstra.h"
#include "util/timer.h"

namespace uots {

Result<SearchResult> BruteForceSearch::Search(const UotsQuery& query) {
  UOTS_RETURN_NOT_OK(ValidateQuery(query, db_->network().NumVertices()));
  UOTS_TRACE_SCOPE(name());
  WallTimer timer;
  SearchResult out;
  MergedView view;
  view.Bind(*db_);
  const auto& model = db_->model();
  const size_t m = query.locations.size();

  // One full shortest-path tree per query location.
  std::vector<ShortestPathTree> trees;
  trees.reserve(m);
  {
    ScopedPhase phase(&out.stats, QueryPhase::kSpatialExpansion);
    for (VertexId o : query.locations) {
      // Each tree is a full Dijkstra; poll the deadline between them.
      if (ShouldAbort()) {
        return Status::DeadlineExceeded("BF aborted by deadline/cancel");
      }
      trees.push_back(ComputeShortestPathTree(db_->network(), o));
      out.stats.settled_vertices +=
          static_cast<int64_t>(db_->network().NumVertices());
    }
  }

  TopK topk(static_cast<size_t>(query.k));
  std::vector<double> dists(m);
  {
    ScopedPhase phase(&out.stats, QueryPhase::kRefinement);
    for (TrajId id = 0; id < view.NumTrajectories(); ++id) {
      if ((id & 4095) == 0 && ShouldAbort()) {
        return Status::DeadlineExceeded("BF aborted by deadline/cancel");
      }
      const auto samples = view.SamplesOf(id);
      for (size_t i = 0; i < m; ++i) {
        double best = std::numeric_limits<double>::infinity();
        for (const Sample& s : samples) {
          const double d = trees[i].dist[s.vertex];
          if (d < best) best = d;
        }
        dists[i] = best;
        ++out.stats.trajectory_hits;
      }
      const double spatial = model.SpatialSim(dists);
      const double textual =
          model.textual().Score(query.keywords, view.KeywordsOf(id));
      const double score =
          SimilarityModel::Combine(query.lambda, spatial, textual);
      topk.Offer(ScoredTrajectory{id, score, spatial, textual});
      ++out.stats.visited_trajectories;
      ++out.stats.candidates;
    }
    out.items = std::move(topk).Finish();
  }
  out.stats.elapsed_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace uots

// Three-domain (spatial + temporal + textual) UOTS extension.
//
// The EDBT-2012 paper searches the spatial and textual domains; its
// companion work (personalized trajectory matching) adds the temporal
// domain. This module implements the natural three-domain generalization
// with the same expansion/upper-bound machinery:
//
//   SimU3(q, tau) = ws * SimS + wt * SimP + wk * SimT,   ws+wt+wk = 1
//   SimP(q, tau)  = (1/|q.times|) * sum_j e^(-d(t_j, tau)/sigma_s)
//   d(t_j, tau)   = min_i |t_j - tau.t_i|
//
// Temporal query sources are incremental timeline walks (TemporalExpansion,
// traj/time_index.h); they settle samples in nondecreasing |Δt|, so the
// first settled sample of a trajectory gives its exact temporal distance
// and the walk radius lower-bounds everything unseen — identical structure
// to the spatial domain, so the combined search interleaves all
// m_s + m_t query sources under one scheduling policy and one global
// upper bound.

#ifndef UOTS_CORE_TEMPORAL_H_
#define UOTS_CORE_TEMPORAL_H_

#include <memory>
#include <vector>

#include "core/algorithm.h"
#include "net/expansion.h"
#include "traj/time_index.h"
#include "util/versioned.h"

namespace uots {

/// \brief A three-domain query.
struct TemporalUotsQuery {
  std::vector<VertexId> locations;  ///< at least one
  std::vector<int32_t> times;       ///< preferred visit times (time of day, s)
  KeywordSet keywords;
  double weight_spatial = 0.4;
  double weight_temporal = 0.3;
  double weight_textual = 0.3;
  int k = 1;
};

/// \brief One result with the full score decomposition.
struct TemporalScoredTrajectory {
  TrajId id = kInvalidTraj;
  double score = 0.0;
  double spatial_sim = 0.0;
  double temporal_sim = 0.0;
  double textual_sim = 0.0;
};

/// \brief Top-k answer plus instrumentation.
struct TemporalSearchResult {
  std::vector<TemporalScoredTrajectory> items;  ///< descending by score
  QueryStats stats;
};

/// Validates a three-domain query against the database shape. Weights must
/// be non-negative and sum to 1 (1e-9 tolerance); weight_temporal must be 0
/// when no times are given; locations + times must not exceed
/// kMaxQueryLocations sources in total.
Status ValidateTemporalQuery(const TemporalUotsQuery& q, size_t num_vertices);

/// Exact brute-force evaluation (ground truth and baseline).
Result<TemporalSearchResult> BruteForceTemporalSearch(
    const TrajectoryDatabase& db, const TemporalUotsQuery& query);

/// \brief Three-domain expansion searcher (stateful scratch; per thread).
class TemporalUotsSearcher {
 public:
  explicit TemporalUotsSearcher(const TrajectoryDatabase& db,
                                const UotsSearchOptions& opts = {});

  /// Exact top-k via interleaved spatial + temporal expansions with
  /// upper-bound pruning.
  Result<TemporalSearchResult> Search(const TemporalUotsQuery& query);

 private:
  struct TrajState {
    TrajId id = kInvalidTraj;
    uint64_t mask = 0;
    int known = 0;
    double sum_spatial = 0.0;   ///< sum of spatial decays over scanned sources
    double sum_temporal = 0.0;  ///< sum of temporal decays over scanned sources
    double text = 0.0;
  };

  const TrajectoryDatabase* db_;
  UotsSearchOptions opts_;
  std::vector<std::unique_ptr<NetworkExpansion>> spatial_;
  std::vector<std::unique_ptr<TemporalExpansion>> temporal_;
  VersionedArray<int32_t> state_slot_;
  VersionedArray<double> text_of_;
  std::vector<TrajState> states_;
  std::vector<int32_t> partial_;
  std::vector<ScoredDoc> text_docs_;
  /// Counter scratch for the shared keyword index (one per engine — the
  /// index itself must stay read-only under concurrent queries).
  TextScoringScratch text_scratch_;
};

}  // namespace uots

#endif  // UOTS_CORE_TEMPORAL_H_

#include "core/search.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <span>

#include "core/topk.h"
#include "net/dijkstra.h"
#include "util/timer.h"

namespace uots {

/// Result-collection policy: either a top-k heap (prune threshold = the
/// k-th best exact score so far) or a theta filter (fixed prune threshold).
class UotsSearcher::Sink {
 public:
  /// Top-k mode.
  explicit Sink(size_t k) : topk_(k) {}
  /// Threshold mode.
  explicit Sink(double theta)
      : topk_(0), theta_(theta), threshold_mode_(true) {}

  void Accept(const ScoredTrajectory& item) {
    if (threshold_mode_) {
      if (item.score >= theta_) all_.push_back(item);
    } else {
      topk_.Offer(item);
    }
  }

  /// Score everything unresolved must beat for the search to continue.
  double PruneThreshold() const {
    return threshold_mode_ ? theta_ : topk_.Threshold();
  }

  std::vector<ScoredTrajectory> Finish() && {
    if (!threshold_mode_) return std::move(topk_).Finish();
    std::sort(all_.begin(), all_.end(),
              [](const ScoredTrajectory& a, const ScoredTrajectory& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.id < b.id;
              });
    return std::move(all_);
  }

 private:
  TopK topk_;
  std::vector<ScoredTrajectory> all_;
  double theta_ = 0.0;
  bool threshold_mode_ = false;
};

UotsSearcher::UotsSearcher(const TrajectoryDatabase& db,
                           const UotsSearchOptions& opts)
    : db_(&db), opts_(opts) {
  state_slot_.Resize(db.store().size());
  text_of_.Resize(db.store().size());
  if (opts_.use_oracle && db.oracle() != nullptr) {
    provider_ = MakeChProvider(*db.oracle());
  }
}

void UotsSearcher::ResolveTextualDomain(const UotsQuery& query,
                                        QueryStats* stats) {
  ScopedPhase phase(stats, QueryPhase::kTextualFilter);
  // Scratch spans the merged id space; a freshly published delta (or a
  // post-compaction rebind) grows it here, before any text_of_.Set.
  if (state_slot_.size() != view_.NumTrajectories()) {
    state_slot_.Resize(view_.NumTrajectories());
    text_of_.Resize(view_.NumTrajectories());
  }
  view_.ScoreTextual(query.keywords, db_->model().textual(), &text_docs_,
                     &stats->posting_entries, &text_scratch_);
  std::sort(text_docs_.begin(), text_docs_.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  text_of_.Reset();
  for (const ScoredDoc& d : text_docs_) text_of_.Set(d.doc, d.score);
}

Result<SearchResult> UotsSearcher::SearchTextOnly(const UotsQuery& query) {
  // lambda == 0: the spatial domain cannot contribute; the textual domain
  // is already exact after the index probe, so the answer is direct.
  SearchResult out;
  {
    ScopedPhase phase(&out.stats, QueryPhase::kRefinement);
    TopK topk(static_cast<size_t>(query.k));
    for (const ScoredDoc& d : text_docs_) {
      topk.Offer(
          ScoredTrajectory{static_cast<TrajId>(d.doc), d.score, 0.0, d.score});
      ++out.stats.visited_trajectories;
    }
    // Fill with SimT = 0 trajectories if k exceeds the candidate count.
    if (topk.size() < static_cast<size_t>(query.k)) {
      for (TrajId id = 0; id < view_.NumTrajectories() &&
                          topk.size() < static_cast<size_t>(query.k);
           ++id) {
        if (text_of_.Has(id)) continue;  // already offered
        topk.Offer(ScoredTrajectory{id, 0.0, 0.0, 0.0});
      }
    }
    out.items = std::move(topk).Finish();
    out.stats.candidates = static_cast<int64_t>(out.items.size());
  }
  return out;
}

Result<SearchResult> UotsSearcher::SearchTextOnlyThreshold(
    const UotsQuery& query, double theta) {
  SearchResult out;
  {
    ScopedPhase phase(&out.stats, QueryPhase::kRefinement);
    for (const ScoredDoc& d : text_docs_) {
      if (d.score < theta) break;  // descending order
      out.items.push_back(
          ScoredTrajectory{static_cast<TrajId>(d.doc), d.score, 0.0, d.score});
      ++out.stats.visited_trajectories;
    }
    // theta <= 0 is matched by every trajectory, including keyword-less
    // ones.
    if (theta <= 0.0) {
      for (TrajId id = 0; id < view_.NumTrajectories(); ++id) {
        if (text_of_.Has(id)) continue;
        out.items.push_back(ScoredTrajectory{id, 0.0, 0.0, 0.0});
      }
      std::sort(out.items.begin(), out.items.end(),
                [](const ScoredTrajectory& a, const ScoredTrajectory& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.id < b.id;
                });
    }
    out.stats.candidates = static_cast<int64_t>(out.items.size());
  }
  return out;
}

Status UotsSearcher::RunSearch(const UotsQuery& query, Sink* sink,
                               QueryStats* stats) {
  const auto& model = db_->model();
  const size_t m = query.locations.size();
  const double lambda = query.lambda;

  // ---- Spatial domain: one expansion per query location. ----
  while (expansions_.size() < m) {
    expansions_.push_back(std::make_unique<ExpansionCursor>(db_->network()));
  }
  std::vector<double> cur_decay(m);  // e^(-radius_i/sigma); 0 once exhausted
  for (size_t i = 0; i < m; ++i) {
    expansions_[i]->Begin(query.locations[i], opts_.distance_cache.get());
    cur_decay[i] = 1.0;
  }
  size_t exhausted_count = 0;

  // With a distance oracle the expansion loop runs identically — exact
  // per-source scans, partial states, incremental bounds — until the
  // radius-driven spatial bound alone is beaten. What remains then is the
  // baseline's expensive tail: candidates (typically high-SimT ones) whose
  // upper bound cannot drop below the threshold until EVERY expansion has
  // reached them. The oracle finisher resolves exactly those candidates
  // directly (see the termination check below) and stops, skipping the
  // tail expansion entirely.
  const bool use_oracle = provider_ != nullptr;
  if (use_oracle) provider_->BeginQuery(query.locations);

  state_slot_.Reset();
  states_.clear();
  partial_.clear();
  decay_pool_.clear();

  size_t text_ptr = 0;  // head of the not-fully-scanned textual remainder
  std::vector<double> labels(m, 0.0);
  size_t cur = 0;  // current query source
  const uint64_t full_mask =
      (m == 64) ? ~uint64_t{0} : ((uint64_t{1} << m) - 1);

  // ---- Incremental bound maintenance. ----
  //
  // The per-round termination/scheduling sweep used to rescan the whole
  // partly-scanned set (O(|partial| * m) per round). Instead, each state
  // caches its SimU upper bound (TrajState::cached_ub) from the moment it
  // was last touched, and three aggregates are maintained as deltas:
  //
  //  * labels[i]      — sum of cached_ub over states source i has not
  //                     scanned yet (the scheduling heuristic's input);
  //  * cached_max     — max cached_ub since the last full rebuild;
  //  * partial_count  — number of unresolved states inside partial_.
  //
  // Soundness: radii only grow, so cur_decay[] only shrinks, and a newly
  // scanned exact decay e^(-d/sigma) never exceeds the cur_decay it
  // replaces in the bound. Every state's true bound is therefore
  // non-increasing over time and never exceeds its cached_ub, so
  // max(base_ub, cached_max) always over-approximates the true global
  // bound: terminating against it can never terminate too early (results
  // stay exact), only too late. To avoid "too late", the sweep is rebuilt
  // from scratch — recomputing every cached_ub with current decays and
  // compacting partial_ — exactly when the cached partial max is the only
  // thing blocking termination AND the inputs moved since the last rebuild.
  double total_rs = static_cast<double>(m);  // sum of cur_decay
  size_t partial_count = 0;
  double cached_max = -std::numeric_limits<double>::infinity();
  double total_rs_at_rebuild = total_rs;
  bool touched_since_rebuild = false;

  // SimU upper bound of a partly scanned state under current decays.
  const auto state_ub = [&](const TrajState& s) {
    // sum over unscanned sources of e^(-radius_i/sigma)
    double missing = total_rs;
    uint64_t mask = s.mask;
    while (mask != 0) {
      const int i = __builtin_ctzll(mask);
      missing -= cur_decay[i];
      mask &= mask - 1;
    }
    return SimilarityModel::Combine(
        lambda, (s.sum_decay + missing) / static_cast<double>(m), s.text);
  };

  // Recomputes labels / cached_max from scratch and compacts partial_.
  const auto rebuild_bounds = [&] {
    std::fill(labels.begin(), labels.end(), 0.0);
    cached_max = -std::numeric_limits<double>::infinity();
    size_t w = 0;
    for (size_t r = 0; r < partial_.size(); ++r) {
      TrajState& s = states_[partial_[r]];
      if (s.known == static_cast<int>(m)) continue;  // resolved; drop
      partial_[w++] = partial_[r];
      const double ub = state_ub(s);
      s.cached_ub = ub;
      if (ub > cached_max) cached_max = ub;
      uint64_t unset = ~s.mask & full_mask;
      while (unset != 0) {
        const int i = __builtin_ctzll(unset);
        labels[i] += ub;
        unset &= unset - 1;
      }
    }
    partial_.resize(w);
    partial_count = w;
    total_rs_at_rebuild = total_rs;
    touched_since_rebuild = false;
    ++stats->bound_rebuilds;
  };

  // Oracle resolution: exactly scores one trajectory with a single
  // multi-source oracle search over its whole sample-vertex set, yielding
  // min over samples of sd(o_i, sample) for every source at once —
  // bit-equal to the label the expansion would eventually settle (see
  // oracle/ch_oracle.h). Sources that already scanned tau keep their
  // expansion decays, and the final sum runs in source order either way,
  // so the score is bitwise the score a full scan would have produced.
  std::vector<VertexId> sample_verts;
  const auto oracle_resolve = [&](TrajId t) {
    int32_t idx = state_slot_.Get(t, -1);
    if (idx < 0) {
      idx = static_cast<int32_t>(states_.size());
      state_slot_.Set(t, idx);
      states_.push_back(TrajState{t, 0, 0, 0.0, text_of_.Get(t, 0.0), 0.0,
                                  decay_pool_.size()});
      decay_pool_.resize(decay_pool_.size() + m, 0.0);
      ++stats->visited_trajectories;
      // Never enters partial_: it is resolved right here.
    }
    TrajState& s = states_[idx];
    if (s.known == static_cast<int>(m)) return;  // already exact
    sample_verts.clear();
    for (const Sample& smp : view_.SamplesOf(t)) {
      sample_verts.push_back(smp.vertex);
    }
    const std::span<const double> row = provider_->MinDistancesTo(sample_verts);
    stats->trajectory_hits += static_cast<int64_t>(m) - s.known;
    const uint64_t unset = ~s.mask & full_mask;
    s.mask = full_mask;
    s.known = static_cast<int>(m);
    touched_since_rebuild = true;  // its partial_ entry is now droppable
    double* decays = decay_pool_.data() + s.decay_base;
    for (uint64_t rest = unset; rest != 0; rest &= rest - 1) {
      const int i = __builtin_ctzll(rest);
      if (row[i] == kInfDistance) {
        // Unreachable from source i: expansion i could never scan tau, so
        // the baseline never completes or scores it. Resolved-unscored.
        return;
      }
      decays[i] = model.SpatialDecay(row[i]);
    }
    double sum = 0.0;
    for (size_t j = 0; j < m; ++j) sum += decays[j];
    s.sum_decay = sum;
    const double spatial = sum / static_cast<double>(m);
    const double score = SimilarityModel::Combine(lambda, spatial, s.text);
    sink->Accept(ScoredTrajectory{t, score, spatial, s.text});
    ++stats->candidates;
  };

  // Processes one settled (source, vertex, distance) event. The scan body
  // runs per trajectory; the outer wrapper walks the vertex's base posting
  // segment then its delta segment — ascending global ids, exactly the
  // posting list a rebuilt monolithic index would hold.
  const auto process_hit = [&](size_t i, VertexId v, double d) {
    const double decay = model.SpatialDecay(d);
    const uint64_t bit = uint64_t{1} << i;
    const auto scan_traj = [&](TrajId t) {
      int32_t idx = state_slot_.Get(t, -1);
      if (idx < 0) {
        idx = static_cast<int32_t>(states_.size());
        state_slot_.Set(t, idx);
        states_.push_back(TrajState{t, 0, 0, 0.0, text_of_.Get(t, 0.0), 0.0,
                                    decay_pool_.size()});
        decay_pool_.resize(decay_pool_.size() + m, 0.0);
        partial_.push_back(idx);
        ++partial_count;
        ++stats->visited_trajectories;
      }
      TrajState& s = states_[idx];
      if ((s.mask & bit) != 0) return;  // source i already scanned tau
      const bool fresh = s.mask == 0;
      const double u_old = fresh ? 0.0 : s.cached_ub;
      s.mask |= bit;
      ++s.known;
      s.sum_decay += decay;
      decay_pool_[s.decay_base + i] = decay;
      ++stats->trajectory_hits;
      touched_since_rebuild = true;
      if (s.known == static_cast<int>(m)) {
        // Fully scanned: every d(o_i, tau) is exact; score it. Its only
        // remaining label contribution was to source i, just scanned.
        if (!fresh) labels[i] -= u_old;
        --partial_count;
        // Sum the decays in source order — the association order of
        // SimilarityModel::SpatialSim — not scan order, so the score is
        // independent of expansion scheduling (bit-identical across
        // policies, the oracle path, and the brute-force reference).
        const double* decays = decay_pool_.data() + s.decay_base;
        double sum = 0.0;
        for (size_t j = 0; j < m; ++j) sum += decays[j];
        const double spatial = sum / static_cast<double>(m);
        const double score = SimilarityModel::Combine(lambda, spatial, s.text);
        sink->Accept(ScoredTrajectory{t, score, spatial, s.text});
        ++stats->candidates;
        return;
      }
      const double u_new = state_ub(s);
      s.cached_ub = u_new;
      if (u_new > cached_max) cached_max = u_new;
      // Label deltas: source i stops missing this state; every still-
      // missing source sees the cached bound move u_old -> u_new.
      if (!fresh) labels[i] -= u_old;
      uint64_t unset = ~s.mask & full_mask;
      const double delta = u_new - u_old;
      while (unset != 0) {
        const int j = __builtin_ctzll(unset);
        labels[j] += delta;
        unset &= unset - 1;
      }
    };
    const MergedView::Postings lists = view_.TrajectoriesAt(v);
    for (TrajId t : lists.base) scan_traj(t);
    for (TrajId t : lists.delta) scan_traj(t);
  };

  // ---- Oracle threshold seeding. ----
  //
  // Resolve the strongest textual candidates exactly before any expansion,
  // until the top-k heap is full. This jumps the prune threshold to near
  // its final value immediately, so the oracle finisher below fires at the
  // smallest radius that excludes unseen keyword-less trajectories instead
  // of waiting for expansion to complete k candidates the slow way.
  //
  // Answer-preserving: the baseline offers every trajectory whose exact
  // score reaches the final k-th boundary (its bound never drops below the
  // rising threshold, so it is never pruned and must complete before any
  // termination test passes), and both sinks reduce the offered set through
  // the same (score, id) order — so offering extra exactly-scored
  // candidates early cannot change the kept set. A threshold-mode sink
  // reports its fixed theta (finite) and is never seeded.
  if (use_oracle) {
    ScopedPhase round(stats, QueryPhase::kBoundMaintenance);
    size_t seeded = 0;
    while (seeded < text_docs_.size() &&
           sink->PruneThreshold() ==
               -std::numeric_limits<double>::infinity()) {
      oracle_resolve(static_cast<TrajId>(text_docs_[seeded].doc));
      ++seeded;
    }
  }

  bool aborted = false;
  for (;;) {
    if (exhausted_count == m) break;  // everything is fully scanned
    // Deadline/cancel poll: once per round, between batches, so an armed
    // token bounds the reaction time at one expansion batch.
    if (ShouldAbort()) {
      aborted = true;
      break;
    }

    // Expand the current source for one batch. The batch grows with the
    // partly-scanned set so per-round bookkeeping stays amortized.
    {
      ScopedPhase round(stats, QueryPhase::kSpatialExpansion);
      int batch =
          std::max<int>(opts_.batch_size, static_cast<int>(partial_count / 4));
      // In oracle mode the batch stays capped: the finisher below wants the
      // termination check close to the earliest profitable stopping point,
      // and an uncapped batch (it grows with the partly-scanned set)
      // overshoots that crossing by thousands of settles.
      if (use_oracle) batch = std::min(batch, 1024);
      ExpansionCursor& ex = *expansions_[cur];
      if (!ex.exhausted()) {
        for (int step = 0; step < batch; ++step) {
          VertexId v;
          double d;
          if (!ex.Step(&v, &d)) {
            ++exhausted_count;
            cur_decay[cur] = 0.0;
            break;
          }
          ++stats->settled_vertices;
          process_hit(cur, v, d);
        }
        if (!ex.exhausted()) {
          cur_decay[cur] = model.SpatialDecay(ex.radius());
        }
      }
    }
    ++stats->schedule_steps;

    // ---- Termination check against the cached bound. ----
    bool terminated = false;
    {
      ScopedPhase round(stats, QueryPhase::kBoundMaintenance);
      total_rs = 0.0;
      for (size_t i = 0; i < m; ++i) total_rs += cur_decay[i];

      // Advance past fully scanned textual candidates.
      while (text_ptr < text_docs_.size()) {
        const int32_t idx = state_slot_.Get(text_docs_[text_ptr].doc, -1);
        if (idx >= 0 && states_[idx].known == static_cast<int>(m)) {
          ++text_ptr;
        } else {
          break;
        }
      }
      const double max_rem_text =
          text_ptr < text_docs_.size() ? text_docs_[text_ptr].score : 0.0;
      // Bound on everything the spatial domain has not seen at all.
      const double base_ub = SimilarityModel::Combine(
          lambda, total_rs / static_cast<double>(m), max_rem_text);
      const double threshold = sink->PruneThreshold();

      const auto current_global_ub = [&] {
        return partial_count > 0 ? std::max(base_ub, cached_max) : base_ub;
      };
      if (threshold >= current_global_ub()) {
        terminated = true;
      } else if (threshold >= base_ub &&
                 (touched_since_rebuild || total_rs < total_rs_at_rebuild)) {
        // Only the (possibly stale) partial max blocks termination and its
        // inputs have moved: pay for one exact rebuild and re-check.
        rebuild_bounds();
        if (threshold >= current_global_ub()) terminated = true;
      }

      if (!terminated && use_oracle) {
        // Oracle finisher. The expansion's remaining job splits in two:
        // (a) growing radii until the spatial-only bound collapses, and
        // (b) finishing the scan of every candidate still above threshold
        // — (b) is the expensive tail, since a high-SimT candidate's bound
        // cannot drop below the threshold until ALL m expansions reach it.
        // Once (a) is done, expansion can contribute nothing the oracle
        // does not deliver cheaper: resolve each still-blocking candidate
        // exactly and stop. `>=` (not `>`) matches the baseline on
        // boundary ties — a candidate whose exact score equals the final
        // threshold keeps its bound at or above the threshold until fully
        // scanned, so the baseline inevitably completes and offers it; the
        // finisher must offer it too.
        const double spatial_only = SimilarityModel::Combine(
            lambda, total_rs / static_cast<double>(m), 0.0);
        const double thr = sink->PruneThreshold();
        bool fire = false;
        if (thr >= spatial_only) {
          // Safe to fire — but is it profitable yet? Every expansion batch
          // shrinks the set the finisher would have to resolve (scans
          // complete candidates; falling decays lower bounds below the
          // threshold), so firing at the first safe round can be far more
          // expensive than waiting a little. Rent-or-buy: count the
          // resolutions firing now would take (partials whose cached bound
          // clears the threshold, plus unseen textual heads above the
          // radius bound) and fire once their cost, in expansion-settle
          // units, no longer exceeds the expansion work already done. The
          // count is a heuristic (cached bounds over-approximate), the
          // resolutions themselves stay exact.
          constexpr int64_t kResolveCostSettles = 160;
          constexpr int64_t kFreeSettles = 4096;
          int64_t need = 0;
          for (const int32_t idx : partial_) {
            const TrajState& s = states_[idx];
            if (s.known != static_cast<int>(m) && s.cached_ub >= thr) ++need;
          }
          const ScoredDoc* text_beg = text_docs_.data() + text_ptr;
          const ScoredDoc* text_end = text_docs_.data() + text_docs_.size();
          const ScoredDoc* text_cut = std::partition_point(
              text_beg, text_end,
              [&](const ScoredDoc& d) {
                return SimilarityModel::Combine(
                           lambda, total_rs / static_cast<double>(m),
                           d.score) > thr;
              });
          need += text_cut - text_beg;
          fire = need * kResolveCostSettles <=
                 std::max<int64_t>(stats->settled_vertices, kFreeSettles);
        }
        if (fire) {
          for (const int32_t idx : partial_) {
            TrajState& s = states_[idx];
            if (s.known == static_cast<int>(m)) continue;  // already exact
            if (state_ub(s) >= sink->PruneThreshold()) {
              oracle_resolve(s.id);
            } else {
              // Its exact score is strictly below a threshold that only
              // rises: the full resolution (and the tail expansion the
              // baseline would spend completing it) is skipped outright.
              ++stats->oracle_pruned_candidates;
            }
          }
          // Unseen textual candidates, in descending SimT order: resolve
          // heads while they can still beat the threshold. Everything at
          // or past the break point — and every spatially-unseen
          // trajectory with less text — is bounded below the threshold by
          // the same expression the baseline terminates against.
          while (text_ptr < text_docs_.size()) {
            const ScoredDoc& head = text_docs_[text_ptr];
            if (sink->PruneThreshold() >=
                SimilarityModel::Combine(lambda,
                                         total_rs / static_cast<double>(m),
                                         head.score)) {
              break;
            }
            oracle_resolve(static_cast<TrajId>(head.doc));
            ++text_ptr;
          }
          terminated = true;
        }
      }
    }
    if (terminated) break;

    // ---- Pick the next query source. ----
    {
      ScopedPhase round(stats, QueryPhase::kScheduling);
      switch (opts_.scheduling) {
        case SchedulingPolicy::kHeuristic: {
          double best = -1.0;
          size_t best_i = cur;
          for (size_t i = 0; i < m; ++i) {
            if (expansions_[i]->exhausted()) continue;
            // Break label ties by least-settled so fresh sources get
            // started.
            if (labels[i] > best ||
                (labels[i] == best &&
                 expansions_[i]->settled_count() <
                     expansions_[best_i]->settled_count())) {
              best = labels[i];
              best_i = i;
            }
          }
          cur = best_i;
          break;
        }
        case SchedulingPolicy::kRoundRobin: {
          for (size_t step = 1; step <= m; ++step) {
            const size_t i = (cur + step) % m;
            if (!expansions_[i]->exhausted()) {
              cur = i;
              break;
            }
          }
          break;
        }
        case SchedulingPolicy::kSequential: {
          // Stay on the current source until it exhausts, then move to the
          // lowest-indexed source that still has work.
          if (expansions_[cur]->exhausted()) {
            size_t next = 0;
            while (next < m && expansions_[next]->exhausted()) ++next;
            if (next < m) cur = next;
          }
          break;
        }
      }
    }
    if (expansions_[cur]->exhausted()) break;  // all done
  }

  // Expose the heap behavior of this query's expansions: with the indexed
  // frontier heap, pops == settles (stale pops would show up here). Heap
  // counters are live work only — replayed events did no heap work, which
  // is exactly the tier-2 saving — so settles are compared against the
  // cursor's live count, not its logical one. Prefixes are published even
  // from aborted searches: any recorded prefix is a valid recording.
  for (size_t i = 0; i < m; ++i) {
    ExpansionCursor& done = *expansions_[i];
    stats->heap_pops += done.heap_pops();
    stats->heap_pushes += done.heap_pushes();
    stats->heap_decreases += done.heap_decreases();
    stats->heap_stale_pops += done.heap_pops() - done.live_settled_count();
    if (done.from_cache()) ++stats->dcache_hits;
    stats->dcache_replayed += done.replayed_count();
    if (done.Publish()) ++stats->dcache_published;
  }
  if (use_oracle) stats->oracle_lookups += provider_->TakeLookups();
  if (aborted) {
    return Status::DeadlineExceeded("search aborted by deadline/cancel");
  }
  return Status::OK();
}

Result<SearchResult> UotsSearcher::Search(const UotsQuery& query) {
  UOTS_RETURN_NOT_OK(ValidateQuery(query, db_->network().NumVertices()));
  UOTS_TRACE_SCOPE(name());
  WallTimer timer;
  view_.Bind(*db_);
  SearchResult out;
  ResolveTextualDomain(query, &out.stats);
  if (query.lambda == 0.0) {
    Result<SearchResult> r = SearchTextOnly(query);
    if (r.ok()) {
      r->stats.posting_entries = out.stats.posting_entries;
      r->stats.phase_ns[static_cast<int>(QueryPhase::kTextualFilter)] +=
          out.stats.PhaseNs(QueryPhase::kTextualFilter);
      r->stats.elapsed_ms = timer.ElapsedMillis();
    }
    return r;
  }
  Sink sink(static_cast<size_t>(query.k));
  UOTS_RETURN_NOT_OK(RunSearch(query, &sink, &out.stats));
  {
    ScopedPhase phase(&out.stats, QueryPhase::kRefinement);
    out.items = std::move(sink).Finish();
  }
  out.stats.elapsed_ms = timer.ElapsedMillis();
  return out;
}

Result<SearchResult> UotsSearcher::SearchThreshold(const UotsQuery& query,
                                                   double theta) {
  UOTS_RETURN_NOT_OK(ValidateQuery(query, db_->network().NumVertices()));
  UOTS_TRACE_SCOPE("UOTS-threshold");
  WallTimer timer;
  view_.Bind(*db_);
  SearchResult out;
  ResolveTextualDomain(query, &out.stats);
  if (query.lambda == 0.0) {
    Result<SearchResult> r = SearchTextOnlyThreshold(query, theta);
    if (r.ok()) {
      r->stats.posting_entries = out.stats.posting_entries;
      r->stats.phase_ns[static_cast<int>(QueryPhase::kTextualFilter)] +=
          out.stats.PhaseNs(QueryPhase::kTextualFilter);
      r->stats.elapsed_ms = timer.ElapsedMillis();
    }
    return r;
  }
  Sink sink(theta);
  UOTS_RETURN_NOT_OK(RunSearch(query, &sink, &out.stats));
  {
    ScopedPhase phase(&out.stats, QueryPhase::kRefinement);
    out.items = std::move(sink).Finish();
  }
  out.stats.elapsed_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace uots

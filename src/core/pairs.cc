#include "core/pairs.h"

#include <algorithm>
#include <future>

#include "core/search.h"
#include "util/histogram.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace uots {

UotsQuery MakePairQuery(const TrajectoryDatabase& db, TrajId id,
                        const PairJoinOptions& opts) {
  const auto samples = db.store().SamplesOf(id);
  UotsQuery q;
  q.lambda = opts.lambda;
  q.k = 1;  // unused by threshold search
  const size_t m =
      std::min<size_t>(samples.size(), static_cast<size_t>(opts.max_query_locations));
  for (size_t i = 0; i < m; ++i) {
    const size_t pick = m == 1 ? 0 : i * (samples.size() - 1) / (m - 1);
    q.locations.push_back(samples[pick].vertex);
  }
  // Deduplicate while preserving order (repeated vertices add no signal).
  std::vector<VertexId> seen;
  std::vector<VertexId> unique_locs;
  for (VertexId v : q.locations) {
    if (std::find(seen.begin(), seen.end(), v) == seen.end()) {
      seen.push_back(v);
      unique_locs.push_back(v);
    }
  }
  q.locations = std::move(unique_locs);
  q.keywords = db.store().KeywordsOf(id);
  return q;
}

Result<std::vector<SimilarPair>> FindSimilarPairs(const TrajectoryDatabase& db,
                                                  const PairJoinOptions& opts) {
  if (opts.threads < 1) return Status::InvalidArgument("threads must be >= 1");
  if (opts.lambda < 0.0 || opts.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0,1]");
  }
  if (opts.max_query_locations < 1 ||
      opts.max_query_locations > static_cast<int>(kMaxQueryLocations)) {
    return Status::InvalidArgument("bad max_query_locations");
  }
  const size_t n = db.store().size();
  std::vector<std::vector<ScoredTrajectory>> results(n);

  // Phase 1: per-trajectory threshold searches (parallel).
  {
    const size_t shards = std::min<size_t>(opts.threads, std::max<size_t>(n, 1));
    ThreadPool pool(shards);
    std::vector<LatencyHistogram> shard_hist(shards);
    std::vector<std::future<Status>> futures;
    for (size_t s = 0; s < shards; ++s) {
      futures.push_back(pool.Submit([&, s]() -> Status {
        UOTS_TRACE_SCOPE_ID("pairs_shard", static_cast<int64_t>(s));
        UotsSearcher searcher(db);
        const size_t begin = s * n / shards;
        const size_t end = (s + 1) * n / shards;
        for (size_t i = begin; i < end; ++i) {
          const UotsQuery q =
              MakePairQuery(db, static_cast<TrajId>(i), opts);
          auto r = searcher.SearchThreshold(q, opts.theta);
          if (!r.ok()) return r.status();
          shard_hist[s].Record(
              static_cast<int64_t>(r->stats.elapsed_ms * 1e6));
          results[i] = std::move(r->items);
          // Id-sorted for the mutual lookups in the merge phase.
          std::sort(results[i].begin(), results[i].end(),
                    [](const ScoredTrajectory& a, const ScoredTrajectory& b) {
                      return a.id < b.id;
                    });
        }
        return Status::OK();
      }));
    }
    for (auto& f : futures) {
      Status st = f.get();
      if (!st.ok()) return st;
    }
    LatencyHistogram merged;
    for (const auto& h : shard_hist) merged.Merge(h);
    MetricsRegistry::Global().Merge("pairs.search_latency", merged);
  }

  // Phase 2: merge — keep pairs that qualified in both directions.
  std::vector<SimilarPair> pairs;
  for (TrajId a = 0; a < n; ++a) {
    for (const ScoredTrajectory& hit : results[a]) {
      const TrajId b = hit.id;
      if (b <= a) continue;  // each unordered pair once; skip self
      const auto& rb = results[b];
      const auto it = std::lower_bound(
          rb.begin(), rb.end(), a,
          [](const ScoredTrajectory& x, TrajId id) { return x.id < id; });
      if (it == rb.end() || it->id != a) continue;  // not mutual
      pairs.push_back(SimilarPair{a, b, (hit.score + it->score) / 2.0});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const SimilarPair& x, const SimilarPair& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return pairs;
}

}  // namespace uots

#include "core/text_first.h"

#include <algorithm>
#include <limits>

#include "core/topk.h"
#include "util/timer.h"

namespace uots {

double TextFirstSearch::ExactSpatial(TrajId id, QueryStats* stats) const {
  const auto samples = view_.SamplesOf(id);
  double sum = 0.0;
  for (const auto& tree : trees_) {
    double best = std::numeric_limits<double>::infinity();
    for (const Sample& s : samples) {
      const double d = tree.dist[s.vertex];
      if (d < best) best = d;
    }
    sum += db_->model().SpatialDecay(best);
    ++stats->trajectory_hits;
  }
  return sum / static_cast<double>(trees_.size());
}

Result<SearchResult> TextFirstSearch::Search(const UotsQuery& query) {
  UOTS_RETURN_NOT_OK(ValidateQuery(query, db_->network().NumVertices()));
  UOTS_TRACE_SCOPE(name());
  WallTimer timer;
  SearchResult out;
  view_.Bind(*db_);
  const auto& model = db_->model();

  // Spatial acceleration: one full shortest-path tree per query location.
  {
    ScopedPhase phase(&out.stats, QueryPhase::kSpatialExpansion);
    trees_.clear();
    for (VertexId o : query.locations) {
      trees_.push_back(ComputeShortestPathTree(db_->network(), o));
      out.stats.settled_vertices +=
          static_cast<int64_t>(db_->network().NumVertices());
    }
  }

  // Textual domain: exact SimT for every keyword-sharing trajectory.
  {
    ScopedPhase phase(&out.stats, QueryPhase::kTextualFilter);
    view_.ScoreTextual(query.keywords, model.textual(), &text_docs_,
                       &out.stats.posting_entries, &text_scratch_);
    std::sort(text_docs_.begin(), text_docs_.end(),
              [](const ScoredDoc& a, const ScoredDoc& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
  }

  {
    ScopedPhase refine_phase(&out.stats, QueryPhase::kRefinement);
    TopK topk(static_cast<size_t>(query.k));
    auto refine = [&](TrajId id, double textual) {
      const double spatial = ExactSpatial(id, &out.stats);
      const double score =
          SimilarityModel::Combine(query.lambda, spatial, textual);
      topk.Offer(ScoredTrajectory{id, score, spatial, textual});
      ++out.stats.visited_trajectories;
      ++out.stats.candidates;
    };

    // Phase 1: keyword-sharing candidates in descending SimT.
    size_t scanned = 0;
    for (const ScoredDoc& d : text_docs_) {
      const double ub = SimilarityModel::Combine(query.lambda, 1.0, d.score);
      if (topk.Full() && ub <= topk.Threshold()) break;
      refine(static_cast<TrajId>(d.doc), d.score);
      ++scanned;
    }

    // Phase 2: the SimT = 0 tail, only while a perfect spatial match could
    // still enter the top-k. (Skipped whenever phase 1 stopped early: the
    // tail bound lambda*1 is <= every phase-1 bound.)
    if (scanned == text_docs_.size()) {
      const double tail_ub = SimilarityModel::Combine(query.lambda, 1.0, 0.0);
      if (!(topk.Full() && tail_ub <= topk.Threshold())) {
        std::vector<DocId> cand_ids;
        cand_ids.reserve(text_docs_.size());
        for (const auto& d : text_docs_) cand_ids.push_back(d.doc);
        std::sort(cand_ids.begin(), cand_ids.end());
        for (TrajId id = 0; id < view_.NumTrajectories(); ++id) {
          if (topk.Full() && tail_ub <= topk.Threshold()) break;
          if (std::binary_search(cand_ids.begin(), cand_ids.end(), id)) {
            continue;
          }
          refine(id, 0.0);
        }
      }
    }

    out.items = std::move(topk).Finish();
  }
  out.stats.elapsed_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace uots

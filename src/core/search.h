// The UOTS two-domain expansion search — the paper's contribution.
//
// For one query with m locations and a keyword set:
//
//  * Textual domain: a single probe of the keyword inverted index yields
//    the exact SimT of every keyword-sharing trajectory (all others have
//    SimT = 0 exactly). Candidates are kept in descending SimT order; the
//    head of the not-yet-fully-scanned remainder upper-bounds the textual
//    component of everything unseen.
//  * Spatial domain: one incremental network expansion per query location
//    ("query source"). When expansion i first settles a vertex of
//    trajectory tau, the settled distance IS d(o_i, tau) exactly.
//
//  Upper bound of a partly scanned tau (radius r_i of expansion i lower-
//  bounds d(o_i, tau) for every source that has not scanned tau yet):
//
//    SimS.ub(tau) = (1/m) [ sum_{i in mask} e^(-d_i/sigma)
//                         + sum_{i not in mask} e^(-r_i/sigma) ]
//    SimU.ub(tau) = lambda * SimS.ub(tau) + (1-lambda) * SimT(tau)
//
//  Global bound: max over partly scanned of SimU.ub, versus
//    lambda * (1/m) sum_i e^(-r_i/sigma) + (1-lambda) * maxRemainingSimT
//  for everything spatially unseen. The search stops when the pruning
//  threshold (the k-th exact score for top-k queries, theta for threshold
//  queries) reaches the global bound — everything unresolved is pruned.
//
//  Scheduling (the paper family's query-source priority): the next source
//  to expand maximizes label(i) = sum of SimU.ub over partly scanned
//  trajectories not yet scanned from source i — the source with the most
//  potential to turn promising partial candidates into fully scanned ones.
//  Ablations: round-robin and sequential policies (core/algorithm.h).

#ifndef UOTS_CORE_SEARCH_H_
#define UOTS_CORE_SEARCH_H_

#include <memory>
#include <vector>

#include "cache/expansion_cursor.h"
#include "core/algorithm.h"
#include "ingest/merged_view.h"
#include "oracle/distance_provider.h"
#include "util/versioned.h"

namespace uots {

/// \brief The UOTS search engine (stateful scratch; one per thread).
class UotsSearcher : public SearchAlgorithm {
 public:
  UotsSearcher(const TrajectoryDatabase& db, const UotsSearchOptions& opts = {});

  /// Top-k search: the k highest-scoring trajectories.
  Result<SearchResult> Search(const UotsQuery& query) override;

  /// Threshold search: every trajectory with SimU >= theta, descending.
  /// `query.k` is ignored. The same bounds prune the search space; the
  /// expansion stops once nothing unresolved can reach theta.
  Result<SearchResult> SearchThreshold(const UotsQuery& query, double theta);

  const char* name() const override {
    switch (opts_.scheduling) {
      case SchedulingPolicy::kHeuristic:
        return "UOTS";
      case SchedulingPolicy::kRoundRobin:
        return "UOTS-w/o-h";
      case SchedulingPolicy::kSequential:
        return "UOTS-seq";
    }
    return "UOTS";
  }

 private:
  /// Per-trajectory scan state (created on first spatial hit).
  struct TrajState {
    TrajId id = kInvalidTraj;
    uint64_t mask = 0;       ///< query sources that have scanned this traj
    int known = 0;           ///< popcount(mask)
    double sum_decay = 0.0;  ///< sum of e^(-d_i/sigma) over scanned sources
    double text = 0.0;       ///< exact SimT
    /// SimU upper bound cached when the state was last touched/rebuilt.
    /// Radii only grow and decays only shrink, so this never underestimates
    /// the state's true current bound (see RunSearch).
    double cached_ub = 0.0;
    /// Base index of this state's m per-source decays in decay_pool_.
    size_t decay_base = 0;
  };

  /// \brief Result-collection policy shared by the top-k and threshold
  /// modes: Accept() consumes each fully-scanned (exact-score) trajectory,
  /// PruneThreshold() is the score everything unresolved must beat.
  class Sink;

  /// Runs the two-domain search, feeding exact results into `sink`.
  /// \return kDeadlineExceeded when the installed cancel token fired
  /// (checked once per scheduling round); OK otherwise.
  Status RunSearch(const UotsQuery& query, Sink* sink, QueryStats* stats);

  /// Probes the keyword index and fills text_docs_ / text_of_.
  void ResolveTextualDomain(const UotsQuery& query, QueryStats* stats);

  Result<SearchResult> SearchTextOnly(const UotsQuery& query);
  Result<SearchResult> SearchTextOnlyThreshold(const UotsQuery& query,
                                               double theta);

  const TrajectoryDatabase* db_;
  UotsSearchOptions opts_;
  /// Base+delta read surface, rebound at the top of every Search /
  /// SearchThreshold so one query sees one sealed ingest generation.
  MergedView view_;
  /// Exact-distance oracle front-end; null without an attached oracle (or
  /// with opts_.use_oracle off). Per-searcher scratch, like expansions_.
  std::unique_ptr<DistanceProvider> provider_;
  /// Expansion cursors: plain resumable Dijkstras without a distance cache,
  /// replay/record front-ends with one (opts_.distance_cache).
  std::vector<std::unique_ptr<ExpansionCursor>> expansions_;
  VersionedArray<int32_t> state_slot_;  ///< traj id -> index into states_
  VersionedArray<double> text_of_;      ///< traj id -> exact SimT
  std::vector<TrajState> states_;
  std::vector<int32_t> partial_;        ///< indexes of partly scanned states
  /// Per-state, per-source decays e^(-d_i/sigma), m slots per state. Final
  /// scores always sum these in source order — the same association order
  /// as SimilarityModel::SpatialSim — so a score does not depend on which
  /// source happened to scan the trajectory first (and matches the oracle
  /// path and the brute-force reference bit for bit).
  std::vector<double> decay_pool_;
  std::vector<ScoredDoc> text_docs_;    ///< textual candidates, SimT desc
  /// Counter scratch for the shared keyword index (one per engine — the
  /// index itself must stay read-only under concurrent queries).
  TextScoringScratch text_scratch_;
};

}  // namespace uots

#endif  // UOTS_CORE_SEARCH_H_

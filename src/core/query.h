// UOTS query and result types.

#ifndef UOTS_CORE_QUERY_H_
#define UOTS_CORE_QUERY_H_

#include <vector>

#include "net/graph.h"
#include "text/keyword_set.h"
#include "traj/trajectory.h"
#include "util/counters.h"
#include "util/status.h"

namespace uots {

/// Queries may use at most this many query locations (bitmask-bounded).
inline constexpr size_t kMaxQueryLocations = 64;

/// \brief A user-oriented trajectory search query.
///
/// The traveler names the places they intend to visit (`locations`, snapped
/// to network vertices), describes their interests (`keywords`), and weights
/// the two domains with `lambda` (1 = purely spatial, 0 = purely textual).
struct UotsQuery {
  std::vector<VertexId> locations;
  KeywordSet keywords;
  double lambda = 0.5;
  int k = 1;
};

/// \brief One result trajectory with its score decomposition.
struct ScoredTrajectory {
  TrajId id = kInvalidTraj;
  double score = 0.0;        ///< SimU = lambda*spatial + (1-lambda)*textual
  double spatial_sim = 0.0;  ///< SimS in [0,1]
  double textual_sim = 0.0;  ///< SimT in [0,1]
};

/// \brief Top-k answer plus instrumentation.
struct SearchResult {
  std::vector<ScoredTrajectory> items;  ///< descending by score
  QueryStats stats;
};

/// Validates a query against a network of `num_vertices` vertices.
Status ValidateQuery(const UotsQuery& q, size_t num_vertices);

}  // namespace uots

#endif  // UOTS_CORE_QUERY_H_

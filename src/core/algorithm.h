// Common interface of all UOTS search algorithms.

#ifndef UOTS_CORE_ALGORITHM_H_
#define UOTS_CORE_ALGORITHM_H_

#include <memory>
#include <string>

#include "core/database.h"
#include "core/query.h"
#include "util/cancel.h"

namespace uots {

/// Identifies a search algorithm implementation.
enum class AlgorithmKind {
  kBruteForce,       ///< exact scan; ground truth ("BF")
  kTextFirst,        ///< textual-first filter-and-refine baseline ("TF")
  kUots,             ///< two-domain expansion search with heuristic ("UOTS")
  kUotsNoHeuristic,  ///< UOTS with round-robin scheduling ("UOTS-w/o-h")
  kUotsSequential,   ///< UOTS expanding sources one at a time ("UOTS-seq")
  kEuclidean,        ///< Euclidean-distance variant ("EU"; approximate!)
};

const char* ToString(AlgorithmKind kind);

/// How the UOTS searcher schedules its query sources (ablation A1).
enum class SchedulingPolicy {
  /// Exhaust one source before starting the next — what an implementation
  /// without any scheduling strategy does.
  kSequential,
  /// Cycle through the sources in fixed order.
  kRoundRobin,
  /// The paper family's priority labels (see core/search.h).
  kHeuristic,
};

/// \brief A stateful (per-thread) search engine over one database.
///
/// Implementations hold reusable scratch buffers, so a single instance is
/// NOT thread-safe; create one per worker thread (they share the const
/// database).
class SearchAlgorithm {
 public:
  virtual ~SearchAlgorithm() = default;

  /// Answers `query`; invalid queries yield an error. With a cancel token
  /// installed, a search that observes ShouldAbort() returns
  /// kDeadlineExceeded at its next round boundary (engines without round
  /// structure may ignore the token; UOTS and BF honour it).
  virtual Result<SearchResult> Search(const UotsQuery& query) = 0;

  /// Installs (nullptr clears) the cooperative cancel/deadline token polled
  /// by subsequent Search calls. The token must outlive its use; a server
  /// re-arms one token per request before each Search.
  void set_cancel(const CancelToken* cancel) { cancel_ = cancel; }
  const CancelToken* cancel() const { return cancel_; }

  virtual const char* name() const = 0;

 protected:
  /// True when the installed token (if any) requests an abort.
  bool ShouldAbort() const { return cancel_ != nullptr && cancel_->ShouldAbort(); }

 private:
  const CancelToken* cancel_ = nullptr;
};

class DistanceFieldCache;  // cache/distance_field_cache.h

/// \brief Tuning knobs for the UOTS searcher (see core/search.h).
struct UotsSearchOptions {
  /// Query-source scheduling policy.
  SchedulingPolicy scheduling = SchedulingPolicy::kHeuristic;
  /// Minimum expansion steps between scheduling / termination checks (the
  /// effective batch adapts upward with the partly-scanned set size).
  int batch_size = 64;
  /// Optional cross-query expansion-prefix cache shared between engines
  /// (thread-safe; see cache/distance_field_cache.h). Null = off. Results
  /// are bit-identical either way; only heap work is saved. Excluded from
  /// result-cache keys for the same reason.
  std::shared_ptr<DistanceFieldCache> distance_cache;
  /// Use the database's distance oracle (when one is attached) to resolve
  /// candidates exactly on first contact and skip expansion rounds.
  /// Results are bit-identical either way (see oracle/ch_oracle.h); like
  /// the distance cache, excluded from result-cache keys.
  bool use_oracle = true;
};

/// Creates a fresh engine of the given kind over `db`.
std::unique_ptr<SearchAlgorithm> CreateAlgorithm(
    const TrajectoryDatabase& db, AlgorithmKind kind,
    const UotsSearchOptions& uots_opts = {});

}  // namespace uots

#endif  // UOTS_CORE_ALGORITHM_H_

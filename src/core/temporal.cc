#include "core/temporal.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "net/dijkstra.h"
#include "util/timer.h"

namespace uots {

namespace {

/// Min-heap-free top-k for TemporalScoredTrajectory (mirrors core/topk.h).
class TemporalTopK {
 public:
  explicit TemporalTopK(size_t k) : k_(k) {}

  void Offer(const TemporalScoredTrajectory& item) {
    if (heap_.size() < k_) {
      heap_.push_back(item);
      std::push_heap(heap_.begin(), heap_.end(), MinOrder);
      return;
    }
    if (item.score > heap_.front().score) {
      std::pop_heap(heap_.begin(), heap_.end(), MinOrder);
      heap_.back() = item;
      std::push_heap(heap_.begin(), heap_.end(), MinOrder);
    }
  }

  bool Full() const { return heap_.size() >= k_; }
  double Threshold() const {
    return Full() ? heap_.front().score
                  : -std::numeric_limits<double>::infinity();
  }

  std::vector<TemporalScoredTrajectory> Finish() && {
    std::sort(heap_.begin(), heap_.end(),
              [](const TemporalScoredTrajectory& a,
                 const TemporalScoredTrajectory& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.id < b.id;
              });
    return std::move(heap_);
  }

 private:
  static bool MinOrder(const TemporalScoredTrajectory& a,
                       const TemporalScoredTrajectory& b) {
    return a.score > b.score;
  }

  size_t k_;
  std::vector<TemporalScoredTrajectory> heap_;
};

double Combine3(const TemporalUotsQuery& q, double spatial, double temporal,
                double textual) {
  return q.weight_spatial * spatial + q.weight_temporal * temporal +
         q.weight_textual * textual;
}

}  // namespace

Status ValidateTemporalQuery(const TemporalUotsQuery& q, size_t num_vertices) {
  if (q.locations.empty()) {
    return Status::InvalidArgument("query needs at least one location");
  }
  if (q.locations.size() + q.times.size() > kMaxQueryLocations) {
    return Status::InvalidArgument("too many query sources (max 64 total)");
  }
  for (VertexId v : q.locations) {
    if (v >= num_vertices) {
      return Status::InvalidArgument("query location out of range");
    }
  }
  for (int32_t t : q.times) {
    if (t < 0 || t >= kSecondsPerDay) {
      return Status::InvalidArgument("query time outside [0, 86400)");
    }
  }
  if (q.weight_spatial < 0 || q.weight_temporal < 0 || q.weight_textual < 0) {
    return Status::InvalidArgument("weights must be non-negative");
  }
  const double sum = q.weight_spatial + q.weight_temporal + q.weight_textual;
  if (std::fabs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("weights must sum to 1");
  }
  if (q.times.empty() && q.weight_temporal != 0.0) {
    return Status::InvalidArgument("weight_temporal needs query times");
  }
  if (q.k < 1) return Status::InvalidArgument("k must be >= 1");
  return Status::OK();
}

Result<TemporalSearchResult> BruteForceTemporalSearch(
    const TrajectoryDatabase& db, const TemporalUotsQuery& query) {
  UOTS_RETURN_NOT_OK(ValidateTemporalQuery(query, db.network().NumVertices()));
  UOTS_TRACE_SCOPE("BF-3D");
  WallTimer timer;
  TemporalSearchResult out;
  const auto& store = db.store();
  const auto& model = db.model();

  std::vector<ShortestPathTree> trees;
  trees.reserve(query.locations.size());
  {
    ScopedPhase phase(&out.stats, QueryPhase::kSpatialExpansion);
    for (VertexId o : query.locations) {
      trees.push_back(ComputeShortestPathTree(db.network(), o));
      out.stats.settled_vertices +=
          static_cast<int64_t>(db.network().NumVertices());
    }
  }

  {
    ScopedPhase refine_phase(&out.stats, QueryPhase::kRefinement);
    TemporalTopK topk(static_cast<size_t>(query.k));
    for (TrajId id = 0; id < store.size(); ++id) {
      const auto samples = store.SamplesOf(id);
      double spatial = 0.0;
      for (const auto& tree : trees) {
        double best = std::numeric_limits<double>::infinity();
        for (const Sample& s : samples) {
          best = std::min(best, tree.dist[s.vertex]);
        }
        spatial += model.SpatialDecay(best);
      }
      spatial /= static_cast<double>(trees.size());

      double temporal = 0.0;
      if (!query.times.empty()) {
        for (int32_t t : query.times) {
          double best = std::numeric_limits<double>::infinity();
          for (const Sample& s : samples) {
            best = std::min(best, std::fabs(static_cast<double>(t) - s.time_s));
          }
          temporal += model.TemporalDecay(best);
        }
        temporal /= static_cast<double>(query.times.size());
      }

      const double textual =
          model.textual().Score(query.keywords, store.KeywordsOf(id));
      topk.Offer(TemporalScoredTrajectory{
          id, Combine3(query, spatial, temporal, textual), spatial, temporal,
          textual});
      ++out.stats.visited_trajectories;
      ++out.stats.candidates;
    }
    out.items = std::move(topk).Finish();
  }
  out.stats.elapsed_ms = timer.ElapsedMillis();
  return out;
}

TemporalUotsSearcher::TemporalUotsSearcher(const TrajectoryDatabase& db,
                                           const UotsSearchOptions& opts)
    : db_(&db), opts_(opts) {
  state_slot_.Resize(db.store().size());
  text_of_.Resize(db.store().size());
}

Result<TemporalSearchResult> TemporalUotsSearcher::Search(
    const TemporalUotsQuery& query) {
  UOTS_RETURN_NOT_OK(
      ValidateTemporalQuery(query, db_->network().NumVertices()));
  UOTS_TRACE_SCOPE("UOTS-3D");
  WallTimer timer;
  TemporalSearchResult out;
  const auto& store = db_->store();
  const auto& model = db_->model();
  const auto& vindex = db_->vertex_index();
  const size_t ms = query.locations.size();
  const size_t mt = query.times.size();
  const size_t total_sources = ms + mt;

  if (state_slot_.size() != store.size()) {
    state_slot_.Resize(store.size());
    text_of_.Resize(store.size());
  }

  // ---- Textual domain. ----
  {
    ScopedPhase phase(&out.stats, QueryPhase::kTextualFilter);
    const auto doc_keys = [this](DocId d) {
      return db_->store().KeywordsOf(static_cast<TrajId>(d));
    };
    db_->keyword_index().ScoreCandidates(query.keywords, model.textual(),
                                         &text_docs_, &out.stats.posting_entries,
                                         doc_keys, &text_scratch_);
    std::sort(text_docs_.begin(), text_docs_.end(),
              [](const ScoredDoc& a, const ScoredDoc& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    text_of_.Reset();
    for (const ScoredDoc& d : text_docs_) text_of_.Set(d.doc, d.score);
  }

  // ---- Expansions: sources [0, ms) spatial, [ms, ms+mt) temporal. ----
  while (spatial_.size() < ms) {
    spatial_.push_back(std::make_unique<NetworkExpansion>(db_->network()));
  }
  while (temporal_.size() < mt) {
    temporal_.push_back(
        std::make_unique<TemporalExpansion>(db_->time_index()));
  }
  std::vector<double> cur_decay(total_sources);
  std::vector<bool> exhausted(total_sources, false);
  for (size_t i = 0; i < ms; ++i) {
    spatial_[i]->Reset(query.locations[i]);
    cur_decay[i] = 1.0;
  }
  for (size_t j = 0; j < mt; ++j) {
    temporal_[j]->Reset(query.times[j]);
    cur_decay[ms + j] = 1.0;
    exhausted[ms + j] = temporal_[j]->exhausted();  // empty store
  }
  size_t exhausted_count = 0;
  for (bool e : exhausted) exhausted_count += e ? 1 : 0;

  state_slot_.Reset();
  states_.clear();
  partial_.clear();

  TemporalTopK topk(static_cast<size_t>(query.k));
  size_t text_ptr = 0;
  std::vector<double> labels(total_sources, 0.0);
  size_t cur = 0;

  // Registers one (source, trajectory, decay) hit; source < ms is spatial.
  const auto process_hit = [&](size_t src, TrajId t, double decay) {
    int32_t idx = state_slot_.Get(t, -1);
    if (idx < 0) {
      idx = static_cast<int32_t>(states_.size());
      state_slot_.Set(t, idx);
      states_.push_back(TrajState{t, 0, 0, 0.0, 0.0, text_of_.Get(t, 0.0)});
      partial_.push_back(idx);
      ++out.stats.visited_trajectories;
    }
    TrajState& s = states_[idx];
    const uint64_t bit = uint64_t{1} << src;
    if ((s.mask & bit) != 0) return;
    s.mask |= bit;
    ++s.known;
    if (src < ms) {
      s.sum_spatial += decay;
    } else {
      s.sum_temporal += decay;
    }
    ++out.stats.trajectory_hits;
    if (s.known == static_cast<int>(total_sources)) {
      const double sp = s.sum_spatial / static_cast<double>(ms);
      const double tp = mt > 0 ? s.sum_temporal / static_cast<double>(mt) : 0.0;
      topk.Offer(TemporalScoredTrajectory{
          t, Combine3(query, sp, tp, s.text), sp, tp, s.text});
      ++out.stats.candidates;
    }
  };

  for (;;) {
    if (exhausted_count == total_sources) break;

    const int batch =
        std::max<int>(opts_.batch_size, static_cast<int>(partial_.size() / 4));
    if (!exhausted[cur]) {
      ScopedPhase round(&out.stats, QueryPhase::kSpatialExpansion);
      if (cur < ms) {
        NetworkExpansion& ex = *spatial_[cur];
        for (int step = 0; step < batch; ++step) {
          VertexId v;
          double d;
          if (!ex.Step(&v, &d)) {
            exhausted[cur] = true;
            ++exhausted_count;
            cur_decay[cur] = 0.0;
            break;
          }
          ++out.stats.settled_vertices;
          const double decay = model.SpatialDecay(d);
          for (TrajId t : vindex.TrajectoriesAt(v)) process_hit(cur, t, decay);
        }
        if (!exhausted[cur]) cur_decay[cur] = model.SpatialDecay(ex.radius());
      } else {
        TemporalExpansion& ex = *temporal_[cur - ms];
        for (int step = 0; step < batch; ++step) {
          TrajId t;
          double dt;
          if (!ex.Step(&t, &dt)) {
            exhausted[cur] = true;
            ++exhausted_count;
            cur_decay[cur] = 0.0;
            break;
          }
          ++out.stats.settled_vertices;
          process_hit(cur, t, model.TemporalDecay(dt));
        }
        if (!exhausted[cur]) cur_decay[cur] = model.TemporalDecay(ex.radius());
      }
    }
    ++out.stats.schedule_steps;

    // ---- Termination check + scheduling sweep. ----
    bool terminated = false;
    {
      ScopedPhase bounds_round(&out.stats, QueryPhase::kBoundMaintenance);
      double total_rs_spatial = 0.0, total_rs_temporal = 0.0;
      for (size_t i = 0; i < ms; ++i) total_rs_spatial += cur_decay[i];
      for (size_t j = 0; j < mt; ++j) total_rs_temporal += cur_decay[ms + j];

      while (text_ptr < text_docs_.size()) {
        const int32_t idx = state_slot_.Get(text_docs_[text_ptr].doc, -1);
        if (idx >= 0 &&
            states_[idx].known == static_cast<int>(total_sources)) {
          ++text_ptr;
        } else {
          break;
        }
      }
      const double max_rem_text =
          text_ptr < text_docs_.size() ? text_docs_[text_ptr].score : 0.0;
      double global_ub =
          Combine3(query, total_rs_spatial / static_cast<double>(ms),
                   mt > 0 ? total_rs_temporal / static_cast<double>(mt) : 0.0,
                   max_rem_text);

      const bool heuristic = opts_.scheduling == SchedulingPolicy::kHeuristic;
      if (heuristic) std::fill(labels.begin(), labels.end(), 0.0);
      size_t w = 0;
      for (size_t r = 0; r < partial_.size(); ++r) {
        const TrajState& s = states_[partial_[r]];
        if (s.known == static_cast<int>(total_sources)) continue;
        partial_[w++] = partial_[r];
        double missing_sp = total_rs_spatial;
        double missing_tp = total_rs_temporal;
        uint64_t mask = s.mask;
        while (mask != 0) {
          const int i = __builtin_ctzll(mask);
          if (static_cast<size_t>(i) < ms) {
            missing_sp -= cur_decay[i];
          } else {
            missing_tp -= cur_decay[i];
          }
          mask &= mask - 1;
        }
        const double ub_sp =
            (s.sum_spatial + missing_sp) / static_cast<double>(ms);
        const double ub_tp =
            mt > 0 ? (s.sum_temporal + missing_tp) / static_cast<double>(mt)
                   : 0.0;
        const double ub = Combine3(query, ub_sp, ub_tp, s.text);
        if (ub > global_ub) global_ub = ub;
        if (heuristic) {
          uint64_t unset =
              ~s.mask & ((total_sources == 64)
                             ? ~uint64_t{0}
                             : ((uint64_t{1} << total_sources) - 1));
          while (unset != 0) {
            const int i = __builtin_ctzll(unset);
            labels[i] += ub;
            unset &= unset - 1;
          }
        }
      }
      partial_.resize(w);

      if (topk.Full() && topk.Threshold() >= global_ub) terminated = true;
    }
    if (terminated) break;

    // ---- Pick the next query source (same policies as two-domain). ----
    {
      ScopedPhase sched_round(&out.stats, QueryPhase::kScheduling);
      switch (opts_.scheduling) {
        case SchedulingPolicy::kHeuristic: {
          double best = -1.0;
          size_t best_i = cur;
          for (size_t i = 0; i < total_sources; ++i) {
            if (exhausted[i]) continue;
            if (labels[i] > best) {
              best = labels[i];
              best_i = i;
            }
          }
          cur = best_i;
          break;
        }
        case SchedulingPolicy::kRoundRobin: {
          for (size_t step = 1; step <= total_sources; ++step) {
            const size_t i = (cur + step) % total_sources;
            if (!exhausted[i]) {
              cur = i;
              break;
            }
          }
          break;
        }
        case SchedulingPolicy::kSequential: {
          for (size_t i = 0; i < total_sources && exhausted[cur]; ++i) {
            cur = i;
          }
          break;
        }
      }
    }
    if (exhausted[cur]) break;
  }

  {
    ScopedPhase phase(&out.stats, QueryPhase::kRefinement);
    out.items = std::move(topk).Finish();
  }
  out.stats.elapsed_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace uots

#include "core/query.h"

namespace uots {

Status ValidateQuery(const UotsQuery& q, size_t num_vertices) {
  if (q.locations.empty()) {
    return Status::InvalidArgument("query needs at least one location");
  }
  if (q.locations.size() > kMaxQueryLocations) {
    return Status::InvalidArgument("too many query locations (max 64)");
  }
  for (VertexId v : q.locations) {
    if (v >= num_vertices) {
      return Status::InvalidArgument("query location out of range");
    }
  }
  if (q.lambda < 0.0 || q.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0,1]");
  }
  if (q.k < 1) return Status::InvalidArgument("k must be >= 1");
  return Status::OK();
}

}  // namespace uots

// Query-workload generator for experiments and examples.
//
// Queries are derived from "seed" trajectories in the database, mimicking a
// traveler who wants a trip like one that exists: query locations are
// perturbed sample points of the seed (random walks of a few edges), query
// keywords mix the seed's keywords with vocabulary noise. This guarantees
// every query has at least one strong match, which is what makes pruning
// bounds meaningful (a query with no good match degenerates every
// algorithm to a full scan).

#ifndef UOTS_CORE_WORKLOAD_H_
#define UOTS_CORE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/query.h"
#include "util/status.h"

namespace uots {

/// \brief Knobs for MakeWorkload.
struct WorkloadOptions {
  int num_queries = 20;
  /// Query locations per query (m).
  int num_locations = 5;
  double lambda = 0.5;
  int k = 10;
  /// Random-walk steps applied to each seed sample (location perturbation).
  int location_walk_steps = 3;
  /// Query keywords per query (before deduplication).
  int num_keywords = 5;
  /// Probability a keyword is random noise instead of a seed keyword.
  double keyword_noise = 0.3;
  /// Draw keywords from a different random trajectory than the one seeding
  /// the locations. Models the paper's user-oriented scenario — the user
  /// stands somewhere and asks for *qualities*, not for what is already
  /// nearby — so the strong textual matches are spatially unrelated to the
  /// query locations. This is the expansion-heavy regime: an incremental
  /// search must drag every expansion out to each high-SimT candidate
  /// before its bound lets go.
  bool decouple_keywords = false;
  uint64_t seed = 7;
};

/// Generates a deterministic batch of queries over `db`.
Result<std::vector<UotsQuery>> MakeWorkload(const TrajectoryDatabase& db,
                                            const WorkloadOptions& opts);

}  // namespace uots

#endif  // UOTS_CORE_WORKLOAD_H_

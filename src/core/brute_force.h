// Exact brute-force search — ground truth and the "BF" baseline.
//
// Runs one full Dijkstra per query location (m shortest-path trees), then
// scores every trajectory exactly. Cost is O(m (|V| log |V| + |E|) +
// m * total_samples) per query, independent of any pruning — the yardstick
// the UOTS search must beat.

#ifndef UOTS_CORE_BRUTE_FORCE_H_
#define UOTS_CORE_BRUTE_FORCE_H_

#include <vector>

#include "core/algorithm.h"

namespace uots {

/// \brief Exact exhaustive searcher.
class BruteForceSearch : public SearchAlgorithm {
 public:
  explicit BruteForceSearch(const TrajectoryDatabase& db) : db_(&db) {}

  Result<SearchResult> Search(const UotsQuery& query) override;

  const char* name() const override { return "BF"; }

 private:
  const TrajectoryDatabase* db_;
};

}  // namespace uots

#endif  // UOTS_CORE_BRUTE_FORCE_H_

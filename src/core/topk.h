// Bounded top-k accumulator for scored trajectories.

#ifndef UOTS_CORE_TOPK_H_
#define UOTS_CORE_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "core/query.h"

namespace uots {

/// \brief Keeps the k highest-scoring trajectories seen so far.
///
/// Implemented as a binary min-heap on score; Threshold() (the k-th best
/// score) is the pruning bound used by every search algorithm.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { heap_.reserve(k + 1); }

  /// Offers an item; keeps it only if it beats the current boundary item.
  /// Score ties at the boundary break by ascending id, so the kept set —
  /// and therefore every engine's answer — does not depend on the order in
  /// which equal-score candidates were offered.
  void Offer(const ScoredTrajectory& item) {
    if (heap_.size() < k_) {
      heap_.push_back(item);
      std::push_heap(heap_.begin(), heap_.end(), MinOrder);
      return;
    }
    const ScoredTrajectory& worst = heap_.front();
    if (item.score > worst.score ||
        (item.score == worst.score && item.id < worst.id)) {
      std::pop_heap(heap_.begin(), heap_.end(), MinOrder);
      heap_.back() = item;
      std::push_heap(heap_.begin(), heap_.end(), MinOrder);
    }
  }

  bool Full() const { return heap_.size() >= k_; }

  /// Score a new item must exceed to enter; -inf until k items are held.
  double Threshold() const {
    return Full() ? heap_.front().score
                  : -std::numeric_limits<double>::infinity();
  }

  size_t size() const { return heap_.size(); }

  /// Extracts items in descending score order (stable for equal scores by
  /// ascending id, keeping results deterministic).
  std::vector<ScoredTrajectory> Finish() && {
    std::sort(heap_.begin(), heap_.end(),
              [](const ScoredTrajectory& a, const ScoredTrajectory& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.id < b.id;
              });
    return std::move(heap_);
  }

 private:
  /// Min-heap whose root is the boundary item: lowest score, and among
  /// equal scores the highest id (the one an equal-score, lower-id offer
  /// should displace).
  static bool MinOrder(const ScoredTrajectory& a, const ScoredTrajectory& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }

  size_t k_;
  std::vector<ScoredTrajectory> heap_;
};

}  // namespace uots

#endif  // UOTS_CORE_TOPK_H_

#include "core/database.h"

#include <algorithm>

namespace uots {

namespace {

uint64_t MixFingerprint(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

TrajectoryDatabase::TrajectoryDatabase(RoadNetwork network,
                                       TrajectoryStore store,
                                       Vocabulary vocabulary,
                                       const SimilarityOptions& opts)
    : network_(std::move(network)),
      store_(std::move(store)),
      vocabulary_(std::move(vocabulary)),
      model_(opts) {
  vertex_index_ =
      std::make_unique<VertexTrajectoryIndex>(store_, network_.NumVertices());
  keyword_index_ = std::make_unique<InvertedKeywordIndex>();
  for (TrajId id = 0; id < store_.size(); ++id) {
    keyword_index_->AddDocument(id, store_.KeywordsOf(id));
  }
  keyword_index_->Finalize();
  time_index_ = std::make_unique<TimeIndex>(store_);
  ApplyModelWiring(opts);
  fingerprint_ = ComputeStructuralFingerprint();
}

TrajectoryDatabase::TrajectoryDatabase(Parts parts,
                                       const SimilarityOptions& opts)
    : network_(std::move(parts.network)),
      store_(std::move(parts.store)),
      vocabulary_(std::move(parts.vocabulary)),
      model_(opts),
      vertex_index_(std::move(parts.vertex_index)),
      keyword_index_(std::move(parts.keyword_index)),
      time_index_(std::move(parts.time_index)),
      oracle_(std::move(parts.oracle)),
      backing_(std::move(parts.backing)) {
  ApplyModelWiring(opts);
  fingerprint_ = parts.fingerprint != 0 ? parts.fingerprint
                                        : ComputeStructuralFingerprint();
}

uint64_t TrajectoryDatabase::live_fingerprint() const {
  const uint64_t gen = delta_generation();
  if (gen == 0) return fingerprint_;
  return MixFingerprint(fingerprint_, gen);
}

uint64_t TrajectoryDatabase::ComputeStructuralFingerprint() const {
  uint64_t h = 0x75f17d6b3588f843ULL;
  h = MixFingerprint(h, network_.NumVertices());
  h = MixFingerprint(h, network_.NumEdges());
  h = MixFingerprint(h, store_.size());
  h = MixFingerprint(h, store_.TotalSamples());
  h = MixFingerprint(h, store_.TotalKeywordTerms());
  h = MixFingerprint(h, vocabulary_.size());
  // Sample up to 64 trajectories' shape so same-size datasets with
  // different contents still diverge.
  const size_t n = store_.size();
  const size_t stride = std::max<size_t>(1, n / 64);
  for (TrajId id = 0; static_cast<size_t>(id) < n;
       id += static_cast<TrajId>(stride)) {
    const auto samples = store_.SamplesOf(id);
    h = MixFingerprint(h, samples.size());
    if (!samples.empty()) {
      h = MixFingerprint(h, samples.front().vertex);
      h = MixFingerprint(h, samples.back().vertex);
    }
    h = MixFingerprint(h, store_.KeywordsOf(id).size());
  }
  return h != 0 ? h : 1;  // 0 is reserved for "unknown"
}

void TrajectoryDatabase::ApplyModelWiring(const SimilarityOptions& opts) {
  if (opts.measure == TextualMeasure::kWeighted) {
    model_.textual().SetDocumentFrequencies(
        keyword_index_->DocumentFrequencies(),
        static_cast<int64_t>(store_.size()));
  }
}

MemoryBreakdown TrajectoryDatabase::Memory() const {
  MemoryBreakdown m;
  m += network_.Memory();
  m += store_.Memory();
  m += vertex_index_->Memory();
  m += keyword_index_->Memory();
  m += time_index_->Memory();
  if (oracle_ != nullptr) m += oracle_->Memory();
  return m;
}

}  // namespace uots

#include "core/database.h"

namespace uots {

TrajectoryDatabase::TrajectoryDatabase(RoadNetwork network,
                                       TrajectoryStore store,
                                       Vocabulary vocabulary,
                                       const SimilarityOptions& opts)
    : network_(std::move(network)),
      store_(std::move(store)),
      vocabulary_(std::move(vocabulary)),
      model_(opts) {
  vertex_index_ =
      std::make_unique<VertexTrajectoryIndex>(store_, network_.NumVertices());
  keyword_index_ = std::make_unique<InvertedKeywordIndex>();
  for (TrajId id = 0; id < store_.size(); ++id) {
    keyword_index_->AddDocument(id, store_.KeywordsOf(id));
  }
  keyword_index_->Finalize();
  time_index_ = std::make_unique<TimeIndex>(store_);
  if (opts.measure == TextualMeasure::kWeighted) {
    model_.textual().SetDocumentFrequencies(
        keyword_index_->DocumentFrequencies(),
        static_cast<int64_t>(store_.size()));
  }
}

size_t TrajectoryDatabase::MemoryUsage() const {
  return network_.MemoryUsage() + store_.MemoryUsage() +
         vertex_index_->MemoryUsage() + keyword_index_->MemoryUsage() +
         time_index_->MemoryUsage();
}

}  // namespace uots

#include "core/database.h"

namespace uots {

TrajectoryDatabase::TrajectoryDatabase(RoadNetwork network,
                                       TrajectoryStore store,
                                       Vocabulary vocabulary,
                                       const SimilarityOptions& opts)
    : network_(std::move(network)),
      store_(std::move(store)),
      vocabulary_(std::move(vocabulary)),
      model_(opts) {
  vertex_index_ =
      std::make_unique<VertexTrajectoryIndex>(store_, network_.NumVertices());
  keyword_index_ = std::make_unique<InvertedKeywordIndex>();
  for (TrajId id = 0; id < store_.size(); ++id) {
    keyword_index_->AddDocument(id, store_.KeywordsOf(id));
  }
  keyword_index_->Finalize();
  time_index_ = std::make_unique<TimeIndex>(store_);
  ApplyModelWiring(opts);
}

TrajectoryDatabase::TrajectoryDatabase(Parts parts,
                                       const SimilarityOptions& opts)
    : network_(std::move(parts.network)),
      store_(std::move(parts.store)),
      vocabulary_(std::move(parts.vocabulary)),
      model_(opts),
      vertex_index_(std::move(parts.vertex_index)),
      keyword_index_(std::move(parts.keyword_index)),
      time_index_(std::move(parts.time_index)),
      backing_(std::move(parts.backing)) {
  ApplyModelWiring(opts);
}

void TrajectoryDatabase::ApplyModelWiring(const SimilarityOptions& opts) {
  if (opts.measure == TextualMeasure::kWeighted) {
    model_.textual().SetDocumentFrequencies(
        keyword_index_->DocumentFrequencies(),
        static_cast<int64_t>(store_.size()));
  }
}

MemoryBreakdown TrajectoryDatabase::Memory() const {
  MemoryBreakdown m;
  m += network_.Memory();
  m += store_.Memory();
  m += vertex_index_->Memory();
  m += keyword_index_->Memory();
  m += time_index_->Memory();
  return m;
}

}  // namespace uots

// Similar-pair discovery (self join) — the trajectory near-duplicate
// detection / data-cleaning application from the paper's introduction.
//
// Divide and conquer in the style of this paper family's joins: each
// trajectory tau issues a threshold UOTS query built from its own samples
// and keywords; the per-trajectory candidate sets are then merged, keeping
// mutually-similar pairs. The per-trajectory searches are independent and
// run on the batch thread pool.
//
// Pair semantics: query q(tau) uses up to `max_query_locations` evenly
// spaced samples of tau as query locations and tau's keywords, so
// SimU(q(tau), tau') measures how well tau' serves a traveler wanting to
// retrace tau. The pair score is the average of the two directions, and a
// pair qualifies only when BOTH directions reach theta ("mutually
// similar") — this keeps the score symmetric and the join safe against
// one-sided matches.

#ifndef UOTS_CORE_PAIRS_H_
#define UOTS_CORE_PAIRS_H_

#include <vector>

#include "core/database.h"
#include "core/query.h"

namespace uots {

/// \brief Options of the similar-pairs self join.
struct PairJoinOptions {
  /// Both directions must score at least theta.
  double theta = 0.8;
  /// Spatial/textual preference of the pair metric.
  double lambda = 0.5;
  /// Sample points of a trajectory used as its query locations.
  int max_query_locations = 8;
  /// Worker threads for the per-trajectory searches.
  int threads = 1;
};

/// \brief One qualifying pair; a < b, score = mean of both directions.
struct SimilarPair {
  TrajId a = kInvalidTraj;
  TrajId b = kInvalidTraj;
  double score = 0.0;
};

/// Builds the threshold query a trajectory issues for the self join.
UotsQuery MakePairQuery(const TrajectoryDatabase& db, TrajId id,
                        const PairJoinOptions& opts);

/// \brief Finds all mutually-similar trajectory pairs; descending score.
Result<std::vector<SimilarPair>> FindSimilarPairs(const TrajectoryDatabase& db,
                                                  const PairJoinOptions& opts);

}  // namespace uots

#endif  // UOTS_CORE_PAIRS_H_

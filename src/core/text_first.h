// Textual-first filter-and-refine baseline ("TF").
//
// The structural analogue of the (accelerated) temporal-first baseline in
// this paper family: the non-spatial domain drives the search, so spatial
// pruning is weak. Like the paper's "TF-A" variant, spatial distances come
// from per-query precomputed shortest-path trees (one full Dijkstra per
// query location) — without this acceleration the baseline degenerates to
// per-candidate Dijkstras and is uncompetitive by construction.
//
// Candidates are visited in descending exact textual similarity; each is
// refined to an exact score by tree lookup. The scan stops when even a
// perfect spatial score (SimS = 1) cannot lift the next candidate above
// the current k-th result:
//   UB(next) = lambda * 1 + (1 - lambda) * SimT(next).
// Trajectories sharing no query keyword (SimT = 0) form the tail of the
// order and are only scanned while lambda alone can still beat the k-th.

#ifndef UOTS_CORE_TEXT_FIRST_H_
#define UOTS_CORE_TEXT_FIRST_H_

#include <vector>

#include "core/algorithm.h"
#include "ingest/merged_view.h"
#include "net/dijkstra.h"

namespace uots {

/// \brief Textual-first baseline searcher (stateful; one per thread).
class TextFirstSearch : public SearchAlgorithm {
 public:
  explicit TextFirstSearch(const TrajectoryDatabase& db) : db_(&db) {}

  Result<SearchResult> Search(const UotsQuery& query) override;

  const char* name() const override { return "TF"; }

 private:
  /// Exact SimS of one trajectory by lookup in the per-query trees.
  double ExactSpatial(TrajId id, QueryStats* stats) const;

  const TrajectoryDatabase* db_;
  MergedView view_;  ///< base+delta surface, rebound per Search
  std::vector<ShortestPathTree> trees_;  // one per query location
  std::vector<ScoredDoc> text_docs_;
  /// Counter scratch for the shared keyword index (one per engine — the
  /// index itself must stay read-only under concurrent queries).
  TextScoringScratch text_scratch_;
};

}  // namespace uots

#endif  // UOTS_CORE_TEXT_FIRST_H_

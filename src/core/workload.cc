#include "core/workload.h"

#include <algorithm>

#include "util/rng.h"

namespace uots {

Result<std::vector<UotsQuery>> MakeWorkload(const TrajectoryDatabase& db,
                                            const WorkloadOptions& opts) {
  if (db.store().empty()) {
    return Status::InvalidArgument("database has no trajectories");
  }
  if (opts.num_queries < 0 || opts.num_locations < 1 ||
      opts.num_locations > static_cast<int>(kMaxQueryLocations)) {
    return Status::InvalidArgument("bad workload shape");
  }
  if (opts.lambda < 0.0 || opts.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in [0,1]");
  }
  if (opts.keyword_noise < 0.0 || opts.keyword_noise > 1.0) {
    return Status::InvalidArgument("keyword_noise must be in [0,1]");
  }
  Rng rng(opts.seed);
  const auto& g = db.network();
  const auto& store = db.store();
  const size_t vocab =
      db.vocabulary().size() > 0 ? db.vocabulary().size() : 1000;

  std::vector<UotsQuery> out;
  out.reserve(opts.num_queries);
  for (int qi = 0; qi < opts.num_queries; ++qi) {
    const TrajId seed_id = static_cast<TrajId>(rng.Uniform(store.size()));
    const auto samples = store.SamplesOf(seed_id);
    UotsQuery q;
    q.lambda = opts.lambda;
    q.k = opts.k;

    // Locations: evenly spaced seed samples, each perturbed by a short
    // random walk on the network.
    for (int li = 0; li < opts.num_locations; ++li) {
      const size_t pick =
          samples.size() <= 1
              ? 0
              : (li * (samples.size() - 1)) / (opts.num_locations > 1
                                                   ? opts.num_locations - 1
                                                   : 1);
      VertexId v = samples[std::min(pick, samples.size() - 1)].vertex;
      for (int s = 0; s < opts.location_walk_steps; ++s) {
        const auto nbrs = g.Neighbors(v);
        if (nbrs.empty()) break;
        v = nbrs[rng.Uniform(nbrs.size())].to;
      }
      q.locations.push_back(v);
    }

    // Keywords: seed keywords with vocabulary noise mixed in. With
    // decouple_keywords the keyword seed is an unrelated trajectory, so
    // the textual and spatial domains pull in different directions.
    const TrajId key_seed =
        opts.decouple_keywords
            ? static_cast<TrajId>(rng.Uniform(store.size()))
            : seed_id;
    const auto& seed_keys = store.KeywordsOf(key_seed).terms();
    std::vector<TermId> keys;
    for (int ki = 0; ki < opts.num_keywords; ++ki) {
      if (!seed_keys.empty() && !rng.Bernoulli(opts.keyword_noise)) {
        keys.push_back(seed_keys[rng.Uniform(seed_keys.size())]);
      } else {
        keys.push_back(static_cast<TermId>(rng.Uniform(vocab)));
      }
    }
    q.keywords = KeywordSet(std::move(keys));
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace uots

#include "core/batch.h"

#include <string>

#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace uots {

Result<SearchResult> RunQuery(const TrajectoryDatabase& db,
                              const UotsQuery& query,
                              const QueryOptions& opts) {
  auto engine = CreateAlgorithm(db, opts.algorithm, opts.uots);
  CancelToken token;
  if (opts.deadline_ms > 0.0) {
    token.SetDeadlineAfterMs(opts.deadline_ms);
    engine->set_cancel(&token);
  }
  return engine->Search(query);
}

BatchResult RunBatchDetailed(const TrajectoryDatabase& db,
                             const std::vector<UotsQuery>& queries,
                             const BatchOptions& opts) {
  BatchResult out;
  if (opts.threads < 1) {
    out.status = Status::InvalidArgument("threads must be >= 1");
    return out;
  }
  out.answers.resize(queries.size());
  if (queries.empty()) return out;

  const size_t shards =
      std::min<size_t>(static_cast<size_t>(opts.threads), queries.size());
  out.shards.resize(shards);
  std::vector<LatencyHistogram> shard_hist(shards);

  // One token shared by every shard: a real query failure Cancel()s it, a
  // batch deadline arms it. Either way sibling shards observe ShouldAbort()
  // at their next query boundary (and, inside a long query, the engine's
  // own round-boundary poll) instead of running the batch to completion.
  CancelToken token;
  if (opts.deadline_ms > 0.0) token.SetDeadlineAfterMs(opts.deadline_ms);

  // Distinguishes "stopped because a sibling failed" from "stopped because
  // the batch deadline expired": Cancel() is only ever called on a real
  // failure, so cancelled() is a precise witness.
  const auto abort_status = [&token] {
    return token.cancelled()
               ? Status::Cancelled("aborted: a sibling shard failed")
               : Status::DeadlineExceeded("batch deadline exceeded");
  };

  WallTimer timer;
  {
    ThreadPool pool(shards);
    std::vector<std::future<void>> futures;
    futures.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      futures.push_back(pool.Submit([&, s] {
        UOTS_TRACE_SCOPE_ID("batch_shard", static_cast<int64_t>(s));
        ShardStats& shard = out.shards[s];
        shard.shard = static_cast<int>(s);
        shard.begin = s * queries.size() / shards;
        shard.end = (s + 1) * queries.size() / shards;
        WallTimer shard_timer;
        auto engine = CreateAlgorithm(db, opts.algorithm, opts.uots);
        engine->set_cancel(&token);
        for (size_t i = shard.begin; i < shard.end; ++i) {
          if (token.ShouldAbort()) {
            shard.status = abort_status();
            break;
          }
          Result<SearchResult> r = engine->Search(queries[i]);
          if (!r.ok()) {
            if (r.status().code() == StatusCode::kDeadlineExceeded) {
              // The shared token fired mid-query; attribute it precisely
              // rather than blaming queries[i].
              shard.status = abort_status();
            } else {
              // Report which query failed; shard-local indices are opaque
              // to the caller, workload indices are not. Stop the siblings:
              // their remaining work is wasted once the batch has failed.
              shard.status = Status(r.status().code(),
                                    "query " + std::to_string(i) + ": " +
                                        r.status().message());
              token.Cancel();
            }
            break;
          }
          shard_hist[s].Record(
              static_cast<int64_t>(r->stats.elapsed_ms * 1e6));
          shard.stats += r->stats;
          out.answers[i] = std::move(r->items);
          ++shard.completed;
        }
        shard.wall_seconds = shard_timer.ElapsedSeconds();
      }));
    }
    for (auto& f : futures) f.get();
  }
  out.wall_seconds = timer.ElapsedSeconds();

  // Merge EVERY shard's completed work — including shards that failed or
  // aborted partway. Dropping a failing shard's latencies would silently
  // skew the histogram toward the healthy shards.
  for (size_t s = 0; s < shards; ++s) {
    out.completed += out.shards[s].completed;
    out.total += out.shards[s].stats;
    out.latency.Merge(shard_hist[s]);
  }
  MetricsRegistry::Global().Merge("batch.query_latency", out.latency);

  // Overall status: the first real error wins (kCancelled shards are
  // collateral, kDeadlineExceeded is reported batch-wide with counts).
  bool deadline_hit = false;
  for (const ShardStats& shard : out.shards) {
    if (shard.status.ok()) continue;
    if (shard.status.code() == StatusCode::kCancelled) continue;
    if (shard.status.code() == StatusCode::kDeadlineExceeded) {
      deadline_hit = true;
      continue;
    }
    out.status = shard.status;
    return out;
  }
  if (deadline_hit) {
    out.status = Status::DeadlineExceeded(
        "batch deadline exceeded after " + std::to_string(out.completed) +
        " of " + std::to_string(queries.size()) + " queries");
  }
  return out;
}

Result<BatchResult> RunBatch(const TrajectoryDatabase& db,
                             const std::vector<UotsQuery>& queries,
                             const BatchOptions& opts) {
  BatchResult out = RunBatchDetailed(db, queries, opts);
  if (!out.status.ok()) return out.status;
  return out;
}

}  // namespace uots

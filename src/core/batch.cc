#include "core/batch.h"

#include <string>

#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace uots {

Result<SearchResult> RunQuery(const TrajectoryDatabase& db,
                              const UotsQuery& query,
                              const QueryOptions& opts) {
  auto engine = CreateAlgorithm(db, opts.algorithm, opts.uots);
  CancelToken token;
  if (opts.deadline_ms > 0.0) {
    token.SetDeadlineAfterMs(opts.deadline_ms);
    engine->set_cancel(&token);
  }
  return engine->Search(query);
}

Result<BatchResult> RunBatch(const TrajectoryDatabase& db,
                             const std::vector<UotsQuery>& queries,
                             const BatchOptions& opts) {
  if (opts.threads < 1) return Status::InvalidArgument("threads must be >= 1");
  BatchResult out;
  out.answers.resize(queries.size());
  if (queries.empty()) return out;

  const size_t shards =
      std::min<size_t>(static_cast<size_t>(opts.threads), queries.size());
  out.shards.resize(shards);
  std::vector<LatencyHistogram> shard_hist(shards);
  std::vector<Status> shard_status(shards);

  WallTimer timer;
  {
    ThreadPool pool(shards);
    std::vector<std::future<void>> futures;
    futures.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      futures.push_back(pool.Submit([&, s] {
        UOTS_TRACE_SCOPE_ID("batch_shard", static_cast<int64_t>(s));
        ShardStats& shard = out.shards[s];
        shard.shard = static_cast<int>(s);
        shard.begin = s * queries.size() / shards;
        shard.end = (s + 1) * queries.size() / shards;
        WallTimer shard_timer;
        auto engine = CreateAlgorithm(db, opts.algorithm, opts.uots);
        for (size_t i = shard.begin; i < shard.end; ++i) {
          Result<SearchResult> r = engine->Search(queries[i]);
          if (!r.ok()) {
            // Report which query failed; shard-local indices are opaque to
            // the caller, workload indices are not.
            shard_status[s] =
                Status(r.status().code(), "query " + std::to_string(i) + ": " +
                                              r.status().message());
            shard.wall_seconds = shard_timer.ElapsedSeconds();
            return;
          }
          shard_hist[s].Record(
              static_cast<int64_t>(r->stats.elapsed_ms * 1e6));
          shard.stats += r->stats;
          out.answers[i] = std::move(r->items);
        }
        shard.wall_seconds = shard_timer.ElapsedSeconds();
      }));
    }
    for (auto& f : futures) f.get();
  }
  out.wall_seconds = timer.ElapsedSeconds();
  for (const auto& st : shard_status) {
    if (!st.ok()) return st;
  }
  for (size_t s = 0; s < shards; ++s) {
    out.total += out.shards[s].stats;
    out.latency.Merge(shard_hist[s]);
  }
  MetricsRegistry::Global().Merge("batch.query_latency", out.latency);
  return out;
}

}  // namespace uots

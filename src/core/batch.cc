#include "core/batch.h"

#include <mutex>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace uots {

Result<BatchResult> RunBatch(const TrajectoryDatabase& db,
                             const std::vector<UotsQuery>& queries,
                             const BatchOptions& opts) {
  if (opts.threads < 1) return Status::InvalidArgument("threads must be >= 1");
  BatchResult out;
  out.answers.resize(queries.size());
  if (queries.empty()) return out;

  const size_t shards =
      std::min<size_t>(static_cast<size_t>(opts.threads), queries.size());
  std::vector<QueryStats> shard_stats(shards);
  std::vector<Status> shard_status(shards);

  WallTimer timer;
  {
    ThreadPool pool(shards);
    std::vector<std::future<void>> futures;
    futures.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      futures.push_back(pool.Submit([&, s] {
        auto engine = CreateAlgorithm(db, opts.algorithm, opts.uots);
        const size_t begin = s * queries.size() / shards;
        const size_t end = (s + 1) * queries.size() / shards;
        for (size_t i = begin; i < end; ++i) {
          Result<SearchResult> r = engine->Search(queries[i]);
          if (!r.ok()) {
            shard_status[s] = r.status();
            return;
          }
          shard_stats[s] += r->stats;
          out.answers[i] = std::move(r->items);
        }
      }));
    }
    for (auto& f : futures) f.get();
  }
  out.wall_seconds = timer.ElapsedSeconds();
  for (const auto& st : shard_status) {
    if (!st.ok()) return st;
  }
  for (const auto& s : shard_stats) out.total += s;
  return out;
}

}  // namespace uots

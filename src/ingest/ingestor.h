// Ingestor — the write side of live ingest (DESIGN.md §11).
//
// Owns everything mutable about the delta layer: the accumulated trip
// list, the duplicate-content filter, the generation counter, and the
// accept/reject tallies. Single-writer by design: the server calls every
// method from its reactor thread (queries never touch the Ingestor; they
// read the sealed DeltaIndex the Ingestor publishes), so none of this
// needs a lock.
//
// Apply() is atomic per batch: either every trajectory in the request
// validates and the whole batch becomes the next sealed generation, or
// nothing is ingested and the first offending trip is named in the error.
// Atomicity keeps retry semantics trivial for clients (a failed batch
// changed nothing) and keeps TrajId assignment contiguous per batch.

#ifndef UOTS_INGEST_INGESTOR_H_
#define UOTS_INGEST_INGESTOR_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/database.h"
#include "ingest/delta_index.h"
#include "traj/trajectory.h"
#include "util/status.h"

namespace uots {

/// \brief Content hash of one trajectory (samples + keywords), used to
/// reject duplicate submissions (client retries after a lost response).
uint64_t TrajectoryContentHash(const Trajectory& t);

/// \brief Single-writer ingest state machine over one TrajectoryDatabase.
class Ingestor {
 public:
  /// `db` must outlive the Ingestor (or be replaced via Rebase before
  /// destruction of the old database).
  explicit Ingestor(const TrajectoryDatabase* db);

  struct ApplyResult {
    TrajId first_id = kInvalidTraj;  ///< global id of the first new trip
    size_t accepted = 0;             ///< trips in this batch
    uint64_t generation = 0;         ///< the generation now serving
  };

  /// \brief Validates and ingests one batch (all-or-nothing).
  ///
  /// On success the new DeltaIndex generation is already published on the
  /// database: the next query observes every trip in the batch. Fails with
  /// InvalidArgument on a malformed trip, an out-of-range vertex or term, a
  /// duplicate submission, or a kWeighted textual model (idf weights depend
  /// on global document frequencies, so a delta overlay cannot be
  /// bit-identical to a rebuild; see DESIGN.md §11).
  Result<ApplyResult> Apply(std::vector<Trajectory> trips);

  /// \brief Re-targets the ingestor after a compaction swap.
  ///
  /// `compacted` of the pending trips (the seal-time prefix) are now part
  /// of `new_db`'s base; the survivors keep their global ids (new base
  /// count = old base count + compacted) and are re-published on `new_db`
  /// as the next generation — or, with no survivors, the generation still
  /// advances with a null delta so cache salts move past the swap.
  void Rebase(const TrajectoryDatabase* new_db, size_t compacted);

  /// Pending (uncompacted) trips, oldest first; local id = position.
  const std::vector<Trajectory>& pending() const { return pending_; }
  uint64_t generation() const { return generation_; }
  /// Approximate heap bytes of the published DeltaIndex (0 when none).
  size_t delta_bytes() const { return delta_ ? delta_->MemoryUsage() : 0; }
  size_t delta_trajectories() const { return pending_.size(); }

  int64_t accepted_total() const { return accepted_total_; }
  int64_t rejected_total() const { return rejected_total_; }
  int64_t batches_total() const { return batches_total_; }

 private:
  /// Validates one trip against the current database's limits.
  Status ValidateTrip(const Trajectory& t) const;
  /// Rebuilds + publishes the DeltaIndex for the current pending set.
  void Publish();

  const TrajectoryDatabase* db_;
  std::vector<Trajectory> pending_;
  /// Content hashes of every trip ever accepted (survives compaction):
  /// the duplicate filter is a retry guard, so it must keep rejecting a
  /// trip after compaction folded the original into the base.
  std::unordered_set<uint64_t> seen_;
  std::shared_ptr<const DeltaIndex> delta_;
  uint64_t generation_ = 0;
  int64_t accepted_total_ = 0;
  int64_t rejected_total_ = 0;
  int64_t batches_total_ = 0;
};

}  // namespace uots

#endif  // UOTS_INGEST_INGESTOR_H_

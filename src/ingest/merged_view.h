// MergedView — the base+delta read surface every query engine uses.
//
// A MergedView is a per-query snapshot: Bind() captures the database's
// current delta overlay (one shared_ptr load), after which the view is
// frozen even if the reactor publishes further generations mid-query.
// Engines address trajectories by global id; the view routes
//
//   id <  base_count()  ->  the immutable base store/indexes
//   id >= base_count()  ->  the delta (local id = id - base_count())
//
// Bit-identity with a monolithic rebuild (tests/ingest_test.cc) rests on
// two properties the view preserves:
//
//  1. Posting order. Base postings are ascending < base_count, delta
//     postings ascending >= base_count, so walking base-then-delta
//     enumerates exactly the ascending posting list a rebuilt index would
//     hold for the same trips.
//  2. Score arithmetic. Per-trajectory numeric state (distance decays,
//     set-overlap counts) is independent of other trajectories, and
//     DeltaIndex::ScoreCandidates replicates InvertedKeywordIndex's
//     per-measure formulas operation-for-operation.
//
// With no delta published, every method degenerates to the base accessors
// (one null check); the quiescent query path is unchanged.

#ifndef UOTS_INGEST_MERGED_VIEW_H_
#define UOTS_INGEST_MERGED_VIEW_H_

#include <memory>
#include <span>
#include <vector>

#include "core/database.h"
#include "ingest/delta_index.h"

namespace uots {

/// \brief Snapshot view over base + delta; cheap to Bind per query.
class MergedView {
 public:
  MergedView() = default;

  /// Captures `db`'s current delta generation. The view (and the pinned
  /// DeltaIndex) stays valid for the caller's lifetime regardless of later
  /// publishes; `db` itself must outlive the view.
  void Bind(const TrajectoryDatabase& db) {
    base_ = &db;
    delta_ = db.delta();
    base_count_ = static_cast<TrajId>(db.store().size());
  }

  bool has_delta() const { return delta_ != nullptr && delta_->size() > 0; }
  const DeltaIndex* delta() const { return delta_.get(); }

  /// First delta global id == number of base trajectories.
  TrajId base_count() const { return base_count_; }

  /// Base + delta trajectory count (the id space is [0, NumTrajectories)).
  size_t NumTrajectories() const {
    return base_count_ + (delta_ ? delta_->size() : 0);
  }

  std::span<const Sample> SamplesOf(TrajId id) const {
    return id < base_count_ ? base_->store().SamplesOf(id)
                            : delta_->store().SamplesOf(id - base_count_);
  }

  KeywordSet KeywordsOf(TrajId id) const {
    return id < base_count_ ? base_->store().KeywordsOf(id)
                            : delta_->store().KeywordsOf(id - base_count_);
  }

  size_t LengthOf(TrajId id) const {
    return id < base_count_ ? base_->store().LengthOf(id)
                            : delta_->store().LengthOf(id - base_count_);
  }

  /// \brief The two posting segments for vertex `v`.
  ///
  /// `base` then `delta` is the ascending, deduplicated global posting
  /// list; iterate both in order.
  struct Postings {
    std::span<const TrajId> base;
    std::span<const TrajId> delta;
  };

  Postings TrajectoriesAt(VertexId v) const {
    Postings p;
    p.base = base_->vertex_index().TrajectoriesAt(v);
    if (delta_) p.delta = delta_->TrajectoriesAt(v);
    return p;
  }

  /// \brief Scores every base and delta trajectory sharing >= 1 term with
  /// `query` (unsorted, like InvertedKeywordIndex::ScoreCandidates).
  /// `scratch` is the caller-owned counter scratch for the base index —
  /// engines keep one each, since the index is shared across threads.
  void ScoreTextual(const KeywordSet& query, const TextualSimilarity& sim,
                    std::vector<ScoredDoc>* out,
                    int64_t* posting_entries = nullptr,
                    TextScoringScratch* scratch = nullptr) const {
    const auto doc_keys = [this](DocId d) {
      return base_->store().KeywordsOf(static_cast<TrajId>(d));
    };
    base_->keyword_index().ScoreCandidates(query, sim, out, posting_entries,
                                           doc_keys, scratch);
    if (delta_) delta_->ScoreCandidates(query, sim, out, posting_entries);
  }

 private:
  const TrajectoryDatabase* base_ = nullptr;
  std::shared_ptr<const DeltaIndex> delta_;
  TrajId base_count_ = 0;
};

}  // namespace uots

#endif  // UOTS_INGEST_MERGED_VIEW_H_

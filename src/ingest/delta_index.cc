#include "ingest/delta_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace uots {

namespace {

/// Builds a sorted sparse CSR from (key, global id) pairs. Pairs arrive in
/// ascending global-id order per key (trips are indexed in id order), so
/// after the stable key sort each slice is ascending; duplicates (a trip
/// revisiting a vertex) collapse via unique.
void BuildSparse(std::vector<std::pair<uint32_t, TrajId>> pairs,
                 std::vector<uint32_t>* keys, std::vector<uint32_t>* offsets,
                 std::vector<TrajId>* entries) {
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  keys->clear();
  offsets->clear();
  entries->clear();
  offsets->push_back(0);
  size_t i = 0;
  while (i < pairs.size()) {
    const uint32_t key = pairs[i].first;
    keys->push_back(key);
    const size_t start = entries->size();
    for (; i < pairs.size() && pairs[i].first == key; ++i) {
      if (entries->size() == start || entries->back() != pairs[i].second) {
        entries->push_back(pairs[i].second);
      }
    }
    offsets->push_back(static_cast<uint32_t>(entries->size()));
  }
}

}  // namespace

std::span<const TrajId> DeltaIndex::SparsePostings::At(uint32_t key) const {
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return {};
  const size_t i = static_cast<size_t>(it - keys.begin());
  return {entries.data() + offsets[i], entries.data() + offsets[i + 1]};
}

size_t DeltaIndex::SparsePostings::bytes() const {
  return keys.capacity() * sizeof(uint32_t) +
         offsets.capacity() * sizeof(uint32_t) +
         entries.capacity() * sizeof(TrajId);
}

DeltaIndex::DeltaIndex(uint64_t generation, TrajId base_count,
                       const std::vector<Trajectory>& trips)
    : generation_(generation), base_count_(base_count) {
  std::vector<std::pair<uint32_t, TrajId>> vertex_pairs;
  std::vector<std::pair<uint32_t, TrajId>> term_pairs;
  for (size_t i = 0; i < trips.size(); ++i) {
    const auto added = store_.Add(trips[i]);
    assert(added.ok() && "ingest validates trips before building the delta");
    (void)added;
    const TrajId global = base_count_ + static_cast<TrajId>(i);
    for (const Sample& s : trips[i].samples) {
      vertex_pairs.emplace_back(static_cast<uint32_t>(s.vertex), global);
      timeline_.push_back(TimeIndex::Entry{s.time_s, global});
    }
    for (TermId t : trips[i].keywords.terms()) {
      term_pairs.emplace_back(static_cast<uint32_t>(t), global);
    }
  }
  BuildSparse(std::move(vertex_pairs), &vertex_postings_.keys,
              &vertex_postings_.offsets, &vertex_postings_.entries);
  BuildSparse(std::move(term_pairs), &keyword_postings_.keys,
              &keyword_postings_.offsets, &keyword_postings_.entries);
  std::sort(timeline_.begin(), timeline_.end(),
            [](const TimeIndex::Entry& a, const TimeIndex::Entry& b) {
              return a.time_s != b.time_s ? a.time_s < b.time_s
                                          : a.traj < b.traj;
            });
}

std::span<const TrajId> DeltaIndex::TrajectoriesAt(VertexId v) const {
  return vertex_postings_.At(static_cast<uint32_t>(v));
}

std::span<const TrajId> DeltaIndex::Postings(TermId t) const {
  return keyword_postings_.At(static_cast<uint32_t>(t));
}

void DeltaIndex::ScoreCandidates(const KeywordSet& query,
                                 const TextualSimilarity& sim,
                                 std::vector<ScoredDoc>* out,
                                 int64_t* posting_entries) const {
  if (query.empty() || store_.empty()) return;

  // Per-call scratch (delta is small); local ids keep it dense.
  std::vector<uint32_t> count(store_.size(), 0);
  std::vector<TrajId> touched;
  for (TermId t : query.terms()) {
    for (TrajId global : Postings(t)) {
      if (posting_entries != nullptr) ++*posting_entries;
      const TrajId local = global - base_count_;
      if (count[local] == 0) touched.push_back(local);
      ++count[local];
    }
  }

  // Identical per-measure arithmetic to InvertedKeywordIndex — same
  // operand types, same operation order — so merged scores are bitwise
  // equal to a monolithic rebuild's.
  const double qsize = static_cast<double>(query.size());
  for (TrajId local : touched) {
    const double inter = count[local];
    const double dsize = static_cast<double>(store_.KeywordsOf(local).size());
    double score = 0.0;
    switch (sim.measure()) {
      case TextualMeasure::kJaccard:
        score = inter / (qsize + dsize - inter);
        break;
      case TextualMeasure::kDice:
        score = 2.0 * inter / (qsize + dsize);
        break;
      case TextualMeasure::kOverlap:
        score = inter / std::min(qsize, dsize);
        break;
      case TextualMeasure::kCosine:
        score = inter / std::sqrt(qsize * dsize);
        break;
      case TextualMeasure::kWeighted:
        // Ingest refuses kWeighted models (idf depends on global document
        // frequencies, which a delta cannot reproduce); scoring directly
        // keeps the method total for completeness.
        score = sim.Score(query, store_.KeywordsOf(local));
        break;
    }
    out->push_back(ScoredDoc{base_count_ + local, score});
  }
}

size_t DeltaIndex::MemoryUsage() const {
  return store_.Memory().total() + vertex_postings_.bytes() +
         keyword_postings_.bytes() +
         timeline_.capacity() * sizeof(TimeIndex::Entry);
}

}  // namespace uots

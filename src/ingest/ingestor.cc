#include "ingest/ingestor.h"

#include <string>
#include <utility>

namespace uots {

namespace {

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

uint64_t TrajectoryContentHash(const Trajectory& t) {
  uint64_t h = 0xc4ceb9fe1a85ec53ULL;
  h = MixHash(h, t.samples.size());
  for (const Sample& s : t.samples) {
    h = MixHash(h, static_cast<uint64_t>(s.vertex));
    h = MixHash(h, static_cast<uint64_t>(static_cast<uint32_t>(s.time_s)));
  }
  h = MixHash(h, t.keywords.size());
  for (TermId k : t.keywords.terms()) {
    h = MixHash(h, static_cast<uint64_t>(k));
  }
  return h;
}

Ingestor::Ingestor(const TrajectoryDatabase* db) : db_(db) {}

Status Ingestor::ValidateTrip(const Trajectory& t) const {
  if (!t.IsValid()) {
    return Status::InvalidArgument(
        "trajectory must be non-empty with nondecreasing time-of-day "
        "timestamps");
  }
  const size_t num_vertices = db_->network().NumVertices();
  for (const Sample& s : t.samples) {
    if (static_cast<size_t>(s.vertex) >= num_vertices) {
      return Status::InvalidArgument(
          "sample vertex " + std::to_string(s.vertex) +
          " out of range (network has " + std::to_string(num_vertices) +
          " vertices)");
    }
  }
  // An empty vocabulary means term ids are raw (generator datasets); any
  // id is addressable by the inverted index. With a vocabulary, unknown
  // terms are rejected — the snapshot validator enforces the same bound.
  const size_t vocab = db_->vocabulary().size();
  if (vocab > 0) {
    for (TermId k : t.keywords.terms()) {
      if (static_cast<size_t>(k) >= vocab) {
        return Status::InvalidArgument(
            "keyword term " + std::to_string(k) +
            " out of range (vocabulary has " + std::to_string(vocab) +
            " terms)");
      }
    }
  }
  return Status::OK();
}

Result<Ingestor::ApplyResult> Ingestor::Apply(std::vector<Trajectory> trips) {
  if (trips.empty()) {
    return Status::InvalidArgument("ingest batch is empty");
  }
  if (db_->model().textual().measure() == TextualMeasure::kWeighted) {
    rejected_total_ += static_cast<int64_t>(trips.size());
    return Status::InvalidArgument(
        "live ingest is unavailable under the weighted (idf) textual "
        "measure: delta answers could not be bit-identical to a rebuild");
  }

  // Validate the whole batch before touching any state (all-or-nothing).
  std::unordered_set<uint64_t> batch_hashes;
  for (size_t i = 0; i < trips.size(); ++i) {
    Status st = ValidateTrip(trips[i]);
    if (st.ok()) {
      const uint64_t h = TrajectoryContentHash(trips[i]);
      if (seen_.count(h) != 0 || !batch_hashes.insert(h).second) {
        st = Status::InvalidArgument("duplicate trajectory content");
      }
    }
    if (!st.ok()) {
      rejected_total_ += static_cast<int64_t>(trips.size());
      return Status::InvalidArgument("trajectory " + std::to_string(i) +
                                     " rejected: " + st.message());
    }
  }

  const TrajId base_count = static_cast<TrajId>(db_->store().size());
  const TrajId first_id = base_count + static_cast<TrajId>(pending_.size());
  for (auto& t : trips) {
    seen_.insert(TrajectoryContentHash(t));
    pending_.push_back(std::move(t));
  }
  accepted_total_ += static_cast<int64_t>(trips.size());
  ++batches_total_;
  Publish();

  ApplyResult r;
  r.first_id = first_id;
  r.accepted = trips.size();
  r.generation = generation_;
  return r;
}

void Ingestor::Publish() {
  ++generation_;
  const TrajId base_count = static_cast<TrajId>(db_->store().size());
  if (pending_.empty()) {
    delta_.reset();
    db_->PublishDelta(nullptr, generation_);
    return;
  }
  delta_ = std::make_shared<DeltaIndex>(generation_, base_count, pending_);
  db_->PublishDelta(delta_, generation_);
}

void Ingestor::Rebase(const TrajectoryDatabase* new_db, size_t compacted) {
  db_ = new_db;
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(compacted));
  // The new base absorbed `compacted` trips, so survivor global ids are
  // unchanged: new_base + (j - compacted) == old_base + j.
  Publish();
}

}  // namespace uots

// In-memory delta layer for live ingest (DESIGN.md §11).
//
// The base TrajectoryDatabase is immutable — possibly a zero-copy view
// over an mmap'd snapshot — so new trips cannot be inserted in place.
// Instead they accumulate in a DeltaIndex: a small, fully-indexed,
// *immutable* structure holding every trajectory ingested since the last
// compaction. Each applied ingest batch rebuilds the DeltaIndex wholesale
// from the accumulated trips and publishes it as a new sealed generation;
// readers snapshot the shared_ptr once per query and never observe a
// mutation (LSM memtable flavored, except the "memtable" is replaced, not
// mutated, so no reader-side synchronization is needed beyond the pointer
// load).
//
// Delta trajectories get global TrajIds above the base range:
//
//   global id = base_count + local index (assignment order)
//
// which keeps every posting list invariant the snapshot validator
// enforces: base postings are ascending and < base_count, delta postings
// are ascending and >= base_count, so base-then-delta concatenation is
// itself sorted and deduplicated. That is the keystone of the
// bit-identity guarantee — a MergedView walk enumerates candidates in
// exactly the order a rebuilt monolithic index would.

#ifndef UOTS_INGEST_DELTA_INDEX_H_
#define UOTS_INGEST_DELTA_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "text/inverted_index.h"
#include "text/keyword_set.h"
#include "text/similarity.h"
#include "traj/store.h"
#include "traj/time_index.h"
#include "traj/trajectory.h"

namespace uots {

/// \brief Immutable index over the trajectories ingested since the last
/// compaction. Thread-safe by construction (no mutation after build).
class DeltaIndex {
 public:
  /// Builds the full delta index over `trips`. `generation` is the sealed
  /// generation number this index publishes as; `base_count` the number of
  /// base trajectories (global ids start there).
  DeltaIndex(uint64_t generation, TrajId base_count,
             const std::vector<Trajectory>& trips);

  /// Sealed generation number (monotonic per ingest batch; 0 = no delta).
  uint64_t generation() const { return generation_; }
  /// Number of base trajectories; the first delta trip's global id.
  TrajId base_count() const { return base_count_; }
  /// Number of delta trajectories.
  size_t size() const { return store_.size(); }

  /// Columnar store of the delta trips, addressed by *local* id
  /// (global id - base_count()).
  const TrajectoryStore& store() const { return store_; }

  /// Global ids of delta trajectories with a sample at `v` (ascending,
  /// deduplicated, all >= base_count()). Empty for untouched vertices.
  std::span<const TrajId> TrajectoriesAt(VertexId v) const;

  /// Global ids of delta trajectories containing term `t` (ascending).
  std::span<const TrajId> Postings(TermId t) const;

  /// \brief Scores every delta trajectory sharing >= 1 term with `query`,
  /// appending {global id, SimT} to `out`.
  ///
  /// Replicates InvertedKeywordIndex::ScoreCandidates arithmetic exactly
  /// (same double-count formulas in the same order), so a delta doc's
  /// score is bitwise equal to what a rebuilt monolithic index would
  /// produce for the same trip. Uses per-call scratch: safe to call from
  /// concurrent query threads on the shared published index.
  void ScoreCandidates(const KeywordSet& query, const TextualSimilarity& sim,
                       std::vector<ScoredDoc>* out,
                       int64_t* posting_entries = nullptr) const;

  /// Sorted (time_s, global id) timeline of delta samples — mirrors
  /// TimeIndex's invariant. No merged engine consumes it today (the
  /// temporal extension in core/temporal.h is base-only; see DESIGN.md
  /// §11), but keeping it sealed per generation means compaction and the
  /// invariant tests can treat base and delta uniformly.
  std::span<const TimeIndex::Entry> timeline() const { return timeline_; }

  /// Approximate heap bytes held by this index.
  size_t MemoryUsage() const;

 private:
  /// Binary-searched sparse CSR: `keys` holds the sorted distinct vertex /
  /// term ids that occur in the delta, `offsets[i]..offsets[i+1]` slices
  /// `entries`. Sparse because a delta of a few thousand trips touches a
  /// tiny fraction of a city-scale key space; rebuilding dense arrays per
  /// generation would make publish cost O(V), not O(delta).
  struct SparsePostings {
    std::vector<uint32_t> keys;
    std::vector<uint32_t> offsets;
    std::vector<TrajId> entries;

    std::span<const TrajId> At(uint32_t key) const;
    size_t bytes() const;
  };

  uint64_t generation_ = 0;
  TrajId base_count_ = 0;
  TrajectoryStore store_;
  SparsePostings vertex_postings_;
  SparsePostings keyword_postings_;
  std::vector<TimeIndex::Entry> timeline_;
};

}  // namespace uots

#endif  // UOTS_INGEST_DELTA_INDEX_H_

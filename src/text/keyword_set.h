// Sorted, deduplicated keyword sets with fast intersection.

#ifndef UOTS_TEXT_KEYWORD_SET_H_
#define UOTS_TEXT_KEYWORD_SET_H_

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "text/vocabulary.h"

namespace uots {

/// \brief An immutable-after-build sorted set of TermIds.
///
/// Trajectory keyword sets are small (typically 3-15 terms), so a sorted
/// array with merge-style intersection beats hash sets on both memory and
/// speed. A set either owns its terms (built from user input, normalized)
/// or views a slice of a columnar/snapshot-backed array (zero-copy; the
/// backing store guarantees order, uniqueness, and lifetime). Copying an
/// owning set deep-copies; copying a view copies the view.
class KeywordSet {
 public:
  KeywordSet() = default;
  explicit KeywordSet(std::vector<TermId> terms) : owned_(std::move(terms)) {
    Normalize();
  }
  KeywordSet(std::initializer_list<TermId> terms) : owned_(terms) {
    Normalize();
  }

  /// A non-owning view over an ascending, deduplicated term slice (e.g. the
  /// columnar trajectory store). The caller guarantees both properties and
  /// that the bytes outlive every copy of the returned set.
  static KeywordSet View(std::span<const TermId> sorted_unique_terms) {
    KeywordSet k;
    k.view_ = sorted_unique_terms;
    return k;
  }

  KeywordSet(const KeywordSet& o) : owned_(o.owned_) {
    view_ = o.owns() ? std::span<const TermId>(owned_) : o.view_;
  }
  KeywordSet& operator=(const KeywordSet& o) {
    if (this != &o) {
      owned_ = o.owned_;
      view_ = o.owns() ? std::span<const TermId>(owned_) : o.view_;
    }
    return *this;
  }
  KeywordSet(KeywordSet&& o) noexcept {
    const bool owned = o.owns();
    owned_ = std::move(o.owned_);
    view_ = owned ? std::span<const TermId>(owned_) : o.view_;
    o.owned_.clear();
    o.view_ = {};
  }
  KeywordSet& operator=(KeywordSet&& o) noexcept {
    if (this != &o) {
      const bool owned = o.owns();
      owned_ = std::move(o.owned_);
      view_ = owned ? std::span<const TermId>(owned_) : o.view_;
      o.owned_.clear();
      o.view_ = {};
    }
    return *this;
  }

  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  std::span<const TermId> terms() const { return view_; }

  /// Deep copy of the terms (row-form materialization, tests).
  std::vector<TermId> ToVector() const {
    return std::vector<TermId>(view_.begin(), view_.end());
  }

  bool Contains(TermId t) const {
    return std::binary_search(view_.begin(), view_.end(), t);
  }

  /// |this ∩ other| via linear merge.
  size_t IntersectionSize(const KeywordSet& other) const {
    size_t i = 0, j = 0, count = 0;
    const auto a = view_;
    const auto b = other.view_;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
    return count;
  }

  /// |this ∪ other| = |a| + |b| - |a ∩ b|.
  size_t UnionSize(const KeywordSet& other) const {
    return size() + other.size() - IntersectionSize(other);
  }

  friend bool operator==(const KeywordSet& a, const KeywordSet& b) {
    return std::equal(a.view_.begin(), a.view_.end(), b.view_.begin(),
                      b.view_.end());
  }

 private:
  bool owns() const { return !owned_.empty(); }

  void Normalize() {
    std::sort(owned_.begin(), owned_.end());
    owned_.erase(std::unique(owned_.begin(), owned_.end()), owned_.end());
    view_ = owned_;
  }

  std::vector<TermId> owned_;
  std::span<const TermId> view_;  // points into owned_ or external memory
};

}  // namespace uots

#endif  // UOTS_TEXT_KEYWORD_SET_H_

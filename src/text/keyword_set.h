// Sorted, deduplicated keyword sets with fast intersection.

#ifndef UOTS_TEXT_KEYWORD_SET_H_
#define UOTS_TEXT_KEYWORD_SET_H_

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "text/vocabulary.h"

namespace uots {

/// \brief An immutable-after-build sorted set of TermIds.
///
/// Trajectory keyword sets are small (typically 3-15 terms), so a sorted
/// vector with merge-style intersection beats hash sets on both memory and
/// speed.
class KeywordSet {
 public:
  KeywordSet() = default;
  explicit KeywordSet(std::vector<TermId> terms) : terms_(std::move(terms)) {
    Normalize();
  }
  KeywordSet(std::initializer_list<TermId> terms)
      : terms_(terms) {
    Normalize();
  }

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }
  const std::vector<TermId>& terms() const { return terms_; }

  bool Contains(TermId t) const {
    return std::binary_search(terms_.begin(), terms_.end(), t);
  }

  /// |this ∩ other| via linear merge.
  size_t IntersectionSize(const KeywordSet& other) const {
    size_t i = 0, j = 0, count = 0;
    while (i < terms_.size() && j < other.terms_.size()) {
      if (terms_[i] < other.terms_[j]) {
        ++i;
      } else if (terms_[i] > other.terms_[j]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
    return count;
  }

  /// |this ∪ other| = |a| + |b| - |a ∩ b|.
  size_t UnionSize(const KeywordSet& other) const {
    return size() + other.size() - IntersectionSize(other);
  }

  friend bool operator==(const KeywordSet& a, const KeywordSet& b) {
    return a.terms_ == b.terms_;
  }

 private:
  void Normalize() {
    std::sort(terms_.begin(), terms_.end());
    terms_.erase(std::unique(terms_.begin(), terms_.end()), terms_.end());
  }

  std::vector<TermId> terms_;
};

}  // namespace uots

#endif  // UOTS_TEXT_KEYWORD_SET_H_

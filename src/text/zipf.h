// Zipf-distributed sampling for skewed keyword frequencies.
//
// Real POI/activity tags are heavily skewed ("food" vastly outnumbers
// "observatory"); the keyword generator samples term ids from a Zipf
// distribution so the inverted-index posting lists show the same skew the
// textual-domain algorithms must cope with.

#ifndef UOTS_TEXT_ZIPF_H_
#define UOTS_TEXT_ZIPF_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace uots {

/// \brief Samples integers in [0, n) with P(i) ∝ 1/(i+1)^s.
///
/// Uses an explicit inverse-CDF table: construction is O(n), sampling is
/// O(log n), and the distribution is exact (no rejection).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  /// Draws one sample.
  size_t Sample(Rng& rng) const {
    const double u = rng.UniformDouble();
    // First index with cdf >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t domain_size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace uots

#endif  // UOTS_TEXT_ZIPF_H_

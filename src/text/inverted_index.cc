#include "text/inverted_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uots {

void InvertedKeywordIndex::AddDocument(DocId doc, const KeywordSet& keys) {
  assert(!finalized_);
  if (doc >= doc_sizes_.size()) doc_sizes_.resize(doc + 1, 0);
  doc_sizes_[doc] = static_cast<uint32_t>(keys.size());
  for (TermId t : keys.terms()) {
    if (t >= postings_.size()) postings_.resize(t + 1);
    postings_[t].push_back(doc);
  }
}

void InvertedKeywordIndex::Finalize() {
  for (auto& p : postings_) {
    std::sort(p.begin(), p.end());
    p.erase(std::unique(p.begin(), p.end()), p.end());
    p.shrink_to_fit();
  }
  finalized_ = true;
}

std::span<const DocId> InvertedKeywordIndex::Postings(TermId t) const {
  assert(finalized_);
  if (t >= postings_.size()) return {};
  return {postings_[t].data(), postings_[t].size()};
}

void InvertedKeywordIndex::ScoreCandidates(
    const KeywordSet& query, const TextualSimilarity& sim,
    std::vector<ScoredDoc>* out, int64_t* posting_entries,
    const std::function<const KeywordSet&(DocId)>& doc_keys) const {
  assert(finalized_);
  out->clear();
  if (query.empty()) return;

  if (count_.size() != doc_sizes_.size()) {
    count_.assign(doc_sizes_.size(), 0);
    count_version_.assign(doc_sizes_.size(), 0);
    version_ = 0;
  }
  ++version_;

  // Merge posting lists, counting per-document term overlap.
  std::vector<DocId> touched;
  for (TermId t : query.terms()) {
    for (DocId d : Postings(t)) {
      if (posting_entries != nullptr) ++*posting_entries;
      if (count_version_[d] != version_) {
        count_version_[d] = version_;
        count_[d] = 0;
        touched.push_back(d);
      }
      ++count_[d];
    }
  }

  out->reserve(touched.size());
  const double qsize = static_cast<double>(query.size());
  for (DocId d : touched) {
    const double inter = count_[d];
    const double dsize = doc_sizes_[d];
    double score = 0.0;
    switch (sim.measure()) {
      case TextualMeasure::kJaccard:
        score = inter / (qsize + dsize - inter);
        break;
      case TextualMeasure::kDice:
        score = 2.0 * inter / (qsize + dsize);
        break;
      case TextualMeasure::kOverlap:
        score = inter / std::min(qsize, dsize);
        break;
      case TextualMeasure::kCosine:
        score = inter / std::sqrt(qsize * dsize);
        break;
      case TextualMeasure::kWeighted:
        assert(doc_keys && "kWeighted requires a doc_keys accessor");
        score = sim.Score(query, doc_keys(d));
        break;
    }
    out->push_back(ScoredDoc{d, score});
  }
}

std::vector<int64_t> InvertedKeywordIndex::DocumentFrequencies() const {
  std::vector<int64_t> df(postings_.size());
  for (size_t t = 0; t < postings_.size(); ++t) {
    df[t] = static_cast<int64_t>(postings_[t].size());
  }
  return df;
}

size_t InvertedKeywordIndex::MemoryUsage() const {
  size_t bytes = doc_sizes_.capacity() * sizeof(uint32_t) +
                 count_.capacity() * sizeof(uint32_t) +
                 count_version_.capacity() * sizeof(uint32_t);
  for (const auto& p : postings_) bytes += p.capacity() * sizeof(DocId);
  return bytes;
}

}  // namespace uots

#include "text/inverted_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uots {

void InvertedKeywordIndex::AddDocument(DocId doc, const KeywordSet& keys) {
  assert(!finalized_);
  auto& doc_sizes = doc_sizes_.mutable_vec();
  if (doc >= doc_sizes.size()) doc_sizes.resize(doc + 1, 0);
  doc_sizes[doc] = static_cast<uint32_t>(keys.size());
  for (TermId t : keys.terms()) {
    if (t >= building_.size()) building_.resize(t + 1);
    building_[t].push_back(doc);
  }
}

void InvertedKeywordIndex::Finalize() {
  size_t total = 0;
  for (auto& p : building_) {
    std::sort(p.begin(), p.end());
    p.erase(std::unique(p.begin(), p.end()), p.end());
    total += p.size();
  }
  std::vector<uint64_t> offsets;
  offsets.reserve(building_.size() + 1);
  offsets.push_back(0);
  std::vector<DocId> postings;
  postings.reserve(total);
  for (const auto& p : building_) {
    postings.insert(postings.end(), p.begin(), p.end());
    offsets.push_back(postings.size());
  }
  building_.clear();
  building_.shrink_to_fit();
  offsets_ = std::move(offsets);
  postings_ = std::move(postings);
  finalized_ = true;
}

InvertedKeywordIndex InvertedKeywordIndex::FromColumns(
    ColumnVec<uint64_t> offsets, ColumnVec<DocId> postings,
    ColumnVec<uint32_t> doc_sizes) {
  InvertedKeywordIndex idx;
  idx.offsets_ = std::move(offsets);
  idx.postings_ = std::move(postings);
  idx.doc_sizes_ = std::move(doc_sizes);
  idx.finalized_ = true;
  return idx;
}

std::span<const DocId> InvertedKeywordIndex::Postings(TermId t) const {
  assert(finalized_);
  if (t >= num_terms()) return {};
  return {postings_.data() + offsets_[t], postings_.data() + offsets_[t + 1]};
}

void InvertedKeywordIndex::ScoreCandidates(
    const KeywordSet& query, const TextualSimilarity& sim,
    std::vector<ScoredDoc>* out, int64_t* posting_entries,
    const std::function<KeywordSet(DocId)>& doc_keys,
    TextScoringScratch* scratch) const {
  assert(finalized_);
  out->clear();
  if (query.empty()) return;

  // The index is shared across threads, so the counters must not live in
  // it (they used to, as mutable members — concurrent queries silently
  // corrupted each other's overlap counts). A caller without a reusable
  // scratch pays a fresh zero-filled one per call.
  TextScoringScratch local;
  if (scratch == nullptr) scratch = &local;
  if (scratch->count.size() != doc_sizes_.size()) {
    scratch->count.assign(doc_sizes_.size(), 0);
    scratch->count_version.assign(doc_sizes_.size(), 0);
    scratch->version = 0;
  }
  ++scratch->version;
  const uint32_t version = scratch->version;
  uint32_t* const count = scratch->count.data();
  uint32_t* const count_version = scratch->count_version.data();

  // Merge posting lists, counting per-document term overlap.
  std::vector<DocId> touched;
  for (TermId t : query.terms()) {
    for (DocId d : Postings(t)) {
      if (posting_entries != nullptr) ++*posting_entries;
      if (count_version[d] != version) {
        count_version[d] = version;
        count[d] = 0;
        touched.push_back(d);
      }
      ++count[d];
    }
  }

  out->reserve(touched.size());
  const double qsize = static_cast<double>(query.size());
  for (DocId d : touched) {
    const double inter = count[d];
    const double dsize = doc_sizes_[d];
    double score = 0.0;
    switch (sim.measure()) {
      case TextualMeasure::kJaccard:
        score = inter / (qsize + dsize - inter);
        break;
      case TextualMeasure::kDice:
        score = 2.0 * inter / (qsize + dsize);
        break;
      case TextualMeasure::kOverlap:
        score = inter / std::min(qsize, dsize);
        break;
      case TextualMeasure::kCosine:
        score = inter / std::sqrt(qsize * dsize);
        break;
      case TextualMeasure::kWeighted:
        assert(doc_keys && "kWeighted requires a doc_keys accessor");
        score = sim.Score(query, doc_keys(d));
        break;
    }
    out->push_back(ScoredDoc{d, score});
  }
}

std::vector<int64_t> InvertedKeywordIndex::DocumentFrequencies() const {
  assert(finalized_);
  const size_t n = num_terms();
  std::vector<int64_t> df(n);
  for (size_t t = 0; t < n; ++t) {
    df[t] = static_cast<int64_t>(offsets_[t + 1] - offsets_[t]);
  }
  return df;
}

MemoryBreakdown InvertedKeywordIndex::Memory() const {
  MemoryBreakdown m;
  m += offsets_.Memory();
  m += postings_.Memory();
  m += doc_sizes_.Memory();
  for (const auto& p : building_) m.heap_bytes += p.capacity() * sizeof(DocId);
  return m;
}

}  // namespace uots

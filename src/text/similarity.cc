#include "text/similarity.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uots {

const char* ToString(TextualMeasure m) {
  switch (m) {
    case TextualMeasure::kJaccard:
      return "jaccard";
    case TextualMeasure::kDice:
      return "dice";
    case TextualMeasure::kOverlap:
      return "overlap";
    case TextualMeasure::kCosine:
      return "cosine";
    case TextualMeasure::kWeighted:
      return "weighted-jaccard";
  }
  return "unknown";
}

void TextualSimilarity::SetDocumentFrequencies(std::vector<int64_t> df,
                                               int64_t num_docs) {
  idf_.resize(df.size());
  for (size_t t = 0; t < df.size(); ++t) {
    idf_[t] = df[t] > 0
                  ? std::log(1.0 + static_cast<double>(num_docs) / df[t])
                  : std::log(1.0 + static_cast<double>(num_docs));
  }
}

double TextualSimilarity::IdfOf(TermId t) const {
  return t < idf_.size() ? idf_[t] : 1.0;
}

double TextualSimilarity::WeightedJaccard(const KeywordSet& a,
                                          const KeywordSet& b) const {
  const auto& ta = a.terms();
  const auto& tb = b.terms();
  double inter = 0.0, uni = 0.0;
  size_t i = 0, j = 0;
  while (i < ta.size() || j < tb.size()) {
    if (j == tb.size() || (i < ta.size() && ta[i] < tb[j])) {
      uni += IdfOf(ta[i++]);
    } else if (i == ta.size() || tb[j] < ta[i]) {
      uni += IdfOf(tb[j++]);
    } else {
      const double w = IdfOf(ta[i]);
      inter += w;
      uni += w;
      ++i;
      ++j;
    }
  }
  return uni > 0.0 ? inter / uni : 0.0;
}

double TextualSimilarity::Score(const KeywordSet& query,
                                const KeywordSet& doc) const {
  if (query.empty() || doc.empty()) return 0.0;
  if (measure_ == TextualMeasure::kWeighted) return WeightedJaccard(query, doc);
  const double inter = static_cast<double>(query.IntersectionSize(doc));
  switch (measure_) {
    case TextualMeasure::kJaccard:
      return inter / static_cast<double>(query.UnionSize(doc));
    case TextualMeasure::kDice:
      return 2.0 * inter / static_cast<double>(query.size() + doc.size());
    case TextualMeasure::kOverlap:
      return inter / static_cast<double>(std::min(query.size(), doc.size()));
    case TextualMeasure::kCosine:
      return inter / std::sqrt(static_cast<double>(query.size()) *
                               static_cast<double>(doc.size()));
    case TextualMeasure::kWeighted:
      break;  // handled above
  }
  return 0.0;
}

}  // namespace uots

// Textual similarity measures between keyword sets.
//
// The UOTS model scores how well a trajectory's activity keywords match the
// querying user's stated preferences. Jaccard is the default (symmetric,
// in [0,1], parameter-free); the alternatives are provided because the
// exact measure in the original paper cannot be confirmed from the
// available text (DESIGN.md §5.2) and the choice is benchmarked.

#ifndef UOTS_TEXT_SIMILARITY_H_
#define UOTS_TEXT_SIMILARITY_H_

#include <string>
#include <vector>

#include "text/keyword_set.h"

namespace uots {

/// Which set-similarity measure to use for SimT.
enum class TextualMeasure {
  kJaccard,   ///< |A∩B| / |A∪B|
  kDice,      ///< 2|A∩B| / (|A|+|B|)
  kOverlap,   ///< |A∩B| / min(|A|,|B|)
  kCosine,    ///< |A∩B| / sqrt(|A||B|)   (uniform term weights)
  kWeighted,  ///< idf-weighted Jaccard (needs document frequencies)
};

const char* ToString(TextualMeasure m);

/// \brief Computes SimT under a chosen measure; values are in [0,1].
class TextualSimilarity {
 public:
  explicit TextualSimilarity(TextualMeasure measure = TextualMeasure::kJaccard)
      : measure_(measure) {}

  /// Enables kWeighted: df[t] = number of trajectories containing term t,
  /// `num_docs` = total trajectory count. idf(t) = ln(1 + N/df(t)).
  void SetDocumentFrequencies(std::vector<int64_t> df, int64_t num_docs);

  /// Similarity between query keywords and a trajectory's keywords.
  double Score(const KeywordSet& query, const KeywordSet& doc) const;

  TextualMeasure measure() const { return measure_; }

 private:
  double WeightedJaccard(const KeywordSet& a, const KeywordSet& b) const;
  double IdfOf(TermId t) const;

  TextualMeasure measure_;
  std::vector<double> idf_;
};

}  // namespace uots

#endif  // UOTS_TEXT_SIMILARITY_H_

#include "text/vocabulary.h"

#include <array>
#include <cstdio>

namespace uots {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidTerm : it->second;
}

Vocabulary Vocabulary::Synthetic(size_t n) {
  // Category prefixes make example output readable; the categories echo the
  // activity/POI flavour of trip-recommendation keywords.
  static constexpr std::array<const char*, 10> kCategories = {
      "food",    "museum", "park",   "shopping", "nightlife",
      "transit", "hotel",  "sport",  "medical",  "scenic"};
  Vocabulary v;
  char buf[48];
  for (size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%s_%zu", kCategories[i % kCategories.size()],
                  i / kCategories.size());
    v.Intern(buf);
  }
  return v;
}

void Vocabulary::Flatten(std::string* blob,
                         std::vector<uint64_t>* offsets) const {
  blob->clear();
  offsets->clear();
  offsets->reserve(terms_.size() + 1);
  offsets->push_back(0);
  for (const auto& t : terms_) {
    blob->append(t);
    offsets->push_back(blob->size());
  }
}

Result<Vocabulary> Vocabulary::FromFlat(std::span<const uint64_t> offsets,
                                        std::span<const char> blob) {
  if (offsets.empty()) {
    return Status::InvalidArgument("vocabulary offsets section is empty");
  }
  if (offsets.front() != 0 || offsets.back() != blob.size()) {
    return Status::InvalidArgument(
        "vocabulary offsets do not cover the term blob");
  }
  Vocabulary v;
  v.terms_.reserve(offsets.size() - 1);
  v.index_.reserve(offsets.size() - 1);
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::InvalidArgument("vocabulary offsets are not monotonic");
    }
    const TermId id = static_cast<TermId>(v.terms_.size());
    v.terms_.emplace_back(blob.data() + offsets[i],
                          offsets[i + 1] - offsets[i]);
    if (!v.index_.emplace(v.terms_.back(), id).second) {
      return Status::InvalidArgument("vocabulary contains a duplicate term");
    }
  }
  return v;
}

}  // namespace uots

#include "text/vocabulary.h"

#include <array>
#include <cstdio>

namespace uots {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidTerm : it->second;
}

Vocabulary Vocabulary::Synthetic(size_t n) {
  // Category prefixes make example output readable; the categories echo the
  // activity/POI flavour of trip-recommendation keywords.
  static constexpr std::array<const char*, 10> kCategories = {
      "food",    "museum", "park",   "shopping", "nightlife",
      "transit", "hotel",  "sport",  "medical",  "scenic"};
  Vocabulary v;
  char buf[48];
  for (size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "%s_%zu", kCategories[i % kCategories.size()],
                  i / kCategories.size());
    v.Intern(buf);
  }
  return v;
}

}  // namespace uots

// Keyword -> document inverted index (documents are trajectory ids).
//
// One probe of the index yields the exact textual similarity of every
// trajectory sharing at least one keyword with the query; everything else
// has SimT = 0 exactly (all supported measures are intersection-based).
// This is the textual-domain "expansion" of the UOTS search: the spatial
// domain is explored incrementally, while the textual domain is resolved
// up-front at posting-list cost, giving the search exact SimT values to
// fold into its upper bounds.
//
// Finalize() flattens the per-term posting lists into CSR columns
// (offsets + one contiguous posting array), which both halves the pointer
// chasing of a vector-of-vectors and lets snapshots persist the index
// byte-for-byte and load it back as a zero-copy view (src/storage/).

#ifndef UOTS_TEXT_INVERTED_INDEX_H_
#define UOTS_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "text/keyword_set.h"
#include "text/similarity.h"
#include "util/column_vec.h"

namespace uots {

/// Document (trajectory) identifier used by the index.
using DocId = uint32_t;

/// A document id paired with its exact textual similarity to the query.
struct ScoredDoc {
  DocId doc;
  double score;
};

/// \brief Caller-owned scratch for ScoreCandidates.
///
/// Per-doc intersection counters with O(1) reset (version tags), sized
/// lazily to the index's document count. The scratch must be owned by the
/// caller — one per engine/thread — because the index itself is shared
/// across concurrently-executing queries: scratch stored inside the index
/// (the original design) made two simultaneous ScoreCandidates calls
/// corrupt each other's overlap counts and return wrong similarities.
struct TextScoringScratch {
  std::vector<uint32_t> count;
  std::vector<uint32_t> count_version;
  uint32_t version = 0;
};

/// \brief Immutable-after-Finalize keyword inverted index.
class InvertedKeywordIndex {
 public:
  /// Registers a document; ids must be dense-ish (max id bounds memory).
  void AddDocument(DocId doc, const KeywordSet& keys);

  /// Flattens posting lists into the CSR columns and freezes the index.
  void Finalize();

  /// \brief Reassembles a finalized index from prebuilt CSR columns (e.g.
  /// views over validated snapshot sections); skips AddDocument/Finalize.
  static InvertedKeywordIndex FromColumns(ColumnVec<uint64_t> offsets,
                                          ColumnVec<DocId> postings,
                                          ColumnVec<uint32_t> doc_sizes);

  /// Posting list (ascending doc ids) for term `t`; empty if unseen.
  std::span<const DocId> Postings(TermId t) const;

  /// \brief Scores every document sharing >= 1 term with `query`.
  ///
  /// Results are unsorted. For TextualMeasure::kWeighted a `doc_keys`
  /// accessor must be supplied (weighted overlap needs the full sets); for
  /// the counting measures it is ignored. `posting_entries`, if non-null,
  /// is incremented by the number of posting entries scanned. `scratch`,
  /// if non-null, must not be shared between concurrent calls (keep one
  /// per engine); when null a call-local scratch is allocated, which is
  /// always safe but pays an O(num_documents) zero-fill per call.
  void ScoreCandidates(
      const KeywordSet& query, const TextualSimilarity& sim,
      std::vector<ScoredDoc>* out, int64_t* posting_entries = nullptr,
      const std::function<KeywordSet(DocId)>& doc_keys = nullptr,
      TextScoringScratch* scratch = nullptr) const;

  /// Document frequency per term (posting-list lengths), for idf weighting.
  std::vector<int64_t> DocumentFrequencies() const;

  size_t num_documents() const { return doc_sizes_.size(); }
  size_t num_terms() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Raw columns (snapshot persistence; see src/storage/).
  std::span<const uint64_t> offsets() const { return offsets_.span(); }
  std::span<const DocId> postings() const { return postings_.span(); }
  std::span<const uint32_t> doc_sizes() const { return doc_sizes_.span(); }

  size_t MemoryUsage() const { return Memory().total(); }
  MemoryBreakdown Memory() const;

 private:
  bool finalized_ = false;
  /// Accumulates per-term lists until Finalize flattens them; empty after.
  std::vector<std::vector<DocId>> building_;
  ColumnVec<uint64_t> offsets_;  ///< num_terms + 1 (empty before Finalize)
  ColumnVec<DocId> postings_;    ///< ascending within each term slice
  ColumnVec<uint32_t> doc_sizes_;  ///< |keys| per doc id
};

}  // namespace uots

#endif  // UOTS_TEXT_INVERTED_INDEX_H_

// Term dictionary mapping keyword strings <-> dense ids.

#ifndef UOTS_TEXT_VOCABULARY_H_
#define UOTS_TEXT_VOCABULARY_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace uots {

/// Dense keyword identifier.
using TermId = uint32_t;

inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

/// \brief Bidirectional term <-> id dictionary.
class Vocabulary {
 public:
  /// Returns the id of `term`, interning it if new.
  TermId Intern(std::string_view term);

  /// Returns the id of `term` or kInvalidTerm if unknown.
  TermId Lookup(std::string_view term) const;

  /// The string for an id; id must be valid.
  const std::string& TermOf(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

  /// Builds a synthetic vocabulary of `n` POI/activity-style terms
  /// ("poi_0".."poi_{n-1}" prefixed with a category hint). Used by the data
  /// generators when no real tag corpus is supplied.
  static Vocabulary Synthetic(size_t n);

  /// \brief Flattens all terms into `blob` with `offsets[i]..offsets[i+1]`
  /// delimiting term i (snapshot persistence; see src/storage/).
  void Flatten(std::string* blob, std::vector<uint64_t>* offsets) const;

  /// \brief Rebuilds a vocabulary from a flattened blob. Strings and the
  /// lookup map are owned (heap); the dictionary is the one part of a
  /// snapshot that cannot be a zero-copy view, but it is also by far the
  /// smallest. Fails on non-monotonic or out-of-bounds offsets.
  static Result<Vocabulary> FromFlat(std::span<const uint64_t> offsets,
                                     std::span<const char> blob);

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace uots

#endif  // UOTS_TEXT_VOCABULARY_H_

// Deterministic pseudo-random number generation.
//
// All data generators in the library are seeded explicitly so that every
// dataset, workload, and experiment is exactly reproducible. We use
// xoshiro256** (public domain, Blackman & Vigna) seeded through SplitMix64,
// which is both faster and better distributed than std::mt19937 for the
// simulation workloads here.

#ifndef UOTS_UTIL_RNG_H_
#define UOTS_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace uots {

/// SplitMix64 step; used for seeding and cheap hashing of ids.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit seed.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  /// Raw 64 random bits (UniformRandomBitGenerator interface).
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased and division-free
    // in the common case.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Marsaglia polar method.
  double Normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = UniformDouble(-1.0, 1.0);
      v = UniformDouble(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Derives an independent child generator; used to give each parallel
  /// worker / dataset component its own deterministic stream.
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace uots

#endif  // UOTS_UTIL_RNG_H_

// Log-scale latency histogram (HdrHistogram-style bucketing).
//
// Values (nanoseconds) land in buckets whose width is 1/16 of their
// magnitude: each power of two is split into 16 linear sub-buckets, so any
// recorded value is representable with <= 6.25% relative error while the
// whole int64 range fits in a fixed 960-slot array. Recording is two shifts
// and an increment — cheap enough for per-query batch-worker use — and
// histograms merge by bucket-wise addition, so each worker accumulates
// privately and the executor merges once at the end (no synchronization on
// the record path).

#ifndef UOTS_UTIL_HISTOGRAM_H_
#define UOTS_UTIL_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>

namespace uots {

struct HistogramSnapshot;

/// \brief Fixed-footprint log-scale histogram of nanosecond latencies.
class LatencyHistogram {
 public:
  /// Sub-buckets per power of two; bounds the relative quantile error at
  /// 1 / kSubBuckets.
  static constexpr int kLinearBits = 4;
  static constexpr int64_t kSubBuckets = int64_t{1} << kLinearBits;
  /// Buckets 0..2*kSubBuckets-1 are exact; above that, 16 per octave up to
  /// the 63-bit value range.
  static constexpr int kNumBuckets =
      static_cast<int>((63 - kLinearBits) * kSubBuckets) + kSubBuckets;

  void Record(int64_t ns) {
    if (ns < 0) ns = 0;
    ++counts_[BucketIndex(ns)];
    ++count_;
    sum_ns_ += ns;
    min_ns_ = std::min(min_ns_, ns);
    max_ns_ = std::max(max_ns_, ns);
  }

  void Merge(const LatencyHistogram& o) {
    for (int i = 0; i < kNumBuckets; ++i) counts_[i] += o.counts_[i];
    count_ += o.count_;
    sum_ns_ += o.sum_ns_;
    min_ns_ = std::min(min_ns_, o.min_ns_);
    max_ns_ = std::max(max_ns_, o.max_ns_);
  }

  int64_t count() const { return count_; }
  int64_t min_ns() const { return count_ > 0 ? min_ns_ : 0; }
  int64_t max_ns() const { return count_ > 0 ? max_ns_ : 0; }
  int64_t sum_ns() const { return sum_ns_; }
  double MeanNs() const {
    return count_ > 0 ? static_cast<double>(sum_ns_) / count_ : 0.0;
  }

  /// Nearest-rank percentile, `p` in [0, 100]. Returns the upper bound of
  /// the bucket holding the p-th value, clamped into [min_ns, max_ns]; the
  /// result therefore never underestimates the true percentile and
  /// overestimates it by at most 1/kSubBuckets relatively.
  int64_t PercentileNs(double p) const;

  double PercentileMs(double p) const {
    return static_cast<double>(PercentileNs(p)) / 1e6;
  }

  /// "n=120 mean=1.84ms p50=1.71ms p95=3.62ms p99=5.10ms max=5.43ms".
  std::string ToString() const;

  /// Immutable copy of the full state (count/sum/min/max/buckets) for
  /// readers that must stay consistent while recording continues. The
  /// histogram itself is not synchronized — shared instances live behind
  /// MetricsRegistry's mutex, which serializes Record against Get/Snapshot;
  /// taking a HistogramSnapshot there hands the reader a frozen view whose
  /// count, sum, quantiles, and bucket counts all describe the same set of
  /// recorded values (a raw Percentile-then-count() pair on the live
  /// histogram could straddle a Record).
  HistogramSnapshot TakeSnapshot() const;

  /// Count in bucket `index` (0 <= index < kNumBuckets).
  int64_t BucketCount(int index) const { return counts_[index]; }

  /// Number of recorded values <= `ns`, at bucket granularity: a bucket is
  /// included iff its entire range is <= ns, so the result never
  /// overcounts and undercounts by at most one bucket's population
  /// (<= 6.25% relative boundary error). Monotone in `ns` — suitable for
  /// cumulative ("le") exposition series.
  int64_t CumulativeCountLe(int64_t ns) const;

  /// Maps `ns` (>= 0) to its bucket. Exposed for tests.
  static int BucketIndex(int64_t ns) {
    const uint64_t v = static_cast<uint64_t>(ns);
    if (v < 2 * kSubBuckets) return static_cast<int>(v);
    const int shift = std::bit_width(v) - (kLinearBits + 1);
    return static_cast<int>(((shift + 1) << kLinearBits) +
                            ((v >> shift) - kSubBuckets));
  }

  /// Smallest value mapping to `index`.
  static int64_t BucketLowerBound(int index) {
    const int64_t sub = index & (kSubBuckets - 1);
    const int block = index >> kLinearBits;
    if (block == 0) return sub;
    return (kSubBuckets + sub) << (block - 1);
  }

  /// Largest value mapping to `index`.
  static int64_t BucketUpperBound(int index) {
    if (index + 1 >= kNumBuckets) return std::numeric_limits<int64_t>::max();
    return BucketLowerBound(index + 1) - 1;
  }

 private:
  std::array<int64_t, kNumBuckets> counts_{};
  int64_t count_ = 0;
  int64_t sum_ns_ = 0;
  int64_t min_ns_ = std::numeric_limits<int64_t>::max();
  int64_t max_ns_ = 0;
};

/// \brief A frozen copy of one LatencyHistogram: every accessor answers
/// about the same set of recorded values, no matter what the source
/// histogram does afterwards. This is what exporters (Prometheus text,
/// bench sidecars) should read instead of poking the live histogram field
/// by field.
struct HistogramSnapshot {
  std::array<int64_t, LatencyHistogram::kNumBuckets> counts{};
  int64_t count = 0;
  int64_t sum_ns = 0;
  int64_t min_ns = 0;  ///< 0 when empty
  int64_t max_ns = 0;

  double MeanNs() const {
    return count > 0 ? static_cast<double>(sum_ns) / count : 0.0;
  }

  /// Same nearest-rank semantics (and <= 6.25% overestimate bound) as
  /// LatencyHistogram::PercentileNs.
  int64_t PercentileNs(double p) const;
  double PercentileMs(double p) const {
    return static_cast<double>(PercentileNs(p)) / 1e6;
  }

  /// Same bucket-granular semantics as LatencyHistogram::CumulativeCountLe.
  int64_t CumulativeCountLe(int64_t ns) const;
};

}  // namespace uots

#endif  // UOTS_UTIL_HISTOGRAM_H_

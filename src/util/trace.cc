#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

namespace uots {
namespace {

/// Hard cap per thread buffer: a runaway session degrades to counting
/// dropped spans instead of exhausting memory (40 B/event -> ~40 MB max).
constexpr size_t kMaxEventsPerThread = size_t{1} << 20;

struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
  int32_t depth = 0;  // only touched by the owning thread
};

struct Registry {
  std::mutex mu;
  // shared_ptr keeps buffers of exited threads alive until export.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 0;
  std::atomic<bool> active{false};
  std::atomic<int64_t> dropped{0};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Registry& GlobalRegistry() {
  // Leaked intentionally: thread buffers may flush during static teardown.
  static Registry* r = new Registry();
  return *r;
}

#if UOTS_TRACE
ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& r = GlobalRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

/// Per-thread capture window (see Trace::BeginThreadCapture). `mark` is the
/// owning thread's buffer size at Begin; only that thread appends to its
/// buffer, so the suffix [mark, end) is exactly this capture's spans.
struct ThreadCapture {
  bool active = false;
  size_t mark = 0;
};

ThreadCapture& LocalCapture() {
  thread_local ThreadCapture capture;
  return capture;
}
#endif  // UOTS_TRACE

}  // namespace

bool Trace::active() {
  return GlobalRegistry().active.load(std::memory_order_relaxed);
}

void Trace::Start() {
  GlobalRegistry().active.store(true, std::memory_order_relaxed);
}

void Trace::Stop() {
  GlobalRegistry().active.store(false, std::memory_order_relaxed);
}

void Trace::Clear() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& b : r.buffers) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->events.clear();
  }
  r.dropped.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> Trace::Snapshot() {
  Registry& r = GlobalRegistry();
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& b : r.buffers) {
    std::lock_guard<std::mutex> bl(b->mu);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  return out;
}

void Trace::BeginThreadCapture() {
#if UOTS_TRACE
  ThreadBuffer& b = LocalBuffer();
  ThreadCapture& c = LocalCapture();
  std::lock_guard<std::mutex> lock(b.mu);
  c.mark = b.events.size();
  c.active = true;
#endif
}

std::vector<TraceEvent> Trace::EndThreadCapture() {
  std::vector<TraceEvent> out;
#if UOTS_TRACE
  ThreadBuffer& b = LocalBuffer();
  ThreadCapture& c = LocalCapture();
  if (!c.active) return out;
  c.active = false;
  std::lock_guard<std::mutex> lock(b.mu);
  const size_t mark = std::min(c.mark, b.events.size());
  out.assign(b.events.begin() + static_cast<ptrdiff_t>(mark),
             b.events.end());
  if (!Trace::active()) {
    // The spans existed only for this capture: hand them out and forget
    // them, so sampling forever cannot exhaust the buffer cap or leak into
    // a later global-session export.
    b.events.resize(mark);
  }
#endif
  return out;
}

int64_t Trace::dropped() {
  return GlobalRegistry().dropped.load(std::memory_order_relaxed);
}

int64_t Trace::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - GlobalRegistry().epoch)
      .count();
}

std::string Trace::ToChromeJson() {
  const std::vector<TraceEvent> events = Snapshot();
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"" << e.name
       << "\", \"cat\": \"uots\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << e.tid << ", \"ts\": " << static_cast<double>(e.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1e3
       << ", \"args\": {\"depth\": " << e.depth;
    if (e.id >= 0) os << ", \"id\": " << e.id;
    os << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

bool Trace::WriteChromeJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "Trace: cannot open %s\n", path.c_str());
    return false;
  }
  const std::string body = ToChromeJson();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "Trace: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

#if UOTS_TRACE

TraceScope::TraceScope(const char* name, int64_t id)
    : name_(name),
      id_(id),
      recording_(Trace::active() || LocalCapture().active) {
  if (!recording_) return;
  ThreadBuffer& b = LocalBuffer();
  depth_ = b.depth++;
  start_ns_ = Trace::NowNs();
}

TraceScope::~TraceScope() {
  if (!recording_) return;
  const int64_t end_ns = Trace::NowNs();
  ThreadBuffer& b = LocalBuffer();
  --b.depth;
  std::lock_guard<std::mutex> lock(b.mu);
  if (b.events.size() >= kMaxEventsPerThread) {
    GlobalRegistry().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  b.events.push_back(
      TraceEvent{name_, start_ns_, end_ns - start_ns_, id_, b.tid, depth_});
}

#endif  // UOTS_TRACE

}  // namespace uots

// Minimal Status / Result<T> error-handling primitives.
//
// The library avoids exceptions on hot paths (query processing, expansion).
// Fallible setup APIs (file IO, configuration, index construction) return a
// Status or a Result<T>, mirroring the Arrow/RocksDB convention.

#ifndef UOTS_UTIL_STATUS_H_
#define UOTS_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace uots {

/// Broad machine-inspectable error categories.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kAlreadyExists,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
  kCancelled,
};

/// \brief Lightweight status object: either OK or a code plus message.
///
/// Cheap to return by value; the message is only allocated on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Transient inability to serve (overload, shutdown); callers may retry.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Work stopped because its outcome no longer matters (e.g. a sibling
  /// shard already failed the batch) — not an error in the work itself.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable rendering, e.g. "InvalidArgument: lambda out of range".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
///
/// A deliberately small subset of std::expected (C++23) / arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning Result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accesses the contained value; undefined behaviour if !ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK status from an expression to the caller.
#define UOTS_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::uots::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace uots

#endif  // UOTS_UTIL_STATUS_H_

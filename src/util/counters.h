// Per-query instrumentation counters.
//
// "Number of visited trajectories" is the primary data-access metric used by
// the paper family's evaluations (it is storage-location independent); the
// remaining counters support the ablation analyses. The phase breakdown
// (phase_ns) says where a query's wall time went — spatial expansion vs
// textual filtering vs bound maintenance vs scheduling vs refinement — at a
// granularity every engine shares, so benches and services can report it
// without knowing which algorithm ran.

#ifndef UOTS_UTIL_COUNTERS_H_
#define UOTS_UTIL_COUNTERS_H_

#include <cstdint>
#include <string>

#include "util/timer.h"
#include "util/trace.h"

namespace uots {

/// \brief The fixed set of search phases every engine accounts its time to.
///
/// Engines differ in which phases they exercise (brute force never
/// schedules; the Euclidean baseline never expands), but a phase means the
/// same thing everywhere, so breakdowns are comparable across algorithms.
enum class QueryPhase : int {
  /// Keyword-index probe, posting-list scan, and textual candidate sort.
  kTextualFilter = 0,
  /// Network/timeline expansion rounds, including per-hit state updates
  /// (for UOTS this includes the fused exact scoring of fully-scanned
  /// trajectories; bulk spatial precomputation like full shortest-path
  /// trees also counts here).
  kSpatialExpansion,
  /// Termination-bound upkeep: radius sums, cached-bound checks, rebuilds.
  kBoundMaintenance,
  /// Query-source scheduling decisions (heuristic label argmax etc.).
  kScheduling,
  /// Candidate refinement / result materialization: exact scoring sweeps
  /// in filter-and-refine baselines, final top-k extraction and sort.
  kRefinement,
  /// Trip assembly only: per-location candidate-segment harvest (network
  /// expansions over the merged view plus segment extraction).
  kTripHarvest,
  /// Trip assembly only: visit ordering, connector distances, and the
  /// k-best DP over segment endpoints.
  kTripAssemble,
};

inline constexpr int kNumQueryPhases = 7;

/// Stable lower_snake name of a phase ("textual_filter", ...).
const char* ToString(QueryPhase phase);

/// \brief Counters collected while answering a single query.
struct QueryStats {
  /// Distinct trajectories touched by any domain of the search.
  int64_t visited_trajectories = 0;
  /// Trajectory "data accesses": every (query source, trajectory) hit.
  int64_t trajectory_hits = 0;
  /// Vertices settled by network expansions.
  int64_t settled_vertices = 0;
  /// Priority-queue pops across all expansions. With the indexed frontier
  /// heap this equals settled_vertices exactly (no stale entries).
  int64_t heap_pops = 0;
  /// Frontier-heap inserts across all expansions (first relaxations).
  int64_t heap_pushes = 0;
  /// In-place DecreaseKey relaxations (would each have been an extra
  /// push + stale pop under the old lazy-deletion queue).
  int64_t heap_decreases = 0;
  /// Pops that settled nothing; structurally 0 with the indexed heap, kept
  /// so any regression to lazy behavior is observable.
  int64_t heap_stale_pops = 0;
  /// Trajectories whose exact score was fully evaluated (candidates).
  int64_t candidates = 0;
  /// Posting-list entries scanned in the textual domain.
  int64_t posting_entries = 0;
  /// Scheduling decisions taken (query-source switches included).
  int64_t schedule_steps = 0;
  /// Full recomputations of the cached global upper bound / label sums
  /// (the incremental bookkeeping's fallback path).
  int64_t bound_rebuilds = 0;
  /// Query sources whose expansion adopted a cached distance-field prefix
  /// (cross-query cache; see cache/distance_field_cache.h).
  int64_t dcache_hits = 0;
  /// Settle events served by replaying cached prefixes instead of heap work.
  int64_t dcache_replayed = 0;
  /// Prefixes this query published (new or extended) back into the cache.
  int64_t dcache_published = 0;
  /// Distance-oracle kernel invocations (pairwise or one-to-many searches;
  /// see oracle/querier.h). 0 when no oracle is attached or in use.
  int64_t oracle_lookups = 0;
  /// Candidates the oracle resolved to an exact score at or below the prune
  /// threshold — work a plain expansion would have spent rounds bounding.
  int64_t oracle_pruned_candidates = 0;
  /// Wall time accounted to each QueryPhase, in nanoseconds. Phases cover
  /// the bulk of a query but not 100% of elapsed_ms (validation and
  /// per-round glue are unattributed).
  int64_t phase_ns[kNumQueryPhases] = {};
  /// Wall-clock time spent answering the query.
  double elapsed_ms = 0.0;

  int64_t PhaseNs(QueryPhase phase) const {
    return phase_ns[static_cast<int>(phase)];
  }
  double PhaseMillis(QueryPhase phase) const {
    return static_cast<double>(PhaseNs(phase)) / 1e6;
  }
  /// Sum over all phases (<= elapsed_ms expressed in ns).
  int64_t TotalPhaseNs() const {
    int64_t total = 0;
    for (int i = 0; i < kNumQueryPhases; ++i) total += phase_ns[i];
    return total;
  }

  QueryStats& operator+=(const QueryStats& o) {
    visited_trajectories += o.visited_trajectories;
    trajectory_hits += o.trajectory_hits;
    settled_vertices += o.settled_vertices;
    heap_pops += o.heap_pops;
    heap_pushes += o.heap_pushes;
    heap_decreases += o.heap_decreases;
    heap_stale_pops += o.heap_stale_pops;
    candidates += o.candidates;
    posting_entries += o.posting_entries;
    schedule_steps += o.schedule_steps;
    bound_rebuilds += o.bound_rebuilds;
    dcache_hits += o.dcache_hits;
    dcache_replayed += o.dcache_replayed;
    dcache_published += o.dcache_published;
    oracle_lookups += o.oracle_lookups;
    oracle_pruned_candidates += o.oracle_pruned_candidates;
    for (int i = 0; i < kNumQueryPhases; ++i) phase_ns[i] += o.phase_ns[i];
    elapsed_ms += o.elapsed_ms;
    return *this;
  }

  std::string ToString() const;
  /// Flat JSON object; phase times under "phase_ms" keyed by phase name.
  std::string ToJson() const;
};

/// \brief RAII phase accounting: adds the scope's wall time to
/// `stats->phase_ns[phase]` and, when a trace session is active, records a
/// span named after the phase. Cost when idle: two clock reads plus one
/// relaxed atomic load — safe inside per-round search loops.
class ScopedPhase {
 public:
  ScopedPhase(QueryStats* stats, QueryPhase phase)
      : stats_(stats), phase_(phase), span_(ToString(phase)) {}
  ~ScopedPhase() {
    stats_->phase_ns[static_cast<int>(phase_)] += timer_.ElapsedNanos();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  QueryStats* stats_;
  QueryPhase phase_;
  TraceScope span_;  // no-op unless a trace session is active / compiled in
  WallTimer timer_;
};

}  // namespace uots

#endif  // UOTS_UTIL_COUNTERS_H_

// Per-query instrumentation counters.
//
// "Number of visited trajectories" is the primary data-access metric used by
// the paper family's evaluations (it is storage-location independent); the
// remaining counters support the ablation analyses.

#ifndef UOTS_UTIL_COUNTERS_H_
#define UOTS_UTIL_COUNTERS_H_

#include <cstdint>
#include <string>

namespace uots {

/// \brief Counters collected while answering a single query.
struct QueryStats {
  /// Distinct trajectories touched by any domain of the search.
  int64_t visited_trajectories = 0;
  /// Trajectory "data accesses": every (query source, trajectory) hit.
  int64_t trajectory_hits = 0;
  /// Vertices settled by network expansions.
  int64_t settled_vertices = 0;
  /// Priority-queue pops across all expansions. With the indexed frontier
  /// heap this equals settled_vertices exactly (no stale entries).
  int64_t heap_pops = 0;
  /// Frontier-heap inserts across all expansions (first relaxations).
  int64_t heap_pushes = 0;
  /// In-place DecreaseKey relaxations (would each have been an extra
  /// push + stale pop under the old lazy-deletion queue).
  int64_t heap_decreases = 0;
  /// Pops that settled nothing; structurally 0 with the indexed heap, kept
  /// so any regression to lazy behavior is observable.
  int64_t heap_stale_pops = 0;
  /// Trajectories whose exact score was fully evaluated (candidates).
  int64_t candidates = 0;
  /// Posting-list entries scanned in the textual domain.
  int64_t posting_entries = 0;
  /// Scheduling decisions taken (query-source switches included).
  int64_t schedule_steps = 0;
  /// Full recomputations of the cached global upper bound / label sums
  /// (the incremental bookkeeping's fallback path).
  int64_t bound_rebuilds = 0;
  /// Wall-clock time spent answering the query.
  double elapsed_ms = 0.0;

  QueryStats& operator+=(const QueryStats& o) {
    visited_trajectories += o.visited_trajectories;
    trajectory_hits += o.trajectory_hits;
    settled_vertices += o.settled_vertices;
    heap_pops += o.heap_pops;
    heap_pushes += o.heap_pushes;
    heap_decreases += o.heap_decreases;
    heap_stale_pops += o.heap_stale_pops;
    candidates += o.candidates;
    posting_entries += o.posting_entries;
    schedule_steps += o.schedule_steps;
    bound_rebuilds += o.bound_rebuilds;
    elapsed_ms += o.elapsed_ms;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace uots

#endif  // UOTS_UTIL_COUNTERS_H_

#include "util/metrics.h"

#include <sstream>

namespace uots {

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: usable during static teardown.
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

void MetricsRegistry::Record(const std::string& name, int64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Record(ns);
}

void MetricsRegistry::Merge(const std::string& name,
                            const LatencyHistogram& h) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Merge(h);
}

LatencyHistogram MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second : LatencyHistogram();
}

HistogramSnapshot MetricsRegistry::GetSnapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.TakeSnapshot()
                                 : HistogramSnapshot{};
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h.TakeSnapshot());
  }
  return out;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.push_back(name);
  return out;
}

std::vector<std::pair<std::string, LatencyHistogram>>
MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {histograms_.begin(), histograms_.end()};
}

void MetricsRegistry::AddCounter(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetCounter(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = value;
}

int64_t MetricsRegistry::GetCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::string MetricsRegistry::ToString() const {
  std::ostringstream os;
  for (const auto& [name, h] : Snapshot()) {
    os << name << ": " << h.ToString() << "\n";
  }
  for (const auto& [name, value] : CounterSnapshot()) {
    os << name << ": " << value << "\n";
  }
  return os.str();
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_.clear();
  counters_.clear();
}

}  // namespace uots

#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace uots {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string HumanBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  return buf;
}

}  // namespace uots

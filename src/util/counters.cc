#include "util/counters.h"

#include <sstream>

namespace uots {

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "visited=" << visited_trajectories << " hits=" << trajectory_hits
     << " settled=" << settled_vertices << " pops=" << heap_pops
     << " pushes=" << heap_pushes << " decreases=" << heap_decreases
     << " stale=" << heap_stale_pops << " candidates=" << candidates
     << " postings=" << posting_entries << " steps=" << schedule_steps
     << " rebuilds=" << bound_rebuilds << " ms=" << elapsed_ms;
  return os.str();
}

}  // namespace uots

#include "util/counters.h"

#include <sstream>

namespace uots {

const char* ToString(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kTextualFilter:
      return "textual_filter";
    case QueryPhase::kSpatialExpansion:
      return "spatial_expansion";
    case QueryPhase::kBoundMaintenance:
      return "bound_maintenance";
    case QueryPhase::kScheduling:
      return "scheduling";
    case QueryPhase::kRefinement:
      return "refinement";
    case QueryPhase::kTripHarvest:
      return "trip_harvest";
    case QueryPhase::kTripAssemble:
      return "trip_assemble";
  }
  return "unknown";
}

std::string QueryStats::ToString() const {
  std::ostringstream os;
  os << "visited=" << visited_trajectories << " hits=" << trajectory_hits
     << " settled=" << settled_vertices << " pops=" << heap_pops
     << " pushes=" << heap_pushes << " decreases=" << heap_decreases
     << " stale=" << heap_stale_pops << " candidates=" << candidates
     << " postings=" << posting_entries << " steps=" << schedule_steps
     << " rebuilds=" << bound_rebuilds << " dcache_hits=" << dcache_hits
     << " dcache_replayed=" << dcache_replayed
     << " dcache_published=" << dcache_published
     << " oracle_lookups=" << oracle_lookups
     << " oracle_pruned=" << oracle_pruned_candidates << " ms=" << elapsed_ms;
  os << " phases[";
  for (int i = 0; i < kNumQueryPhases; ++i) {
    if (i != 0) os << " ";
    os << uots::ToString(static_cast<QueryPhase>(i)) << "="
       << PhaseMillis(static_cast<QueryPhase>(i)) << "ms";
  }
  os << "]";
  return os.str();
}

std::string QueryStats::ToJson() const {
  std::ostringstream os;
  os << "{\"visited_trajectories\": " << visited_trajectories
     << ", \"trajectory_hits\": " << trajectory_hits
     << ", \"settled_vertices\": " << settled_vertices
     << ", \"heap_pops\": " << heap_pops
     << ", \"heap_pushes\": " << heap_pushes
     << ", \"heap_decreases\": " << heap_decreases
     << ", \"heap_stale_pops\": " << heap_stale_pops
     << ", \"candidates\": " << candidates
     << ", \"posting_entries\": " << posting_entries
     << ", \"schedule_steps\": " << schedule_steps
     << ", \"bound_rebuilds\": " << bound_rebuilds
     << ", \"dcache_hits\": " << dcache_hits
     << ", \"dcache_replayed\": " << dcache_replayed
     << ", \"dcache_published\": " << dcache_published
     << ", \"oracle_lookups\": " << oracle_lookups
     << ", \"oracle_pruned_candidates\": " << oracle_pruned_candidates
     << ", \"elapsed_ms\": " << elapsed_ms << ", \"phase_ms\": {";
  for (int i = 0; i < kNumQueryPhases; ++i) {
    if (i != 0) os << ", ";
    os << "\"" << uots::ToString(static_cast<QueryPhase>(i))
       << "\": " << PhaseMillis(static_cast<QueryPhase>(i));
  }
  os << "}}";
  return os.str();
}

}  // namespace uots

#include "util/thread_pool.h"

#include <algorithm>
#include <cassert>
#include <exception>

namespace uots {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  assert(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Shutdown();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Static chunking: tasks in the batch executor have similar cost, and
  // static chunks avoid per-item queue traffic.
  const size_t chunks = std::min(n, num_threads() * 4);
  std::atomic<size_t> next_chunk{0};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    futures.push_back(Submit([&, chunks, n] {
      for (;;) {
        const size_t chunk = next_chunk.fetch_add(1);
        if (chunk >= chunks) return;
        const size_t begin = chunk * n / chunks;
        const size_t end = (chunk + 1) * n / chunks;
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    }));
  }
  // Wait for every chunk before rethrowing: the lambdas above capture
  // next_chunk and fn by reference, so unwinding this frame while any
  // worker still runs one would be use-after-scope.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace uots

#include "util/thread_pool.h"

#include <algorithm>
#include <cassert>

namespace uots {

ThreadPool::ThreadPool(size_t num_threads) {
  assert(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Static chunking: tasks in the batch executor have similar cost, and
  // static chunks avoid per-item queue traffic.
  const size_t chunks = std::min(n, num_threads() * 4);
  std::atomic<size_t> next_chunk{0};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    futures.push_back(Submit([&, chunks, n] {
      for (;;) {
        const size_t chunk = next_chunk.fetch_add(1);
        if (chunk >= chunks) return;
        const size_t begin = chunk * n / chunks;
        const size_t end = (chunk + 1) * n / chunks;
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace uots

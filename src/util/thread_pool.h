// Fixed-size worker pool used by the batch query executor.

#ifndef UOTS_UTIL_THREAD_POOL_H_
#define UOTS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace uots {

/// \brief A fixed pool of worker threads executing submitted tasks FIFO.
///
/// Deliberately simple: no work stealing, no priorities. Query-level
/// parallelism in the batch executor is embarrassingly parallel, so a single
/// shared queue is sufficient and keeps behaviour easy to reason about.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace uots

#endif  // UOTS_UTIL_THREAD_POOL_H_

// Fixed-size worker pool used by the batch query executor and the server.

#ifndef UOTS_UTIL_THREAD_POOL_H_
#define UOTS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace uots {

/// \brief A fixed pool of worker threads executing submitted tasks FIFO.
///
/// Deliberately simple: no work stealing, no priorities. Query-level
/// parallelism in the batch executor is embarrassingly parallel, so a single
/// shared queue is sufficient and keeps behaviour easy to reason about.
///
/// Serving additions: Shutdown() stops admission while workers drain what
/// was already queued (a task accepted is a task run), Submit after
/// shutdown throws instead of enqueueing work that would never execute,
/// and TrySubmit applies the optional queue capacity so a server can turn
/// saturation into an "overloaded" rejection instead of unbounded memory.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1). `max_queue` bounds
  /// the number of not-yet-started tasks TrySubmit may have outstanding;
  /// 0 means unbounded.
  explicit ThreadPool(size_t num_threads, size_t max_queue = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result. Ignores the queue
  /// capacity (trusted internal callers like ParallelFor must not deadlock
  /// on their own bound); throws std::runtime_error once shutdown began.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) throw std::runtime_error("ThreadPool::Submit after Shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Bounded admission: schedules `fn` unless the pool is shutting down or
  /// the pending queue is at capacity. \return nullopt on rejection — the
  /// caller decides whether that means "overloaded" or "shutting down"
  /// (see shutting_down()).
  template <typename Fn>
  auto TrySubmit(Fn&& fn)
      -> std::optional<std::future<std::invoke_result_t<Fn>>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return std::nullopt;
      if (max_queue_ != 0 && queue_.size() >= max_queue_) return std::nullopt;
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// If any invocation throws, every other chunk still runs to completion
  /// and the first exception (in chunk order) is rethrown to the caller.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Stops admission: subsequent Submit throws and TrySubmit rejects.
  /// Already-queued tasks still run; workers exit once the queue drains.
  /// Idempotent and safe from any thread; does not join (destructor does).
  void Shutdown();

  /// True once Shutdown() was called (or destruction began).
  bool shutting_down() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stop_;
  }

  /// Tasks accepted but not yet picked up by a worker.
  size_t QueueDepth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  size_t num_threads() const { return workers_.size(); }
  size_t max_queue() const { return max_queue_; }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t max_queue_ = 0;
  bool stop_ = false;
};

}  // namespace uots

#endif  // UOTS_UTIL_THREAD_POOL_H_

// Process-wide metrics surface: named latency histograms plus counters.
//
// Hot paths never touch the registry directly — batch workers and engines
// accumulate into private LatencyHistogram instances and merge them in one
// mutex-protected call at the end of a run. The registry is the read side:
// benches, examples, and services snapshot it to report p50/p95/p99 across
// everything that executed since the last Clear(). Counters cover the
// monotonic side (cache hits, evictions, bytes): subsystems that already
// keep their own atomics publish them with SetCounter at report points.

#ifndef UOTS_UTIL_METRICS_H_
#define UOTS_UTIL_METRICS_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace uots {

/// \brief Thread-safe name -> LatencyHistogram map.
class MetricsRegistry {
 public:
  /// The process-wide instance (RunBatch merges into it by default).
  static MetricsRegistry& Global();

  /// Records one latency under `name` (creates the histogram on first use).
  void Record(const std::string& name, int64_t ns);

  /// Bucket-wise merges `h` into the histogram under `name`.
  void Merge(const std::string& name, const LatencyHistogram& h);

  /// Copy of the histogram under `name`; empty histogram when absent.
  LatencyHistogram Get(const std::string& name) const;

  /// Frozen view of the histogram under `name`, taken under the registry
  /// mutex: count, sum, quantiles, and bucket counts all describe the same
  /// recorded set even while other threads keep Record()ing. This is the
  /// scrape-side read API.
  HistogramSnapshot GetSnapshot(const std::string& name) const;

  /// Consistent frozen view of every (name, snapshot) pair, sorted by
  /// name — one lock acquisition for a whole exposition pass.
  std::vector<std::pair<std::string, HistogramSnapshot>> SnapshotAll() const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// Consistent copy of every (name, histogram) pair, sorted by name.
  std::vector<std::pair<std::string, LatencyHistogram>> Snapshot() const;

  /// Adds `delta` to the counter under `name` (created at 0 on first use).
  void AddCounter(const std::string& name, int64_t delta);

  /// Overwrites the counter under `name` — the publish-at-report-point API
  /// for subsystems that maintain their own atomics.
  void SetCounter(const std::string& name, int64_t value);

  /// Current counter value; 0 when absent.
  int64_t GetCounter(const std::string& name) const;

  /// Consistent copy of every (name, value) counter pair, sorted by name.
  std::vector<std::pair<std::string, int64_t>> CounterSnapshot() const;

  /// One "name: n=.. p50=.. ..." line per histogram, then one
  /// "name: value" line per counter.
  std::string ToString() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, LatencyHistogram> histograms_;
  std::map<std::string, int64_t> counters_;
};

}  // namespace uots

#endif  // UOTS_UTIL_METRICS_H_

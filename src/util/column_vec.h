// Owning-or-view contiguous columns.
//
// Every large array in the database (CSR offsets, samples, postings, ...)
// is either built in memory (owning a std::vector) or mapped straight out
// of a snapshot file (viewing foreign bytes, zero-copy). ColumnVec is the
// one container expressing both: the read API is identical in either mode,
// builders mutate through mutable_vec() (owning mode only), and the
// snapshot loader constructs views over validated mmap'd sections. Whoever
// creates a view is responsible for keeping the backing bytes alive
// (TrajectoryDatabase pins the mapped file for exactly this reason).

#ifndef UOTS_UTIL_COLUMN_VEC_H_
#define UOTS_UTIL_COLUMN_VEC_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

namespace uots {

/// \brief Bytes resident on the process heap vs. viewed from a mapping.
///
/// Heap bytes are private dirty memory; mmap'd snapshot bytes are shared,
/// clean, and reclaimable by the kernel — a server reports them separately.
struct MemoryBreakdown {
  size_t heap_bytes = 0;
  size_t mmap_bytes = 0;

  size_t total() const { return heap_bytes + mmap_bytes; }

  MemoryBreakdown& operator+=(const MemoryBreakdown& o) {
    heap_bytes += o.heap_bytes;
    mmap_bytes += o.mmap_bytes;
    return *this;
  }
};

/// \brief A contiguous immutable-through-this-API column of trivially
/// copyable elements that either owns its storage or views external memory.
template <typename T>
class ColumnVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ColumnVec elements must be trivially copyable (they are "
                "persisted byte-for-byte in snapshots)");

 public:
  ColumnVec() = default;
  /*implicit*/ ColumnVec(std::vector<T> v)  // NOLINT(runtime/explicit)
      : owned_(std::move(v)) {}

  /// A non-owning view over `[data, data + count)`. The caller guarantees
  /// the bytes outlive every copy of the returned column.
  static ColumnVec View(const T* data, size_t count) {
    ColumnVec c;
    c.view_data_ = data;
    c.view_size_ = count;
    c.is_view_ = true;
    return c;
  }

  // Copying an owning column deep-copies; copying a view copies the view.
  ColumnVec(const ColumnVec&) = default;
  ColumnVec& operator=(const ColumnVec&) = default;
  ColumnVec(ColumnVec&&) noexcept = default;
  ColumnVec& operator=(ColumnVec&&) noexcept = default;

  bool is_view() const { return is_view_; }
  const T* data() const { return is_view_ ? view_data_ : owned_.data(); }
  size_t size() const { return is_view_ ? view_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  std::span<const T> span() const { return {data(), size()}; }

  /// Builder access; only meaningful while owning. Growing the vector is
  /// fine — readers always go through data()/size().
  std::vector<T>& mutable_vec() {
    assert(!is_view_ && "cannot mutate a view-mode column");
    return owned_;
  }

  MemoryBreakdown Memory() const {
    MemoryBreakdown m;
    if (is_view_) {
      m.mmap_bytes = view_size_ * sizeof(T);
    } else {
      m.heap_bytes = owned_.capacity() * sizeof(T);
    }
    return m;
  }

 private:
  std::vector<T> owned_;
  const T* view_data_ = nullptr;
  size_t view_size_ = 0;
  bool is_view_ = false;
};

}  // namespace uots

#endif  // UOTS_UTIL_COLUMN_VEC_H_

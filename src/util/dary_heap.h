// Indexed d-ary min-heap with O(1) bulk reset via version tagging.
//
// The spatial hot paths (Dijkstra variants and the resumable network
// expansion) previously ran on std::priority_queue with lazy deletion:
// every relaxation pushed a fresh node, so the heap carried one entry per
// *edge relaxation* instead of one per *frontier vertex*, and every pop had
// to be checked against the distance labels for staleness. This heap keys
// entries by their dense id (VertexId), keeps an id -> heap-slot map so a
// relaxation becomes an in-place DecreaseKey sift, and reuses the same
// version-tagging trick as DistanceField so Reset() between queries is a
// counter bump, not an O(n) clear.
//
// Invariants the callers rely on:
//  * each id is in the heap at most once;
//  * Pop() returns ids in nondecreasing key order (so pops == settles in a
//    Dijkstra drain — no stale entries, ever);
//  * Reset() invalidates all bookkeeping in O(1) and keeps the backing
//    storage, so a reused heap allocates only on first growth.
//
// Arity 4 instead of 2: sift-down does d comparisons per level but the tree
// is half as deep, and the children of slot i share one cache line — the
// standard trade for Dijkstra workloads where pops (sift-down heavy)
// dominate decreases (sift-up heavy).

#ifndef UOTS_UTIL_DARY_HEAP_H_
#define UOTS_UTIL_DARY_HEAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace uots {

/// \brief Indexed d-ary min-heap over ids in [0, n) with double keys.
template <int Arity = 4>
class DaryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  struct Entry {
    double key;
    uint32_t id;
  };

  explicit DaryHeap(size_t n = 0) { Resize(n); }

  /// Grows the id universe; existing entries are invalidated.
  void Resize(size_t n) {
    pos_.assign(n, Pos{0, 0});
    current_ = 1;
    heap_.clear();
  }

  /// Empties the heap in O(1); ids keep their capacity.
  void Reset() {
    ++current_;
    heap_.clear();
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  size_t universe() const { return pos_.size(); }

  /// True iff `id` is currently queued (pushed and not yet popped).
  bool Contains(uint32_t id) const {
    const Pos p = pos_[id];
    return p.version == current_ && p.slot != kPopped;
  }

  /// Key of a queued id; must satisfy Contains(id).
  double KeyOf(uint32_t id) const {
    assert(Contains(id));
    return heap_[pos_[id].slot].key;
  }

  /// Inserts a new id; must not be queued already (popped ids may re-enter,
  /// though Dijkstra-style callers never re-insert a settled vertex).
  void Push(uint32_t id, double key) {
    assert(id < pos_.size());
    assert(!Contains(id));
    const uint32_t at = static_cast<uint32_t>(heap_.size());
    heap_.push_back(Entry{key, id});
    pos_[id] = Pos{at, current_};
    SiftUp(at);
  }

  /// Lowers the key of a queued id in place; `key` must not exceed the
  /// current key (equal is a no-op).
  void DecreaseKey(uint32_t id, double key) {
    assert(Contains(id));
    const uint32_t at = pos_[id].slot;
    assert(key <= heap_[at].key);
    if (key == heap_[at].key) return;
    heap_[at].key = key;
    SiftUp(at);
  }

  /// Relaxation helper: Push if absent, DecreaseKey otherwise.
  /// \return true when the id was newly inserted.
  bool PushOrDecrease(uint32_t id, double key) {
    if (Contains(id)) {
      DecreaseKey(id, key);
      return false;
    }
    Push(id, key);
    return true;
  }

  const Entry& Top() const {
    assert(!heap_.empty());
    return heap_.front();
  }

  /// Removes and returns the minimum-key entry.
  Entry Pop() {
    assert(!heap_.empty());
    const Entry top = heap_.front();
    pos_[top.id].slot = kPopped;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      pos_[last.id].slot = 0;
      SiftDown(0);
    }
    return top;
  }

 private:
  static constexpr uint32_t kPopped = UINT32_MAX;

  /// Where an id lives in heap_, valid only while version == current_.
  /// One 8-byte load answers both "is it queued?" and "at which slot?".
  struct Pos {
    uint32_t slot;
    uint32_t version;
  };

  void SiftUp(uint32_t at) {
    const Entry e = heap_[at];
    while (at > 0) {
      const uint32_t parent = (at - 1) / Arity;
      if (heap_[parent].key <= e.key) break;
      heap_[at] = heap_[parent];
      pos_[heap_[at].id].slot = at;
      at = parent;
    }
    heap_[at] = e;
    pos_[e.id].slot = at;
  }

  void SiftDown(uint32_t at) {
    const Entry e = heap_[at];
    const uint32_t n = static_cast<uint32_t>(heap_.size());
    for (;;) {
      const uint64_t first = uint64_t{at} * Arity + 1;
      if (first >= n) break;
      const uint32_t last =
          static_cast<uint32_t>(first + Arity <= n ? first + Arity : n);
      uint32_t best = static_cast<uint32_t>(first);
      for (uint32_t c = best + 1; c < last; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (heap_[best].key >= e.key) break;
      heap_[at] = heap_[best];
      pos_[heap_[at].id].slot = at;
      at = best;
    }
    heap_[at] = e;
    pos_[e.id].slot = at;
  }

  std::vector<Entry> heap_;  ///< the tree, in array form
  std::vector<Pos> pos_;     ///< id -> (slot in heap_ or kPopped, version)
  uint32_t current_ = 1;
};

/// The arity used by all shortest-path engines in src/net.
using VertexHeap = DaryHeap<4>;

}  // namespace uots

#endif  // UOTS_UTIL_DARY_HEAP_H_

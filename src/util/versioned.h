// Dense arrays with O(1) bulk reset via version tagging.
//
// Query processing touches per-trajectory / per-vertex state that must be
// cleared between queries; version tags replace an O(n) memset per query
// with a single counter bump.

#ifndef UOTS_UTIL_VERSIONED_H_
#define UOTS_UTIL_VERSIONED_H_

#include <cstdint>
#include <vector>

namespace uots {

/// \brief Fixed-size array of T whose entries all become "unset" on Reset().
template <typename T>
class VersionedArray {
 public:
  explicit VersionedArray(size_t n = 0) { Resize(n); }

  void Resize(size_t n) {
    values_.assign(n, T{});
    version_.assign(n, 0);
    current_ = 1;
  }

  /// Marks every entry unset in O(1).
  void Reset() { ++current_; }

  bool Has(size_t i) const { return version_[i] == current_; }

  /// Returns the entry if set, else `fallback`.
  T Get(size_t i, T fallback = T{}) const {
    return Has(i) ? values_[i] : fallback;
  }

  void Set(size_t i, T value) {
    values_[i] = value;
    version_[i] = current_;
  }

  /// Reference to entry i, default-initializing it if unset.
  T& Ref(size_t i) {
    if (!Has(i)) {
      values_[i] = T{};
      version_[i] = current_;
    }
    return values_[i];
  }

  size_t size() const { return values_.size(); }

 private:
  std::vector<T> values_;
  std::vector<uint32_t> version_;
  uint32_t current_ = 1;
};

}  // namespace uots

#endif  // UOTS_UTIL_VERSIONED_H_

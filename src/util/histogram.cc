#include "util/histogram.h"

#include <sstream>

namespace uots {

namespace {
std::string FormatNsAsMs(int64_t ns) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << static_cast<double>(ns) / 1e6 << "ms";
  return os.str();
}
}  // namespace

std::string LatencyHistogram::ToString() const {
  std::ostringstream os;
  os << "n=" << count_;
  if (count_ == 0) return os.str();
  os.precision(3);
  os << std::fixed << " mean=" << MeanNs() / 1e6 << "ms"
     << " p50=" << FormatNsAsMs(PercentileNs(50))
     << " p95=" << FormatNsAsMs(PercentileNs(95))
     << " p99=" << FormatNsAsMs(PercentileNs(99))
     << " max=" << FormatNsAsMs(max_ns_);
  return os.str();
}

}  // namespace uots

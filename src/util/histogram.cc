#include "util/histogram.h"

#include <sstream>

namespace uots {

namespace {

std::string FormatNsAsMs(int64_t ns) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << static_cast<double>(ns) / 1e6 << "ms";
  return os.str();
}

/// Shared nearest-rank walk over a bucket array; the live histogram and
/// its snapshots must agree bit for bit on every quantile.
int64_t PercentileFromBuckets(const int64_t* counts, int64_t count,
                              int64_t min_ns, int64_t max_ns, double p) {
  if (count == 0) return 0;
  const double clamped = std::max(0.0, std::min(100.0, p));
  int64_t target =
      static_cast<int64_t>(clamped / 100.0 * static_cast<double>(count));
  if (target < 1) target = 1;
  int64_t seen = 0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    seen += counts[i];
    if (seen >= target) {
      return std::clamp(LatencyHistogram::BucketUpperBound(i), min_ns, max_ns);
    }
  }
  return max_ns;
}

/// Counts values in buckets that lie entirely at or below `ns`.
int64_t CumulativeLeFromBuckets(const int64_t* counts, int64_t ns) {
  if (ns < 0) return 0;
  int64_t seen = 0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    if (LatencyHistogram::BucketUpperBound(i) > ns) break;
    seen += counts[i];
  }
  return seen;
}

}  // namespace

int64_t LatencyHistogram::PercentileNs(double p) const {
  return PercentileFromBuckets(counts_.data(), count_, min_ns(), max_ns(), p);
}

int64_t LatencyHistogram::CumulativeCountLe(int64_t ns) const {
  return CumulativeLeFromBuckets(counts_.data(), ns);
}

HistogramSnapshot LatencyHistogram::TakeSnapshot() const {
  HistogramSnapshot s;
  s.counts = counts_;
  s.count = count_;
  s.sum_ns = sum_ns_;
  s.min_ns = min_ns();
  s.max_ns = max_ns();
  return s;
}

int64_t HistogramSnapshot::PercentileNs(double p) const {
  return PercentileFromBuckets(counts.data(), count, min_ns, max_ns, p);
}

int64_t HistogramSnapshot::CumulativeCountLe(int64_t ns) const {
  return CumulativeLeFromBuckets(counts.data(), ns);
}

std::string LatencyHistogram::ToString() const {
  std::ostringstream os;
  os << "n=" << count_;
  if (count_ == 0) return os.str();
  os.precision(3);
  os << std::fixed << " mean=" << MeanNs() / 1e6 << "ms"
     << " p50=" << FormatNsAsMs(PercentileNs(50))
     << " p95=" << FormatNsAsMs(PercentileNs(95))
     << " p99=" << FormatNsAsMs(PercentileNs(99))
     << " max=" << FormatNsAsMs(max_ns_);
  return os.str();
}

}  // namespace uots

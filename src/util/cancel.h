// Cooperative cancellation / deadline token for long-running searches.
//
// Engines poll ShouldAbort() at their natural round boundaries (every
// scheduling round for UOTS, every few thousand trajectories for the brute
// force scan), so an armed token turns an admitted-but-slow query into a
// prompt kDeadlineExceeded instead of a worker held hostage. The token is
// written by one controller (a server's timer subsystem, or the deadline
// set up by RunQuery) and read by one worker; all accesses are relaxed
// atomics — a cancellation observed one round late is fine by design.

#ifndef UOTS_UTIL_CANCEL_H_
#define UOTS_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace uots {

/// \brief One-shot cancel flag plus optional absolute deadline.
class CancelToken {
 public:
  /// Steady-clock now in nanoseconds (the time base deadlines use).
  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Re-arms the token for a new request: clears the flag and deadline.
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

  /// Requests cancellation (safe from any thread, e.g. a timer callback).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Sets an absolute steady-clock deadline; 0 means "no deadline".
  void SetDeadlineNs(int64_t deadline_ns) {
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
  }

  /// Convenience: deadline `ms` milliseconds from now (<= 0 clears it).
  void SetDeadlineAfterMs(double ms) {
    SetDeadlineNs(ms > 0.0 ? NowNs() + static_cast<int64_t>(ms * 1e6) : 0);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// True once cancelled or past the deadline. Costs one atomic load when
  /// no deadline is armed, plus a clock read when one is.
  bool ShouldAbort() const {
    if (cancelled()) return true;
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 && NowNs() >= d;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};
};

}  // namespace uots

#endif  // UOTS_UTIL_CANCEL_H_

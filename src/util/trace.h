// Low-overhead span tracer with Chrome trace_event JSON export.
//
// Spans are recorded through the UOTS_TRACE_SCOPE / UOTS_TRACE_SCOPE_ID
// macros into thread-local buffers (one uncontended mutex acquisition per
// completed span, no allocation in the common case) and only while a trace
// session is active (Trace::Start() .. Trace::Stop()) or the calling thread
// has a capture open (BeginThreadCapture .. EndThreadCapture); when neither
// holds, a span costs a relaxed atomic load plus a thread-local flag read. Buffers outlive their
// threads, so spans from batch workers survive pool shutdown and show up in
// the next Snapshot()/ToChromeJson().
//
// Compile-out: building with -DUOTS_TRACE=0 (CMake option UOTS_TRACE=OFF)
// turns both macros and TraceScope into empty statements — zero code and
// zero data on every instrumented path. The Trace runtime class keeps its
// API in that configuration (Start/Stop/Snapshot all work, the trace is
// simply empty), so callers never need their own #ifdefs.
//
// The exported JSON uses the Chrome trace_event "complete" ("ph":"X")
// format and loads directly in chrome://tracing or https://ui.perfetto.dev.

#ifndef UOTS_UTIL_TRACE_H_
#define UOTS_UTIL_TRACE_H_

#ifndef UOTS_TRACE
#define UOTS_TRACE 1  // compiled in unless the build defines UOTS_TRACE=0
#endif

#include <cstdint>
#include <string>
#include <vector>

namespace uots {

/// \brief One completed span. `name` must have static storage duration
/// (phase names, engine names) — the tracer stores the pointer only.
struct TraceEvent {
  const char* name = "";
  int64_t start_ns = 0;  ///< relative to the process trace epoch
  int64_t dur_ns = 0;
  int64_t id = -1;       ///< optional correlation id (query/shard index)
  uint32_t tid = 0;      ///< dense per-thread number (registration order)
  int32_t depth = 0;     ///< span nesting depth at emission (0 = outermost)
};

/// \brief Process-wide trace session control and export.
class Trace {
 public:
  /// True while a global session is active (thread captures not included).
  /// Relaxed-atomic read.
  static bool active();

  static void Start();
  static void Stop();

  /// Drops every recorded event (buffers stay registered).
  static void Clear();

  /// Events recorded so far, across all threads (live and exited). Call
  /// with the traced workload quiesced; concurrent recorders are excluded
  /// only per-buffer.
  static std::vector<TraceEvent> Snapshot();

  /// Number of spans dropped because a thread buffer hit its cap.
  static int64_t dropped();

  /// \brief Per-thread span capture, independent of the global session.
  ///
  /// Between BeginThreadCapture and EndThreadCapture, spans opened by the
  /// *calling thread* are recorded even when no global session is active —
  /// this is what lets a server sample the span tree of one request on one
  /// worker thread without turning tracing on process-wide. EndThreadCapture
  /// returns the spans recorded by this thread since the matching Begin; if
  /// no global session was running they are also removed from the thread
  /// buffer, so sampling forever neither fills the buffer cap nor pollutes
  /// a later ToChromeJson(). No-ops (empty result) when the tracer is
  /// compiled out. Captures do not nest.
  static void BeginThreadCapture();
  static std::vector<TraceEvent> EndThreadCapture();

  /// Chrome trace_event JSON ({"traceEvents":[...]}; ts/dur in us).
  static std::string ToChromeJson();

  /// Writes ToChromeJson() to `path`. \return false on I/O failure.
  static bool WriteChromeJson(const std::string& path);

  /// Nanoseconds since the process trace epoch (monotonic).
  static int64_t NowNs();
};

#if UOTS_TRACE

/// \brief RAII span: records [construction, destruction) into the calling
/// thread's buffer when a session was active at construction time.
class TraceScope {
 public:
  explicit TraceScope(const char* name, int64_t id = -1);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_;
  int64_t id_;
  int64_t start_ns_ = 0;
  int32_t depth_ = 0;
  bool recording_;
};

#define UOTS_TRACE_CONCAT_(a, b) a##b
#define UOTS_TRACE_CONCAT(a, b) UOTS_TRACE_CONCAT_(a, b)
#define UOTS_TRACE_SCOPE(name) \
  ::uots::TraceScope UOTS_TRACE_CONCAT(uots_trace_scope_, __LINE__)(name)
#define UOTS_TRACE_SCOPE_ID(name, id) \
  ::uots::TraceScope UOTS_TRACE_CONCAT(uots_trace_scope_, __LINE__)(name, (id))

#else  // !UOTS_TRACE — tracer compiled out; spans are empty statements.

class TraceScope {
 public:
  explicit TraceScope(const char*, int64_t = -1) {}
};

#define UOTS_TRACE_SCOPE(name) \
  do {                         \
  } while (false)
#define UOTS_TRACE_SCOPE_ID(name, id) \
  do {                                \
  } while (false)

#endif  // UOTS_TRACE

}  // namespace uots

#endif  // UOTS_UTIL_TRACE_H_

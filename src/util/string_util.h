// Small string helpers shared by IO code and table printers.

#ifndef UOTS_UTIL_STRING_UTIL_H_
#define UOTS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace uots {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins the items with `sep`.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Renders `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Renders byte counts as "12.3 MB" style strings.
std::string HumanBytes(size_t bytes);

}  // namespace uots

#endif  // UOTS_UTIL_STRING_UTIL_H_

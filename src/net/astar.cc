#include "net/astar.h"

#include <algorithm>
#include <cassert>

namespace uots {

AStarEngine::AStarEngine(const RoadNetwork& g)
    : g_(&g),
      dist_(g.NumVertices()),
      heap_(g.NumVertices()),
      parent_(g.NumVertices(), kInvalidVertex) {}

PathResult AStarEngine::FindPath(VertexId s, VertexId t) {
  const Point goal = g_->PositionOf(t);
  return Run(
      s, t,
      [this, goal](VertexId v) {
        return EuclideanDistance(g_->PositionOf(v), goal);
      },
      /*want_path=*/true);
}

PathResult AStarEngine::FindPath(VertexId s, VertexId t, const Heuristic& h) {
  return Run(s, t, h, /*want_path=*/true);
}

double AStarEngine::Distance(VertexId s, VertexId t) {
  const Point goal = g_->PositionOf(t);
  return Run(
             s, t,
             [this, goal](VertexId v) {
               return EuclideanDistance(g_->PositionOf(v), goal);
             },
             /*want_path=*/false)
      .distance;
}

PathResult AStarEngine::Run(VertexId s, VertexId t, const Heuristic& h,
                            bool want_path) {
  assert(s < g_->NumVertices() && t < g_->NumVertices());
  PathResult out;
  dist_.Reset();
  heap_.Reset();
  dist_.Set(s, 0.0);
  parent_[s] = kInvalidVertex;
  heap_.Push(s, h(s));
  while (!heap_.empty()) {
    // The heap key is f = g + h; the exact g of the popped vertex is its
    // distance label (kept in lockstep by every relaxation).
    const VertexId v = heap_.Pop().id;
    const double g = dist_.Get(v);
    ++out.settled;
    if (v == t) {
      out.distance = g;
      if (want_path) {
        for (VertexId u = t;; u = parent_[u]) {
          out.path.push_back(u);
          if (u == s) break;
        }
        std::reverse(out.path.begin(), out.path.end());
      }
      return out;
    }
    const auto neighbors = g_->Neighbors(v);
    for (const auto& e : neighbors) dist_.Prefetch(e.to);
    for (const auto& e : neighbors) {
      const double ng = g + e.weight;
      if (ng < dist_.Get(e.to)) {
        dist_.Set(e.to, ng);
        parent_[e.to] = v;
        // A popped vertex may re-enter here under an inconsistent
        // heuristic (PushOrDecrease re-inserts it), matching the lazy
        // re-expansion behavior this engine always had.
        heap_.PushOrDecrease(e.to, ng + h(e.to));
      }
    }
  }
  return out;  // unreachable
}

}  // namespace uots

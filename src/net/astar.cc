#include "net/astar.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace uots {

namespace {

struct HeapEntry {
  double f;  // g + h
  double g;
  VertexId v;
  bool operator>(const HeapEntry& o) const { return f > o.f; }
};

}  // namespace

AStarEngine::AStarEngine(const RoadNetwork& g)
    : g_(&g), dist_(g.NumVertices()), parent_(g.NumVertices(), kInvalidVertex) {}

PathResult AStarEngine::FindPath(VertexId s, VertexId t) {
  const Point goal = g_->PositionOf(t);
  return Run(
      s, t,
      [this, goal](VertexId v) {
        return EuclideanDistance(g_->PositionOf(v), goal);
      },
      /*want_path=*/true);
}

PathResult AStarEngine::FindPath(VertexId s, VertexId t, const Heuristic& h) {
  return Run(s, t, h, /*want_path=*/true);
}

double AStarEngine::Distance(VertexId s, VertexId t) {
  const Point goal = g_->PositionOf(t);
  return Run(
             s, t,
             [this, goal](VertexId v) {
               return EuclideanDistance(g_->PositionOf(v), goal);
             },
             /*want_path=*/false)
      .distance;
}

PathResult AStarEngine::Run(VertexId s, VertexId t, const Heuristic& h,
                            bool want_path) {
  assert(s < g_->NumVertices() && t < g_->NumVertices());
  PathResult out;
  dist_.Reset();
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  dist_.Set(s, 0.0);
  parent_[s] = kInvalidVertex;
  heap.push({h(s), 0.0, s});
  while (!heap.empty()) {
    const auto [f, g, v] = heap.top();
    heap.pop();
    if (g > dist_.Get(v)) continue;  // stale
    ++out.settled;
    if (v == t) {
      out.distance = g;
      if (want_path) {
        for (VertexId u = t;; u = parent_[u]) {
          out.path.push_back(u);
          if (u == s) break;
        }
        std::reverse(out.path.begin(), out.path.end());
      }
      return out;
    }
    for (const auto& e : g_->Neighbors(v)) {
      const double ng = g + e.weight;
      if (ng < dist_.Get(e.to)) {
        dist_.Set(e.to, ng);
        parent_[e.to] = v;
        heap.push({ng + h(e.to), ng, e.to});
      }
    }
  }
  return out;  // unreachable
}

}  // namespace uots

// Plain-text persistence for road networks.
//
// Format (line-oriented, '#' comments allowed):
//   uots-network 1
//   <num_vertices> <num_edges>
//   v <x> <y>          -- num_vertices lines, ids implicit 0..n-1
//   e <a> <b> <w>      -- num_edges lines
//
// A text format keeps generated datasets diffable and lets users feed in
// their own extracts (e.g. converted from OSM) without extra tooling.

#ifndef UOTS_NET_IO_H_
#define UOTS_NET_IO_H_

#include <string>

#include "net/graph.h"
#include "util/status.h"

namespace uots {

/// Writes `g` to `path` in the uots-network text format.
Status SaveNetwork(const RoadNetwork& g, const std::string& path);

/// Reads a network from `path`; validates structure via GraphBuilder.
Result<RoadNetwork> LoadNetwork(const std::string& path,
                                bool require_connected = true);

}  // namespace uots

#endif  // UOTS_NET_IO_H_

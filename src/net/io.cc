#include "net/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace uots {

Status SaveNetwork(const RoadNetwork& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "uots-network 1\n";
  out << g.NumVertices() << " " << g.NumEdges() << "\n";
  char buf[96];
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    const Point& p = g.PositionOf(static_cast<VertexId>(v));
    std::snprintf(buf, sizeof(buf), "v %.3f %.3f\n", p.x, p.y);
    out << buf;
  }
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    for (const auto& e : g.Neighbors(static_cast<VertexId>(v))) {
      if (e.to < v) continue;  // emit each undirected edge once
      std::snprintf(buf, sizeof(buf), "e %zu %u %.3f\n", v, e.to,
                    static_cast<double>(e.weight));
      out << buf;
    }
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<RoadNetwork> LoadNetwork(const std::string& path,
                                bool require_connected) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  auto next_line = [&](std::string* out_line) {
    while (std::getline(in, *out_line)) {
      const std::string_view t = Trim(*out_line);
      if (t.empty() || t[0] == '#') continue;
      *out_line = std::string(t);
      return true;
    }
    return false;
  };
  if (!next_line(&line) || !StartsWith(line, "uots-network")) {
    return Status::IOError("bad header in " + path);
  }
  if (!next_line(&line)) return Status::IOError("missing counts in " + path);
  size_t nv = 0, ne = 0;
  {
    std::istringstream is(line);
    if (!(is >> nv >> ne)) return Status::IOError("bad counts in " + path);
  }
  GraphBuilder builder;
  for (size_t i = 0; i < nv; ++i) {
    if (!next_line(&line)) return Status::IOError("truncated vertices");
    std::istringstream is(line);
    char tag = 0;
    double x = 0, y = 0;
    if (!(is >> tag >> x >> y) || tag != 'v') {
      return Status::IOError("bad vertex line: " + line);
    }
    builder.AddVertex(Point{x, y});
  }
  for (size_t i = 0; i < ne; ++i) {
    if (!next_line(&line)) return Status::IOError("truncated edges");
    std::istringstream is(line);
    char tag = 0;
    uint64_t a = 0, b = 0;
    double w = 0;
    if (!(is >> tag >> a >> b >> w) || tag != 'e') {
      return Status::IOError("bad edge line: " + line);
    }
    builder.AddEdge(static_cast<VertexId>(a), static_cast<VertexId>(b), w);
  }
  return std::move(builder).Finalize(require_connected);
}

}  // namespace uots

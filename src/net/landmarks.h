// ALT (A*, Landmarks, Triangle inequality) lower bounds.
//
// Preprocessing picks landmarks by farthest-point selection and stores full
// distance vectors from each. The triangle inequality gives the admissible
// bound  sd(v, t) >= |d(L, t) - d(L, v)|  maximized over landmarks L.
// Provided as a substrate optimization; the ablation benchmark quantifies
// its effect on point-to-point search effort.

#ifndef UOTS_NET_LANDMARKS_H_
#define UOTS_NET_LANDMARKS_H_

#include <vector>

#include "net/astar.h"
#include "net/graph.h"

namespace uots {

/// \brief Landmark distance tables supporting ALT lower bounds.
class LandmarkIndex {
 public:
  /// Preprocesses `num_landmarks` landmarks (farthest-point selection seeded
  /// at vertex 0). Cost: num_landmarks full Dijkstras.
  LandmarkIndex(const RoadNetwork& g, int num_landmarks);

  /// Admissible lower bound on sd(u, v).
  double LowerBound(VertexId u, VertexId v) const;

  /// Heuristic closure for AStarEngine targeting `t`.
  Heuristic HeuristicFor(VertexId t) const;

  int num_landmarks() const { return static_cast<int>(landmarks_.size()); }
  const std::vector<VertexId>& landmarks() const { return landmarks_; }

 private:
  std::vector<VertexId> landmarks_;
  // dist_[l][v] = sd(landmarks_[l], v)
  std::vector<std::vector<double>> dist_;
};

}  // namespace uots

#endif  // UOTS_NET_LANDMARKS_H_

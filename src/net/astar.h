// A* point-to-point shortest paths with pluggable admissible heuristics.
//
// Used by the trip generator (many point-to-point route computations) and by
// the substrate micro-benchmarks. Edge weights in generated networks are the
// Euclidean lengths of their segments, so straight-line distance is an
// admissible and consistent heuristic; ALT landmark bounds (landmarks.h)
// tighten it further.

#ifndef UOTS_NET_ASTAR_H_
#define UOTS_NET_ASTAR_H_

#include <functional>
#include <vector>

#include "net/dijkstra.h"
#include "net/graph.h"

namespace uots {

/// Lower bound on sd(v, t) for a fixed target t. Must never overestimate.
using Heuristic = std::function<double(VertexId v)>;

/// \brief Result of a point-to-point search.
struct PathResult {
  double distance = kInfDistance;
  std::vector<VertexId> path;  ///< s..t inclusive; empty if unreachable
  int64_t settled = 0;         ///< vertices settled (search effort)
};

/// \brief Reusable A* engine for one graph.
class AStarEngine {
 public:
  explicit AStarEngine(const RoadNetwork& g);

  /// Shortest path with the Euclidean heuristic.
  PathResult FindPath(VertexId s, VertexId t);

  /// Shortest path with a caller-provided admissible heuristic for t.
  PathResult FindPath(VertexId s, VertexId t, const Heuristic& h);

  /// Distance only (skips path extraction).
  double Distance(VertexId s, VertexId t);

 private:
  PathResult Run(VertexId s, VertexId t, const Heuristic& h, bool want_path);

  const RoadNetwork* g_;
  DistanceField dist_;
  VertexHeap heap_;  ///< keyed by f = g + h; g lives in dist_
  std::vector<VertexId> parent_;
};

}  // namespace uots

#endif  // UOTS_NET_ASTAR_H_

// Incremental network expansion — the spatial-domain query source.
//
// The UOTS search runs one expansion per query location and interleaves
// their progress under a scheduling heuristic. Each expansion is a
// resumable Dijkstra: Step() settles exactly one vertex per call, in
// nondecreasing distance order, so the first time a trajectory's vertex is
// settled by the expansion from query location o, the settled distance IS
// d(o, tau) — no further refinement is ever needed. The current radius()
// lower-bounds the distance to everything not yet settled, which is what
// the upper-bound pruning in core/search.cc relies on.
//
// The frontier is an indexed 4-ary heap (util/dary_heap.h): relaxations
// decrease keys in place, so every pop settles a vertex and
// heap_pops() == settled_count() over any drain (the former lazy-deletion
// queue popped ~|E|/|V| stale entries per settle).

#ifndef UOTS_NET_EXPANSION_H_
#define UOTS_NET_EXPANSION_H_

#include <cstdint>

#include "net/dijkstra.h"
#include "net/graph.h"
#include "util/dary_heap.h"

namespace uots {

/// \brief Resumable Dijkstra expansion from a single source vertex.
class NetworkExpansion {
 public:
  /// Creates an expansion over `g`; call Reset() to (re)position the source.
  explicit NetworkExpansion(const RoadNetwork& g);

  /// (Re)starts the expansion from `source` in O(1) (version-tagged labels).
  void Reset(VertexId source);

  /// \brief Settles the next-nearest vertex.
  /// \param[out] v      the settled vertex
  /// \param[out] dist   its exact network distance from the source
  /// \return false when the whole component has been exhausted.
  bool Step(VertexId* v, double* dist);

  /// Exact distance of the last settled vertex; lower bound for all
  /// not-yet-settled vertices. 0 before the first Step().
  double radius() const { return radius_; }

  /// True once the expansion has exhausted its connected component.
  bool exhausted() const { return exhausted_; }

  VertexId source() const { return source_; }
  int64_t settled_count() const { return settled_count_; }
  /// Always equals settled_count() — kept as a separate counter so the
  /// no-stale-pops invariant stays observable (tests assert equality).
  int64_t heap_pops() const { return heap_pops_; }
  int64_t heap_pushes() const { return heap_pushes_; }
  int64_t heap_decreases() const { return heap_decreases_; }

 private:
  const RoadNetwork* g_;
  DistanceField dist_;
  VertexHeap heap_;
  VertexId source_ = kInvalidVertex;
  double radius_ = 0.0;
  bool exhausted_ = false;
  int64_t settled_count_ = 0;
  int64_t heap_pops_ = 0;
  int64_t heap_pushes_ = 0;
  int64_t heap_decreases_ = 0;
};

}  // namespace uots

#endif  // UOTS_NET_EXPANSION_H_

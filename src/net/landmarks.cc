#include "net/landmarks.h"

#include <cassert>
#include <cmath>

#include "net/dijkstra.h"

namespace uots {

LandmarkIndex::LandmarkIndex(const RoadNetwork& g, int num_landmarks) {
  assert(num_landmarks >= 1);
  const size_t n = g.NumVertices();
  // Farthest-point selection: the first landmark is the vertex farthest from
  // vertex 0; each next landmark maximizes the minimum distance to the
  // already-chosen set.
  std::vector<double> min_dist(n, kInfDistance);
  VertexId next = 0;
  {
    const ShortestPathTree t0 = ComputeShortestPathTree(g, 0);
    double best = -1.0;
    for (size_t v = 0; v < n; ++v) {
      if (t0.dist[v] != kInfDistance && t0.dist[v] > best) {
        best = t0.dist[v];
        next = static_cast<VertexId>(v);
      }
    }
  }
  for (int l = 0; l < num_landmarks; ++l) {
    landmarks_.push_back(next);
    ShortestPathTree tree = ComputeShortestPathTree(g, next);
    dist_.push_back(std::move(tree.dist));
    double best = -1.0;
    for (size_t v = 0; v < n; ++v) {
      const double d = dist_.back()[v];
      if (d < min_dist[v]) min_dist[v] = d;
      if (min_dist[v] != kInfDistance && min_dist[v] > best) {
        best = min_dist[v];
        next = static_cast<VertexId>(v);
      }
    }
  }
}

double LandmarkIndex::LowerBound(VertexId u, VertexId v) const {
  double best = 0.0;
  for (const auto& d : dist_) {
    const double du = d[u];
    const double dv = d[v];
    if (du == kInfDistance || dv == kInfDistance) continue;
    const double b = std::fabs(du - dv);
    if (b > best) best = b;
  }
  return best;
}

Heuristic LandmarkIndex::HeuristicFor(VertexId t) const {
  return [this, t](VertexId v) { return LowerBound(v, t); };
}

}  // namespace uots

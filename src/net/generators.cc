#include "net/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <vector>

#include "geo/grid_index.h"

namespace uots {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Union-find over vertex ids; used to keep generated networks connected.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns true if x and y were in different components.
  bool Union(size_t x, size_t y) {
    const size_t rx = Find(x);
    const size_t ry = Find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<RoadNetwork> MakeGridNetwork(const GridNetworkOptions& opts) {
  if (opts.rows < 2 || opts.cols < 2) {
    return Status::InvalidArgument("grid must be at least 2x2");
  }
  if (opts.removal_rate < 0.0 || opts.removal_rate >= 1.0) {
    return Status::InvalidArgument("removal_rate must be in [0,1)");
  }
  Rng rng(opts.seed);
  GraphBuilder builder;
  const auto vid = [&](int r, int c) {
    return static_cast<VertexId>(r * opts.cols + c);
  };
  for (int r = 0; r < opts.rows; ++r) {
    for (int c = 0; c < opts.cols; ++c) {
      const double jx = rng.UniformDouble(-1.0, 1.0) * opts.jitter;
      const double jy = rng.UniformDouble(-1.0, 1.0) * opts.jitter;
      builder.AddVertex(Point{(c + jx) * opts.spacing_m,
                              (r + jy) * opts.spacing_m});
    }
  }
  // Collect all grid edges, shuffle, and mark a random spanning tree: tree
  // edges are kept unconditionally so removal can never disconnect the graph.
  struct E {
    VertexId a, b;
  };
  std::vector<E> edges;
  edges.reserve(static_cast<size_t>(opts.rows) * opts.cols * 2);
  for (int r = 0; r < opts.rows; ++r) {
    for (int c = 0; c < opts.cols; ++c) {
      if (c + 1 < opts.cols) edges.push_back({vid(r, c), vid(r, c + 1)});
      if (r + 1 < opts.rows) edges.push_back({vid(r, c), vid(r + 1, c)});
    }
  }
  for (size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.Uniform(i)]);
  }
  UnionFind uf(builder.NumVertices());
  for (const auto& e : edges) {
    const bool tree_edge = uf.Union(e.a, e.b);
    if (tree_edge || !rng.Bernoulli(opts.removal_rate)) {
      builder.AddEdge(e.a, e.b);
    }
  }
  return std::move(builder).Finalize(/*require_connected=*/true);
}

Result<RoadNetwork> MakeRingRadialNetwork(const RingRadialNetworkOptions& opts) {
  if (opts.rings < 1 || opts.inner_ring_vertices < 3) {
    return Status::InvalidArgument("need >=1 ring and >=3 inner vertices");
  }
  if (opts.radial_rate <= 0.0 || opts.radial_rate > 1.0) {
    return Status::InvalidArgument("radial_rate must be in (0,1]");
  }
  Rng rng(opts.seed);
  GraphBuilder builder;
  const VertexId center = builder.AddVertex(Point{0.0, 0.0});

  // ring_vertices[k][i] = id of i-th vertex on ring k.
  std::vector<std::vector<VertexId>> ring_vertices(opts.rings);
  for (int k = 0; k < opts.rings; ++k) {
    const double radius = (k + 1) * opts.ring_spacing_m;
    // Keep vertex spacing along the ring roughly constant.
    const int count = std::max(
        3, static_cast<int>(std::round(opts.inner_ring_vertices *
                                       (radius / opts.ring_spacing_m))));
    ring_vertices[k].reserve(count);
    for (int i = 0; i < count; ++i) {
      const double angle = 2.0 * kPi * i / count;
      const double jr = rng.UniformDouble(-1.0, 1.0) * opts.jitter *
                        opts.ring_spacing_m;
      const double r = radius + jr;
      ring_vertices[k].push_back(
          builder.AddVertex(Point{r * std::cos(angle), r * std::sin(angle)}));
    }
    // Ring road: cycle through the ring's vertices.
    for (size_t i = 0; i < ring_vertices[k].size(); ++i) {
      builder.AddEdge(ring_vertices[k][i],
                      ring_vertices[k][(i + 1) % ring_vertices[k].size()]);
    }
  }
  // Radial spokes: every ring vertex connects inward with prob radial_rate;
  // vertex 0 of each ring always connects, guaranteeing connectivity.
  for (int k = 0; k < opts.rings; ++k) {
    const auto& ring = ring_vertices[k];
    for (size_t i = 0; i < ring.size(); ++i) {
      const bool forced = (i == 0);
      if (!forced && !rng.Bernoulli(opts.radial_rate)) continue;
      if (k == 0) {
        builder.AddEdge(ring[i], center);
      } else {
        // Connect to the angularly closest vertex on the inner ring.
        const auto& inner = ring_vertices[k - 1];
        const double angle = 2.0 * kPi * i / ring.size();
        const size_t j = static_cast<size_t>(
                             std::llround(angle / (2.0 * kPi) * inner.size())) %
                         inner.size();
        builder.AddEdge(ring[i], inner[j]);
      }
    }
  }
  return std::move(builder).Finalize(/*require_connected=*/true);
}

Result<RoadNetwork> MakeRandomGeometricNetwork(
    const RandomGeometricOptions& opts) {
  if (opts.num_vertices < 2) {
    return Status::InvalidArgument("need at least 2 vertices");
  }
  if (opts.k_nearest < 1) {
    return Status::InvalidArgument("k_nearest must be >= 1");
  }
  Rng rng(opts.seed);
  std::vector<Point> points;
  points.reserve(opts.num_vertices);
  for (int i = 0; i < opts.num_vertices; ++i) {
    points.push_back(Point{rng.UniformDouble(0.0, opts.extent_m),
                           rng.UniformDouble(0.0, opts.extent_m)});
  }
  GridIndex grid(points);
  GraphBuilder builder;
  for (const auto& p : points) builder.AddVertex(p);

  // Wire each vertex to (up to) its k nearest neighbors, deduplicated.
  const double base_radius =
      opts.extent_m / std::sqrt(static_cast<double>(opts.num_vertices));
  std::vector<std::pair<VertexId, VertexId>> added;
  auto try_add = [&](VertexId a, VertexId b) {
    if (a == b) return;
    const auto key = std::minmax(a, b);
    added.emplace_back(key.first, key.second);
  };
  std::vector<int64_t> near;
  for (int i = 0; i < opts.num_vertices; ++i) {
    near.clear();
    double radius = base_radius * 1.5;
    while (static_cast<int>(near.size()) <= opts.k_nearest) {
      near.clear();
      grid.WithinRadius(points[i], radius, &near);
      radius *= 2.0;
    }
    std::sort(near.begin(), near.end(), [&](int64_t a, int64_t b) {
      return SquaredDistance(points[a], points[i]) <
             SquaredDistance(points[b], points[i]);
    });
    int taken = 0;
    for (int64_t j : near) {
      if (j == i) continue;
      try_add(static_cast<VertexId>(i), static_cast<VertexId>(j));
      if (++taken >= opts.k_nearest) break;
    }
  }
  std::sort(added.begin(), added.end());
  added.erase(std::unique(added.begin(), added.end()), added.end());

  // Guarantee connectivity: greedily merge components through the shortest
  // available inter-component candidate edges (k-NN graph components are
  // spatially compact, so nearest-pair stitching is adequate).
  UnionFind uf(points.size());
  for (const auto& [a, b] : added) uf.Union(a, b);
  std::vector<std::pair<VertexId, VertexId>> stitches;
  for (;;) {
    // Collect one representative per component.
    std::vector<VertexId> reps;
    for (size_t v = 0; v < points.size(); ++v) {
      if (uf.Find(v) == v) reps.push_back(static_cast<VertexId>(v));
    }
    if (reps.size() <= 1) break;
    // Connect the component of reps[1] to the nearest vertex in a different
    // component; repeat until a single component remains.
    const size_t comp = uf.Find(reps[1]);
    VertexId best_a = kInvalidVertex, best_b = kInvalidVertex;
    double best_d2 = 1e300;
    for (size_t v = 0; v < points.size(); ++v) {
      if (uf.Find(v) != comp) continue;
      for (size_t u = 0; u < points.size(); ++u) {
        if (uf.Find(u) == comp) continue;
        const double d2 = SquaredDistance(points[v], points[u]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best_a = static_cast<VertexId>(v);
          best_b = static_cast<VertexId>(u);
        }
      }
    }
    assert(best_a != kInvalidVertex);
    stitches.emplace_back(std::min(best_a, best_b), std::max(best_a, best_b));
    uf.Union(best_a, best_b);
  }
  for (const auto& [a, b] : stitches) {
    if (!std::binary_search(added.begin(), added.end(), std::make_pair(a, b))) {
      added.emplace_back(a, b);
    }
  }
  for (const auto& [a, b] : added) builder.AddEdge(a, b);
  return std::move(builder).Finalize(/*require_connected=*/true);
}

}  // namespace uots

// Shortest-path primitives: full / bounded / multi-target Dijkstra.
//
// All variants run on the CSR RoadNetwork with a binary heap and lazy
// deletion. Repeated queries reuse a DistanceField whose version-tagged
// entries make Reset() O(1) instead of O(|V|).

#ifndef UOTS_NET_DIJKSTRA_H_
#define UOTS_NET_DIJKSTRA_H_

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "net/graph.h"

namespace uots {

/// Distance value for unreachable vertices.
inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// \brief Dense distance labels with O(1) reset via version tagging.
class DistanceField {
 public:
  explicit DistanceField(size_t n = 0) { Resize(n); }

  void Resize(size_t n) {
    dist_.assign(n, 0.0);
    version_.assign(n, 0);
    current_ = 1;
  }

  /// Invalidates all labels in O(1).
  void Reset() { ++current_; }

  double Get(VertexId v) const {
    return version_[v] == current_ ? dist_[v] : kInfDistance;
  }
  void Set(VertexId v, double d) {
    dist_[v] = d;
    version_[v] = current_;
  }
  bool IsSet(VertexId v) const { return version_[v] == current_; }
  size_t size() const { return dist_.size(); }

 private:
  std::vector<double> dist_;
  std::vector<uint32_t> version_;
  uint32_t current_ = 1;
};

/// \brief Full single-source shortest-path tree.
struct ShortestPathTree {
  std::vector<double> dist;      ///< dist[v] = sd(source, v); inf if unreachable
  std::vector<VertexId> parent;  ///< parent[v] on a shortest path; kInvalidVertex at source
};

/// Computes the complete shortest-path tree from `source`.
ShortestPathTree ComputeShortestPathTree(const RoadNetwork& g, VertexId source);

/// Network distance sd(s, t); kInfDistance if unreachable.
double ShortestPathDistance(const RoadNetwork& g, VertexId s, VertexId t);

/// Vertices of a shortest path s..t (inclusive); empty if unreachable.
std::vector<VertexId> ShortestPathVertices(const RoadNetwork& g, VertexId s,
                                           VertexId t);

/// \brief Result of a multi-target search.
struct NearestTargetResult {
  VertexId vertex = kInvalidVertex;  ///< nearest target, or kInvalidVertex
  double distance = kInfDistance;
};

/// \brief Reusable Dijkstra engine for repeated source queries on one graph.
///
/// The exact evaluator uses NearestOf() to compute d(o, tau) = the network
/// distance from a query location to the closest sample point of a
/// trajectory, stopping as soon as the first target vertex is settled.
class DijkstraEngine {
 public:
  explicit DijkstraEngine(const RoadNetwork& g);

  /// Distance from `source` to the nearest vertex with is_target[v] != 0.
  /// Optionally bounded: stops once the search radius exceeds `max_radius`.
  NearestTargetResult NearestOf(VertexId source,
                                const std::vector<uint8_t>& is_target,
                                double max_radius = kInfDistance);

  /// Runs SSSP from `source` out to `max_radius` and invokes
  /// visit(v, dist) for every settled vertex in nondecreasing distance.
  template <typename Visitor>
  void Explore(VertexId source, double max_radius, Visitor&& visit) {
    dist_.Reset();
    heap_ = {};
    dist_.Set(source, 0.0);
    heap_.push({0.0, source});
    while (!heap_.empty()) {
      const auto [d, v] = heap_.top();
      heap_.pop();
      if (d > dist_.Get(v)) continue;  // stale entry
      if (d > max_radius) break;
      visit(v, d);
      for (const auto& e : g_->Neighbors(v)) {
        const double nd = d + e.weight;
        if (nd < dist_.Get(e.to)) {
          dist_.Set(e.to, nd);
          heap_.push({nd, e.to});
        }
      }
    }
  }

 private:
  struct HeapEntry {
    double dist;
    VertexId v;
    bool operator>(const HeapEntry& o) const { return dist > o.dist; }
  };

  const RoadNetwork* g_;
  DistanceField dist_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
};

}  // namespace uots

#endif  // UOTS_NET_DIJKSTRA_H_

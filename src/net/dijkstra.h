// Shortest-path primitives: full / bounded / multi-target Dijkstra.
//
// All variants run on the CSR RoadNetwork with an indexed 4-ary heap
// (util/dary_heap.h): relaxations decrease keys in place, so the heap never
// holds stale entries and every pop settles a vertex. Repeated queries
// reuse a DistanceField and a heap whose version-tagged entries make
// Reset() O(1) instead of O(|V|).

#ifndef UOTS_NET_DIJKSTRA_H_
#define UOTS_NET_DIJKSTRA_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "net/graph.h"
#include "util/dary_heap.h"

namespace uots {

/// Distance value for unreachable vertices.
inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// \brief Dense distance labels with O(1) reset via version tagging.
///
/// Label and version tag live in one 16-byte slot so a probe (the hottest
/// read in every relaxation loop) touches a single cache line instead of
/// two parallel arrays.
class DistanceField {
 public:
  explicit DistanceField(size_t n = 0) { Resize(n); }

  void Resize(size_t n) {
    slots_.assign(n, Slot{0.0, 0});
    current_ = 1;
  }

  /// Invalidates all labels in O(1).
  void Reset() { ++current_; }

  double Get(VertexId v) const {
    const Slot& s = slots_[v];
    return s.version == current_ ? s.dist : kInfDistance;
  }
  void Set(VertexId v, double d) {
    slots_[v] = Slot{d, current_};
  }
  bool IsSet(VertexId v) const { return slots_[v].version == current_; }
  size_t size() const { return slots_.size(); }

  /// Hints the cache that slot `v` is about to be probed. Relaxation loops
  /// issue this for every neighbor before the first probe so the (random
  /// access, usually missing) label loads overlap instead of serializing.
  void Prefetch(VertexId v) const { __builtin_prefetch(&slots_[v]); }

 private:
  struct Slot {
    double dist;
    uint32_t version;
  };

  std::vector<Slot> slots_;
  uint32_t current_ = 1;
};

/// \brief Full single-source shortest-path tree.
struct ShortestPathTree {
  std::vector<double> dist;      ///< dist[v] = sd(source, v); inf if unreachable
  std::vector<VertexId> parent;  ///< parent[v] on a shortest path; kInvalidVertex at source
};

/// Computes the complete shortest-path tree from `source`.
ShortestPathTree ComputeShortestPathTree(const RoadNetwork& g, VertexId source);

/// Network distance sd(s, t); kInfDistance if unreachable.
double ShortestPathDistance(const RoadNetwork& g, VertexId s, VertexId t);

/// Vertices of a shortest path s..t (inclusive); empty if unreachable.
std::vector<VertexId> ShortestPathVertices(const RoadNetwork& g, VertexId s,
                                           VertexId t);

/// \brief Result of a multi-target search.
struct NearestTargetResult {
  VertexId vertex = kInvalidVertex;  ///< nearest target, or kInvalidVertex
  double distance = kInfDistance;
};

/// \brief Reusable Dijkstra engine for repeated source queries on one graph.
///
/// The exact evaluator uses NearestOf() to compute d(o, tau) = the network
/// distance from a query location to the closest sample point of a
/// trajectory, stopping as soon as the first target vertex is settled.
class DijkstraEngine {
 public:
  explicit DijkstraEngine(const RoadNetwork& g);

  /// Distance from `source` to the nearest vertex with is_target[v] != 0.
  /// Optionally bounded: stops once the search radius exceeds `max_radius`.
  NearestTargetResult NearestOf(VertexId source,
                                const std::vector<uint8_t>& is_target,
                                double max_radius = kInfDistance);

  /// Runs SSSP from `source` out to `max_radius` and invokes
  /// visit(v, dist) for every settled vertex in nondecreasing distance.
  template <typename Visitor>
  void Explore(VertexId source, double max_radius, Visitor&& visit) {
    dist_.Reset();
    heap_.Reset();
    dist_.Set(source, 0.0);
    heap_.Push(source, 0.0);
    while (!heap_.empty()) {
      const auto [d, v] = heap_.Pop();
      if (d > max_radius) break;
      visit(v, d);
      const auto neighbors = g_->Neighbors(v);
      for (const auto& e : neighbors) dist_.Prefetch(e.to);
      for (const auto& e : neighbors) {
        const double old = dist_.Get(e.to);
        const double nd = d + e.weight;
        if (nd < old) {
          dist_.Set(e.to, nd);
          // Finite improvable label => queued; infinite => first visit.
          if (old == kInfDistance) {
            heap_.Push(e.to, nd);
          } else {
            heap_.DecreaseKey(e.to, nd);
          }
        }
      }
    }
  }

 private:
  const RoadNetwork* g_;
  DistanceField dist_;
  VertexHeap heap_;
};

}  // namespace uots

#endif  // UOTS_NET_DIJKSTRA_H_

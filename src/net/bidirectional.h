// Bidirectional Dijkstra for point-to-point distances.
//
// Meets in the middle: forward search from s and backward search from t
// (identical on an undirected network) alternate by smaller frontier; the
// search stops when the sum of both radii exceeds the best connection seen.
// Settles ~half the vertices of unidirectional Dijkstra on road networks —
// benchmarked against A*/ALT in bench_micro. Both frontiers run on indexed
// 4-ary heaps, so every pop settles a vertex (no stale entries to skip and
// no separate settled bitmaps to maintain).

#ifndef UOTS_NET_BIDIRECTIONAL_H_
#define UOTS_NET_BIDIRECTIONAL_H_

#include "net/dijkstra.h"
#include "net/graph.h"
#include "util/dary_heap.h"

namespace uots {

/// \brief Reusable bidirectional point-to-point engine for one graph.
class BidirectionalDijkstra {
 public:
  explicit BidirectionalDijkstra(const RoadNetwork& g);

  /// Network distance sd(s, t); kInfDistance if unreachable.
  double Distance(VertexId s, VertexId t);

  /// Vertices settled by the last Distance() call (search effort).
  int64_t last_settled() const { return last_settled_; }

 private:
  const RoadNetwork* g_;
  DistanceField fwd_;
  DistanceField bwd_;
  VertexHeap fwd_heap_;
  VertexHeap bwd_heap_;
  int64_t last_settled_ = 0;
};

}  // namespace uots

#endif  // UOTS_NET_BIDIRECTIONAL_H_

// Synthetic road-network generators.
//
// The UOTS paper evaluates on the Beijing Road Network (ring-radial
// topology, ~28k vertices) and a New-York-style network (grid topology).
// Neither dataset ships with this repository, so the generators below
// produce networks with the same topological character and scale. The
// properties the search algorithms are sensitive to — local connectivity,
// meter-scale edge weights, planarity, bounded degree — are preserved; see
// DESIGN.md §5 for the substitution rationale.

#ifndef UOTS_NET_GENERATORS_H_
#define UOTS_NET_GENERATORS_H_

#include <cstdint>

#include "net/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace uots {

/// \brief Parameters for the perturbed-grid ("Manhattan") generator.
struct GridNetworkOptions {
  int rows = 100;
  int cols = 100;
  /// Distance between adjacent intersections, meters.
  double spacing_m = 150.0;
  /// Max positional jitter as a fraction of spacing (0 = perfect grid).
  double jitter = 0.25;
  /// Fraction of non-spanning-tree edges removed (road discontinuities).
  double removal_rate = 0.10;
  uint64_t seed = 1;
};

/// Generates a Manhattan-style perturbed grid. Always connected: a random
/// spanning tree of the grid is kept, only surplus edges are removed.
Result<RoadNetwork> MakeGridNetwork(const GridNetworkOptions& opts);

/// \brief Parameters for the ring-radial ("Beijing") generator.
struct RingRadialNetworkOptions {
  /// Number of concentric ring roads.
  int rings = 60;
  /// Vertices on the innermost ring; outer rings scale with circumference.
  int inner_ring_vertices = 12;
  /// Radial distance between consecutive rings, meters.
  double ring_spacing_m = 160.0;
  /// Fraction of ring vertices that carry a radial connection inward.
  double radial_rate = 0.35;
  /// Max positional jitter as a fraction of ring spacing.
  double jitter = 0.2;
  uint64_t seed = 2;
};

/// Generates a ring-radial network (concentric ring roads + radial spokes
/// + a centre), the Beijing-like topology. Connected by construction.
Result<RoadNetwork> MakeRingRadialNetwork(const RingRadialNetworkOptions& opts);

/// \brief Parameters for the random-geometric generator.
struct RandomGeometricOptions {
  int num_vertices = 2000;
  /// Side of the square area, meters.
  double extent_m = 10000.0;
  /// Neighbors considered per vertex.
  int k_nearest = 4;
  uint64_t seed = 3;
};

/// Generates a random geometric graph: uniform points wired to their
/// k-nearest neighbors, with extra edges added to guarantee connectivity.
/// Used for irregular suburban-style topologies and randomized testing.
Result<RoadNetwork> MakeRandomGeometricNetwork(const RandomGeometricOptions& opts);

}  // namespace uots

#endif  // UOTS_NET_GENERATORS_H_

#include "net/graph.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <unordered_set>
#include <vector>

namespace uots {

BBox RoadNetwork::Bounds() const {
  BBox box = BBox::Empty();
  for (const auto& p : positions_) box.Extend(p);
  if (positions_.empty()) box = BBox{0, 0, 0, 0};
  return box;
}

double RoadNetwork::TotalEdgeLength() const {
  double total = 0.0;
  for (const auto& e : adjacency_) total += e.weight;
  return total / 2.0;  // each undirected edge stored twice
}

MemoryBreakdown RoadNetwork::Memory() const {
  MemoryBreakdown m;
  m += positions_.Memory();
  m += offsets_.Memory();
  m += adjacency_.Memory();
  return m;
}

RoadNetwork RoadNetwork::FromColumns(ColumnVec<Point> positions,
                                     ColumnVec<uint64_t> offsets,
                                     ColumnVec<AdjacencyEntry> adjacency) {
  RoadNetwork g;
  g.positions_ = std::move(positions);
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  return g;
}

VertexId GraphBuilder::AddVertex(const Point& p) {
  positions_.push_back(p);
  return static_cast<VertexId>(positions_.size() - 1);
}

void GraphBuilder::AddEdge(VertexId a, VertexId b, double weight) {
  if (weight < 0.0 && a < positions_.size() && b < positions_.size()) {
    weight = EuclideanDistance(positions_[a], positions_[b]);
    // Degenerate coincident vertices still need a positive weight.
    if (weight <= 0.0) weight = 1e-3;
  }
  edges_.push_back(Edge{a, b, static_cast<float>(weight)});
}

Result<RoadNetwork> GraphBuilder::Finalize(bool require_connected) && {
  const size_t n = positions_.size();
  if (n == 0) return Status::InvalidArgument("graph has no vertices");

  std::unordered_set<uint64_t> seen;
  seen.reserve(edges_.size() * 2);
  for (const auto& e : edges_) {
    if (e.a >= n || e.b >= n) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (e.a == e.b) return Status::InvalidArgument("self loop");
    if (!(e.weight > 0.0f)) {
      return Status::InvalidArgument("non-positive edge weight");
    }
    const uint64_t key = (static_cast<uint64_t>(std::min(e.a, e.b)) << 32) |
                         std::max(e.a, e.b);
    if (!seen.insert(key).second) {
      return Status::InvalidArgument("duplicate edge " + std::to_string(e.a) +
                                     "-" + std::to_string(e.b));
    }
  }

  std::vector<uint64_t> offsets(n + 1, 0);
  for (const auto& e : edges_) {
    ++offsets[e.a + 1];
    ++offsets[e.b + 1];
  }
  for (size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<AdjacencyEntry> adjacency(edges_.size() * 2);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& e : edges_) {
    adjacency[cursor[e.a]++] = AdjacencyEntry{e.b, e.weight};
    adjacency[cursor[e.b]++] = AdjacencyEntry{e.a, e.weight};
  }
  RoadNetwork g;
  g.positions_ = std::move(positions_);
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);

  if (require_connected && !IsConnected(g)) {
    return Status::InvalidArgument("graph is not connected");
  }
  return g;
}

bool IsConnected(const RoadNetwork& g) {
  const size_t n = g.NumVertices();
  if (n == 0) return false;
  std::vector<bool> visited(n, false);
  std::vector<VertexId> stack = {0};
  visited[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const auto& e : g.Neighbors(v)) {
      if (!visited[e.to]) {
        visited[e.to] = true;
        ++count;
        stack.push_back(e.to);
      }
    }
  }
  return count == n;
}

}  // namespace uots

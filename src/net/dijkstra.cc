#include "net/dijkstra.h"

#include <algorithm>
#include <cassert>

namespace uots {

ShortestPathTree ComputeShortestPathTree(const RoadNetwork& g, VertexId source) {
  const size_t n = g.NumVertices();
  assert(source < n);
  ShortestPathTree out;
  out.dist.assign(n, kInfDistance);
  out.parent.assign(n, kInvalidVertex);
  VertexHeap heap(n);
  out.dist[source] = 0.0;
  heap.Push(source, 0.0);
  while (!heap.empty()) {
    const auto [d, v] = heap.Pop();
    const auto neighbors = g.Neighbors(v);
    for (const auto& e : neighbors) __builtin_prefetch(&out.dist[e.to]);
    for (const auto& e : neighbors) {
      const double nd = d + e.weight;
      const double old = out.dist[e.to];
      if (nd < old) {
        out.dist[e.to] = nd;
        out.parent[e.to] = v;
        // Finite improvable label => e.to is queued (settled labels are
        // final under nonnegative weights); infinite => first visit.
        if (old == kInfDistance) {
          heap.Push(e.to, nd);
        } else {
          heap.DecreaseKey(e.to, nd);
        }
      }
    }
  }
  return out;
}

double ShortestPathDistance(const RoadNetwork& g, VertexId s, VertexId t) {
  assert(s < g.NumVertices() && t < g.NumVertices());
  if (s == t) return 0.0;
  DistanceField dist(g.NumVertices());
  VertexHeap heap(g.NumVertices());
  dist.Set(s, 0.0);
  heap.Push(s, 0.0);
  while (!heap.empty()) {
    const auto [d, v] = heap.Pop();
    if (v == t) return d;
    const auto neighbors = g.Neighbors(v);
    for (const auto& e : neighbors) dist.Prefetch(e.to);
    for (const auto& e : neighbors) {
      const double old = dist.Get(e.to);
      const double nd = d + e.weight;
      if (nd < old) {
        dist.Set(e.to, nd);
        if (old == kInfDistance) {
          heap.Push(e.to, nd);
        } else {
          heap.DecreaseKey(e.to, nd);
        }
      }
    }
  }
  return kInfDistance;
}

std::vector<VertexId> ShortestPathVertices(const RoadNetwork& g, VertexId s,
                                           VertexId t) {
  const ShortestPathTree tree = ComputeShortestPathTree(g, s);
  if (tree.dist[t] == kInfDistance) return {};
  std::vector<VertexId> path;
  for (VertexId v = t; v != kInvalidVertex; v = tree.parent[v]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  assert(path.front() == s);
  return path;
}

DijkstraEngine::DijkstraEngine(const RoadNetwork& g)
    : g_(&g), dist_(g.NumVertices()), heap_(g.NumVertices()) {}

NearestTargetResult DijkstraEngine::NearestOf(
    VertexId source, const std::vector<uint8_t>& is_target, double max_radius) {
  assert(is_target.size() == g_->NumVertices());
  NearestTargetResult out;
  dist_.Reset();
  heap_.Reset();
  dist_.Set(source, 0.0);
  heap_.Push(source, 0.0);
  while (!heap_.empty()) {
    const auto [d, v] = heap_.Pop();
    if (d > max_radius) break;
    if (is_target[v]) {
      out.vertex = v;
      out.distance = d;
      return out;
    }
    const auto neighbors = g_->Neighbors(v);
    for (const auto& e : neighbors) dist_.Prefetch(e.to);
    for (const auto& e : neighbors) {
      const double old = dist_.Get(e.to);
      const double nd = d + e.weight;
      if (nd < old) {
        dist_.Set(e.to, nd);
        if (old == kInfDistance) {
          heap_.Push(e.to, nd);
        } else {
          heap_.DecreaseKey(e.to, nd);
        }
      }
    }
  }
  return out;
}

}  // namespace uots

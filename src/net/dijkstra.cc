#include "net/dijkstra.h"

#include <algorithm>
#include <cassert>

namespace uots {

namespace {

struct HeapEntry {
  double dist;
  VertexId v;
  bool operator>(const HeapEntry& o) const { return dist > o.dist; }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

ShortestPathTree ComputeShortestPathTree(const RoadNetwork& g, VertexId source) {
  const size_t n = g.NumVertices();
  assert(source < n);
  ShortestPathTree out;
  out.dist.assign(n, kInfDistance);
  out.parent.assign(n, kInvalidVertex);
  MinHeap heap;
  out.dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > out.dist[v]) continue;
    for (const auto& e : g.Neighbors(v)) {
      const double nd = d + e.weight;
      if (nd < out.dist[e.to]) {
        out.dist[e.to] = nd;
        out.parent[e.to] = v;
        heap.push({nd, e.to});
      }
    }
  }
  return out;
}

double ShortestPathDistance(const RoadNetwork& g, VertexId s, VertexId t) {
  assert(s < g.NumVertices() && t < g.NumVertices());
  if (s == t) return 0.0;
  DistanceField dist(g.NumVertices());
  MinHeap heap;
  dist.Set(s, 0.0);
  heap.push({0.0, s});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist.Get(v)) continue;
    if (v == t) return d;
    for (const auto& e : g.Neighbors(v)) {
      const double nd = d + e.weight;
      if (nd < dist.Get(e.to)) {
        dist.Set(e.to, nd);
        heap.push({nd, e.to});
      }
    }
  }
  return kInfDistance;
}

std::vector<VertexId> ShortestPathVertices(const RoadNetwork& g, VertexId s,
                                           VertexId t) {
  const ShortestPathTree tree = ComputeShortestPathTree(g, s);
  if (tree.dist[t] == kInfDistance) return {};
  std::vector<VertexId> path;
  for (VertexId v = t; v != kInvalidVertex; v = tree.parent[v]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  assert(path.front() == s);
  return path;
}

DijkstraEngine::DijkstraEngine(const RoadNetwork& g)
    : g_(&g), dist_(g.NumVertices()) {}

NearestTargetResult DijkstraEngine::NearestOf(
    VertexId source, const std::vector<uint8_t>& is_target, double max_radius) {
  assert(is_target.size() == g_->NumVertices());
  NearestTargetResult out;
  dist_.Reset();
  heap_ = {};
  dist_.Set(source, 0.0);
  heap_.push({0.0, source});
  while (!heap_.empty()) {
    const auto [d, v] = heap_.top();
    heap_.pop();
    if (d > dist_.Get(v)) continue;
    if (d > max_radius) break;
    if (is_target[v]) {
      out.vertex = v;
      out.distance = d;
      return out;
    }
    for (const auto& e : g_->Neighbors(v)) {
      const double nd = d + e.weight;
      if (nd < dist_.Get(e.to)) {
        dist_.Set(e.to, nd);
        heap_.push({nd, e.to});
      }
    }
  }
  return out;
}

}  // namespace uots

#include "net/bidirectional.h"

#include <algorithm>
#include <cassert>

namespace uots {

BidirectionalDijkstra::BidirectionalDijkstra(const RoadNetwork& g)
    : g_(&g),
      fwd_(g.NumVertices()),
      bwd_(g.NumVertices()),
      fwd_heap_(g.NumVertices()),
      bwd_heap_(g.NumVertices()) {}

double BidirectionalDijkstra::Distance(VertexId s, VertexId t) {
  assert(s < g_->NumVertices() && t < g_->NumVertices());
  last_settled_ = 0;
  if (s == t) return 0.0;
  fwd_.Reset();
  bwd_.Reset();
  fwd_heap_.Reset();
  bwd_heap_.Reset();
  fwd_.Set(s, 0.0);
  bwd_.Set(t, 0.0);
  fwd_heap_.Push(s, 0.0);
  bwd_heap_.Push(t, 0.0);
  double best = kInfDistance;
  double fradius = 0.0, bradius = 0.0;

  // Settles one vertex of the given side; updates `best` through edges
  // crossing into the other side's labeled region.
  const auto step = [&](VertexHeap& heap, DistanceField& dist,
                        const DistanceField& other, double* radius) {
    if (heap.empty()) return false;
    const auto [d, v] = heap.Pop();
    *radius = d;
    ++last_settled_;
    const auto neighbors = g_->Neighbors(v);
    for (const auto& e : neighbors) dist.Prefetch(e.to);
    for (const auto& e : neighbors) {
      const double old = dist.Get(e.to);
      const double nd = d + e.weight;
      if (nd < old) {
        dist.Set(e.to, nd);
        // Finite improvable label => queued; infinite => first visit.
        if (old == kInfDistance) {
          heap.Push(e.to, nd);
        } else {
          heap.DecreaseKey(e.to, nd);
        }
      }
      // Connection through edge (v, e.to) into the other frontier.
      const double od = other.Get(e.to);
      if (od != kInfDistance) best = std::min(best, nd + od);
    }
    return true;
  };

  for (;;) {
    // Termination: no shorter path can cross once the two settled radii
    // together exceed the best connection found.
    if (best <= fradius + bradius) break;
    // Advance the side with the smaller radius (balanced meet point).
    const bool forward = fradius <= bradius;
    const bool progressed = forward ? step(fwd_heap_, fwd_, bwd_, &fradius)
                                    : step(bwd_heap_, bwd_, fwd_, &bradius);
    if (!progressed) {
      // This side is exhausted; if the other also cannot improve, stop.
      const bool other_progressed =
          forward ? step(bwd_heap_, bwd_, fwd_, &bradius)
                  : step(fwd_heap_, fwd_, bwd_, &fradius);
      if (!other_progressed) break;
    }
  }
  return best;
}

}  // namespace uots

#include "net/bidirectional.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace uots {

namespace {

struct HeapEntry {
  double dist;
  VertexId v;
  bool operator>(const HeapEntry& o) const { return dist > o.dist; }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

BidirectionalDijkstra::BidirectionalDijkstra(const RoadNetwork& g)
    : g_(&g),
      fwd_(g.NumVertices()),
      bwd_(g.NumVertices()),
      fwd_settled_(g.NumVertices()),
      bwd_settled_(g.NumVertices()) {}

double BidirectionalDijkstra::Distance(VertexId s, VertexId t) {
  assert(s < g_->NumVertices() && t < g_->NumVertices());
  last_settled_ = 0;
  if (s == t) return 0.0;
  fwd_.Reset();
  bwd_.Reset();
  fwd_settled_.Reset();
  bwd_settled_.Reset();
  MinHeap fheap, bheap;
  fwd_.Set(s, 0.0);
  bwd_.Set(t, 0.0);
  fheap.push({0.0, s});
  bheap.push({0.0, t});
  double best = kInfDistance;
  double fradius = 0.0, bradius = 0.0;

  // Settles one vertex of the given side; updates `best` through edges
  // crossing into the other side's labeled region.
  const auto step = [&](MinHeap& heap, DistanceField& dist,
                        DistanceField& settled, const DistanceField& other,
                        double* radius) {
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (settled.IsSet(v)) continue;  // stale
      settled.Set(v, 1.0);
      *radius = d;
      ++last_settled_;
      for (const auto& e : g_->Neighbors(v)) {
        const double nd = d + e.weight;
        if (nd < dist.Get(e.to)) {
          dist.Set(e.to, nd);
          heap.push({nd, e.to});
        }
        // Connection through edge (v, e.to) into the other frontier.
        const double od = other.Get(e.to);
        if (od != kInfDistance) best = std::min(best, nd + od);
      }
      return true;
    }
    return false;
  };

  for (;;) {
    // Termination: no shorter path can cross once the two settled radii
    // together exceed the best connection found.
    if (best <= fradius + bradius) break;
    // Advance the side with the smaller radius (balanced meet point).
    const bool forward = fradius <= bradius;
    const bool progressed =
        forward ? step(fheap, fwd_, fwd_settled_, bwd_, &fradius)
                : step(bheap, bwd_, bwd_settled_, fwd_, &bradius);
    if (!progressed) {
      // This side is exhausted; if the other also cannot improve, stop.
      const bool other_progressed =
          forward ? step(bheap, bwd_, bwd_settled_, fwd_, &bradius)
                  : step(fheap, fwd_, fwd_settled_, bwd_, &fradius);
      if (!other_progressed) break;
    }
  }
  return best;
}

}  // namespace uots

#include "net/expansion.h"

#include <cassert>

namespace uots {

NetworkExpansion::NetworkExpansion(const RoadNetwork& g)
    : g_(&g), dist_(g.NumVertices()), settled_(g.NumVertices()) {}

void NetworkExpansion::Reset(VertexId source) {
  assert(source < g_->NumVertices());
  dist_.Reset();
  settled_.Reset();
  heap_ = {};
  source_ = source;
  radius_ = 0.0;
  exhausted_ = false;
  settled_count_ = 0;
  heap_pops_ = 0;
  dist_.Set(source, 0.0);
  heap_.push({0.0, source});
}

bool NetworkExpansion::Step(VertexId* v_out, double* dist_out) {
  assert(source_ != kInvalidVertex && "Reset() must be called first");
  while (!heap_.empty()) {
    const auto [d, v] = heap_.top();
    heap_.pop();
    ++heap_pops_;
    if (settled_.IsSet(v)) continue;  // stale heap entry
    settled_.Set(v, 1.0);
    radius_ = d;
    ++settled_count_;
    for (const auto& e : g_->Neighbors(v)) {
      const double nd = d + e.weight;
      if (nd < dist_.Get(e.to)) {
        dist_.Set(e.to, nd);
        heap_.push({nd, e.to});
      }
    }
    *v_out = v;
    *dist_out = d;
    return true;
  }
  exhausted_ = true;
  return false;
}

}  // namespace uots

#include "net/expansion.h"

#include <cassert>

namespace uots {

NetworkExpansion::NetworkExpansion(const RoadNetwork& g)
    : g_(&g), dist_(g.NumVertices()), heap_(g.NumVertices()) {}

void NetworkExpansion::Reset(VertexId source) {
  assert(source < g_->NumVertices());
  dist_.Reset();
  heap_.Reset();
  source_ = source;
  radius_ = 0.0;
  exhausted_ = false;
  settled_count_ = 0;
  heap_pops_ = 0;
  heap_pushes_ = 0;
  heap_decreases_ = 0;
  dist_.Set(source, 0.0);
  heap_.Push(source, 0.0);
  ++heap_pushes_;
}

bool NetworkExpansion::Step(VertexId* v_out, double* dist_out) {
  assert(source_ != kInvalidVertex && "Reset() must be called first");
  if (heap_.empty()) {
    exhausted_ = true;
    return false;
  }
  const auto [d, v] = heap_.Pop();
  ++heap_pops_;
  radius_ = d;
  ++settled_count_;
  const auto neighbors = g_->Neighbors(v);
  for (const auto& e : neighbors) dist_.Prefetch(e.to);
  for (const auto& e : neighbors) {
    const double old = dist_.Get(e.to);
    const double nd = d + e.weight;
    if (nd < old) {
      dist_.Set(e.to, nd);
      // An improvable finite label means e.to is on the frontier: a settled
      // vertex's label is final under nonnegative weights (nd >= d >= it),
      // so the infinite/finite split decides insert vs decrease without a
      // separate heap membership probe.
      if (old == kInfDistance) {
        heap_.Push(e.to, nd);
        ++heap_pushes_;
      } else {
        heap_.DecreaseKey(e.to, nd);
        ++heap_decreases_;
      }
    }
  }
  *v_out = v;
  *dist_out = d;
  return true;
}

}  // namespace uots

// Road-network graph: connected, undirected, edge-weighted, CSR-compressed.
//
// Matches the paper family's model G = (V, E, F, W): vertices are road
// intersections with planar positions (F), edges are road segments with
// length weights in meters (W). Trajectory sample points are assumed
// map-matched onto vertices (points on edges can be modeled by splitting the
// edge with GraphBuilder::SplitEdge).

#ifndef UOTS_NET_GRAPH_H_
#define UOTS_NET_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geo/point.h"
#include "util/column_vec.h"
#include "util/status.h"

namespace uots {

/// Vertex identifier; dense in [0, num_vertices).
using VertexId = uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// \brief One directed half of an undirected road segment in the CSR
/// adjacency array.
struct AdjacencyEntry {
  VertexId to;
  float weight;  ///< Segment length in meters; float halves the CSR footprint.
};

class GraphBuilder;

/// \brief Immutable CSR road network. Construct via GraphBuilder.
class RoadNetwork {
 public:
  size_t NumVertices() const { return positions_.size(); }
  /// Number of undirected edges.
  size_t NumEdges() const { return adjacency_.size() / 2; }

  /// Planar position of vertex v (meters).
  const Point& PositionOf(VertexId v) const { return positions_[v]; }
  std::span<const Point> positions() const { return positions_.span(); }

  /// Outgoing adjacency of v (both directions of each undirected edge appear).
  std::span<const AdjacencyEntry> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  size_t DegreeOf(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Raw CSR arrays (snapshot persistence; see src/storage/).
  std::span<const uint64_t> offsets() const { return offsets_.span(); }
  std::span<const AdjacencyEntry> adjacency() const {
    return adjacency_.span();
  }

  /// \brief Reassembles a network from prebuilt CSR columns (e.g. views over
  /// a validated snapshot section) without re-running GraphBuilder checks.
  /// The caller guarantees structural validity and backing-byte lifetime.
  static RoadNetwork FromColumns(ColumnVec<Point> positions,
                                 ColumnVec<uint64_t> offsets,
                                 ColumnVec<AdjacencyEntry> adjacency);

  /// Bounding box of all vertex positions.
  BBox Bounds() const;

  /// Sum of all undirected edge lengths, in meters.
  double TotalEdgeLength() const;

  /// Approximate resident memory of the CSR structures, in bytes.
  size_t MemoryUsage() const { return Memory().total(); }
  /// Same, split into heap vs snapshot-mapped bytes.
  MemoryBreakdown Memory() const;

 private:
  friend class GraphBuilder;
  RoadNetwork() = default;

  ColumnVec<Point> positions_;
  ColumnVec<uint64_t> offsets_;  // size NumVertices()+1
  ColumnVec<AdjacencyEntry> adjacency_;
};

/// \brief Accumulates vertices/edges, then finalizes into a RoadNetwork.
class GraphBuilder {
 public:
  /// Adds a vertex at `p` and returns its id.
  VertexId AddVertex(const Point& p);

  /// Adds an undirected edge; weight defaults to the Euclidean length.
  /// Self-loops and repeated edges are rejected at Finalize time.
  void AddEdge(VertexId a, VertexId b, double weight = -1.0);

  size_t NumVertices() const { return positions_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// Validates and builds the CSR network. Fails on self loops, duplicate or
  /// dangling edges, non-positive weights, or a disconnected graph when
  /// `require_connected` is set.
  Result<RoadNetwork> Finalize(bool require_connected = true) &&;

 private:
  struct Edge {
    VertexId a;
    VertexId b;
    float weight;
  };

  std::vector<Point> positions_;
  std::vector<Edge> edges_;
};

/// Returns true if the network is connected (BFS from vertex 0).
bool IsConnected(const RoadNetwork& g);

}  // namespace uots

#endif  // UOTS_NET_GRAPH_H_

// Planar geometry primitives.
//
// Synthetic networks live in a local planar coordinate system measured in
// meters, which keeps the network generators and the Euclidean baseline free
// of geodesic corrections. A helper is provided to project lon/lat input
// (e.g. OSM extracts) into this system.

#ifndef UOTS_GEO_POINT_H_
#define UOTS_GEO_POINT_H_

#include <cmath>

namespace uots {

/// \brief A point in the local planar frame; coordinates in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points, in meters.
inline double EuclideanDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared Euclidean distance; avoids the sqrt on comparison-only paths.
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// \brief Axis-aligned bounding box.
struct BBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }

  /// Expands the box to include `p`.
  void Extend(const Point& p) {
    if (p.x < min_x) min_x = p.x;
    if (p.x > max_x) max_x = p.x;
    if (p.y < min_y) min_y = p.y;
    if (p.y > max_y) max_y = p.y;
  }

  /// Minimum Euclidean distance from `p` to the box (0 if inside).
  double MinDistance(const Point& p) const {
    const double dx = p.x < min_x ? min_x - p.x : (p.x > max_x ? p.x - max_x : 0.0);
    const double dy = p.y < min_y ? min_y - p.y : (p.y > max_y ? p.y - max_y : 0.0);
    return std::sqrt(dx * dx + dy * dy);
  }

  /// A box that Extend() can grow from (inverted infinite box).
  static BBox Empty() {
    constexpr double kInf = 1e300;
    return BBox{kInf, kInf, -kInf, -kInf};
  }
};

/// Equirectangular projection of (lon, lat) degrees into local meters around
/// a reference latitude. Adequate at city scale (<0.5% error over ~50 km).
inline Point ProjectLonLat(double lon_deg, double lat_deg, double ref_lat_deg) {
  constexpr double kMetersPerDegree = 111320.0;
  constexpr double kPi = 3.14159265358979323846;
  const double cos_ref = std::cos(ref_lat_deg * kPi / 180.0);
  return Point{lon_deg * kMetersPerDegree * cos_ref, lat_deg * kMetersPerDegree};
}

}  // namespace uots

#endif  // UOTS_GEO_POINT_H_

// Uniform grid over planar points.
//
// Powers the Euclidean-space baseline ("EU"): incremental ring expansion
// around a query point yields points in (approximately) increasing Euclidean
// distance, the Euclidean analogue of network expansion. Also used by the
// trip generator for hotspot nearest-vertex lookups.

#ifndef UOTS_GEO_GRID_INDEX_H_
#define UOTS_GEO_GRID_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geo/point.h"

namespace uots {

/// \brief Uniform grid index over a fixed set of points.
class GridIndex {
 public:
  /// Builds a grid over `points` with roughly `target_per_cell` points/cell.
  GridIndex(std::vector<Point> points, double target_per_cell = 8.0);
  /// Same, copying out of a borrowed span (e.g. RoadNetwork::positions()).
  explicit GridIndex(std::span<const Point> points,
                     double target_per_cell = 8.0);

  /// Returns the index of the point nearest to `q` (exact), or -1 if empty.
  int64_t Nearest(const Point& q) const;

  /// Appends the indices of all points within `radius` of `q` to `out`.
  void WithinRadius(const Point& q, double radius,
                    std::vector<int64_t>* out) const;

  const std::vector<Point>& points() const { return points_; }
  const BBox& bounds() const { return bounds_; }
  double cell_size() const { return cell_size_; }

 private:
  void Build(double target_per_cell);
  int CellX(double x) const;
  int CellY(double y) const;
  const std::vector<int64_t>& Cell(int cx, int cy) const;

  std::vector<Point> points_;
  BBox bounds_;
  double cell_size_ = 1.0;
  int nx_ = 1;
  int ny_ = 1;
  // CSR layout: cell (cx, cy) owns entries_[offsets_[cy*nx_+cx] ..
  // offsets_[cy*nx_+cx+1]).
  std::vector<int64_t> offsets_;
  std::vector<int64_t> entries_;
};

}  // namespace uots

#endif  // UOTS_GEO_GRID_INDEX_H_

#include "geo/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace uots {

GridIndex::GridIndex(std::vector<Point> points, double target_per_cell)
    : points_(std::move(points)) {
  Build(target_per_cell);
}

GridIndex::GridIndex(std::span<const Point> points, double target_per_cell)
    : points_(points.begin(), points.end()) {
  Build(target_per_cell);
}

void GridIndex::Build(double target_per_cell) {
  bounds_ = BBox::Empty();
  for (const auto& p : points_) bounds_.Extend(p);
  if (points_.empty()) {
    bounds_ = BBox{0, 0, 0, 0};
  }
  const double w = std::max(bounds_.Width(), 1.0);
  const double h = std::max(bounds_.Height(), 1.0);
  const double cells =
      std::max(1.0, static_cast<double>(points_.size()) / target_per_cell);
  // Choose a square-ish grid with `cells` cells over a w x h area.
  cell_size_ = std::sqrt(w * h / cells);
  nx_ = std::max(1, static_cast<int>(std::ceil(w / cell_size_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(h / cell_size_)));

  // Counting sort of points into cells (CSR).
  const size_t num_cells = static_cast<size_t>(nx_) * ny_;
  offsets_.assign(num_cells + 1, 0);
  std::vector<int64_t> cell_of(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    const int cx = CellX(points_[i].x);
    const int cy = CellY(points_[i].y);
    cell_of[i] = static_cast<int64_t>(cy) * nx_ + cx;
    ++offsets_[cell_of[i] + 1];
  }
  for (size_t c = 1; c <= num_cells; ++c) offsets_[c] += offsets_[c - 1];
  entries_.resize(points_.size());
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (size_t i = 0; i < points_.size(); ++i) {
    entries_[cursor[cell_of[i]]++] = static_cast<int64_t>(i);
  }
}

int GridIndex::CellX(double x) const {
  int c = static_cast<int>((x - bounds_.min_x) / cell_size_);
  return std::clamp(c, 0, nx_ - 1);
}

int GridIndex::CellY(double y) const {
  int c = static_cast<int>((y - bounds_.min_y) / cell_size_);
  return std::clamp(c, 0, ny_ - 1);
}

int64_t GridIndex::Nearest(const Point& q) const {
  if (points_.empty()) return -1;
  const int qx = CellX(q.x);
  const int qy = CellY(q.y);
  int64_t best = -1;
  double best_d2 = std::numeric_limits<double>::max();
  // Expand rings of cells until the closest possible point in the next ring
  // cannot beat the best found so far.
  const int max_ring = std::max(nx_, ny_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    if (best >= 0) {
      // Any point in ring r is at least (r-1)*cell_size_ away.
      const double ring_min = (ring - 1) * cell_size_;
      if (ring_min > 0 && ring_min * ring_min > best_d2) break;
    }
    for (int cy = qy - ring; cy <= qy + ring; ++cy) {
      if (cy < 0 || cy >= ny_) continue;
      for (int cx = qx - ring; cx <= qx + ring; ++cx) {
        if (cx < 0 || cx >= nx_) continue;
        // Only the ring boundary is new.
        if (ring > 0 && cx != qx - ring && cx != qx + ring && cy != qy - ring &&
            cy != qy + ring) {
          continue;
        }
        const int64_t cell = static_cast<int64_t>(cy) * nx_ + cx;
        for (int64_t e = offsets_[cell]; e < offsets_[cell + 1]; ++e) {
          const int64_t idx = entries_[e];
          const double d2 = SquaredDistance(points_[idx], q);
          if (d2 < best_d2) {
            best_d2 = d2;
            best = idx;
          }
        }
      }
    }
  }
  return best;
}

void GridIndex::WithinRadius(const Point& q, double radius,
                             std::vector<int64_t>* out) const {
  assert(out != nullptr);
  if (points_.empty() || radius < 0) return;
  const int cx0 = CellX(q.x - radius);
  const int cx1 = CellX(q.x + radius);
  const int cy0 = CellY(q.y - radius);
  const int cy1 = CellY(q.y + radius);
  const double r2 = radius * radius;
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const int64_t cell = static_cast<int64_t>(cy) * nx_ + cx;
      for (int64_t e = offsets_[cell]; e < offsets_[cell + 1]; ++e) {
        const int64_t idx = entries_[e];
        if (SquaredDistance(points_[idx], q) <= r2) out->push_back(idx);
      }
    }
  }
}

}  // namespace uots

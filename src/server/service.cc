#include "server/service.h"

#include <thread>
#include <utility>

#include "cache/query_key.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace uots {

UotsService::UotsService(std::shared_ptr<const TrajectoryDatabase> db,
                         const ServiceOptions& opts)
    : db_(std::move(db)), opts_(opts) {
  int threads = opts_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 2;
  }
  opts_.threads = threads;
  // The pool queue never exceeds max_inflight thanks to the admission
  // counter, but a matching bound documents (and enforces) the invariant.
  pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(threads),
                                       opts_.max_inflight);
  if (opts_.cache_max_entries > 0) {
    ResultCache::Options copts;
    copts.max_entries = opts_.cache_max_entries;
    copts.ttl_ms = opts_.cache_ttl_ms;
    copts.shards = opts_.cache_shards;
    result_cache_ = std::make_unique<ResultCache>(copts);
  }
}

UotsService::~UotsService() {
  BeginShutdown();
  Drain();
}

void UotsService::BeginShutdown() {
  shutting_down_.store(true, std::memory_order_relaxed);
}

void UotsService::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

UotsService::DbSnapshot UotsService::SnapshotDb() const {
  std::lock_guard<std::mutex> lock(db_mu_);
  return DbSnapshot{db_, db_version_.load(std::memory_order_relaxed)};
}

void UotsService::SwapDatabase(std::shared_ptr<const TrajectoryDatabase> db) {
  {
    std::lock_guard<std::mutex> lock(db_mu_);
    db_ = std::move(db);
    db_version_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Idle engines hold raw pointers into the retired base; flush them.
  // Executing engines are safe — their admission snapshot pins the old
  // database until release, where the version tag discards them.
  std::lock_guard<std::mutex> lock(engines_mu_);
  free_engines_.clear();
  free_trip_planners_.clear();
}

std::unique_ptr<SearchAlgorithm> UotsService::AcquireEngine(
    AlgorithmKind kind, const DbSnapshot& snap) {
  {
    std::lock_guard<std::mutex> lock(engines_mu_);
    for (size_t i = 0; i < free_engines_.size(); ++i) {
      if (free_engines_[i].kind == kind &&
          free_engines_[i].db_version == snap.version) {
        auto engine = std::move(free_engines_[i].engine);
        free_engines_.erase(free_engines_.begin() +
                            static_cast<ptrdiff_t>(i));
        return engine;
      }
    }
  }
  return CreateAlgorithm(*snap.db, kind, opts_.uots);
}

void UotsService::ReleaseEngine(AlgorithmKind kind, uint64_t db_version,
                                std::unique_ptr<SearchAlgorithm> engine) {
  engine->set_cancel(nullptr);  // never let a dead request's token linger
  std::lock_guard<std::mutex> lock(engines_mu_);
  // A swap may have happened while this engine executed; it references the
  // retired database, so it must not rejoin the pool. (Checked under
  // engines_mu_: SwapDatabase bumps the version before clearing the pool,
  // so a push racing the clear either sees the new version and drops, or
  // lands before the clear and is flushed by it.)
  if (db_version != db_version_.load(std::memory_order_acquire)) return;
  // Cap the pool at one idle engine per worker and per kind: at most
  // `threads` requests of a kind run concurrently, so extras could only
  // accumulate (e.g. after a burst that mixed algorithms) and pin scratch
  // memory forever. Beyond the cap the engine is simply destroyed.
  size_t same_kind = 0;
  for (const PooledEngine& p : free_engines_) {
    if (p.kind == kind) ++same_kind;
  }
  if (same_kind >= static_cast<size_t>(opts_.threads)) return;
  free_engines_.push_back(PooledEngine{kind, db_version, std::move(engine)});
}

std::unique_ptr<TripPlanner> UotsService::AcquireTripPlanner(
    const DbSnapshot& snap) {
  {
    std::lock_guard<std::mutex> lock(engines_mu_);
    for (size_t i = 0; i < free_trip_planners_.size(); ++i) {
      if (free_trip_planners_[i].db_version == snap.version) {
        auto planner = std::move(free_trip_planners_[i].planner);
        free_trip_planners_.erase(free_trip_planners_.begin() +
                                  static_cast<ptrdiff_t>(i));
        return planner;
      }
    }
  }
  return std::make_unique<TripPlanner>(*snap.db);
}

void UotsService::ReleaseTripPlanner(uint64_t db_version,
                                     std::unique_ptr<TripPlanner> planner) {
  planner->set_cancel(nullptr);
  std::lock_guard<std::mutex> lock(engines_mu_);
  // Same swap-race reasoning as ReleaseEngine: a stale-version planner
  // references the retired database and must not rejoin the pool.
  if (db_version != db_version_.load(std::memory_order_acquire)) return;
  if (free_trip_planners_.size() >= static_cast<size_t>(opts_.threads)) {
    return;
  }
  free_trip_planners_.push_back(
      PooledTripPlanner{db_version, std::move(planner)});
}

size_t UotsService::pooled_trip_planners() const {
  std::lock_guard<std::mutex> lock(engines_mu_);
  return free_trip_planners_.size();
}

size_t UotsService::pooled_engines(AlgorithmKind kind) const {
  std::lock_guard<std::mutex> lock(engines_mu_);
  size_t n = 0;
  for (const PooledEngine& p : free_engines_) {
    if (p.kind == kind) ++n;
  }
  return n;
}

size_t UotsService::pooled_engines() const {
  std::lock_guard<std::mutex> lock(engines_mu_);
  return free_engines_.size();
}

std::shared_ptr<const CachedResult> UotsService::CacheLookup(
    const UotsQuery& query, AlgorithmKind kind, std::string* key_out) {
  if (result_cache_ == nullptr) {
    key_out->clear();
    return nullptr;
  }
  WallTimer timer;
  // Salt with the *live* fingerprint (base identity mixed with the delta
  // generation): every applied ingest batch moves the salt, so a key
  // minted before an ingest can never hit an entry stored after it, nor
  // vice versa. This replaces the construction-time salt that kept
  // serving pre-ingest answers after the dataset changed.
  const uint64_t salt = db()->live_fingerprint();
  *key_out = EncodeResultCacheKey(query, kind, opts_.uots, salt);
  auto hit = result_cache_->Lookup(*key_out);
  MetricsRegistry::Global().Record(
      "server.cache.lookup", static_cast<int64_t>(timer.ElapsedMillis() * 1e6));
  return hit;
}

std::shared_ptr<const CachedResult> UotsService::TripCacheLookup(
    const TripQuery& query, std::string* key_out) {
  if (result_cache_ == nullptr) {
    key_out->clear();
    return nullptr;
  }
  WallTimer timer;
  const uint64_t salt = db()->live_fingerprint();
  *key_out = EncodeTripCacheKey(query, salt);
  auto hit = result_cache_->Lookup(*key_out);
  MetricsRegistry::Global().Record(
      "server.cache.lookup", static_cast<int64_t>(timer.ElapsedMillis() * 1e6));
  return hit;
}

void UotsService::PublishCacheMetrics() const {
  auto& reg = MetricsRegistry::Global();
  reg.SetCounter("server.oracle.lookups",
                 oracle_lookups_total_.load(std::memory_order_relaxed));
  reg.SetCounter("server.oracle.pruned_candidates",
                 oracle_pruned_total_.load(std::memory_order_relaxed));
  if (result_cache_ == nullptr) return;
  const ResultCache::Stats s = result_cache_->stats();
  reg.SetCounter("server.cache.hits", s.hits);
  reg.SetCounter("server.cache.misses", s.misses);
  reg.SetCounter("server.cache.evictions", s.evictions + s.expired);
  reg.SetCounter("server.cache.bytes", s.bytes);
}

bool UotsService::TryExecute(const UotsQuery& query, AlgorithmKind kind,
                             const CancelToken* cancel,
                             std::function<void(ExecutionResult)> done,
                             std::string cache_key,
                             const ExecuteOptions& exec_opts) {
  if (shutting_down_.load(std::memory_order_relaxed)) return false;
  // Reserve an admission slot; undo on any rejection path.
  const size_t prev = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= opts_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  const int64_t admitted_ns = CancelToken::NowNs();
  // Pin the database build this request will run against: a compaction
  // swap mid-flight retires the old base only once this snapshot drops.
  DbSnapshot snap = SnapshotDb();
  auto task = [this, query, kind, cancel, done = std::move(done),
               cache_key = std::move(cache_key), admitted_ns,
               snap = std::move(snap), exec_opts]() mutable {
    ExecutionResult out;
    out.queue_wait_ms =
        static_cast<double>(CancelToken::NowNs() - admitted_ns) / 1e6;
    WallTimer exec_timer;
    if (exec_opts.capture_spans) Trace::BeginThreadCapture();
    {
      // Span opened after the capture begins and closed before it ends, so
      // a sampled request's tree always contains its own root.
      UOTS_TRACE_SCOPE_ID("server_execute", exec_opts.span_id);
      if (cancel != nullptr && cancel->ShouldAbort()) {
        // Deadline passed while queued: skip the engine entirely.
        out.status = Status::DeadlineExceeded("deadline exceeded in queue");
      } else {
        auto engine = AcquireEngine(kind, snap);
        engine->set_cancel(cancel);
        Result<SearchResult> r = engine->Search(query);
        ReleaseEngine(kind, snap.version, std::move(engine));
        if (r.ok()) {
          out.result = std::move(*r);
          oracle_lookups_total_.fetch_add(out.result.stats.oracle_lookups,
                                          std::memory_order_relaxed);
          oracle_pruned_total_.fetch_add(
              out.result.stats.oracle_pruned_candidates,
              std::memory_order_relaxed);
          if (result_cache_ != nullptr && !cache_key.empty()) {
            auto cached = std::make_shared<CachedResult>();
            cached->items = out.result.items;
            cached->stats = out.result.stats;
            result_cache_->Insert(cache_key, std::move(cached));
          }
        } else {
          out.status = r.status();
        }
      }
    }
    if (exec_opts.capture_spans) out.spans = Trace::EndThreadCapture();
    out.execute_ms = exec_timer.ElapsedMillis();
    MetricsRegistry::Global().Record(
        "server.queue_wait", static_cast<int64_t>(out.queue_wait_ms * 1e6));
    MetricsRegistry::Global().Record(
        "server.execute", static_cast<int64_t>(out.execute_ms * 1e6));
    done(std::move(out));
    // Publish completion last so Drain() cannot return while `done` runs.
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mu_);
      drain_cv_.notify_all();
    }
  };
  auto fut = pool_->TrySubmit(std::move(task));
  if (!fut.has_value()) {
    // Pool already shutting down (or its queue bound raced); either way
    // this request was never scheduled.
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

bool UotsService::TryExecuteTrip(const TripQuery& query,
                                 const CancelToken* cancel,
                                 std::function<void(TripExecutionResult)> done,
                                 std::string cache_key,
                                 const ExecuteOptions& exec_opts) {
  if (shutting_down_.load(std::memory_order_relaxed)) return false;
  const size_t prev = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= opts_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  const int64_t admitted_ns = CancelToken::NowNs();
  DbSnapshot snap = SnapshotDb();
  auto task = [this, query, cancel, done = std::move(done),
               cache_key = std::move(cache_key), admitted_ns,
               snap = std::move(snap), exec_opts]() mutable {
    TripExecutionResult out;
    out.queue_wait_ms =
        static_cast<double>(CancelToken::NowNs() - admitted_ns) / 1e6;
    WallTimer exec_timer;
    if (exec_opts.capture_spans) Trace::BeginThreadCapture();
    {
      UOTS_TRACE_SCOPE_ID("trip_execute", exec_opts.span_id);
      if (cancel != nullptr && cancel->ShouldAbort()) {
        out.status = Status::DeadlineExceeded("deadline exceeded in queue");
      } else {
        auto planner = AcquireTripPlanner(snap);
        planner->set_cancel(cancel);
        Result<TripResult> r = planner->Plan(query);
        ReleaseTripPlanner(snap.version, std::move(planner));
        if (r.ok()) {
          out.result = std::move(*r);
          oracle_lookups_total_.fetch_add(out.result.stats.oracle_lookups,
                                          std::memory_order_relaxed);
          if (result_cache_ != nullptr && !cache_key.empty()) {
            auto cached = std::make_shared<CachedResult>();
            cached->trips = out.result.trips;
            cached->stats = out.result.stats;
            result_cache_->Insert(cache_key, std::move(cached));
          }
        } else {
          out.status = r.status();
        }
      }
    }
    if (exec_opts.capture_spans) out.spans = Trace::EndThreadCapture();
    out.execute_ms = exec_timer.ElapsedMillis();
    auto& reg = MetricsRegistry::Global();
    reg.Record("server.queue_wait",
               static_cast<int64_t>(out.queue_wait_ms * 1e6));
    reg.Record("trip.plan", static_cast<int64_t>(out.execute_ms * 1e6));
    if (out.status.ok()) {
      reg.Record("trip.harvest",
                 out.result.stats.PhaseNs(QueryPhase::kTripHarvest));
      reg.Record("trip.assemble",
                 out.result.stats.PhaseNs(QueryPhase::kTripAssemble));
    }
    done(std::move(out));
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mu_);
      drain_cv_.notify_all();
    }
  };
  auto fut = pool_->TrySubmit(std::move(task));
  if (!fut.has_value()) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

}  // namespace uots

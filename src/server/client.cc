#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace uots {

BlockingClient::~BlockingClient() { Close(); }

void BlockingClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status BlockingClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st =
        Status::IOError("connect: " + std::string(std::strerror(errno)));
    Close();
    return st;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status BlockingClient::WriteAll(const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError("send: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status BlockingClient::Send(const QueryRequest& req) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  const std::string frame = EncodeFrame(EncodeQueryRequest(req));
  return WriteAll(frame.data(), frame.size());
}

Result<QueryResponse> BlockingClient::Receive() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  for (;;) {
    std::string payload;
    size_t oversized = 0;
    const FrameDecoder::Next next = decoder_.Poll(&payload, &oversized);
    if (next == FrameDecoder::Next::kFrame) {
      return ParseQueryResponse(payload);
    }
    if (next == FrameDecoder::Next::kOversized) {
      return Status::IOError("server sent an oversized frame (" +
                             std::to_string(oversized) + " bytes)");
    }
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    return Status::IOError("recv: " + std::string(std::strerror(errno)));
  }
}

Result<QueryResponse> BlockingClient::Call(const QueryRequest& req) {
  UOTS_RETURN_NOT_OK(Send(req));
  return Receive();
}

Status BlockingClient::Send(const IngestRequest& req) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  const std::string frame = EncodeFrame(EncodeIngestRequest(req));
  return WriteAll(frame.data(), frame.size());
}

Result<IngestResponse> BlockingClient::ReceiveIngest() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  for (;;) {
    std::string payload;
    size_t oversized = 0;
    const FrameDecoder::Next next = decoder_.Poll(&payload, &oversized);
    if (next == FrameDecoder::Next::kFrame) {
      return ParseIngestResponse(payload);
    }
    if (next == FrameDecoder::Next::kOversized) {
      return Status::IOError("server sent an oversized frame (" +
                             std::to_string(oversized) + " bytes)");
    }
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    return Status::IOError("recv: " + std::string(std::strerror(errno)));
  }
}

Result<IngestResponse> BlockingClient::Call(const IngestRequest& req) {
  UOTS_RETURN_NOT_OK(Send(req));
  return ReceiveIngest();
}

Status BlockingClient::Send(const TripRequest& req) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  const std::string frame = EncodeFrame(EncodeTripRequest(req));
  return WriteAll(frame.data(), frame.size());
}

Result<TripResponse> BlockingClient::ReceiveTrip() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  for (;;) {
    std::string payload;
    size_t oversized = 0;
    const FrameDecoder::Next next = decoder_.Poll(&payload, &oversized);
    if (next == FrameDecoder::Next::kFrame) {
      return ParseTripResponse(payload);
    }
    if (next == FrameDecoder::Next::kOversized) {
      return Status::IOError("server sent an oversized frame (" +
                             std::to_string(oversized) + " bytes)");
    }
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    return Status::IOError("recv: " + std::string(std::strerror(errno)));
  }
}

Result<TripResponse> BlockingClient::Call(const TripRequest& req) {
  UOTS_RETURN_NOT_OK(Send(req));
  return ReceiveTrip();
}

}  // namespace uots

#include "server/timer_heap.h"

#include <algorithm>
#include <utility>

namespace uots {

TimerHeap::TimerId TimerHeap::Add(int64_t deadline_ns,
                                  std::function<void()> callback) {
  const TimerId id = next_id_++;
  const uint64_t seq = next_seq_++;
  pending_.emplace(id, Pending{deadline_ns, seq, std::move(callback)});
  PushNode(Node{deadline_ns, seq, id});
  return id;
}

bool TimerHeap::Cancel(TimerId id) {
  // Lazy deletion: the heap node stays and is skipped when popped.
  return pending_.erase(id) > 0;
}

bool TimerHeap::Reschedule(TimerId id, int64_t deadline_ns) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  it->second.deadline_ns = deadline_ns;
  it->second.seq = next_seq_++;
  PushNode(Node{deadline_ns, it->second.seq, id});  // old node goes stale
  return true;
}

int64_t TimerHeap::NextDeadlineNs() {
  PruneTop();
  return heap_.empty() ? -1 : heap_.front().deadline_ns;
}

int TimerHeap::RunExpired(int64_t now_ns) {
  int fired = 0;
  for (;;) {
    PruneTop();
    if (heap_.empty() || heap_.front().deadline_ns > now_ns) break;
    const TimerId id = heap_.front().id;
    PopNode();
    auto it = pending_.find(id);
    // PruneTop guaranteed the node was live; extract before invoking so the
    // callback sees the timer as already fired (Cancel returns false) and
    // may re-arm the heap freely.
    std::function<void()> cb = std::move(it->second.callback);
    pending_.erase(it);
    cb();
    ++fired;
  }
  return fired;
}

void TimerHeap::PushNode(Node n) {
  heap_.push_back(n);
  std::push_heap(heap_.begin(), heap_.end(), Later);
}

void TimerHeap::PopNode() {
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  heap_.pop_back();
}

void TimerHeap::PruneTop() {
  while (!heap_.empty()) {
    const Node& top = heap_.front();
    auto it = pending_.find(top.id);
    if (it != pending_.end() && it->second.seq == top.seq) return;  // live
    PopNode();
  }
}

}  // namespace uots

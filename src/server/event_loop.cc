#include "server/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/cancel.h"

namespace uots {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

int64_t EventLoop::NowNs() { return CancelToken::NowNs(); }

Status EventLoop::Init() {
  if (epoll_fd_ >= 0) return Status::OK();
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::Internal(Errno("epoll_create1"));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::Internal(Errno("eventfd"));
  }
  return AddFd(wake_fd_, EPOLLIN, [this](uint32_t) {
    uint64_t drained;
    while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
    }
  });
}

Status EventLoop::AddFd(int fd, uint32_t events, FdCallback callback) {
  if (epoll_fd_ < 0) return Status::Internal("EventLoop not initialized");
  if (fds_.count(fd) != 0) {
    return Status::AlreadyExists("fd already registered");
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Status::Internal(Errno("epoll_ctl(ADD)"));
  }
  fds_.emplace(fd, std::make_shared<FdCallback>(std::move(callback)));
  return Status::OK();
}

Status EventLoop::SetEvents(int fd, uint32_t events) {
  if (fds_.count(fd) == 0) return Status::NotFound("fd not registered");
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Status::Internal(Errno("epoll_ctl(MOD)"));
  }
  return Status::OK();
}

void EventLoop::RemoveFd(int fd) {
  if (fds_.erase(fd) == 0) return;
  // The fd may already be closed by the caller; a failed DEL is harmless.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

TimerHeap::TimerId EventLoop::AddTimerAt(int64_t deadline_ns,
                                         std::function<void()> callback) {
  return timers_.Add(deadline_ns, std::move(callback));
}

TimerHeap::TimerId EventLoop::AddTimerAfterMs(double delay_ms,
                                              std::function<void()> callback) {
  const int64_t delay_ns =
      delay_ms > 0.0 ? static_cast<int64_t>(delay_ms * 1e6) : 0;
  return timers_.Add(NowNs() + delay_ns, std::move(callback));
}

bool EventLoop::RescheduleTimerAfterMs(TimerHeap::TimerId id, double delay_ms) {
  const int64_t delay_ns =
      delay_ms > 0.0 ? static_cast<int64_t>(delay_ms * 1e6) : 0;
  return timers_.Reschedule(id, NowNs() + delay_ns);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wakeup();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  Wakeup();
}

void EventLoop::Wakeup() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  // The eventfd counter saturating (EAGAIN) still leaves it readable, so a
  // failed write never loses a wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& t : tasks) t();
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  stop_.store(false, std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_relaxed)) {
    // Posted tasks first: they may arm timers or change fd interest.
    RunPosted();
    if (stop_.load(std::memory_order_relaxed)) break;

    int timeout_ms = -1;
    const int64_t next = timers_.NextDeadlineNs();
    if (next >= 0) {
      const int64_t delta_ns = next - NowNs();
      // Round up so we do not spin on a not-quite-due timer.
      timeout_ms = delta_ns <= 0
                       ? 0
                       : static_cast<int>((delta_ns + 999999) / 1000000);
    }
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      if (!posted_.empty()) timeout_ms = 0;  // raced in after RunPosted
    }

    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure; leave Run rather than spin
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      // Fresh lookup per event: an earlier callback in this batch may have
      // removed this fd.
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;
      std::shared_ptr<FdCallback> cb = it->second;  // keep alive across call
      (*cb)(events[i].events);
    }
    timers_.RunExpired(NowNs());
  }
  RunPosted();  // drain: completions posted during the final iteration
}

}  // namespace uots

#include "server/protocol.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>

namespace uots {

namespace {

/// Header is a 4-byte big-endian unsigned payload length.
void PutHeader(uint32_t n, char out[kFrameHeaderBytes]) {
  out[0] = static_cast<char>((n >> 24) & 0xFF);
  out[1] = static_cast<char>((n >> 16) & 0xFF);
  out[2] = static_cast<char>((n >> 8) & 0xFF);
  out[3] = static_cast<char>(n & 0xFF);
}

uint32_t GetHeader(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return (uint32_t{u[0]} << 24) | (uint32_t{u[1]} << 16) |
         (uint32_t{u[2]} << 8) | uint32_t{u[3]};
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Reads an integral field; fails on non-numbers and non-integers.
Status ReadInt(const JsonValue& v, const char* what, int64_t* out) {
  if (!v.is_number()) {
    return Status::InvalidArgument(std::string(what) + " must be a number");
  }
  const double d = v.number_value();
  if (std::floor(d) != d || std::abs(d) > 9.007199254740992e15) {
    return Status::InvalidArgument(std::string(what) + " must be an integer");
  }
  *out = static_cast<int64_t>(d);
  return Status::OK();
}

}  // namespace

void AppendFrame(std::string_view payload, std::string* out) {
  char header[kFrameHeaderBytes];
  PutHeader(static_cast<uint32_t>(payload.size()), header);
  out->append(header, kFrameHeaderBytes);
  out->append(payload.data(), payload.size());
}

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(payload, &out);
  return out;
}

void FrameDecoder::Append(const char* data, size_t n) {
  Compact();
  buf_.append(data, n);
}

void FrameDecoder::Compact() {
  // Reclaim consumed prefix once it dominates the buffer; amortized O(1).
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
}

FrameDecoder::Next FrameDecoder::Poll(std::string* payload,
                                      size_t* oversized_bytes) {
  // Finish discarding an oversized payload before looking for a header.
  if (skip_remaining_ > 0) {
    const size_t have = buf_.size() - consumed_;
    const size_t drop = std::min(skip_remaining_, have);
    consumed_ += drop;
    skip_remaining_ -= drop;
    if (skip_remaining_ > 0) return Next::kNeedMore;
  }
  if (buf_.size() - consumed_ < kFrameHeaderBytes) return Next::kNeedMore;
  const size_t len = GetHeader(buf_.data() + consumed_);
  if (len > max_frame_bytes_) {
    consumed_ += kFrameHeaderBytes;
    const size_t have = buf_.size() - consumed_;
    const size_t drop = std::min<size_t>(len, have);
    consumed_ += drop;
    skip_remaining_ = len - drop;
    if (oversized_bytes != nullptr) *oversized_bytes = len;
    return Next::kOversized;
  }
  if (buf_.size() - consumed_ < kFrameHeaderBytes + len) return Next::kNeedMore;
  payload->assign(buf_, consumed_ + kFrameHeaderBytes, len);
  consumed_ += kFrameHeaderBytes + len;
  return Next::kFrame;
}

const char* ToString(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kParseError:
      return "parse_error";
    case ResponseStatus::kInvalidArgument:
      return "invalid_argument";
    case ResponseStatus::kOverloaded:
      return "overloaded";
    case ResponseStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ResponseStatus::kShuttingDown:
      return "shutting_down";
    case ResponseStatus::kInternal:
      return "internal";
  }
  return "internal";
}

ResponseStatus ParseResponseStatus(std::string_view name) {
  for (ResponseStatus s :
       {ResponseStatus::kOk, ResponseStatus::kParseError,
        ResponseStatus::kInvalidArgument, ResponseStatus::kOverloaded,
        ResponseStatus::kDeadlineExceeded, ResponseStatus::kShuttingDown,
        ResponseStatus::kInternal}) {
    if (name == ToString(s)) return s;
  }
  return ResponseStatus::kInternal;
}

bool IsRetryable(ResponseStatus s) {
  return s == ResponseStatus::kOverloaded || s == ResponseStatus::kShuttingDown;
}

ResponseStatus FromStatus(const Status& st) {
  switch (st.code()) {
    case StatusCode::kOk:
      return ResponseStatus::kOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return ResponseStatus::kInvalidArgument;
    case StatusCode::kDeadlineExceeded:
      return ResponseStatus::kDeadlineExceeded;
    case StatusCode::kUnavailable:
      return ResponseStatus::kOverloaded;
    default:
      return ResponseStatus::kInternal;
  }
}

Result<AlgorithmKind> ParseAlgorithmKind(std::string_view name) {
  for (AlgorithmKind k :
       {AlgorithmKind::kBruteForce, AlgorithmKind::kTextFirst,
        AlgorithmKind::kUots, AlgorithmKind::kUotsNoHeuristic,
        AlgorithmKind::kUotsSequential, AlgorithmKind::kEuclidean}) {
    if (EqualsIgnoreCase(name, ToString(k))) return k;
  }
  return Status::NotFound("unknown algorithm: " + std::string(name));
}

std::string EncodeQueryRequest(const QueryRequest& req) {
  JsonValue o = JsonValue::Object();
  o.Set("id", JsonValue::Int(req.id));
  if (!req.request_id.empty()) {
    o.Set("request_id", JsonValue::Str(req.request_id));
  }
  JsonValue locs = JsonValue::Array();
  for (VertexId v : req.query.locations) {
    locs.Append(JsonValue::Int(static_cast<int64_t>(v)));
  }
  o.Set("locations", std::move(locs));
  JsonValue kws = JsonValue::Array();
  for (TermId t : req.query.keywords.terms()) {
    kws.Append(JsonValue::Int(static_cast<int64_t>(t)));
  }
  o.Set("keywords", std::move(kws));
  o.Set("lambda", JsonValue::Number(req.query.lambda));
  o.Set("k", JsonValue::Int(req.query.k));
  if (req.has_algorithm) {
    o.Set("algorithm", JsonValue::Str(ToString(req.algorithm)));
  }
  if (req.deadline_ms > 0.0) {
    o.Set("deadline_ms", JsonValue::Number(req.deadline_ms));
  }
  if (req.cache == CacheMode::kBypass) {
    o.Set("cache", JsonValue::Str("bypass"));
  }
  return o.Serialize();
}

Result<QueryRequest> ParseQueryRequest(std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  return ParseQueryRequest(*parsed);
}

Result<QueryRequest> ParseQueryRequest(const JsonValue& o) {
  if (!o.is_object()) return Status::InvalidArgument("request must be an object");

  QueryRequest req;
  if (const JsonValue* id = o.Find("id")) {
    UOTS_RETURN_NOT_OK(ReadInt(*id, "id", &req.id));
  }
  if (const JsonValue* rid = o.Find("request_id")) {
    if (!rid->is_string()) {
      return Status::InvalidArgument("request_id must be a string");
    }
    if (rid->string_value().size() > kMaxRequestIdBytes) {
      return Status::InvalidArgument(
          "request_id too long (max " + std::to_string(kMaxRequestIdBytes) +
          " bytes)");
    }
    req.request_id = rid->string_value();
  }
  const JsonValue* locs = o.Find("locations");
  if (locs == nullptr || !locs->is_array()) {
    return Status::InvalidArgument("locations must be an array");
  }
  if (locs->array_items().empty()) {
    return Status::InvalidArgument("locations must not be empty");
  }
  if (locs->array_items().size() > kMaxQueryLocations) {
    return Status::InvalidArgument("too many locations (max " +
                                   std::to_string(kMaxQueryLocations) + ")");
  }
  req.query.locations.reserve(locs->array_items().size());
  for (const JsonValue& v : locs->array_items()) {
    int64_t id;
    UOTS_RETURN_NOT_OK(ReadInt(v, "location", &id));
    if (id < 0 || id > UINT32_MAX) {
      return Status::InvalidArgument("location out of range");
    }
    req.query.locations.push_back(static_cast<VertexId>(id));
  }
  std::vector<TermId> terms;
  if (const JsonValue* kws = o.Find("keywords")) {
    if (!kws->is_array()) {
      return Status::InvalidArgument("keywords must be an array");
    }
    for (const JsonValue& v : kws->array_items()) {
      int64_t id;
      UOTS_RETURN_NOT_OK(ReadInt(v, "keyword", &id));
      if (id < 0 || id > UINT32_MAX) {
        return Status::InvalidArgument("keyword out of range");
      }
      terms.push_back(static_cast<TermId>(id));
    }
  }
  req.query.keywords = KeywordSet(std::move(terms));
  if (const JsonValue* lambda = o.Find("lambda")) {
    if (!lambda->is_number()) {
      return Status::InvalidArgument("lambda must be a number");
    }
    req.query.lambda = lambda->number_value();
  }
  if (const JsonValue* k = o.Find("k")) {
    int64_t kk;
    UOTS_RETURN_NOT_OK(ReadInt(*k, "k", &kk));
    if (kk < 0 || kk > INT32_MAX) return Status::InvalidArgument("k out of range");
    req.query.k = static_cast<int>(kk);
  }
  if (const JsonValue* algo = o.Find("algorithm")) {
    if (!algo->is_string()) {
      return Status::InvalidArgument("algorithm must be a string");
    }
    Result<AlgorithmKind> kind = ParseAlgorithmKind(algo->string_value());
    if (!kind.ok()) return kind.status();
    req.algorithm = *kind;
    req.has_algorithm = true;
  }
  if (const JsonValue* dl = o.Find("deadline_ms")) {
    if (!dl->is_number() || dl->number_value() < 0.0) {
      return Status::InvalidArgument("deadline_ms must be a number >= 0");
    }
    req.deadline_ms = dl->number_value();
  }
  if (const JsonValue* cache = o.Find("cache")) {
    if (!cache->is_string()) {
      return Status::InvalidArgument("cache must be a string");
    }
    const std::string_view mode = cache->string_value();
    if (mode == "bypass") {
      req.cache = CacheMode::kBypass;
    } else if (mode != "default") {
      return Status::InvalidArgument("cache must be \"default\" or \"bypass\"");
    }
  }
  return req;
}

RequestType RequestTypeOf(const JsonValue& o) {
  const JsonValue* type = o.Find("type");
  if (type == nullptr) return RequestType::kQuery;
  if (!type->is_string()) return RequestType::kUnknown;
  const std::string_view name = type->string_value();
  if (name == "query") return RequestType::kQuery;
  if (name == "ingest") return RequestType::kIngest;
  if (name == "trip") return RequestType::kTrip;
  return RequestType::kUnknown;
}

std::string EncodeIngestRequest(const IngestRequest& req) {
  JsonValue o = JsonValue::Object();
  o.Set("id", JsonValue::Int(req.id));
  o.Set("type", JsonValue::Str("ingest"));
  if (!req.request_id.empty()) {
    o.Set("request_id", JsonValue::Str(req.request_id));
  }
  JsonValue trips = JsonValue::Array();
  for (const Trajectory& t : req.trajectories) {
    JsonValue trip = JsonValue::Object();
    JsonValue samples = JsonValue::Array();
    for (const Sample& s : t.samples) {
      JsonValue pair = JsonValue::Array();
      pair.Append(JsonValue::Int(static_cast<int64_t>(s.vertex)));
      pair.Append(JsonValue::Int(s.time_s));
      samples.Append(std::move(pair));
    }
    trip.Set("samples", std::move(samples));
    JsonValue kws = JsonValue::Array();
    for (TermId k : t.keywords.terms()) {
      kws.Append(JsonValue::Int(static_cast<int64_t>(k)));
    }
    trip.Set("keywords", std::move(kws));
    trips.Append(std::move(trip));
  }
  o.Set("trajectories", std::move(trips));
  return o.Serialize();
}

Result<IngestRequest> ParseIngestRequest(const JsonValue& o) {
  if (!o.is_object()) {
    return Status::InvalidArgument("request must be an object");
  }
  IngestRequest req;
  if (const JsonValue* id = o.Find("id")) {
    UOTS_RETURN_NOT_OK(ReadInt(*id, "id", &req.id));
  }
  if (const JsonValue* rid = o.Find("request_id")) {
    if (!rid->is_string()) {
      return Status::InvalidArgument("request_id must be a string");
    }
    if (rid->string_value().size() > kMaxRequestIdBytes) {
      return Status::InvalidArgument(
          "request_id too long (max " + std::to_string(kMaxRequestIdBytes) +
          " bytes)");
    }
    req.request_id = rid->string_value();
  }
  const JsonValue* trips = o.Find("trajectories");
  if (trips == nullptr || !trips->is_array()) {
    return Status::InvalidArgument("trajectories must be an array");
  }
  if (trips->array_items().empty()) {
    return Status::InvalidArgument("trajectories must not be empty");
  }
  if (trips->array_items().size() > kMaxIngestBatchTrajectories) {
    return Status::InvalidArgument(
        "too many trajectories in one batch (max " +
        std::to_string(kMaxIngestBatchTrajectories) + ")");
  }
  req.trajectories.reserve(trips->array_items().size());
  for (const JsonValue& trip : trips->array_items()) {
    if (!trip.is_object()) {
      return Status::InvalidArgument("trajectory must be an object");
    }
    Trajectory t;
    const JsonValue* samples = trip.Find("samples");
    if (samples == nullptr || !samples->is_array()) {
      return Status::InvalidArgument("trajectory samples must be an array");
    }
    if (samples->array_items().size() > kMaxIngestSamplesPerTrajectory) {
      return Status::InvalidArgument(
          "too many samples (max " +
          std::to_string(kMaxIngestSamplesPerTrajectory) + ")");
    }
    t.samples.reserve(samples->array_items().size());
    for (const JsonValue& pair : samples->array_items()) {
      if (!pair.is_array() || pair.array_items().size() != 2) {
        return Status::InvalidArgument(
            "sample must be a [vertex, time_s] pair");
      }
      int64_t vertex, time_s;
      UOTS_RETURN_NOT_OK(ReadInt(pair.array_items()[0], "vertex", &vertex));
      UOTS_RETURN_NOT_OK(ReadInt(pair.array_items()[1], "time_s", &time_s));
      if (vertex < 0 || vertex > UINT32_MAX) {
        return Status::InvalidArgument("sample vertex out of range");
      }
      if (time_s < 0 || time_s >= kSecondsPerDay) {
        return Status::InvalidArgument(
            "sample time_s must be in [0, 86400)");
      }
      t.samples.push_back(Sample{static_cast<VertexId>(vertex),
                                 static_cast<int32_t>(time_s)});
    }
    std::vector<TermId> terms;
    if (const JsonValue* kws = trip.Find("keywords")) {
      if (!kws->is_array()) {
        return Status::InvalidArgument("trajectory keywords must be an array");
      }
      if (kws->array_items().size() > kMaxIngestKeywordsPerTrajectory) {
        return Status::InvalidArgument(
            "too many keywords (max " +
            std::to_string(kMaxIngestKeywordsPerTrajectory) + ")");
      }
      for (const JsonValue& v : kws->array_items()) {
        int64_t id;
        UOTS_RETURN_NOT_OK(ReadInt(v, "keyword", &id));
        if (id < 0 || id > UINT32_MAX) {
          return Status::InvalidArgument("keyword out of range");
        }
        terms.push_back(static_cast<TermId>(id));
      }
    }
    t.keywords = KeywordSet(std::move(terms));
    req.trajectories.push_back(std::move(t));
  }
  return req;
}

Result<IngestRequest> ParseIngestRequest(std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  return ParseIngestRequest(*parsed);
}

std::string EncodeIngestResponse(const IngestResponse& resp) {
  JsonValue o = JsonValue::Object();
  o.Set("id", JsonValue::Int(resp.id));
  if (!resp.request_id.empty()) {
    o.Set("request_id", JsonValue::Str(resp.request_id));
  }
  o.Set("status", JsonValue::Str(ToString(resp.status)));
  if (resp.status != ResponseStatus::kOk) {
    if (!resp.error.empty()) o.Set("error", JsonValue::Str(resp.error));
    o.Set("retryable", JsonValue::Bool(resp.retryable()));
    return o.Serialize();
  }
  o.Set("accepted", JsonValue::Int(resp.accepted));
  o.Set("first_traj", JsonValue::Int(resp.first_traj));
  o.Set("generation", JsonValue::Int(resp.generation));
  o.Set("delta_trajectories", JsonValue::Int(resp.delta_trajectories));
  return o.Serialize();
}

Result<IngestResponse> ParseIngestResponse(std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& o = *parsed;
  if (!o.is_object()) {
    return Status::InvalidArgument("response must be an object");
  }
  IngestResponse resp;
  if (const JsonValue* id = o.Find("id")) {
    UOTS_RETURN_NOT_OK(ReadInt(*id, "id", &resp.id));
  }
  if (const JsonValue* rid = o.Find("request_id")) {
    resp.request_id = rid->StringOr("");
  }
  const JsonValue* status = o.Find("status");
  if (status == nullptr || !status->is_string()) {
    return Status::InvalidArgument("response missing status");
  }
  resp.status = ParseResponseStatus(status->string_value());
  if (const JsonValue* err = o.Find("error")) {
    resp.error = err->StringOr("");
  }
  const auto geti = [&](const char* key, int64_t fallback) -> int64_t {
    const JsonValue* v = o.Find(key);
    return v != nullptr ? static_cast<int64_t>(v->NumberOr(
                              static_cast<double>(fallback)))
                        : fallback;
  };
  resp.accepted = geti("accepted", 0);
  resp.first_traj = geti("first_traj", -1);
  resp.generation = geti("generation", 0);
  resp.delta_trajectories = geti("delta_trajectories", 0);
  return resp;
}

std::string EncodeQueryResponse(const QueryResponse& resp) {
  JsonValue o = JsonValue::Object();
  o.Set("id", JsonValue::Int(resp.id));
  if (!resp.request_id.empty()) {
    o.Set("request_id", JsonValue::Str(resp.request_id));
  }
  o.Set("status", JsonValue::Str(ToString(resp.status)));
  if (resp.status != ResponseStatus::kOk) {
    if (!resp.error.empty()) o.Set("error", JsonValue::Str(resp.error));
    o.Set("retryable", JsonValue::Bool(resp.retryable()));
    return o.Serialize();
  }
  JsonValue items = JsonValue::Array();
  for (const ScoredTrajectory& st : resp.results) {
    JsonValue item = JsonValue::Object();
    item.Set("traj", JsonValue::Int(static_cast<int64_t>(st.id)));
    item.Set("score", JsonValue::Number(st.score));
    item.Set("spatial", JsonValue::Number(st.spatial_sim));
    item.Set("textual", JsonValue::Number(st.textual_sim));
    items.Append(std::move(item));
  }
  o.Set("results", std::move(items));
  if (resp.cached) o.Set("cached", JsonValue::Bool(true));
  std::string out;
  out.reserve(256);
  // Serialize up to (and excluding) the closing brace, then splice the
  // already-JSON stats blob and the server block in.
  std::string head = o.Serialize();
  head.pop_back();  // '}'
  out += head;
  if (resp.has_stats) {
    out += ",\"stats\":";
    out += resp.stats.ToJson();
  }
  out += ",\"server\":{\"queue_wait_ms\":";
  JsonAppendDouble(resp.queue_wait_ms, &out);
  out += ",\"execute_ms\":";
  JsonAppendDouble(resp.execute_ms, &out);
  out += "}}";
  return out;
}

std::string EncodeTripRequest(const TripRequest& req) {
  JsonValue o = JsonValue::Object();
  o.Set("id", JsonValue::Int(req.id));
  o.Set("type", JsonValue::Str("trip"));
  if (!req.request_id.empty()) {
    o.Set("request_id", JsonValue::Str(req.request_id));
  }
  JsonValue locs = JsonValue::Array();
  for (VertexId v : req.query.locations) {
    locs.Append(JsonValue::Int(static_cast<int64_t>(v)));
  }
  o.Set("locations", std::move(locs));
  JsonValue kws = JsonValue::Array();
  for (TermId t : req.query.keywords.terms()) {
    kws.Append(JsonValue::Int(static_cast<int64_t>(t)));
  }
  o.Set("keywords", std::move(kws));
  o.Set("lambda", JsonValue::Number(req.query.lambda));
  o.Set("k", JsonValue::Int(req.query.k));
  if (req.query.ordered) o.Set("ordered", JsonValue::Bool(true));
  if (req.query.use_categories) o.Set("categories", JsonValue::Bool(true));
  if (req.query.gap_budget_m > 0.0) {
    o.Set("gap_budget_m", JsonValue::Number(req.query.gap_budget_m));
  }
  o.Set("segments_per_location",
        JsonValue::Int(req.query.segments_per_location));
  o.Set("window", JsonValue::Int(req.query.window));
  if (req.deadline_ms > 0.0) {
    o.Set("deadline_ms", JsonValue::Number(req.deadline_ms));
  }
  if (req.cache == CacheMode::kBypass) {
    o.Set("cache", JsonValue::Str("bypass"));
  }
  return o.Serialize();
}

Result<TripRequest> ParseTripRequest(const JsonValue& o) {
  if (!o.is_object()) {
    return Status::InvalidArgument("request must be an object");
  }
  TripRequest req;
  if (const JsonValue* id = o.Find("id")) {
    UOTS_RETURN_NOT_OK(ReadInt(*id, "id", &req.id));
  }
  if (const JsonValue* rid = o.Find("request_id")) {
    if (!rid->is_string()) {
      return Status::InvalidArgument("request_id must be a string");
    }
    if (rid->string_value().size() > kMaxRequestIdBytes) {
      return Status::InvalidArgument(
          "request_id too long (max " + std::to_string(kMaxRequestIdBytes) +
          " bytes)");
    }
    req.request_id = rid->string_value();
  }
  const JsonValue* locs = o.Find("locations");
  if (locs == nullptr || !locs->is_array()) {
    return Status::InvalidArgument("locations must be an array");
  }
  if (locs->array_items().empty()) {
    return Status::InvalidArgument("locations must not be empty");
  }
  if (locs->array_items().size() > kMaxTripLocations) {
    return Status::InvalidArgument("too many locations (max " +
                                   std::to_string(kMaxTripLocations) + ")");
  }
  req.query.locations.reserve(locs->array_items().size());
  for (const JsonValue& v : locs->array_items()) {
    int64_t id;
    UOTS_RETURN_NOT_OK(ReadInt(v, "location", &id));
    if (id < 0 || id > UINT32_MAX) {
      return Status::InvalidArgument("location out of range");
    }
    req.query.locations.push_back(static_cast<VertexId>(id));
  }
  std::vector<TermId> terms;
  if (const JsonValue* kws = o.Find("keywords")) {
    if (!kws->is_array()) {
      return Status::InvalidArgument("keywords must be an array");
    }
    for (const JsonValue& v : kws->array_items()) {
      int64_t id;
      UOTS_RETURN_NOT_OK(ReadInt(v, "keyword", &id));
      if (id < 0 || id > UINT32_MAX) {
        return Status::InvalidArgument("keyword out of range");
      }
      terms.push_back(static_cast<TermId>(id));
    }
  }
  req.query.keywords = KeywordSet(std::move(terms));
  if (const JsonValue* lambda = o.Find("lambda")) {
    if (!lambda->is_number()) {
      return Status::InvalidArgument("lambda must be a number");
    }
    req.query.lambda = lambda->number_value();
  }
  if (const JsonValue* k = o.Find("k")) {
    int64_t kk;
    UOTS_RETURN_NOT_OK(ReadInt(*k, "k", &kk));
    if (kk < 0 || kk > INT32_MAX) {
      return Status::InvalidArgument("k out of range");
    }
    req.query.k = static_cast<int>(kk);
  }
  if (const JsonValue* ordered = o.Find("ordered")) {
    if (!ordered->is_bool()) {
      return Status::InvalidArgument("ordered must be a boolean");
    }
    req.query.ordered = ordered->bool_value();
  }
  if (const JsonValue* cats = o.Find("categories")) {
    if (!cats->is_bool()) {
      return Status::InvalidArgument("categories must be a boolean");
    }
    req.query.use_categories = cats->bool_value();
  }
  if (const JsonValue* gap = o.Find("gap_budget_m")) {
    if (!gap->is_number() || gap->number_value() < 0.0) {
      return Status::InvalidArgument("gap_budget_m must be a number >= 0");
    }
    req.query.gap_budget_m = gap->number_value();
  }
  if (const JsonValue* spl = o.Find("segments_per_location")) {
    int64_t v;
    UOTS_RETURN_NOT_OK(ReadInt(*spl, "segments_per_location", &v));
    if (v < 1 || v > 64) {
      return Status::InvalidArgument("segments_per_location out of range");
    }
    req.query.segments_per_location = static_cast<int>(v);
  }
  if (const JsonValue* window = o.Find("window")) {
    int64_t v;
    UOTS_RETURN_NOT_OK(ReadInt(*window, "window", &v));
    if (v < 0 || v > 1024) {
      return Status::InvalidArgument("window out of range");
    }
    req.query.window = static_cast<int>(v);
  }
  if (const JsonValue* dl = o.Find("deadline_ms")) {
    if (!dl->is_number() || dl->number_value() < 0.0) {
      return Status::InvalidArgument("deadline_ms must be a number >= 0");
    }
    req.deadline_ms = dl->number_value();
  }
  if (const JsonValue* cache = o.Find("cache")) {
    if (!cache->is_string()) {
      return Status::InvalidArgument("cache must be a string");
    }
    const std::string_view mode = cache->string_value();
    if (mode == "bypass") {
      req.cache = CacheMode::kBypass;
    } else if (mode != "default") {
      return Status::InvalidArgument("cache must be \"default\" or \"bypass\"");
    }
  }
  return req;
}

Result<TripRequest> ParseTripRequest(std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  return ParseTripRequest(*parsed);
}

std::string EncodeTripResponse(const TripResponse& resp) {
  JsonValue o = JsonValue::Object();
  o.Set("id", JsonValue::Int(resp.id));
  if (!resp.request_id.empty()) {
    o.Set("request_id", JsonValue::Str(resp.request_id));
  }
  o.Set("status", JsonValue::Str(ToString(resp.status)));
  if (resp.status != ResponseStatus::kOk) {
    if (!resp.error.empty()) o.Set("error", JsonValue::Str(resp.error));
    o.Set("retryable", JsonValue::Bool(resp.retryable()));
    return o.Serialize();
  }
  JsonValue trips = JsonValue::Array();
  for (const AssembledTrip& trip : resp.trips) {
    JsonValue t = JsonValue::Object();
    t.Set("score", JsonValue::Number(trip.score));
    t.Set("spatial", JsonValue::Number(trip.spatial_sim));
    t.Set("textual", JsonValue::Number(trip.textual_sim));
    t.Set("connector_m", JsonValue::Number(trip.connector_total_m));
    JsonValue segments = JsonValue::Array();
    for (const TripSegment& s : trip.segments) {
      JsonValue seg = JsonValue::Object();
      seg.Set("traj", JsonValue::Int(static_cast<int64_t>(s.traj)));
      seg.Set("begin", JsonValue::Int(static_cast<int64_t>(s.begin)));
      seg.Set("end", JsonValue::Int(static_cast<int64_t>(s.end)));
      seg.Set("entry", JsonValue::Int(static_cast<int64_t>(s.entry)));
      seg.Set("exit", JsonValue::Int(static_cast<int64_t>(s.exit)));
      seg.Set("loc_distance", JsonValue::Number(s.loc_distance));
      seg.Set("connector_m", JsonValue::Number(s.connector_m));
      segments.Append(std::move(seg));
    }
    t.Set("segments", std::move(segments));
    trips.Append(std::move(t));
  }
  o.Set("trips", std::move(trips));
  if (resp.cached) o.Set("cached", JsonValue::Bool(true));
  std::string out;
  out.reserve(256);
  std::string head = o.Serialize();
  head.pop_back();  // '}'
  out += head;
  if (resp.has_stats) {
    out += ",\"stats\":";
    out += resp.stats.ToJson();
  }
  out += ",\"server\":{\"queue_wait_ms\":";
  JsonAppendDouble(resp.queue_wait_ms, &out);
  out += ",\"execute_ms\":";
  JsonAppendDouble(resp.execute_ms, &out);
  out += "}}";
  return out;
}

Result<TripResponse> ParseTripResponse(std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& o = *parsed;
  if (!o.is_object()) {
    return Status::InvalidArgument("response must be an object");
  }
  TripResponse resp;
  if (const JsonValue* id = o.Find("id")) {
    UOTS_RETURN_NOT_OK(ReadInt(*id, "id", &resp.id));
  }
  if (const JsonValue* rid = o.Find("request_id")) {
    resp.request_id = rid->StringOr("");
  }
  const JsonValue* status = o.Find("status");
  if (status == nullptr || !status->is_string()) {
    return Status::InvalidArgument("response missing status");
  }
  resp.status = ParseResponseStatus(status->string_value());
  if (const JsonValue* err = o.Find("error")) {
    resp.error = err->StringOr("");
  }
  if (const JsonValue* trips = o.Find("trips")) {
    if (!trips->is_array()) {
      return Status::InvalidArgument("trips must be an array");
    }
    for (const JsonValue& t : trips->array_items()) {
      if (!t.is_object()) {
        return Status::InvalidArgument("trip must be an object");
      }
      AssembledTrip trip;
      trip.score = t.Find("score") ? t.Find("score")->NumberOr(0) : 0;
      trip.spatial_sim =
          t.Find("spatial") ? t.Find("spatial")->NumberOr(0) : 0;
      trip.textual_sim =
          t.Find("textual") ? t.Find("textual")->NumberOr(0) : 0;
      trip.connector_total_m =
          t.Find("connector_m") ? t.Find("connector_m")->NumberOr(0) : 0;
      if (const JsonValue* segments = t.Find("segments")) {
        if (!segments->is_array()) {
          return Status::InvalidArgument("segments must be an array");
        }
        for (const JsonValue& sv : segments->array_items()) {
          if (!sv.is_object()) {
            return Status::InvalidArgument("segment must be an object");
          }
          TripSegment s;
          const auto geti = [&](const char* key, int64_t fallback) -> int64_t {
            const JsonValue* v = sv.Find(key);
            return v != nullptr ? static_cast<int64_t>(v->NumberOr(
                                      static_cast<double>(fallback)))
                                : fallback;
          };
          s.traj = static_cast<TrajId>(geti("traj", -1));
          s.begin = static_cast<uint32_t>(geti("begin", 0));
          s.end = static_cast<uint32_t>(geti("end", 0));
          s.entry = static_cast<VertexId>(geti("entry", -1));
          s.exit = static_cast<VertexId>(geti("exit", -1));
          s.loc_distance = sv.Find("loc_distance")
                               ? sv.Find("loc_distance")->NumberOr(0)
                               : 0;
          s.connector_m = sv.Find("connector_m")
                              ? sv.Find("connector_m")->NumberOr(0)
                              : 0;
          trip.segments.push_back(s);
        }
      }
      resp.trips.push_back(std::move(trip));
    }
  }
  if (const JsonValue* cached = o.Find("cached")) {
    resp.cached = cached->BoolOr(false);
  }
  if (const JsonValue* server = o.Find("server")) {
    if (server->is_object()) {
      if (const JsonValue* v = server->Find("queue_wait_ms")) {
        resp.queue_wait_ms = v->NumberOr(0.0);
      }
      if (const JsonValue* v = server->Find("execute_ms")) {
        resp.execute_ms = v->NumberOr(0.0);
      }
    }
  }
  if (const JsonValue* stats = o.Find("stats")) {
    if (stats->is_object()) {
      resp.has_stats = true;
      const auto geti = [&](const char* key) -> int64_t {
        const JsonValue* v = stats->Find(key);
        return v != nullptr ? static_cast<int64_t>(v->NumberOr(0)) : 0;
      };
      resp.stats.visited_trajectories = geti("visited_trajectories");
      resp.stats.settled_vertices = geti("settled_vertices");
      resp.stats.candidates = geti("candidates");
      resp.stats.oracle_lookups = geti("oracle_lookups");
      if (const JsonValue* ms = stats->Find("elapsed_ms")) {
        resp.stats.elapsed_ms = ms->NumberOr(0.0);
      }
    }
  }
  return resp;
}

Result<QueryResponse> ParseQueryResponse(std::string_view json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& o = *parsed;
  if (!o.is_object()) {
    return Status::InvalidArgument("response must be an object");
  }
  QueryResponse resp;
  if (const JsonValue* id = o.Find("id")) {
    UOTS_RETURN_NOT_OK(ReadInt(*id, "id", &resp.id));
  }
  if (const JsonValue* rid = o.Find("request_id")) {
    resp.request_id = rid->StringOr("");
  }
  const JsonValue* status = o.Find("status");
  if (status == nullptr || !status->is_string()) {
    return Status::InvalidArgument("response missing status");
  }
  resp.status = ParseResponseStatus(status->string_value());
  if (const JsonValue* err = o.Find("error")) {
    resp.error = err->StringOr("");
  }
  if (const JsonValue* results = o.Find("results")) {
    if (!results->is_array()) {
      return Status::InvalidArgument("results must be an array");
    }
    for (const JsonValue& item : results->array_items()) {
      if (!item.is_object()) {
        return Status::InvalidArgument("result item must be an object");
      }
      ScoredTrajectory st;
      int64_t traj = -1;
      if (const JsonValue* t = item.Find("traj")) {
        UOTS_RETURN_NOT_OK(ReadInt(*t, "traj", &traj));
      }
      st.id = static_cast<TrajId>(traj);
      st.score = item.Find("score") ? item.Find("score")->NumberOr(0) : 0;
      st.spatial_sim =
          item.Find("spatial") ? item.Find("spatial")->NumberOr(0) : 0;
      st.textual_sim =
          item.Find("textual") ? item.Find("textual")->NumberOr(0) : 0;
      resp.results.push_back(st);
    }
  }
  if (const JsonValue* cached = o.Find("cached")) {
    resp.cached = cached->BoolOr(false);
  }
  if (const JsonValue* stats = o.Find("stats")) {
    if (stats->is_object()) {
      resp.has_stats = true;
      const auto geti = [&](const char* key) -> int64_t {
        const JsonValue* v = stats->Find(key);
        return v != nullptr ? static_cast<int64_t>(v->NumberOr(0)) : 0;
      };
      resp.stats.visited_trajectories = geti("visited_trajectories");
      resp.stats.trajectory_hits = geti("trajectory_hits");
      resp.stats.settled_vertices = geti("settled_vertices");
      resp.stats.heap_pops = geti("heap_pops");
      resp.stats.heap_pushes = geti("heap_pushes");
      resp.stats.heap_decreases = geti("heap_decreases");
      resp.stats.heap_stale_pops = geti("heap_stale_pops");
      resp.stats.candidates = geti("candidates");
      resp.stats.posting_entries = geti("posting_entries");
      resp.stats.schedule_steps = geti("schedule_steps");
      resp.stats.bound_rebuilds = geti("bound_rebuilds");
      resp.stats.dcache_hits = geti("dcache_hits");
      resp.stats.dcache_replayed = geti("dcache_replayed");
      resp.stats.dcache_published = geti("dcache_published");
      resp.stats.oracle_lookups = geti("oracle_lookups");
      resp.stats.oracle_pruned_candidates = geti("oracle_pruned_candidates");
      if (const JsonValue* ms = stats->Find("elapsed_ms")) {
        resp.stats.elapsed_ms = ms->NumberOr(0.0);
      }
    }
  }
  if (const JsonValue* server = o.Find("server")) {
    if (server->is_object()) {
      if (const JsonValue* v = server->Find("queue_wait_ms")) {
        resp.queue_wait_ms = v->NumberOr(0.0);
      }
      if (const JsonValue* v = server->Find("execute_ms")) {
        resp.execute_ms = v->NumberOr(0.0);
      }
    }
  }
  return resp;
}

}  // namespace uots

#include "server/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace uots {

Connection::Connection(uint64_t id, int fd, size_t max_frame_bytes)
    : id_(id), fd_(fd), decoder_(max_frame_bytes) {}

Connection::~Connection() { Close(); }

void Connection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Connection::IoResult Connection::ReadAvailable() {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.bytes_in += n;
      decoder_.Append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) return IoResult::kOk;
      continue;  // possibly more queued
    }
    if (n == 0) return IoResult::kClosed;  // orderly shutdown by peer
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    if (errno == EINTR) continue;
    return IoResult::kClosed;  // ECONNRESET and friends
  }
}

void Connection::QueueFrame(std::string_view payload) {
  // Reclaim the already-written prefix before growing the buffer.
  if (out_offset_ > 0 && out_offset_ == out_.size()) {
    out_.clear();
    out_offset_ = 0;
  } else if (out_offset_ > 65536 && out_offset_ * 2 > out_.size()) {
    out_.erase(0, out_offset_);
    out_offset_ = 0;
  }
  AppendFrame(payload, &out_);
  ++stats_.frames_out;
}

Connection::IoResult Connection::Flush() {
  while (out_offset_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_offset_,
                             out_.size() - out_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      stats_.bytes_out += n;
      out_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
    if (errno == EINTR) continue;
    return IoResult::kClosed;  // EPIPE/ECONNRESET: peer is gone
  }
  return IoResult::kOk;
}

}  // namespace uots

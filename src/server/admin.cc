#include "server/admin.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "server/json.h"
#include "server/server.h"
#include "util/metrics.h"

namespace uots {

// ---------------------------------------------------------------------------
// SlowQueryLog

void SlowQueryLog::Add(SlowLogEntry entry) {
  ++added_;
  // Slowest side first (it may want to share the entry): keep a vector
  // sorted by descending total_ms, replacing the current minimum once full.
  if (slowest_capacity_ > 0) {
    const bool full = slowest_.size() >= slowest_capacity_;
    if (!full || entry.total_ms > slowest_.back().total_ms) {
      if (full) slowest_.pop_back();
      auto pos = std::upper_bound(
          slowest_.begin(), slowest_.end(), entry,
          [](const SlowLogEntry& a, const SlowLogEntry& b) {
            return a.total_ms > b.total_ms;
          });
      slowest_.insert(pos, entry);
    }
  }
  if (recent_capacity_ > 0) {
    recent_.push_front(std::move(entry));
    while (recent_.size() > recent_capacity_) recent_.pop_back();
  }
}

// ---------------------------------------------------------------------------
// Prometheus rendering

namespace promtext {

std::string MangleMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace promtext

namespace {

/// The fixed `le` ladder (seconds) every histogram family is bucketed on.
/// Spans the microsecond-to-seconds range server phases actually occupy.
struct LeBucket {
  const char* label;  ///< exactly what goes inside le="..."
  int64_t ns;
};
constexpr LeBucket kLeLadder[] = {
    {"2.5e-05", 25'000},       {"0.0001", 100'000},
    {"0.00025", 250'000},      {"0.0005", 500'000},
    {"0.001", 1'000'000},      {"0.0025", 2'500'000},
    {"0.005", 5'000'000},      {"0.01", 10'000'000},
    {"0.025", 25'000'000},     {"0.05", 50'000'000},
    {"0.1", 100'000'000},      {"0.25", 250'000'000},
    {"0.5", 500'000'000},      {"1", 1'000'000'000},
    {"2.5", 2'500'000'000},    {"5", 5'000'000'000},
    {"10", 10'000'000'000},
};

void AppendSample(std::string* out, std::string_view series, double value) {
  out->append(series);
  out->push_back(' ');
  JsonAppendDouble(value, out);
  out->push_back('\n');
}

void AppendIntSample(std::string* out, std::string_view series,
                     int64_t value) {
  out->append(series);
  out->push_back(' ');
  out->append(std::to_string(value));
  out->push_back('\n');
}

void AppendHistogramFamily(std::string* out, const std::string& base,
                           const HistogramSnapshot& snap) {
  const std::string family = base + "_seconds";
  out->append("# TYPE ").append(family).append(" histogram\n");
  for (const LeBucket& b : kLeLadder) {
    out->append(family)
        .append("_bucket{le=\"")
        .append(b.label)
        .append("\"} ")
        .append(std::to_string(snap.CumulativeCountLe(b.ns)))
        .push_back('\n');
  }
  out->append(family).append("_bucket{le=\"+Inf\"} ").append(
      std::to_string(snap.count));
  out->push_back('\n');
  AppendSample(out, family + "_sum",
               static_cast<double>(snap.sum_ns) / 1e9);
  AppendIntSample(out, family + "_count", snap.count);

  const std::string qfamily = base + "_quantile_seconds";
  out->append("# TYPE ").append(qfamily).append(" gauge\n");
  constexpr struct {
    const char* label;
    double p;
  } kQuantiles[] = {
      {"0.5", 50.0}, {"0.9", 90.0}, {"0.95", 95.0}, {"0.99", 99.0}};
  for (const auto& q : kQuantiles) {
    AppendSample(out,
                 qfamily + "{quantile=\"" + q.label + "\"}",
                 static_cast<double>(snap.PercentileNs(q.p)) / 1e9);
  }
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void AppendCounter(std::string* out, const std::string& mangled,
                   int64_t value) {
  const std::string series = mangled + "_total";
  out->append("# TYPE ").append(series).append(" counter\n");
  AppendIntSample(out, series, value);
}

void AppendGauge(std::string* out, const std::string& series, double value) {
  out->append("# TYPE ").append(series).append(" gauge\n");
  AppendSample(out, series, value);
}

void AppendJsonKV(std::string* out, std::string_view key,
                  std::string_view raw_value, bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(key);
  out->append("\":");
  out->append(raw_value);
}

void AppendJsonString(std::string* out, std::string_view key,
                      std::string_view value, bool* first) {
  std::string quoted = "\"";
  JsonEscape(value, &quoted);
  quoted.push_back('"');
  AppendJsonKV(out, key, quoted, first);
}

void AppendSlowEntryJson(std::string* out, const SlowLogEntry& e) {
  out->push_back('{');
  bool first = true;
  AppendJsonString(out, "request_id", e.request_id, &first);
  AppendJsonString(out, "algorithm", e.algorithm, &first);
  AppendJsonString(out, "query", e.query_summary, &first);
  AppendJsonString(out, "status", e.status, &first);
  AppendJsonKV(out, "cached", e.cached ? "true" : "false", &first);
  if (e.segments >= 0) {
    AppendJsonKV(out, "segments", std::to_string(e.segments), &first);
  }
  std::string num;
  JsonAppendDouble(e.total_ms, &num);
  AppendJsonKV(out, "total_ms", num, &first);
  num.clear();
  JsonAppendDouble(e.queue_wait_ms, &num);
  AppendJsonKV(out, "queue_wait_ms", num, &first);
  num.clear();
  JsonAppendDouble(e.execute_ms, &num);
  AppendJsonKV(out, "execute_ms", num, &first);
  AppendJsonKV(out, "completed_unix_ms", std::to_string(e.completed_unix_ms),
               &first);
  // QueryStats::ToJson already emits a complete object (phase breakdown
  // under "phase_ms") — splice it in verbatim.
  AppendJsonKV(out, "stats", e.has_stats ? e.stats.ToJson() : "null", &first);
  if (!first) out->push_back(',');
  out->append("\"spans\":[");
  for (size_t i = 0; i < e.spans.size(); ++i) {
    const TraceEvent& ev = e.spans[i];
    if (i > 0) out->push_back(',');
    out->append("{\"name\":\"");
    JsonEscape(ev.name, out);
    out->append("\",\"start_us\":");
    JsonAppendDouble(static_cast<double>(ev.start_ns) / 1e3, out);
    out->append(",\"dur_us\":");
    JsonAppendDouble(static_cast<double>(ev.dur_ns) / 1e3, out);
    out->append(",\"depth\":");
    out->append(std::to_string(ev.depth));
    out->push_back('}');
  }
  out->append("]}");
}

int64_t UnixNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Status SetNonBlockingFd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// AdminPlane

AdminPlane::AdminPlane(UotsServer* server, const AdminOptions& opts)
    : server_(server),
      opts_(opts),
      slowlog_(opts.slowlog_recent, opts.slowlog_slowest) {}

AdminPlane::~AdminPlane() {
  // Raw closes only: the loop may already be destroyed at this point (the
  // server calls Shutdown() from the loop while it is still alive).
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

Status AdminPlane::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("admin socket: " +
                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad admin bind address: " +
                                   opts_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("admin bind: " +
                           std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, opts_.listen_backlog) < 0) {
    return Status::IOError("admin listen: " +
                           std::string(std::strerror(errno)));
  }
  UOTS_RETURN_NOT_OK(SetNonBlockingFd(listen_fd_));

  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  return server_->loop().AddFd(listen_fd_, EPOLLIN,
                               [this](uint32_t) { OnAcceptReady(); });
}

void AdminPlane::Shutdown() {
  EventLoop& loop = server_->loop();
  if (listen_fd_ >= 0) {
    loop.RemoveFd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  while (!conns_.empty()) CloseConn(conns_.begin()->first);
}

void AdminPlane::OnAcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (conns_.size() >= opts_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    AdminConn& conn = conns_[id];
    conn.fd = fd;
    Status st = server_->loop().AddFd(
        fd, EPOLLIN, [this, id](uint32_t events) { OnConnEvent(id, events); });
    if (!st.ok()) {
      ::close(fd);
      conns_.erase(id);
      continue;
    }
    if (opts_.read_timeout_ms > 0.0) {
      conn.read_timer =
          server_->loop().AddTimerAfterMs(opts_.read_timeout_ms, [this, id] {
            auto it = conns_.find(id);
            if (it == conns_.end()) return;
            it->second.read_timer = TimerHeap::kInvalidTimer;
            CloseConn(id);
          });
    }
  }
}

void AdminPlane::OnConnEvent(uint64_t id, uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  AdminConn* conn = &it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(id);
    return;
  }
  if (events & EPOLLOUT) {
    while (conn->out_offset < conn->out.size()) {
      const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_offset,
                               conn->out.size() - conn->out_offset,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        CloseConn(id);
        return;
      }
      conn->out_offset += static_cast<size_t>(n);
    }
    // Response fully flushed: HTTP/1.0 close semantics.
    CloseConn(id);
    return;
  }
  if ((events & EPOLLIN) && conn->out.empty()) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n == 0) {
        CloseConn(id);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        CloseConn(id);
        return;
      }
      conn->parser.Append(buf, static_cast<size_t>(n));
    }
    HttpRequest req;
    switch (conn->parser.Poll(&req)) {
      case HttpRequestParser::Next::kNeedMore:
        return;
      case HttpRequestParser::Next::kBad:
        QueueResponse(id, conn,
                      EncodeHttpResponse(400, "text/plain",
                                         "malformed request\n"));
        return;
      case HttpRequestParser::Next::kTooLarge:
        QueueResponse(id, conn,
                      EncodeHttpResponse(431, "text/plain",
                                         "header block too large\n"));
        return;
      case HttpRequestParser::Next::kRequest:
        QueueResponse(id, conn, Dispatch(req));
        return;
    }
  }
}

void AdminPlane::QueueResponse(uint64_t id, AdminConn* conn,
                               std::string response) {
  conn->out = std::move(response);
  conn->out_offset = 0;
  if (conn->read_timer != TimerHeap::kInvalidTimer) {
    server_->loop().CancelTimer(conn->read_timer);
    conn->read_timer = TimerHeap::kInvalidTimer;
  }
  // Stop reading (one request per connection) and flush what the socket
  // will take; the rest rides EPOLLOUT.
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_offset,
                             conn->out.size() - conn->out_offset,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        (void)server_->loop().SetEvents(conn->fd, EPOLLOUT);
        return;
      }
      CloseConn(id);
      return;
    }
    conn->out_offset += static_cast<size_t>(n);
  }
  CloseConn(id);
}

void AdminPlane::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  AdminConn& conn = it->second;
  if (conn.read_timer != TimerHeap::kInvalidTimer) {
    server_->loop().CancelTimer(conn.read_timer);
  }
  if (conn.fd >= 0) {
    server_->loop().RemoveFd(conn.fd);
    ::close(conn.fd);
  }
  conns_.erase(it);
}

std::string AdminPlane::Dispatch(const HttpRequest& req) {
  const bool is_get = req.method == "GET" || req.method == "HEAD";
  if (req.path == "/metrics") {
    if (!is_get) {
      return EncodeHttpResponse(405, "text/plain", "use GET\n");
    }
    return EncodeHttpResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                              RenderMetrics());
  }
  if (req.path == "/statusz") {
    if (!is_get) return EncodeHttpResponse(405, "text/plain", "use GET\n");
    return EncodeHttpResponse(200, "application/json", RenderStatusz());
  }
  if (req.path == "/healthz") {
    if (!is_get) return EncodeHttpResponse(405, "text/plain", "use GET\n");
    int status = 200;
    std::string body = RenderHealthz(&status);
    return EncodeHttpResponse(status, "text/plain", body);
  }
  if (req.path == "/slowqueries") {
    if (!is_get) return EncodeHttpResponse(405, "text/plain", "use GET\n");
    return EncodeHttpResponse(200, "application/json", RenderSlowQueries());
  }
  if (req.path == "/tracing") {
    if (req.method == "POST") {
      const std::string arg = req.QueryParam("sample");
      if (arg.empty() ||
          arg.find_first_not_of("0123456789") != std::string::npos) {
        return EncodeHttpResponse(
            400, "text/plain",
            "POST /tracing?sample=N (N = 0 disables sampling)\n");
      }
      set_trace_sample_every(std::atoi(arg.c_str()));
    } else if (!is_get) {
      return EncodeHttpResponse(405, "text/plain", "use GET or POST\n");
    }
    std::string body = "{\"sample_every\":";
    body += std::to_string(trace_sample_every());
    body += ",\"trace_compiled_in\":";
    body += UOTS_TRACE ? "true" : "false";
    body += "}\n";
    return EncodeHttpResponse(200, "application/json", body);
  }
  if (req.path == "/compact") {
    if (req.method != "POST") {
      return EncodeHttpResponse(405, "text/plain", "use POST\n");
    }
    // Runs on the loop thread (the admin plane shares the server's loop),
    // which is exactly where TriggerCompaction must be called.
    const Status st = server_->TriggerCompaction();
    if (!st.ok()) {
      const int code = st.code() == StatusCode::kUnavailable ? 409 : 400;
      return EncodeHttpResponse(code, "text/plain", st.ToString() + "\n");
    }
    std::string body = "{\"compacting\":true,\"sealed_trajectories\":";
    body += std::to_string(server_->ingestor().delta_trajectories());
    body += "}\n";
    return EncodeHttpResponse(202, "application/json", body);
  }
  return EncodeHttpResponse(404, "text/plain", "not found\n");
}

std::string AdminPlane::RenderHealthz(int* status) const {
  if (server_->draining()) {
    *status = 503;
    return "draining\n";
  }
  *status = 200;
  return "ok\n";
}

std::string AdminPlane::RenderMetrics() const {
  // Publish before reading so cache/oracle counters are scrape-fresh.
  server_->service().PublishCacheMetrics();
  server_->PublishIngestMetrics();

  auto& reg = MetricsRegistry::Global();
  std::string out;
  out.reserve(8192);

  for (const auto& [name, snap] : reg.SnapshotAll()) {
    AppendHistogramFamily(&out, "uots_" + promtext::MangleMetricName(name),
                          snap);
  }
  for (const auto& [name, value] : reg.CounterSnapshot()) {
    const std::string mangled = "uots_" + promtext::MangleMetricName(name);
    if (EndsWith(name, ".bytes")) {
      AppendGauge(&out, mangled, static_cast<double>(value));
    } else {
      AppendCounter(&out, mangled, value);
    }
  }

  const ServerCounters& c = server_->counters();
  AppendCounter(&out, "uots_server_connections_accepted",
                c.connections_accepted);
  AppendCounter(&out, "uots_server_connections_closed", c.connections_closed);
  AppendCounter(&out, "uots_server_connections_rejected",
                c.connections_rejected);
  AppendCounter(&out, "uots_server_requests", c.requests);
  AppendCounter(&out, "uots_server_trip_requests", c.trip_requests);
  AppendCounter(&out, "uots_server_responses_ok", c.responses_ok);
  AppendCounter(&out, "uots_server_request_cache_hits", c.cache_hits);
  AppendCounter(&out, "uots_server_rejected_overloaded",
                c.rejected_overloaded);
  AppendCounter(&out, "uots_server_rejected_shutting_down",
                c.rejected_shutting_down);
  AppendCounter(&out, "uots_server_deadline_exceeded", c.deadline_exceeded);
  AppendCounter(&out, "uots_server_parse_errors", c.parse_errors);
  AppendCounter(&out, "uots_server_oversized_frames", c.oversized_frames);
  AppendCounter(&out, "uots_server_errors_internal", c.errors_internal);
  AppendCounter(&out, "uots_server_ingest_requests", c.ingest_requests);
  AppendCounter(&out, "uots_server_ingest_accepted_trips",
                c.ingest_accepted_trips);
  AppendCounter(&out, "uots_server_ingest_rejected_batches",
                c.ingest_rejected_batches);
  AppendCounter(&out, "uots_server_compactions", c.compactions);
  AppendCounter(&out, "uots_server_slowlog_entries", slowlog_.added());

  AppendGauge(&out, "uots_server_uptime_seconds",
              static_cast<double>(EventLoop::NowNs() -
                                  server_->start_steady_ns()) /
                  1e9);
  AppendGauge(&out, "uots_server_open_connections",
              static_cast<double>(server_->open_connections()));
  AppendGauge(&out, "uots_server_admin_connections",
              static_cast<double>(conns_.size()));
  AppendGauge(&out, "uots_server_inflight_requests",
              static_cast<double>(server_->loop_inflight()));
  AppendGauge(&out, "uots_server_executor_queue_depth",
              static_cast<double>(server_->service().inflight()));
  AppendGauge(&out, "uots_server_draining",
              server_->draining() ? 1.0 : 0.0);
  AppendGauge(&out, "uots_server_trace_sample_every",
              static_cast<double>(trace_sample_every()));
  return out;
}

std::string AdminPlane::RenderStatusz() const {
  const TrajectoryDatabase& db = server_->db();
  const MemoryBreakdown mem = db.Memory();

  JsonValue root = JsonValue::Object();
  root.Set("uptime_seconds",
           JsonValue::Number(static_cast<double>(EventLoop::NowNs() -
                                                 server_->start_steady_ns()) /
                             1e9));
  root.Set("start_unix_ms", JsonValue::Int(server_->start_unix_ms()));

  JsonValue build = JsonValue::Object();
  build.Set("compiler", JsonValue::Str(
#if defined(__clang__)
                            "clang " __clang_version__
#elif defined(__GNUC__)
                            "gcc " __VERSION__
#else
                            "unknown"
#endif
                            ));
  build.Set("build_date", JsonValue::Str(__DATE__ " " __TIME__));
  build.Set("trace_compiled_in", JsonValue::Bool(UOTS_TRACE != 0));
#ifdef NDEBUG
  build.Set("optimized", JsonValue::Bool(true));
#else
  build.Set("optimized", JsonValue::Bool(false));
#endif
  root.Set("build", std::move(build));

  JsonValue dataset = JsonValue::Object();
  {
    char hex[19];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(db.fingerprint()));
    dataset.Set("fingerprint", JsonValue::Str(hex));
  }
  dataset.Set("source", JsonValue::Str(server_->options().dataset_source));
  dataset.Set("vertices",
              JsonValue::Int(static_cast<int64_t>(db.network().NumVertices())));
  dataset.Set("edges",
              JsonValue::Int(static_cast<int64_t>(db.network().NumEdges())));
  dataset.Set("trajectories",
              JsonValue::Int(static_cast<int64_t>(db.store().size())));
  dataset.Set("vocabulary_terms",
              JsonValue::Int(static_cast<int64_t>(db.vocabulary().size())));
  dataset.Set("has_oracle", JsonValue::Bool(db.oracle() != nullptr));
  dataset.Set("heap_bytes",
              JsonValue::Int(static_cast<int64_t>(mem.heap_bytes)));
  dataset.Set("mmap_bytes",
              JsonValue::Int(static_cast<int64_t>(mem.mmap_bytes)));
  const Ingestor& ing = server_->ingestor();
  dataset.Set("delta_trajectories",
              JsonValue::Int(static_cast<int64_t>(ing.delta_trajectories())));
  dataset.Set("delta_bytes",
              JsonValue::Int(static_cast<int64_t>(ing.delta_bytes())));
  dataset.Set("generation",
              JsonValue::Int(static_cast<int64_t>(ing.generation())));
  dataset.Set("last_compaction_ms",
              JsonValue::Number(server_->last_compaction_ms()));
  dataset.Set("compacting", JsonValue::Bool(server_->compacting()));
  root.Set("dataset", std::move(dataset));

  JsonValue srv = JsonValue::Object();
  srv.Set("port", JsonValue::Int(server_->port()));
  srv.Set("admin_port", JsonValue::Int(port_));
  srv.Set("open_connections",
          JsonValue::Int(static_cast<int64_t>(server_->open_connections())));
  srv.Set("admin_connections",
          JsonValue::Int(static_cast<int64_t>(conns_.size())));
  srv.Set("inflight_requests",
          JsonValue::Int(static_cast<int64_t>(server_->loop_inflight())));
  srv.Set("executor_queue_depth",
          JsonValue::Int(static_cast<int64_t>(server_->service().inflight())));
  srv.Set("executor_threads",
          JsonValue::Int(static_cast<int64_t>(server_->service().num_threads())));
  srv.Set("max_inflight",
          JsonValue::Int(static_cast<int64_t>(
              server_->service().options().max_inflight)));
  srv.Set("result_cache_enabled",
          JsonValue::Bool(server_->service().result_cache() != nullptr));
  srv.Set("draining", JsonValue::Bool(server_->draining()));
  srv.Set("trace_sample_every", JsonValue::Int(trace_sample_every()));
  root.Set("server", std::move(srv));

  const ServerCounters& c = server_->counters();
  JsonValue counters = JsonValue::Object();
  counters.Set("connections_accepted", JsonValue::Int(c.connections_accepted));
  counters.Set("connections_closed", JsonValue::Int(c.connections_closed));
  counters.Set("connections_rejected", JsonValue::Int(c.connections_rejected));
  counters.Set("requests", JsonValue::Int(c.requests));
  counters.Set("trip_requests", JsonValue::Int(c.trip_requests));
  counters.Set("responses_ok", JsonValue::Int(c.responses_ok));
  counters.Set("cache_hits", JsonValue::Int(c.cache_hits));
  counters.Set("rejected_overloaded", JsonValue::Int(c.rejected_overloaded));
  counters.Set("rejected_shutting_down",
               JsonValue::Int(c.rejected_shutting_down));
  counters.Set("deadline_exceeded", JsonValue::Int(c.deadline_exceeded));
  counters.Set("parse_errors", JsonValue::Int(c.parse_errors));
  counters.Set("oversized_frames", JsonValue::Int(c.oversized_frames));
  counters.Set("errors_internal", JsonValue::Int(c.errors_internal));
  counters.Set("ingest_requests", JsonValue::Int(c.ingest_requests));
  counters.Set("ingest_accepted_trips",
               JsonValue::Int(c.ingest_accepted_trips));
  counters.Set("ingest_rejected_batches",
               JsonValue::Int(c.ingest_rejected_batches));
  counters.Set("compactions", JsonValue::Int(c.compactions));
  root.Set("counters", std::move(counters));

  JsonValue slow = JsonValue::Object();
  slow.Set("added", JsonValue::Int(slowlog_.added()));
  slow.Set("recent", JsonValue::Int(static_cast<int64_t>(
                         slowlog_.recent().size())));
  slow.Set("slowest", JsonValue::Int(static_cast<int64_t>(
                          slowlog_.slowest().size())));
  root.Set("slowlog", std::move(slow));

  std::string body = root.Serialize();
  body.push_back('\n');
  return body;
}

std::string AdminPlane::RenderSlowQueries() const {
  std::string out = "{\"added\":";
  out += std::to_string(slowlog_.added());
  out += ",\"slowest\":[";
  bool first = true;
  for (const SlowLogEntry& e : slowlog_.slowest()) {
    if (!first) out.push_back(',');
    first = false;
    AppendSlowEntryJson(&out, e);
  }
  out += "],\"recent\":[";
  first = true;
  for (const SlowLogEntry& e : slowlog_.recent()) {
    if (!first) out.push_back(',');
    first = false;
    AppendSlowEntryJson(&out, e);
  }
  out += "]}\n";
  return out;
}

int64_t SlowLogNowUnixMs() { return UnixNowMs(); }

}  // namespace uots

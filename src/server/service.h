// Query execution service: admission control + thread-pool dispatch.
//
// The service is the bridge between the single-threaded reactor and the
// compute pool. Admission is a hard bound on in-flight requests (queued +
// executing): once full, TryExecute refuses immediately and the server
// answers "overloaded" — a saturating burst costs attackers a rejection
// frame each, never unbounded queue memory or latency collapse for the
// requests already admitted. Engines (which hold per-thread scratch state)
// are pooled per algorithm kind and re-armed with the request's CancelToken
// before every search, so a fired deadline aborts the engine at its next
// round boundary instead of holding a worker hostage.

#ifndef UOTS_SERVER_SERVICE_H_
#define UOTS_SERVER_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/result_cache.h"
#include "core/algorithm.h"
#include "core/database.h"
#include "trip/planner.h"
#include "util/cancel.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace uots {

/// \brief Tuning for UotsService.
struct ServiceOptions {
  /// Worker threads; 0 = hardware concurrency.
  int threads = 0;
  /// Hard bound on in-flight requests (queued + executing). Admission
  /// beyond this returns "overloaded".
  size_t max_inflight = 256;
  /// Deadline applied to requests that do not carry one; 0 disables.
  double default_deadline_ms = 0.0;
  /// Result-cache entry budget; 0 disables the result cache entirely.
  size_t cache_max_entries = 0;
  /// Result-cache entry TTL in milliseconds; 0 = never expires.
  double cache_ttl_ms = 0.0;
  /// Result-cache shard count (rounded to a power of two).
  size_t cache_shards = 8;
  /// Engine knobs shared by every pooled UOTS engine.
  UotsSearchOptions uots;
};

/// \brief Per-request observability context riding along with TryExecute.
struct ExecuteOptions {
  /// Correlation id attached to the worker's "server_execute" trace span
  /// (as the span's numeric id, via a stable string hash). -1 = none.
  int64_t span_id = -1;
  /// Capture the span tree of this request's execution (worker-thread
  /// scope) into ExecutionResult::spans. Used by runtime trace sampling;
  /// empty in UOTS_TRACE=OFF builds.
  bool capture_spans = false;
};

/// \brief Outcome of one executed request, delivered to the completion
/// callback on a worker thread.
struct ExecutionResult {
  Status status;          ///< engine status (OK, kDeadlineExceeded, ...)
  SearchResult result;    ///< valid when status.ok()
  double queue_wait_ms = 0.0;  ///< admission -> worker pickup
  double execute_ms = 0.0;     ///< engine wall time
  /// The request's span tree when ExecuteOptions::capture_spans was set
  /// (names are static strings; safe to keep past the request).
  std::vector<TraceEvent> spans;
};

/// \brief Outcome of one executed trip request (see TryExecuteTrip).
struct TripExecutionResult {
  Status status;        ///< planner status (OK, kDeadlineExceeded, ...)
  TripResult result;    ///< valid when status.ok()
  double queue_wait_ms = 0.0;  ///< admission -> worker pickup
  double execute_ms = 0.0;     ///< planner wall time
  /// The request's span tree when ExecuteOptions::capture_spans was set.
  std::vector<TraceEvent> spans;
};

/// \brief Thread-pool-backed query executor with bounded admission.
///
/// TryExecute may be called from any thread; completions run on pool
/// workers (wrap them with EventLoop::Post to get back to a reactor).
class UotsService {
 public:
  /// Owning form: the service shares the database's lifetime, which is
  /// what live compaction needs (SwapDatabase retires the old base only
  /// after the last in-flight request drops its reference).
  UotsService(std::shared_ptr<const TrajectoryDatabase> db,
              const ServiceOptions& opts);
  /// Non-owning convenience for embedders/tests whose database outlives
  /// the service. Such a service still serves ingests, but SwapDatabase
  /// must not retire the caller's object (it only re-points the service).
  UotsService(const TrajectoryDatabase& db, const ServiceOptions& opts)
      : UotsService(std::shared_ptr<const TrajectoryDatabase>(
                        std::shared_ptr<const void>(), &db),
                    opts) {}
  ~UotsService();

  UotsService(const UotsService&) = delete;
  UotsService& operator=(const UotsService&) = delete;

  /// Admits and dispatches one query. `cancel` (may be nullptr) must stay
  /// valid until `done` runs; `done` is invoked exactly once on a worker
  /// thread when admission succeeds. \return false when the service is at
  /// capacity or shutting down — `done` is NOT invoked in that case.
  /// A non-empty `cache_key` (from CacheLookup's miss path) makes a
  /// successful result populate the result cache on the worker thread.
  bool TryExecute(const UotsQuery& query, AlgorithmKind kind,
                  const CancelToken* cancel,
                  std::function<void(ExecutionResult)> done,
                  std::string cache_key = {},
                  const ExecuteOptions& exec_opts = {});

  /// Admits and dispatches one trip-assembly query. Shares the admission
  /// budget, worker pool, snapshot pinning, and drain accounting with
  /// TryExecute; trip planners are pooled separately from retrieval
  /// engines (same version-tagged lifecycle). \return false when at
  /// capacity or shutting down — `done` is NOT invoked in that case.
  bool TryExecuteTrip(const TripQuery& query, const CancelToken* cancel,
                      std::function<void(TripExecutionResult)> done,
                      std::string cache_key = {},
                      const ExecuteOptions& exec_opts = {});

  /// \brief Result-cache probe, cheap enough for the reactor thread.
  ///
  /// Returns the cached answer on a hit. On a miss, `key_out` receives the
  /// canonical key to pass to TryExecute so the computed result gets
  /// cached; with caching disabled (or for bypassed requests — don't call)
  /// `key_out` is cleared and the return is null. Lookup time lands in the
  /// "server.cache.lookup" histogram.
  std::shared_ptr<const CachedResult> CacheLookup(const UotsQuery& query,
                                                  AlgorithmKind kind,
                                                  std::string* key_out);

  /// Trip-family twin of CacheLookup (schema byte keeps the key spaces
  /// disjoint; the same generation salt applies).
  std::shared_ptr<const CachedResult> TripCacheLookup(const TripQuery& query,
                                                      std::string* key_out);

  /// The result cache, or null when ServiceOptions disabled it.
  ResultCache* result_cache() { return result_cache_.get(); }

  /// Copies cache counters into MetricsRegistry::Global() under
  /// server.cache.{hits,misses,evictions,bytes}, plus lifetime distance-
  /// oracle totals under server.oracle.{lookups,pruned_candidates}. The
  /// admin plane calls this at every /metrics scrape and the server calls
  /// it on a periodic loop timer, so the exported values are never staler
  /// than one publish interval (they used to be exported only at
  /// shutdown).
  void PublishCacheMetrics() const;

  /// Requests currently admitted (queued + executing).
  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// Stops admission; queued work still completes (their callbacks run).
  void BeginShutdown();
  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_relaxed);
  }

  /// Blocks until every admitted request has completed.
  void Drain();

  const ServiceOptions& options() const { return opts_; }
  size_t num_threads() const { return pool_->num_threads(); }

  /// Current database (pin for the duration of one use).
  std::shared_ptr<const TrajectoryDatabase> db() const {
    std::lock_guard<std::mutex> lock(db_mu_);
    return db_;
  }

  /// \brief Points the service at a compacted replacement database.
  ///
  /// Safe while requests are executing: in-flight work pins the old
  /// database via the snapshot it took at admission; the idle engine pool
  /// (whose engines hold raw pointers into the old base) is flushed, and
  /// engines released later are discarded by version tag. Call
  /// ResultCache-side invalidation separately (the compactor does).
  void SwapDatabase(std::shared_ptr<const TrajectoryDatabase> db);

  /// Monotonic count of SwapDatabase calls (engine-pool version tag).
  uint64_t db_version() const {
    return db_version_.load(std::memory_order_acquire);
  }

  /// Idle pooled engines of `kind` (bounded by the worker count).
  size_t pooled_engines(AlgorithmKind kind) const;
  /// Idle pooled engines across all kinds.
  size_t pooled_engines() const;
  /// Idle pooled trip planners (bounded by the worker count).
  size_t pooled_trip_planners() const;

 private:
  /// A pooled engine; created lazily, one per concurrently-running request
  /// of its kind (bounded by the worker count). Engines hold raw pointers
  /// into one database build, so every entry is tagged with the
  /// SwapDatabase version it was built against and dies with it.
  struct PooledEngine {
    AlgorithmKind kind;
    uint64_t db_version;
    std::unique_ptr<SearchAlgorithm> engine;
  };

  /// One admission's pinned view of the database.
  struct DbSnapshot {
    std::shared_ptr<const TrajectoryDatabase> db;
    uint64_t version;
  };
  DbSnapshot SnapshotDb() const;

  /// A pooled trip planner; same version-tagged lifecycle as PooledEngine
  /// (planners hold raw pointers into one database build too).
  struct PooledTripPlanner {
    uint64_t db_version;
    std::unique_ptr<TripPlanner> planner;
  };

  std::unique_ptr<SearchAlgorithm> AcquireEngine(AlgorithmKind kind,
                                                 const DbSnapshot& snap);
  void ReleaseEngine(AlgorithmKind kind, uint64_t db_version,
                     std::unique_ptr<SearchAlgorithm> engine);
  std::unique_ptr<TripPlanner> AcquireTripPlanner(const DbSnapshot& snap);
  void ReleaseTripPlanner(uint64_t db_version,
                          std::unique_ptr<TripPlanner> planner);

  mutable std::mutex db_mu_;
  std::shared_ptr<const TrajectoryDatabase> db_;
  std::atomic<uint64_t> db_version_{0};
  ServiceOptions opts_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ResultCache> result_cache_;

  mutable std::mutex engines_mu_;
  std::vector<PooledEngine> free_engines_;
  std::vector<PooledTripPlanner> free_trip_planners_;

  std::atomic<size_t> inflight_{0};
  std::atomic<bool> shutting_down_{false};

  /// Lifetime totals of the per-query oracle counters, accumulated on
  /// worker threads and copied out by PublishCacheMetrics.
  std::atomic<int64_t> oracle_lookups_total_{0};
  std::atomic<int64_t> oracle_pruned_total_{0};

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace uots

#endif  // UOTS_SERVER_SERVICE_H_

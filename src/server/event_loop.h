// Single-threaded epoll event loop with timers and cross-thread posting.
//
// The serving layer's reactor: non-blocking fds are registered with a
// callback per fd (level-triggered — the callback runs as long as the
// condition holds), timers ride the TimerHeap and bound each epoll_wait,
// and other threads hand work to the loop through Post(), which enqueues a
// task and wakes the loop via an eventfd. This is how thread-pool workers
// return completed query results to the loop that owns the connections —
// the loop thread is the only one that ever touches connection state, so
// the server needs no per-connection locking at all.

#ifndef UOTS_SERVER_EVENT_LOOP_H_
#define UOTS_SERVER_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "server/timer_heap.h"
#include "util/status.h"

namespace uots {

/// \brief Level-triggered epoll reactor; Run() on exactly one thread.
///
/// Thread-safety: Post() and Stop() may be called from any thread; every
/// other method must be called from the loop thread (or before Run).
class EventLoop {
 public:
  /// Receives the ready EPOLL* event mask for the fd.
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd. Must be called
  /// (successfully) before anything else; idempotent.
  Status Init();

  /// Registers `fd` for `events` (EPOLLIN and/or EPOLLOUT). The loop never
  /// takes ownership of the fd; close it after RemoveFd.
  Status AddFd(int fd, uint32_t events, FdCallback callback);

  /// Changes the interest mask of a registered fd.
  Status SetEvents(int fd, uint32_t events);

  /// Unregisters the fd. Safe to call from inside its own callback; any
  /// remaining ready events for it in the current batch are dropped.
  void RemoveFd(int fd);

  /// Arms a timer at an absolute steady-clock deadline (CancelToken::NowNs
  /// time base).
  TimerHeap::TimerId AddTimerAt(int64_t deadline_ns,
                                std::function<void()> callback);
  /// Arms a timer `delay_ms` from now (<= 0 fires on the next iteration).
  TimerHeap::TimerId AddTimerAfterMs(double delay_ms,
                                     std::function<void()> callback);
  bool CancelTimer(TimerHeap::TimerId id) { return timers_.Cancel(id); }
  bool RescheduleTimerAfterMs(TimerHeap::TimerId id, double delay_ms);

  /// Enqueues `fn` to run on the loop thread and wakes the loop. The only
  /// safe way for worker threads to touch loop-owned state.
  void Post(std::function<void()> fn);

  /// Dispatches events, timers, and posted tasks until Stop().
  void Run();

  /// Requests Run() to return after the current iteration; any thread.
  void Stop();

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }
  TimerHeap& timers() { return timers_; }

  /// Steady-clock nanoseconds, the loop's (and the timers') time base.
  static int64_t NowNs();

 private:
  void Wakeup();
  void RunPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  // shared_ptr so a callback that removes its own (or another) fd during
  // dispatch never frees a std::function that is still executing.
  std::unordered_map<int, std::shared_ptr<FdCallback>> fds_;
  TimerHeap timers_;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  std::atomic<bool> stop_{false};
};

}  // namespace uots

#endif  // UOTS_SERVER_EVENT_LOOP_H_

// Live introspection plane: an HTTP/1.0 admin listener on the reactor.
//
// The admin plane runs on the *same* EventLoop thread as the query server,
// which is the whole trick: every piece of state it exposes (connection
// map, loop inflight count, drain flag, slow-query log) is loop-owned, so
// serving /statusz or /slowqueries needs no locking and can never observe
// a torn update. Scrapes are tiny (a few KiB of text rendered in
// microseconds), so sharing the reactor costs the query path nothing
// measurable — see EXPERIMENTS.md M4.
//
// Endpoints (HTTP/1.0, one request per connection, Connection: close):
//   GET  /metrics      Prometheus text: every MetricsRegistry counter and
//                      histogram (quantiles + cumulative buckets), the
//                      reactor's ServerCounters, and liveness gauges.
//                      Cache/oracle counters are published at scrape time,
//                      so values are always current.
//   GET  /statusz      JSON: uptime, build info, dataset fingerprint and
//                      shape, oracle/snapshot presence, live connection
//                      count, executor queue depth, in-flight requests.
//   GET  /healthz      Drain-aware liveness: 200 "ok" while serving,
//                      503 "draining" once graceful shutdown begins.
//   GET  /slowqueries  JSON ring of the slowest and the most recent
//                      requests: canonical query summary, per-phase time
//                      breakdown, cache/oracle counters, request id, and
//                      (for sampled requests) the captured span tree.
//   GET  /tracing      Current trace-sampling rate as JSON.
//   POST /tracing?sample=N
//                      Capture the span tree of every Nth executed request
//                      into its slow-log entry; 0 disables. Takes effect
//                      immediately, no restart.

#ifndef UOTS_SERVER_ADMIN_H_
#define UOTS_SERVER_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "server/http.h"
#include "server/timer_heap.h"
#include "util/counters.h"
#include "util/status.h"
#include "util/trace.h"

namespace uots {

class UotsServer;

/// \brief One completed request as remembered by the slow-query log.
struct SlowLogEntry {
  std::string request_id;     ///< correlation id (client-supplied or s*-*)
  std::string algorithm;      ///< ToString(AlgorithmKind) name, or "TRIP"
  std::string query_summary;  ///< canonical "locs=.. kw=.. lambda=.. k=.."
  /// Segment count of the best assembled trip (trip requests only; -1 for
  /// retrieval queries, omitted from the JSON rendering).
  int segments = -1;
  std::string status;         ///< wire status name ("ok", ...)
  bool cached = false;        ///< answered from the result cache
  double total_ms = 0.0;      ///< arrival -> response queued
  double queue_wait_ms = 0.0;
  double execute_ms = 0.0;
  int64_t completed_unix_ms = 0;  ///< wall clock at completion
  bool has_stats = false;
  QueryStats stats;           ///< engine counters incl. phase_ns breakdown
  /// Captured span tree when this request was trace-sampled; names have
  /// static storage duration so the entries stay valid indefinitely.
  std::vector<TraceEvent> spans;
};

/// \brief Bounded log of the slowest + most recent completed requests.
///
/// Loop-thread-only by design (the reactor is the sole writer and the
/// admin endpoints — same thread — the sole reader), so it needs no lock:
/// "lock-cheap" here is literal. Add() is O(slowest capacity) in the worst
/// case, on vectors of a few dozen entries.
class SlowQueryLog {
 public:
  SlowQueryLog(size_t recent_capacity, size_t slowest_capacity)
      : recent_capacity_(recent_capacity),
        slowest_capacity_(slowest_capacity) {}

  void Add(SlowLogEntry entry);

  /// Most recent first.
  const std::deque<SlowLogEntry>& recent() const { return recent_; }
  /// Slowest first (by total_ms).
  const std::vector<SlowLogEntry>& slowest() const { return slowest_; }
  /// Lifetime number of entries offered to Add().
  int64_t added() const { return added_; }

 private:
  size_t recent_capacity_;
  size_t slowest_capacity_;
  std::deque<SlowLogEntry> recent_;    ///< front = newest
  std::vector<SlowLogEntry> slowest_;  ///< sorted descending total_ms
  int64_t added_ = 0;
};

/// \brief Admin-plane configuration (ServerOptions::admin).
struct AdminOptions {
  std::string bind_address = "127.0.0.1";
  /// -1 = admin plane disabled (default); 0 = ephemeral (read the bound
  /// port from AdminPlane::port()); else the fixed port to bind.
  int port = -1;
  int listen_backlog = 16;
  /// Concurrent admin connections; scrapers beyond this are refused.
  size_t max_connections = 32;
  /// A connection must deliver a complete request within this window.
  double read_timeout_ms = 5000.0;
  size_t slowlog_recent = 64;
  size_t slowlog_slowest = 32;
};

/// \brief The admin HTTP listener; owned by UotsServer, lives on its loop.
///
/// Every method (besides the atomic trace_sample_every accessors) must be
/// called on the server's loop thread, or before Run() starts.
class AdminPlane {
 public:
  AdminPlane(UotsServer* server, const AdminOptions& opts);
  ~AdminPlane();

  AdminPlane(const AdminPlane&) = delete;
  AdminPlane& operator=(const AdminPlane&) = delete;

  /// Binds and registers the listener on the server's loop.
  Status Start();

  /// Closes the listener and every admin connection (idempotent). Called
  /// when the server's loop is about to stop; the destructor also closes
  /// raw fds for the case where the loop is already gone.
  void Shutdown();

  uint16_t port() const { return port_; }
  SlowQueryLog& slowlog() { return slowlog_; }

  /// Trace-sampling period: capture the span tree of every Nth executed
  /// request; 0 = sampling off. Readable from any thread.
  int trace_sample_every() const {
    return trace_sample_every_.load(std::memory_order_relaxed);
  }
  void set_trace_sample_every(int n) {
    trace_sample_every_.store(n < 0 ? 0 : n, std::memory_order_relaxed);
  }

  /// Renders the full Prometheus exposition (also used by tests).
  std::string RenderMetrics() const;

 private:
  struct AdminConn {
    int fd = -1;
    HttpRequestParser parser;
    std::string out;
    size_t out_offset = 0;
    TimerHeap::TimerId read_timer = TimerHeap::kInvalidTimer;
  };

  void OnAcceptReady();
  void OnConnEvent(uint64_t id, uint32_t events);
  /// Routes one parsed request; returns the complete HTTP response bytes.
  std::string Dispatch(const HttpRequest& req);
  std::string RenderStatusz() const;
  std::string RenderSlowQueries() const;
  std::string RenderHealthz(int* status) const;
  void QueueResponse(uint64_t id, AdminConn* conn, std::string response);
  void CloseConn(uint64_t id);

  UotsServer* server_;
  AdminOptions opts_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, AdminConn> conns_;
  SlowQueryLog slowlog_;
  std::atomic<int> trace_sample_every_{0};
};

/// Wall-clock milliseconds since the unix epoch (slow-log timestamps).
int64_t SlowLogNowUnixMs();

namespace promtext {

/// "server.request_latency" -> "uots_server_request_latency" (dots and
/// other non-[a-zA-Z0-9_] bytes become underscores).
std::string MangleMetricName(std::string_view name);

}  // namespace promtext

}  // namespace uots

#endif  // UOTS_SERVER_ADMIN_H_

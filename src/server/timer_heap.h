// Min-heap timer subsystem for the serving event loop.
//
// One binary min-heap of (deadline, timer id) nodes drives every timed
// behaviour in the server: per-connection idle timeouts, per-request
// deadlines, and the shutdown drain fuse. Cancel and Reschedule use lazy
// deletion — the live deadline for an id lives in a side map, and a popped
// heap node counts only when it matches — so both are O(log n) pushes with
// no heap surgery, the same trick the dary_heap's version tags play for
// bulk reset. Not thread-safe: the owning event loop is single-threaded by
// design, and cross-thread arming goes through EventLoop::Post.

#ifndef UOTS_SERVER_TIMER_HEAP_H_
#define UOTS_SERVER_TIMER_HEAP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace uots {

/// \brief Monotonic-deadline timer queue with cancel and reschedule.
class TimerHeap {
 public:
  using TimerId = uint64_t;
  /// Never returned by Add; safe "no timer" sentinel for callers.
  static constexpr TimerId kInvalidTimer = 0;

  /// Schedules `callback` to run when RunExpired is called with
  /// now >= `deadline_ns` (steady-clock nanoseconds, CancelToken::NowNs).
  TimerId Add(int64_t deadline_ns, std::function<void()> callback);

  /// Cancels a pending timer. \return false when the id already fired,
  /// was cancelled, or never existed (kInvalidTimer included).
  bool Cancel(TimerId id);

  /// Moves a pending timer to a new deadline, keeping its callback and id.
  /// \return false when the id is not pending.
  bool Reschedule(TimerId id, int64_t deadline_ns);

  /// Earliest pending deadline, or -1 when no timer is pending. Prunes
  /// cancelled nodes off the heap top as a side effect.
  int64_t NextDeadlineNs();

  /// Fires every timer with deadline <= `now_ns` in deadline order (ties by
  /// creation order). A callback may Add/Cancel/Reschedule freely; timers
  /// it adds that are already due fire in the same call. \return the number
  /// of callbacks run.
  int RunExpired(int64_t now_ns);

  /// Timers armed and not yet fired or cancelled.
  size_t pending() const { return pending_.size(); }

 private:
  struct Node {
    int64_t deadline_ns;
    uint64_t seq;  ///< creation order, the tie-break
    TimerId id;
  };
  struct Pending {
    int64_t deadline_ns;  ///< the live deadline; stale nodes mismatch
    uint64_t seq;
    std::function<void()> callback;
  };

  static bool Later(const Node& a, const Node& b) {
    if (a.deadline_ns != b.deadline_ns) return a.deadline_ns > b.deadline_ns;
    return a.seq > b.seq;
  }
  void PushNode(Node n);
  void PopNode();
  /// Drops stale (cancelled/rescheduled) nodes off the top.
  void PruneTop();

  std::vector<Node> heap_;  ///< binary min-heap by (deadline, seq)
  std::unordered_map<TimerId, Pending> pending_;
  TimerId next_id_ = 1;
  uint64_t next_seq_ = 0;
};

}  // namespace uots

#endif  // UOTS_SERVER_TIMER_HEAP_H_

// Minimal HTTP/1.0 support for the admin introspection plane.
//
// The admin listener speaks just enough HTTP for curl, Prometheus, and a
// load balancer's health checker: request line + headers in, a single
// Content-Length-delimited response out, `Connection: close` semantics
// (one request per connection — scrapes are rare and tiny, so connection
// reuse buys nothing and a close-delimited lifecycle cannot leak state
// between probes). The parser is incremental and strict: header blocks
// above a small cap or without a well-formed request line are rejected so
// a stray query-protocol client (4-byte binary length prefix!) or garbage
// cannot wedge the admin port.
//
// The blocking client half (HttpFetch) is what uots_client --scrape-admin
// and the integration tests use; it is deliberately synchronous.

#ifndef UOTS_SERVER_HTTP_H_
#define UOTS_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace uots {

/// Header blocks larger than this are rejected with 431 and the
/// connection is dropped.
inline constexpr size_t kMaxHttpHeaderBytes = 8192;

/// \brief A parsed admin-plane request (headers are not retained — no
/// admin endpoint needs them).
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (upper-case as sent)
  std::string path;    ///< target without the query string ("/metrics")
  std::string query;   ///< raw query string without '?' ("sample=16")

  /// Value of `key` in the query string ("" when absent). No %-decoding —
  /// admin parameters are numbers and plain words.
  std::string QueryParam(std::string_view key) const;
};

/// \brief Incremental request parser for one admin connection.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(size_t max_header_bytes = kMaxHttpHeaderBytes)
      : max_header_bytes_(max_header_bytes) {}

  void Append(const char* data, size_t n) { buf_.append(data, n); }

  enum class Next {
    kRequest,   ///< *out holds one complete request
    kNeedMore,  ///< header block incomplete; feed more bytes
    kBad,       ///< malformed request line / method — answer 400 and close
    kTooLarge,  ///< header block exceeds the cap — answer 431 and close
  };

  /// Parses the buffered bytes. Request bodies are not supported: anything
  /// after the header block is ignored (admin POSTs carry their argument
  /// in the query string).
  Next Poll(HttpRequest* out);

 private:
  std::string buf_;
  size_t max_header_bytes_;
};

/// Serializes a complete HTTP/1.0 response with Content-Length and
/// `Connection: close`.
std::string EncodeHttpResponse(int status, std::string_view content_type,
                               std::string_view body);

/// "OK", "Not Found", ... for the handful of codes the admin plane emits.
const char* HttpStatusText(int status);

/// \brief Status + body of a fetched admin page.
struct HttpFetchResult {
  int status = 0;
  std::string body;
};

/// Blocking one-shot GET (or `method`) of http://host:port/path_and_query.
/// `host` is a dotted-quad address. Fails with IOError on connect/short
/// read and DeadlineExceeded after `timeout_ms`.
Result<HttpFetchResult> HttpFetch(const std::string& host, uint16_t port,
                                  const std::string& path_and_query,
                                  const std::string& method = "GET",
                                  double timeout_ms = 5000.0);

/// \brief Helpers for reading Prometheus text exposition (the scrape side
/// of uots_client --scrape-admin and the admin integration tests).
namespace promtext {

/// Value of the first sample line whose name+labels prefix equals
/// `series` exactly (e.g. "uots_server_requests_total" or
/// `uots_server_request_latency_seconds_bucket{le="0.005"}`).
/// Returns false when the series is absent.
bool FindValue(const std::string& text, const std::string& series,
               double* value);

/// \brief One cumulative histogram bucket from the exposition text.
struct HistogramBucket {
  double le_seconds = 0.0;    ///< +Inf parses to infinity
  int64_t cumulative = 0;     ///< count of samples <= le_seconds
};

/// All `<family>_bucket{le="..."}` samples of one histogram family, in
/// exposition order (ascending le, +Inf last). Empty when absent.
std::vector<HistogramBucket> ParseHistogramBuckets(const std::string& text,
                                                   const std::string& family);

/// Nearest-rank quantile (p in [0,100]) of the *window* between two
/// scrapes of the same histogram family: subtracts the cumulative bucket
/// counts and walks the deltas. Returns the matched bucket's le upper
/// bound in seconds; NaN when the ladders differ or the window is empty.
/// This is how a load generator reports honest server-side run-window
/// latency (the lifetime quantile gauges would mix in warmup traffic).
double DeltaQuantileSeconds(const std::vector<HistogramBucket>& before,
                            const std::vector<HistogramBucket>& after,
                            double p);

}  // namespace promtext

}  // namespace uots

#endif  // UOTS_SERVER_HTTP_H_

// The UOTS network query server: accept loop, request lifecycle, shutdown.
//
// One reactor thread (EventLoop) owns the listener, every Connection, and
// all timers; the UotsService executes queries on its thread pool and
// posts completions back. Request lifecycle:
//
//   read -> parse -> admit -> queue -> execute -> serialize -> write
//             |        |                  |
//             |        +-- full: "overloaded" (retryable) immediately
//             |        +-- draining: "shutting_down" (retryable)
//             +-- malformed/oversized: error response, connection survives
//
// Every request carries a request id — the client's "request_id" string or
// a server-generated "s<conn>-<seq>" — echoed on every response (errors
// included), attached to the worker's trace span, and recorded in the
// slow-query log, so one string joins a response, a /slowqueries row, and
// a sampled span tree.
//
// A per-request deadline timer fires on the reactor: the client gets its
// "deadline_exceeded" response at the deadline (the connection is never
// blocked behind a slow query), the request's CancelToken is cancelled so
// the engine aborts at its next round boundary, and the eventual worker
// completion is discarded. Graceful shutdown (BeginShutdown, typically from
// SIGINT/SIGTERM) closes the listener, answers new requests with
// "shutting_down", waits for in-flight requests to complete and flush, and
// then stops the loop — a drain fuse force-stops if a peer refuses to read.
// The admin listener (server/admin.h) stays up through the drain so
// /healthz can report not-ready while the drain is in progress.

#ifndef UOTS_SERVER_SERVER_H_
#define UOTS_SERVER_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "core/database.h"
#include "ingest/ingestor.h"
#include "server/admin.h"
#include "server/connection.h"
#include "server/event_loop.h"
#include "server/protocol.h"
#include "server/service.h"

namespace uots {

/// \brief Server configuration.
struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral (read the bound port from port())
  int listen_backlog = 128;
  size_t max_connections = 1024;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Connections idle (no bytes read) this long are closed; 0 disables.
  double idle_timeout_ms = 60000.0;
  /// How long BeginShutdown waits for in-flight work before force-stopping.
  double drain_timeout_ms = 10000.0;
  /// Execution / admission knobs.
  ServiceOptions service;
  /// Admin/introspection listener; admin.port = -1 (default) disables it.
  AdminOptions admin;
  /// Cache/oracle counters are re-published into MetricsRegistry on this
  /// loop-timer period (plus at every /metrics scrape); 0 disables the
  /// timer. Keeps exported values fresh even with no scraper attached.
  double metrics_publish_interval_ms = 1000.0;
  /// Human-readable dataset provenance shown in /statusz (snapshot path,
  /// city file, "synthetic", ...).
  std::string dataset_source;
  /// Destination for delta compaction: base + delta are merged, written
  /// here as a v1 snapshot (atomic tmp+fsync+rename), validated by a full
  /// reload, and swapped in live. Empty disables compaction (POST /compact
  /// answers 409 and the drain skips the final fold).
  std::string compact_snapshot_path;
  /// Period of the automatic compaction timer; fires only when the delta
  /// is non-empty. 0 disables the timer (POST /compact still works when a
  /// snapshot path is configured).
  double compact_interval_ms = 0.0;
};

/// \brief Reactor-facing counters, readable after Run() returns (or from
/// the loop thread).
struct ServerCounters {
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t connections_rejected = 0;  ///< max_connections hit
  int64_t requests = 0;              ///< parsed frames that named a query
  int64_t trip_requests = 0;         ///< parsed frames that named a trip
  int64_t responses_ok = 0;
  int64_t cache_hits = 0;  ///< ok responses served from the result cache
  int64_t rejected_overloaded = 0;
  int64_t rejected_shutting_down = 0;
  int64_t deadline_exceeded = 0;
  int64_t parse_errors = 0;  ///< malformed JSON or invalid fields
  int64_t oversized_frames = 0;
  int64_t errors_internal = 0;
  int64_t ingest_requests = 0;          ///< parsed frames that named an ingest
  int64_t ingest_accepted_trips = 0;    ///< trajectories ingested
  int64_t ingest_rejected_batches = 0;  ///< batches refused (atomic: 0 trips)
  int64_t compactions = 0;              ///< delta folds swapped in live
};

/// \brief TCP front-end over a TrajectoryDatabase.
class UotsServer {
 public:
  /// Owning form: the server shares the database's lifetime, which live
  /// compaction requires — SwapDatabase retires the old base only after
  /// the last in-flight request drops its pinned reference.
  UotsServer(std::shared_ptr<const TrajectoryDatabase> db,
             const ServerOptions& opts);
  /// Non-owning convenience for embedders/tests whose database outlives
  /// the server. Ingest works; compaction swaps merely re-point the
  /// server (the caller's object is never freed).
  UotsServer(const TrajectoryDatabase& db, const ServerOptions& opts)
      : UotsServer(std::shared_ptr<const TrajectoryDatabase>(
                       std::shared_ptr<const void>(), &db),
                   opts) {}
  ~UotsServer();

  UotsServer(const UotsServer&) = delete;
  UotsServer& operator=(const UotsServer&) = delete;

  /// Binds and listens (query listener and, when configured, the admin
  /// listener); after OK, port() / admin_port() are the actual ports.
  Status Start();

  /// Runs the reactor until shutdown completes. Call from the thread that
  /// owns the server (blocks).
  void Run();

  /// Begins graceful shutdown; safe from any thread (posts to the loop).
  void RequestShutdown();

  uint16_t port() const { return port_; }
  /// Bound admin port; 0 when the admin plane is disabled.
  uint16_t admin_port() const {
    return admin_ == nullptr ? 0 : admin_->port();
  }
  const ServerCounters& counters() const { return counters_; }
  size_t open_connections() const { return conns_.size(); }
  /// Requests admitted by the loop whose response is not yet queued.
  size_t loop_inflight() const { return loop_inflight_; }
  /// True once graceful shutdown has begun (loop thread).
  bool draining() const { return draining_; }
  EventLoop& loop() { return loop_; }
  UotsService& service() { return *service_; }
  /// The currently-serving database (loop thread; compaction may swap it).
  const TrajectoryDatabase& db() const { return *db_; }
  /// Ingest-side state (loop thread): delta size, generation, tallies.
  const Ingestor& ingestor() const { return ingestor_; }
  /// \brief Folds the delta into a fresh base snapshot, off-thread.
  ///
  /// Loop thread only (the admin plane and the compaction timer call it
  /// there). Seals the current pending set, merges base + delta on a
  /// background thread, writes options().compact_snapshot_path atomically,
  /// validates it with a full reload, and posts the swap back to the loop.
  /// Fails fast when no snapshot path is configured, a compaction is
  /// already running, the server is draining, or the delta is empty.
  Status TriggerCompaction();
  /// True while a background compaction is in flight (loop thread).
  bool compacting() const { return compacting_; }
  /// Wall duration of the last completed compaction; -1 before the first.
  double last_compaction_ms() const { return last_compaction_ms_; }
  const ServerOptions& options() const { return opts_; }
  /// The admin plane, or null when disabled.
  AdminPlane* admin() { return admin_.get(); }
  /// Wall-clock (unix) and steady-clock times captured in Start().
  int64_t start_unix_ms() const { return start_unix_ms_; }
  int64_t start_steady_ns() const { return start_steady_ns_; }

 private:
  friend class AdminPlane;  // reads loop-owned state for /statusz et al.

  /// Loop-owned per-request state, shared with the deadline timer and the
  /// completion closure.
  struct RequestCtx {
    uint64_t conn_id = 0;
    int64_t request_id = 0;       ///< wire "id" (numeric correlation)
    std::string request_id_str;   ///< "request_id" (observability key)
    AlgorithmKind kind = AlgorithmKind::kUots;
    bool is_trip = false;         ///< trip-assembly request (kind unused)
    std::string query_summary;    ///< only filled when the admin plane is on
    int64_t arrival_ns = 0;
    double deadline_ms = 0.0;
    CancelToken token;
    bool responded = false;
    TimerHeap::TimerId deadline_timer = TimerHeap::kInvalidTimer;
  };

  /// Outcome of the background merge, posted back to the loop thread.
  struct CompactionOutcome {
    Status status;
    std::shared_ptr<const TrajectoryDatabase> db;  ///< validated reload
    size_t sealed = 0;      ///< pending trips folded into the new base
    double build_ms = 0.0;  ///< merge + write + validate wall time
  };

  void OnAcceptReady();
  void OnConnEvent(uint64_t conn_id, uint32_t events);
  void HandleFrame(Connection* conn, std::string_view payload);
  void HandleQuery(Connection* conn, const JsonValue& doc);
  void HandleTrip(Connection* conn, const JsonValue& doc);
  void HandleIngest(Connection* conn, const JsonValue& doc);
  void SendIngestResponse(Connection* conn, const IngestResponse& resp);
  /// Background-thread body of one compaction (never touches loop state).
  void RunCompaction(std::shared_ptr<const TrajectoryDatabase> base,
                     std::vector<Trajectory> sealed_trips);
  /// Merge base + `trips`, write `path` atomically, reload + validate.
  /// Pure with respect to server state (also run synchronously at shutdown
  /// to fold an unflushed delta before exit).
  static CompactionOutcome BuildCompactedSnapshot(
      const TrajectoryDatabase& base, const std::vector<Trajectory>& trips,
      const std::string& path);
  /// Loop-thread completion: swap the validated reload in (or record the
  /// failure) and release the single-compaction latch.
  void FinishCompaction(CompactionOutcome outcome);
  void RequeueCompactionTimer();
  /// Copies ingest-side tallies into MetricsRegistry::Global() under
  /// server.ingest.* (loop thread; the admin plane triggers it per scrape
  /// via the metrics timer's published values).
  void PublishIngestMetrics() const;
  void OnDeadline(const std::shared_ptr<RequestCtx>& ctx);
  void OnComplete(const std::shared_ptr<RequestCtx>& ctx, ExecutionResult r);
  void OnTripComplete(const std::shared_ptr<RequestCtx>& ctx,
                      TripExecutionResult r);

  Connection* FindConn(uint64_t conn_id);
  void SendResponse(Connection* conn, const QueryResponse& resp);
  void SendTripResponse(Connection* conn, const TripResponse& resp);
  void SendError(Connection* conn, int64_t request_id,
                 const std::string& request_id_str, ResponseStatus status,
                 const std::string& error);
  void UpdateWriteInterest(Connection* conn);
  void TouchIdleTimer(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void BeginShutdown();
  void MaybeFinishShutdown();
  void FinishShutdown();
  void RequeueMetricsTimer();
  /// Fresh server-generated request id ("s<conn>-<seq>").
  std::string GenerateRequestId(uint64_t conn_id);
  /// Appends one completed request to the slow-query log (admin on only).
  /// `segments` is the best assembled trip's segment count for trip
  /// requests (-1 for retrieval queries, where it is meaningless).
  void RecordSlowLog(const RequestCtx& ctx, const char* status_name,
                     bool cached, double total_ms, double queue_wait_ms,
                     double execute_ms, const QueryStats* stats,
                     std::vector<TraceEvent> spans, int segments = -1);

  std::shared_ptr<const TrajectoryDatabase> db_;
  ServerOptions opts_;
  EventLoop loop_;
  std::unique_ptr<UotsService> service_;
  Ingestor ingestor_;

  /// Single-compaction latch plus the worker doing the merge. The thread
  /// is joined in FinishCompaction (it has already posted its result by
  /// then) or, if a drain interrupts it, in FinishShutdown.
  bool compacting_ = false;
  std::thread compact_thread_;
  double last_compaction_ms_ = -1.0;
  TimerHeap::TimerId compact_timer_ = TimerHeap::kInvalidTimer;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 1;
  uint64_t next_request_seq_ = 1;
  std::map<uint64_t, std::unique_ptr<Connection>> conns_;
  size_t loop_inflight_ = 0;  ///< requests admitted, response not yet queued
  bool draining_ = false;
  bool stop_requested_ = false;
  TimerHeap::TimerId drain_fuse_ = TimerHeap::kInvalidTimer;
  TimerHeap::TimerId metrics_timer_ = TimerHeap::kInvalidTimer;
  ServerCounters counters_;
  int64_t start_unix_ms_ = 0;
  int64_t start_steady_ns_ = 0;
  uint64_t trace_sample_counter_ = 0;
  std::unique_ptr<AdminPlane> admin_;  // after loop_: destroyed first
};

}  // namespace uots

#endif  // UOTS_SERVER_SERVER_H_

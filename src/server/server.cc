#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "cache/distance_field_cache.h"
#include "storage/resolver.h"
#include "storage/snapshot_writer.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace uots {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError("fcntl(O_NONBLOCK): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

/// FNV-1a over the request-id string, folded to a non-negative int64 — the
/// numeric span id that joins a trace span back to its request id.
int64_t HashRequestId(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<int64_t>(h & 0x7fffffffffffffffULL);
}

/// Canonical one-line query description for slow-log entries.
std::string SummarizeQuery(const UotsQuery& q, AlgorithmKind kind) {
  std::string out = "locs=";
  out += std::to_string(q.locations.size());
  out += " kw=";
  out += std::to_string(q.keywords.size());
  out += " lambda=";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", q.lambda);
  out += buf;
  out += " k=";
  out += std::to_string(q.k);
  out += " algo=";
  out += ToString(kind);
  return out;
}

/// Canonical one-line trip-query description for slow-log entries.
std::string SummarizeTripQuery(const TripQuery& q) {
  std::string out = "trip locs=";
  out += std::to_string(q.locations.size());
  out += " kw=";
  out += std::to_string(q.keywords.size());
  out += " lambda=";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", q.lambda);
  out += buf;
  out += " k=";
  out += std::to_string(q.k);
  out += " ordered=";
  out += q.ordered ? '1' : '0';
  out += " cat=";
  out += q.use_categories ? '1' : '0';
  if (q.gap_budget_m > 0.0) {
    std::snprintf(buf, sizeof(buf), " gap=%.3g", q.gap_budget_m);
    out += buf;
  }
  return out;
}

}  // namespace

UotsServer::UotsServer(std::shared_ptr<const TrajectoryDatabase> db,
                       const ServerOptions& opts)
    : db_(std::move(db)), opts_(opts), ingestor_(db_.get()) {
  service_ = std::make_unique<UotsService>(db_, opts_.service);
}

UotsServer::~UotsServer() {
  if (compact_thread_.joinable()) compact_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

Status UotsServer::Start() {
  UOTS_RETURN_NOT_OK(loop_.Init());
  start_steady_ns_ = EventLoop::NowNs();
  start_unix_ms_ = SlowLogNowUnixMs();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + opts_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind: " + std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, opts_.listen_backlog) < 0) {
    return Status::IOError("listen: " + std::string(std::strerror(errno)));
  }
  UOTS_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  // Recover the actual port (meaningful when opts_.port == 0).
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  UOTS_RETURN_NOT_OK(loop_.AddFd(listen_fd_, EPOLLIN, [this](uint32_t) {
    OnAcceptReady();
  }));

  if (opts_.admin.port >= 0) {
    admin_ = std::make_unique<AdminPlane>(this, opts_.admin);
    UOTS_RETURN_NOT_OK(admin_->Start());
  }
  if (opts_.metrics_publish_interval_ms > 0.0) {
    // Self-rearming publish tick: exported cache/oracle counters stay fresh
    // even when nobody scrapes (they used to appear only at shutdown).
    metrics_timer_ = loop_.AddTimerAfterMs(opts_.metrics_publish_interval_ms,
                                           [this] { RequeueMetricsTimer(); });
  }
  if (!opts_.compact_snapshot_path.empty() && opts_.compact_interval_ms > 0.0) {
    compact_timer_ = loop_.AddTimerAfterMs(opts_.compact_interval_ms, [this] {
      RequeueCompactionTimer();
    });
  }
  return Status::OK();
}

void UotsServer::RequeueCompactionTimer() {
  compact_timer_ = TimerHeap::kInvalidTimer;
  if (draining_ || stop_requested_) return;
  if (ingestor_.delta_trajectories() > 0 && !compacting_) {
    (void)TriggerCompaction();  // failure leaves the delta for the next tick
  }
  compact_timer_ = loop_.AddTimerAfterMs(opts_.compact_interval_ms, [this] {
    RequeueCompactionTimer();
  });
}

void UotsServer::RequeueMetricsTimer() {
  service_->PublishCacheMetrics();
  PublishIngestMetrics();
  metrics_timer_ = loop_.AddTimerAfterMs(opts_.metrics_publish_interval_ms,
                                         [this] { RequeueMetricsTimer(); });
}

void UotsServer::PublishIngestMetrics() const {
  auto& reg = MetricsRegistry::Global();
  reg.SetCounter("server.ingest.accepted", ingestor_.accepted_total());
  reg.SetCounter("server.ingest.rejected", ingestor_.rejected_total());
  reg.SetCounter("server.ingest.batches", ingestor_.batches_total());
  reg.SetCounter("server.ingest.delta_trajectories",
                 static_cast<int64_t>(ingestor_.delta_trajectories()));
  reg.SetCounter("server.ingest.delta_bytes",
                 static_cast<int64_t>(ingestor_.delta_bytes()));
  reg.SetCounter("server.ingest.generation",
                 static_cast<int64_t>(ingestor_.generation()));
}

void UotsServer::Run() { loop_.Run(); }

void UotsServer::RequestShutdown() {
  loop_.Post([this] { BeginShutdown(); });
}

std::string UotsServer::GenerateRequestId(uint64_t conn_id) {
  std::string id = "s";
  id += std::to_string(conn_id);
  id += '-';
  id += std::to_string(next_request_seq_++);
  return id;
}

void UotsServer::RecordSlowLog(const RequestCtx& ctx, const char* status_name,
                               bool cached, double total_ms,
                               double queue_wait_ms, double execute_ms,
                               const QueryStats* stats,
                               std::vector<TraceEvent> spans, int segments) {
  if (admin_ == nullptr) return;
  SlowLogEntry e;
  e.request_id = ctx.request_id_str;
  e.algorithm = ctx.is_trip ? "TRIP" : ToString(ctx.kind);
  e.segments = segments;
  e.query_summary = ctx.query_summary;
  e.status = status_name;
  e.cached = cached;
  e.total_ms = total_ms;
  e.queue_wait_ms = queue_wait_ms;
  e.execute_ms = execute_ms;
  e.completed_unix_ms = SlowLogNowUnixMs();
  if (stats != nullptr) {
    e.has_stats = true;
    e.stats = *stats;
  }
  e.spans = std::move(spans);
  admin_->slowlog().Add(std::move(e));
}

void UotsServer::OnAcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient (EMFILE, ECONNABORTED): retry on next readiness
    }
    if (draining_ || conns_.size() >= opts_.max_connections) {
      ++counters_.connections_rejected;
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(id, fd, opts_.max_frame_bytes);
    Connection* raw = conn.get();
    conns_.emplace(id, std::move(conn));
    ++counters_.connections_accepted;

    Status st = loop_.AddFd(fd, EPOLLIN, [this, id](uint32_t events) {
      OnConnEvent(id, events);
    });
    if (!st.ok()) {
      conns_.erase(id);  // closes the fd
      ++counters_.connections_closed;
      continue;
    }
    TouchIdleTimer(raw);
  }
}

Connection* UotsServer::FindConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void UotsServer::OnConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(conn_id);
    return;
  }
  if (events & EPOLLOUT) {
    if (conn->Flush() == Connection::IoResult::kClosed) {
      CloseConnection(conn_id);
      return;
    }
    if (conn->close_after_flush && !conn->want_write() &&
        conn->inflight == 0) {
      CloseConnection(conn_id);
      return;
    }
    UpdateWriteInterest(conn);
  }
  if (events & EPOLLIN) {
    const Connection::IoResult r = conn->ReadAvailable();
    TouchIdleTimer(conn);
    // Drain every complete frame before deciding whether to close: the
    // peer may have pipelined requests ahead of its half-close.
    for (;;) {
      std::string payload;
      size_t oversized = 0;
      const FrameDecoder::Next next =
          conn->decoder().Poll(&payload, &oversized);
      if (next == FrameDecoder::Next::kNeedMore) break;
      if (next == FrameDecoder::Next::kOversized) {
        ++counters_.oversized_frames;
        ++conn->stats().protocol_errors;
        SendError(conn, 0, GenerateRequestId(conn_id),
                  ResponseStatus::kParseError,
                  "frame exceeds maximum size (" +
                      std::to_string(oversized) + " > " +
                      std::to_string(opts_.max_frame_bytes) + " bytes)");
        continue;
      }
      ++conn->stats().frames_in;
      HandleFrame(conn, payload);
      // HandleFrame may have closed the connection (write failure).
      if (conns_.find(conn_id) == conns_.end()) return;
    }
    if (r == Connection::IoResult::kClosed) {
      if (conn->inflight > 0 || conn->want_write()) {
        // Let in-flight responses finish writing, then drop.
        conn->close_after_flush = true;
      } else {
        CloseConnection(conn_id);
      }
      return;
    }
  }
}

void UotsServer::HandleFrame(Connection* conn, std::string_view payload) {
  // Parse the JSON once, then dispatch on the optional "type" field: one
  // connection freely interleaves queries and ingest batches.
  Result<JsonValue> doc = [&payload] {
    UOTS_TRACE_SCOPE("server_parse");
    return ParseJson(payload);
  }();
  if (!doc.ok() || !doc->is_object()) {
    ++counters_.parse_errors;
    ++conn->stats().protocol_errors;
    SendError(conn, 0, GenerateRequestId(conn->id()),
              ResponseStatus::kParseError,
              doc.ok() ? "request must be an object"
                       : doc.status().message());
    return;
  }
  switch (RequestTypeOf(*doc)) {
    case RequestType::kIngest:
      HandleIngest(conn, *doc);
      return;
    case RequestType::kTrip:
      HandleTrip(conn, *doc);
      return;
    case RequestType::kUnknown: {
      ++counters_.parse_errors;
      ++conn->stats().protocol_errors;
      const JsonValue* type = doc->Find("type");
      SendError(conn, 0, GenerateRequestId(conn->id()),
                ResponseStatus::kParseError,
                "unknown request type: " +
                    (type != nullptr && type->is_string()
                         ? type->string_value()
                         : std::string("(not a string)")));
      return;
    }
    case RequestType::kQuery:
      break;
  }
  HandleQuery(conn, *doc);
}

void UotsServer::HandleIngest(Connection* conn, const JsonValue& doc) {
  ++counters_.ingest_requests;
  Result<IngestRequest> parsed = ParseIngestRequest(doc);
  if (!parsed.ok()) {
    ++counters_.parse_errors;
    ++counters_.ingest_rejected_batches;
    ++conn->stats().protocol_errors;
    SendError(conn, 0, GenerateRequestId(conn->id()),
              ResponseStatus::kParseError, parsed.status().message());
    return;
  }
  IngestRequest req = std::move(*parsed);
  if (req.request_id.empty()) {
    req.request_id = GenerateRequestId(conn->id());
  }
  IngestResponse resp;
  resp.id = req.id;
  resp.request_id = req.request_id;
  if (draining_) {
    ++counters_.rejected_shutting_down;
    ++counters_.ingest_rejected_batches;
    resp.status = ResponseStatus::kShuttingDown;
    resp.error = "server is shutting down";
    SendIngestResponse(conn, resp);
    return;
  }

  // Applied inline on the reactor: the Ingestor is single-writer by
  // design, and a batch apply (validate + delta rebuild) is bounded by the
  // batch/delta caps — comparable to the parse that preceded it.
  const int64_t apply_start_ns = EventLoop::NowNs();
  Result<Ingestor::ApplyResult> applied =
      ingestor_.Apply(std::move(req.trajectories));
  if (!applied.ok()) {
    ++counters_.ingest_rejected_batches;
    resp.status = FromStatus(applied.status());
    resp.error = applied.status().message();
    SendIngestResponse(conn, resp);
    return;
  }
  counters_.ingest_accepted_trips += static_cast<int64_t>(applied->accepted);
  // Every cached answer predates this batch. The live-fingerprint key salt
  // already makes them unreachable; dropping them reclaims the memory now
  // instead of waiting for LRU churn to wash the dead keys out.
  if (service_->result_cache() != nullptr) {
    service_->result_cache()->InvalidateGeneration();
  }
  // (The tier-2 expansion cache survives: ingest adds trajectories, never
  // network vertices, so recorded settle sequences stay exact.)
  resp.status = ResponseStatus::kOk;
  resp.accepted = static_cast<int64_t>(applied->accepted);
  resp.first_traj = static_cast<int64_t>(applied->first_id);
  resp.generation = static_cast<int64_t>(applied->generation);
  resp.delta_trajectories =
      static_cast<int64_t>(ingestor_.delta_trajectories());
  SendIngestResponse(conn, resp);
  MetricsRegistry::Global().Record("server.ingest.apply",
                                   EventLoop::NowNs() - apply_start_ns);
}

void UotsServer::SendIngestResponse(Connection* conn,
                                    const IngestResponse& resp) {
  std::string body;
  {
    UOTS_TRACE_SCOPE("server_serialize");
    body = EncodeIngestResponse(resp);
  }
  conn->QueueFrame(body);
  if (conn->Flush() == Connection::IoResult::kClosed) {
    CloseConnection(conn->id());
    return;
  }
  UpdateWriteInterest(conn);
}

void UotsServer::HandleQuery(Connection* conn, const JsonValue& doc) {
  Result<QueryRequest> parsed = ParseQueryRequest(doc);
  if (!parsed.ok()) {
    ++counters_.parse_errors;
    ++conn->stats().protocol_errors;
    SendError(conn, 0, GenerateRequestId(conn->id()),
              ResponseStatus::kParseError, parsed.status().message());
    return;
  }
  QueryRequest req = std::move(*parsed);
  ++counters_.requests;
  const int64_t arrival_ns = EventLoop::NowNs();
  if (req.request_id.empty()) {
    req.request_id = GenerateRequestId(conn->id());
  }

  if (draining_) {
    ++counters_.rejected_shutting_down;
    SendError(conn, req.id, req.request_id, ResponseStatus::kShuttingDown,
              "server is shutting down");
    return;
  }

  const AlgorithmKind kind =
      req.has_algorithm ? req.algorithm : AlgorithmKind::kUots;

  // Result-cache probe, on the reactor thread: a hit answers immediately
  // without touching admission or the thread pool. On a miss the canonical
  // key rides along so the worker populates the cache.
  std::string cache_key;
  if (req.cache != CacheMode::kBypass) {
    if (auto hit = service_->CacheLookup(req.query, kind, &cache_key)) {
      ++counters_.cache_hits;
      ++counters_.responses_ok;
      QueryResponse resp;
      resp.id = req.id;
      resp.request_id = req.request_id;
      resp.status = ResponseStatus::kOk;
      resp.results = hit->items;
      resp.has_stats = true;
      resp.stats = hit->stats;
      resp.cached = true;
      SendResponse(conn, resp);
      const int64_t done_ns = EventLoop::NowNs();
      MetricsRegistry::Global().Record("server.request_latency",
                                       done_ns - arrival_ns);
      if (admin_ != nullptr) {
        RequestCtx ctx;
        ctx.request_id_str = std::move(req.request_id);
        ctx.kind = kind;
        ctx.query_summary = SummarizeQuery(req.query, kind);
        RecordSlowLog(ctx, ToString(ResponseStatus::kOk), /*cached=*/true,
                      static_cast<double>(done_ns - arrival_ns) / 1e6,
                      /*queue_wait_ms=*/0.0, /*execute_ms=*/0.0,
                      &hit->stats, {});
      }
      return;
    }
  }

  auto ctx = std::make_shared<RequestCtx>();
  ctx->conn_id = conn->id();
  ctx->request_id = req.id;
  ctx->request_id_str = req.request_id;
  ctx->kind = kind;
  if (admin_ != nullptr) {
    ctx->query_summary = SummarizeQuery(req.query, kind);
  }
  ctx->arrival_ns = arrival_ns;
  ctx->deadline_ms = req.deadline_ms > 0.0
                         ? req.deadline_ms
                         : opts_.service.default_deadline_ms;
  if (ctx->deadline_ms > 0.0) {
    ctx->token.SetDeadlineAfterMs(ctx->deadline_ms);
  }

  // Runtime trace sampling: capture the span tree of every Nth executed
  // request (POST /tracing?sample=N on the admin plane).
  ExecuteOptions exec_opts;
  exec_opts.span_id = HashRequestId(ctx->request_id_str);
  if (admin_ != nullptr) {
    const int every = admin_->trace_sample_every();
    if (every > 0 && (++trace_sample_counter_ % static_cast<uint64_t>(
                          every)) == 0) {
      exec_opts.capture_spans = true;
    }
  }

  const bool admitted = service_->TryExecute(
      req.query, kind, &ctx->token,
      [this, ctx](ExecutionResult r) {
        // Worker thread: hop back to the loop that owns the connection.
        loop_.Post([this, ctx, r = std::move(r)]() mutable {
          OnComplete(ctx, std::move(r));
        });
      },
      std::move(cache_key), exec_opts);
  if (!admitted) {
    if (service_->shutting_down()) {
      ++counters_.rejected_shutting_down;
      SendError(conn, req.id, ctx->request_id_str,
                ResponseStatus::kShuttingDown, "server is shutting down");
    } else {
      ++counters_.rejected_overloaded;
      SendError(conn, req.id, ctx->request_id_str,
                ResponseStatus::kOverloaded,
                "server at capacity (" +
                    std::to_string(opts_.service.max_inflight) +
                    " requests in flight)");
    }
    return;
  }

  ++conn->inflight;
  ++loop_inflight_;
  if (ctx->deadline_ms > 0.0) {
    ctx->deadline_timer =
        loop_.AddTimerAfterMs(ctx->deadline_ms, [this, ctx] {
          OnDeadline(ctx);
        });
  }
}

void UotsServer::HandleTrip(Connection* conn, const JsonValue& doc) {
  Result<TripRequest> parsed = ParseTripRequest(doc);
  if (!parsed.ok()) {
    ++counters_.parse_errors;
    ++conn->stats().protocol_errors;
    SendError(conn, 0, GenerateRequestId(conn->id()),
              ResponseStatus::kParseError, parsed.status().message());
    return;
  }
  TripRequest req = std::move(*parsed);
  ++counters_.trip_requests;
  const int64_t arrival_ns = EventLoop::NowNs();
  if (req.request_id.empty()) {
    req.request_id = GenerateRequestId(conn->id());
  }

  if (draining_) {
    ++counters_.rejected_shutting_down;
    SendError(conn, req.id, req.request_id, ResponseStatus::kShuttingDown,
              "server is shutting down");
    return;
  }

  // Same reactor-side cache probe as retrieval queries; the trip key
  // schema keeps the two families disjoint.
  std::string cache_key;
  if (req.cache != CacheMode::kBypass) {
    if (auto hit = service_->TripCacheLookup(req.query, &cache_key)) {
      ++counters_.cache_hits;
      ++counters_.responses_ok;
      TripResponse resp;
      resp.id = req.id;
      resp.request_id = req.request_id;
      resp.status = ResponseStatus::kOk;
      resp.trips = hit->trips;
      resp.has_stats = true;
      resp.stats = hit->stats;
      resp.cached = true;
      SendTripResponse(conn, resp);
      const int64_t done_ns = EventLoop::NowNs();
      MetricsRegistry::Global().Record("server.request_latency",
                                       done_ns - arrival_ns);
      if (admin_ != nullptr) {
        RequestCtx ctx;
        ctx.request_id_str = std::move(req.request_id);
        ctx.is_trip = true;
        ctx.query_summary = SummarizeTripQuery(req.query);
        const int segments =
            hit->trips.empty() ? 0
                               : static_cast<int>(hit->trips[0].segments.size());
        RecordSlowLog(ctx, ToString(ResponseStatus::kOk), /*cached=*/true,
                      static_cast<double>(done_ns - arrival_ns) / 1e6,
                      /*queue_wait_ms=*/0.0, /*execute_ms=*/0.0,
                      &hit->stats, {}, segments);
      }
      return;
    }
  }

  auto ctx = std::make_shared<RequestCtx>();
  ctx->conn_id = conn->id();
  ctx->request_id = req.id;
  ctx->request_id_str = req.request_id;
  ctx->is_trip = true;
  if (admin_ != nullptr) {
    ctx->query_summary = SummarizeTripQuery(req.query);
  }
  ctx->arrival_ns = arrival_ns;
  ctx->deadline_ms = req.deadline_ms > 0.0
                         ? req.deadline_ms
                         : opts_.service.default_deadline_ms;
  if (ctx->deadline_ms > 0.0) {
    ctx->token.SetDeadlineAfterMs(ctx->deadline_ms);
  }

  ExecuteOptions exec_opts;
  exec_opts.span_id = HashRequestId(ctx->request_id_str);
  if (admin_ != nullptr) {
    const int every = admin_->trace_sample_every();
    if (every > 0 && (++trace_sample_counter_ % static_cast<uint64_t>(
                          every)) == 0) {
      exec_opts.capture_spans = true;
    }
  }

  const bool admitted = service_->TryExecuteTrip(
      req.query, &ctx->token,
      [this, ctx](TripExecutionResult r) {
        loop_.Post([this, ctx, r = std::move(r)]() mutable {
          OnTripComplete(ctx, std::move(r));
        });
      },
      std::move(cache_key), exec_opts);
  if (!admitted) {
    if (service_->shutting_down()) {
      ++counters_.rejected_shutting_down;
      SendError(conn, req.id, ctx->request_id_str,
                ResponseStatus::kShuttingDown, "server is shutting down");
    } else {
      ++counters_.rejected_overloaded;
      SendError(conn, req.id, ctx->request_id_str,
                ResponseStatus::kOverloaded,
                "server at capacity (" +
                    std::to_string(opts_.service.max_inflight) +
                    " requests in flight)");
    }
    return;
  }

  ++conn->inflight;
  ++loop_inflight_;
  if (ctx->deadline_ms > 0.0) {
    ctx->deadline_timer =
        loop_.AddTimerAfterMs(ctx->deadline_ms, [this, ctx] {
          OnDeadline(ctx);
        });
  }
}

Status UotsServer::TriggerCompaction() {
  if (opts_.compact_snapshot_path.empty()) {
    return Status::InvalidArgument("no compaction snapshot path configured");
  }
  if (compacting_) {
    return Status::Unavailable("compaction already in progress");
  }
  if (draining_) {
    return Status::Unavailable("server is draining");
  }
  if (ingestor_.delta_trajectories() == 0) {
    return Status::InvalidArgument("delta is empty; nothing to compact");
  }
  // The previous worker (if any) already posted its outcome and was joined
  // in FinishCompaction; joinable here only after a failed outcome path.
  if (compact_thread_.joinable()) compact_thread_.join();
  compacting_ = true;
  // Seal point: trips applied after this copy stay in the delta and ride
  // into the next compaction (Rebase keeps their global ids stable).
  std::vector<Trajectory> sealed = ingestor_.pending();
  compact_thread_ = std::thread(
      [this, base = db_, trips = std::move(sealed)]() mutable {
        RunCompaction(std::move(base), std::move(trips));
      });
  return Status::OK();
}

void UotsServer::RunCompaction(std::shared_ptr<const TrajectoryDatabase> base,
                               std::vector<Trajectory> sealed_trips) {
  CompactionOutcome out = BuildCompactedSnapshot(
      *base, sealed_trips, opts_.compact_snapshot_path);
  out.sealed = sealed_trips.size();
  loop_.Post([this, out = std::move(out)]() mutable {
    FinishCompaction(std::move(out));
  });
}

UotsServer::CompactionOutcome UotsServer::BuildCompactedSnapshot(
    const TrajectoryDatabase& base, const std::vector<Trajectory>& trips,
    const std::string& path) {
  WallTimer timer;
  CompactionOutcome out;
  out.status = [&]() -> Status {
    // Merge: materialize the base rows, append the sealed delta, and
    // rebuild every index from scratch — the same construction a cold
    // restart over the combined data would run, which is exactly why the
    // swapped-in result answers bit-identically to what the merged view
    // was already serving.
    TrajectoryStore merged;
    const size_t base_count = base.store().size();
    for (size_t id = 0; id < base_count; ++id) {
      auto added = merged.Add(base.store().Materialize(static_cast<TrajId>(id)));
      if (!added.ok()) return added.status();
    }
    for (const Trajectory& t : trips) {
      auto added = merged.Add(t);
      if (!added.ok()) return added.status();
    }
    SimilarityOptions sim;
    sim.sigma_m = base.model().sigma_m();
    sim.sigma_s = base.model().sigma_s();
    sim.measure = base.model().textual().measure();
    TrajectoryDatabase merged_db(base.network(), std::move(merged),
                                 base.vocabulary(), sim);
    // The oracle is a function of the network alone, which compaction
    // never changes — carry the base's through so the new snapshot bakes
    // it in and oracle-driven pruning survives the swap.
    merged_db.AttachOracle(base.oracle_ptr());

    storage::WriteOptions wopts;
    wopts.tool = "uots_compact";
    UOTS_RETURN_NOT_OK(storage::WriteSnapshot(merged_db, path, wopts));

    // Validated reload: the database that goes live is the one read back
    // from disk (checksums verified), not the in-memory merge — what the
    // file serves after a restart is what this process serves now.
    storage::ResolveOptions ropts;
    ropts.similarity = sim;
    auto loaded = storage::LoadDatabaseFromPath(path, ropts);
    if (!loaded.ok()) return loaded.status();
    out.db = std::shared_ptr<const TrajectoryDatabase>(std::move(loaded->db));
    return Status::OK();
  }();
  out.build_ms = timer.ElapsedMillis();
  return out;
}

void UotsServer::FinishCompaction(CompactionOutcome outcome) {
  if (compact_thread_.joinable()) compact_thread_.join();
  compacting_ = false;
  auto& reg = MetricsRegistry::Global();
  if (!outcome.status.ok()) {
    reg.AddCounter("server.ingest.compact_failures", 1);
    std::fprintf(stderr, "compaction failed: %s\n",
                 outcome.status.ToString().c_str());
    MaybeFinishShutdown();  // a drain may have been waiting on us
    return;
  }
  // Swap order matters: re-point the server and service first (new
  // admissions pin the new base), then rebase the ingestor so survivors
  // keep their global ids on top of the grown base, then orphan both
  // cache tiers — the result cache because its salted keys should be
  // reclaimed, the expansion cache because its prefixes now describe a
  // retired mapping.
  db_ = std::move(outcome.db);
  service_->SwapDatabase(db_);
  ingestor_.Rebase(db_.get(), outcome.sealed);
  if (service_->result_cache() != nullptr) {
    service_->result_cache()->InvalidateGeneration();
  }
  if (opts_.service.uots.distance_cache != nullptr) {
    opts_.service.uots.distance_cache->InvalidateGeneration();
  }
  ++counters_.compactions;
  last_compaction_ms_ = outcome.build_ms;
  reg.AddCounter("server.ingest.compactions", 1);
  reg.Record("server.ingest.compact_build",
             static_cast<int64_t>(outcome.build_ms * 1e6));
  MaybeFinishShutdown();
}

void UotsServer::OnDeadline(const std::shared_ptr<RequestCtx>& ctx) {
  if (ctx->responded) return;
  ctx->responded = true;
  ctx->deadline_timer = TimerHeap::kInvalidTimer;
  // Tell the engine to stop; the worker's eventual completion is discarded.
  ctx->token.Cancel();
  ++counters_.deadline_exceeded;

  Connection* conn = FindConn(ctx->conn_id);
  if (conn != nullptr) {
    SendError(conn, ctx->request_id, ctx->request_id_str,
              ResponseStatus::kDeadlineExceeded,
              "deadline of " + std::to_string(ctx->deadline_ms) +
                  " ms exceeded");
  }
  // conn->inflight / loop_inflight_ stay up until the worker actually
  // finishes — the capacity it occupies is real until then.
}

void UotsServer::OnComplete(const std::shared_ptr<RequestCtx>& ctx,
                            ExecutionResult r) {
  // Runs on the loop thread (posted). The request's admission slot is
  // already released by the service; release the loop-side accounting.
  --loop_inflight_;

  Connection* conn = FindConn(ctx->conn_id);
  if (conn != nullptr) {
    --conn->inflight;
  }

  const bool already_responded = ctx->responded;
  ctx->responded = true;
  if (ctx->deadline_timer != TimerHeap::kInvalidTimer) {
    loop_.CancelTimer(ctx->deadline_timer);
    ctx->deadline_timer = TimerHeap::kInvalidTimer;
  }

  const ResponseStatus ws =
      r.status.ok() ? ResponseStatus::kOk : FromStatus(r.status);
  if (conn != nullptr && !already_responded) {
    if (r.status.ok()) {
      QueryResponse resp;
      resp.id = ctx->request_id;
      resp.request_id = ctx->request_id_str;
      resp.status = ResponseStatus::kOk;
      resp.results = std::move(r.result.items);
      resp.has_stats = true;
      resp.stats = r.result.stats;
      resp.queue_wait_ms = r.queue_wait_ms;
      resp.execute_ms = r.execute_ms;
      ++counters_.responses_ok;
      SendResponse(conn, resp);
    } else {
      if (ws == ResponseStatus::kDeadlineExceeded) {
        ++counters_.deadline_exceeded;
      } else {
        ++counters_.errors_internal;
      }
      SendError(conn, ctx->request_id, ctx->request_id_str, ws,
                r.status.message());
    }
    MetricsRegistry::Global().Record(
        "server.request_latency", EventLoop::NowNs() - ctx->arrival_ns);
  }
  // The execution happened regardless of whether anyone was left to read
  // the answer — log it (status reflects what the client saw when the
  // deadline beat the worker).
  const char* logged_status =
      already_responded ? ToString(ResponseStatus::kDeadlineExceeded)
                        : ToString(ws);
  RecordSlowLog(*ctx, logged_status, /*cached=*/false,
                static_cast<double>(EventLoop::NowNs() - ctx->arrival_ns) /
                    1e6,
                r.queue_wait_ms, r.execute_ms,
                r.status.ok() ? &r.result.stats : nullptr,
                std::move(r.spans));

  if (conn != nullptr && conn->close_after_flush && conn->inflight == 0 &&
      !conn->want_write()) {
    CloseConnection(ctx->conn_id);
  }
  MaybeFinishShutdown();
}

void UotsServer::OnTripComplete(const std::shared_ptr<RequestCtx>& ctx,
                                TripExecutionResult r) {
  // Mirror of OnComplete for trip-assembly requests (loop thread).
  --loop_inflight_;

  Connection* conn = FindConn(ctx->conn_id);
  if (conn != nullptr) {
    --conn->inflight;
  }

  const bool already_responded = ctx->responded;
  ctx->responded = true;
  if (ctx->deadline_timer != TimerHeap::kInvalidTimer) {
    loop_.CancelTimer(ctx->deadline_timer);
    ctx->deadline_timer = TimerHeap::kInvalidTimer;
  }

  const ResponseStatus ws =
      r.status.ok() ? ResponseStatus::kOk : FromStatus(r.status);
  int segments = -1;
  if (r.status.ok()) {
    segments = r.result.trips.empty()
                   ? 0
                   : static_cast<int>(r.result.trips[0].segments.size());
  }
  if (conn != nullptr && !already_responded) {
    if (r.status.ok()) {
      TripResponse resp;
      resp.id = ctx->request_id;
      resp.request_id = ctx->request_id_str;
      resp.status = ResponseStatus::kOk;
      resp.trips = std::move(r.result.trips);
      resp.has_stats = true;
      resp.stats = r.result.stats;
      resp.queue_wait_ms = r.queue_wait_ms;
      resp.execute_ms = r.execute_ms;
      ++counters_.responses_ok;
      SendTripResponse(conn, resp);
    } else {
      if (ws == ResponseStatus::kDeadlineExceeded) {
        ++counters_.deadline_exceeded;
      } else {
        ++counters_.errors_internal;
      }
      SendError(conn, ctx->request_id, ctx->request_id_str, ws,
                r.status.message());
    }
    MetricsRegistry::Global().Record(
        "server.request_latency", EventLoop::NowNs() - ctx->arrival_ns);
  }
  const char* logged_status =
      already_responded ? ToString(ResponseStatus::kDeadlineExceeded)
                        : ToString(ws);
  RecordSlowLog(*ctx, logged_status, /*cached=*/false,
                static_cast<double>(EventLoop::NowNs() - ctx->arrival_ns) /
                    1e6,
                r.queue_wait_ms, r.execute_ms,
                r.status.ok() ? &r.result.stats : nullptr,
                std::move(r.spans), segments);

  if (conn != nullptr && conn->close_after_flush && conn->inflight == 0 &&
      !conn->want_write()) {
    CloseConnection(ctx->conn_id);
  }
  MaybeFinishShutdown();
}

void UotsServer::SendTripResponse(Connection* conn, const TripResponse& resp) {
  std::string body;
  {
    UOTS_TRACE_SCOPE("server_serialize");
    body = EncodeTripResponse(resp);
  }
  conn->QueueFrame(body);
  if (conn->Flush() == Connection::IoResult::kClosed) {
    CloseConnection(conn->id());
    return;
  }
  UpdateWriteInterest(conn);
}

void UotsServer::SendResponse(Connection* conn, const QueryResponse& resp) {
  std::string body;
  {
    UOTS_TRACE_SCOPE("server_serialize");
    body = EncodeQueryResponse(resp);
  }
  conn->QueueFrame(body);
  if (conn->Flush() == Connection::IoResult::kClosed) {
    CloseConnection(conn->id());
    return;
  }
  UpdateWriteInterest(conn);
}

void UotsServer::SendError(Connection* conn, int64_t request_id,
                           const std::string& request_id_str,
                           ResponseStatus status, const std::string& error) {
  QueryResponse resp;
  resp.id = request_id;
  resp.request_id = request_id_str;
  resp.status = status;
  resp.error = error;
  SendResponse(conn, resp);
}

void UotsServer::UpdateWriteInterest(Connection* conn) {
  if (conn->closed()) return;
  const uint32_t events =
      conn->want_write() ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  (void)loop_.SetEvents(conn->fd(), events);  // best effort
}

void UotsServer::TouchIdleTimer(Connection* conn) {
  if (opts_.idle_timeout_ms <= 0.0) return;
  if (conn->idle_timer != TimerHeap::kInvalidTimer) {
    if (loop_.RescheduleTimerAfterMs(conn->idle_timer,
                                     opts_.idle_timeout_ms)) {
      return;
    }
    conn->idle_timer = TimerHeap::kInvalidTimer;
  }
  const uint64_t id = conn->id();
  conn->idle_timer =
      loop_.AddTimerAfterMs(opts_.idle_timeout_ms, [this, id] {
        auto it = conns_.find(id);
        if (it == conns_.end()) return;
        it->second->idle_timer = TimerHeap::kInvalidTimer;
        // Keep connections with work in flight alive; re-arm instead.
        if (it->second->inflight > 0) {
          TouchIdleTimer(it->second.get());
          return;
        }
        CloseConnection(id);
      });
}

void UotsServer::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if (conn->idle_timer != TimerHeap::kInvalidTimer) {
    loop_.CancelTimer(conn->idle_timer);
    conn->idle_timer = TimerHeap::kInvalidTimer;
  }
  if (!conn->closed()) {
    loop_.RemoveFd(conn->fd());
  }
  ++counters_.connections_closed;
  conns_.erase(it);  // Connection destructor closes the fd
  MaybeFinishShutdown();
}

void UotsServer::BeginShutdown() {
  if (draining_) return;
  draining_ = true;
  // Stop accepting *queries*: new connections get ECONNREFUSED once the
  // backlog drains; already-read frames get "shutting_down" responses. The
  // admin listener stays up so /healthz reports not-ready while the drain
  // runs (a load balancer keeps probing right through shutdown).
  if (listen_fd_ >= 0) {
    loop_.RemoveFd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  service_->BeginShutdown();
  if (opts_.drain_timeout_ms > 0.0) {
    drain_fuse_ = loop_.AddTimerAfterMs(opts_.drain_timeout_ms, [this] {
      drain_fuse_ = TimerHeap::kInvalidTimer;
      FinishShutdown();
    });
  }
  MaybeFinishShutdown();
}

void UotsServer::MaybeFinishShutdown() {
  if (!draining_ || stop_requested_) return;
  if (loop_inflight_ > 0) return;
  // An in-flight compaction finishes in bounded time and posts back;
  // FinishCompaction re-checks. (The drain fuse force-stops regardless.)
  if (compacting_) return;
  // All admitted work is done; wait only for unflushed bytes.
  for (auto& [id, conn] : conns_) {
    if (conn->want_write()) return;
  }
  if (drain_fuse_ != TimerHeap::kInvalidTimer) {
    loop_.CancelTimer(drain_fuse_);
    drain_fuse_ = TimerHeap::kInvalidTimer;
  }
  FinishShutdown();
}

void UotsServer::FinishShutdown() {
  stop_requested_ = true;
  // A force-stop (drain fuse) can land mid-compaction: wait it out so the
  // worker never outlives the loop it posts to. Its posted completion
  // simply never runs once the loop stops.
  if (compact_thread_.joinable()) compact_thread_.join();
  compacting_ = false;
  if (compact_timer_ != TimerHeap::kInvalidTimer) {
    loop_.CancelTimer(compact_timer_);
    compact_timer_ = TimerHeap::kInvalidTimer;
  }
  // Durability fold: trips still in the delta exist only in this process.
  // With a compaction path configured, write base + full delta out now so
  // a restart from that snapshot serves everything that was ever acked.
  if (!opts_.compact_snapshot_path.empty() &&
      ingestor_.delta_trajectories() > 0) {
    CompactionOutcome out = BuildCompactedSnapshot(
        *db_, ingestor_.pending(), opts_.compact_snapshot_path);
    if (out.status.ok()) {
      ++counters_.compactions;
      last_compaction_ms_ = out.build_ms;
      MetricsRegistry::Global().AddCounter("server.ingest.compactions", 1);
    } else {
      MetricsRegistry::Global().AddCounter("server.ingest.compact_failures",
                                           1);
      std::fprintf(stderr, "shutdown compaction failed: %s\n",
                   out.status.ToString().c_str());
    }
  }
  // Export the final counter values, tear the admin plane's fds out of the
  // loop while the loop still exists, and stop.
  PublishIngestMetrics();
  service_->PublishCacheMetrics();
  if (metrics_timer_ != TimerHeap::kInvalidTimer) {
    loop_.CancelTimer(metrics_timer_);
    metrics_timer_ = TimerHeap::kInvalidTimer;
  }
  if (admin_ != nullptr) admin_->Shutdown();
  loop_.Stop();
}

}  // namespace uots

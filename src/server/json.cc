#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace uots {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::Append(JsonValue v) {
  if (type_ == Type::kArray) array_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::Set(std::string key, JsonValue v) {
  if (type_ == Type::kObject) object_.emplace_back(std::move(key), std::move(v));
  return *this;
}

void JsonEscape(std::string_view s, std::string* out) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

void JsonAppendDouble(double v, std::string* out) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; clamp to null
    *out += "null";
    return;
  }
  char buf[40];
  // Try the shortest representation that still round-trips exactly.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  *out += buf;
}

void JsonValue::SerializeTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      JsonAppendDouble(number_, out);
      return;
    case Type::kString:
      out->push_back('"');
      JsonEscape(string_, out);
      out->push_back('"');
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.SerializeTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        JsonEscape(k, out);
        *out += "\":";
        v.SerializeTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

namespace {

constexpr int kMaxDepth = 64;

/// Recursive-descent parser over a bounded view; never reads past end_.
class Parser {
 public:
  explicit Parser(std::string_view text)
      : cur_(text.data()), end_(text.data() + text.size()) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    UOTS_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (cur_ != end_) return Fail("trailing characters after JSON value");
    return v;
  }

 private:
  Status Fail(const std::string& msg) const {
    return Status::InvalidArgument("json: " + msg);
  }

  void SkipWs() {
    while (cur_ != end_ &&
           (*cur_ == ' ' || *cur_ == '\t' || *cur_ == '\n' || *cur_ == '\r')) {
      ++cur_;
    }
  }

  bool Consume(char c) {
    if (cur_ != end_ && *cur_ == c) {
      ++cur_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - cur_) < n) return false;
    if (std::memcmp(cur_, lit, n) != 0) return false;
    cur_ += n;
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (cur_ == end_) return Fail("unexpected end of input");
    switch (*cur_) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        UOTS_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++cur_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWs();
      if (cur_ == end_ || *cur_ != '"') return Fail("expected object key");
      std::string key;
      UOTS_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue v;
      UOTS_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->Set(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++cur_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue v;
      UOTS_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->Append(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']' in array");
    }
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (end_ - cur_ < 4) return Fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = *cur_++;
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++cur_;  // opening quote
    for (;;) {
      if (cur_ == end_) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(*cur_);
      if (c == '"') {
        ++cur_;
        return Status::OK();
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++cur_;
        continue;
      }
      ++cur_;  // backslash
      if (cur_ == end_) return Fail("unterminated escape");
      const char esc = *cur_++;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          UOTS_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (end_ - cur_ < 2 || cur_[0] != '\\' || cur_[1] != 'u') {
              return Fail("unpaired surrogate");
            }
            cur_ += 2;
            uint32_t lo = 0;
            UOTS_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) return Fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = cur_;
    if (Consume('-')) {
    }
    if (cur_ == end_ || !(*cur_ >= '0' && *cur_ <= '9')) {
      return Fail("invalid number");
    }
    while (cur_ != end_ && *cur_ >= '0' && *cur_ <= '9') ++cur_;
    if (Consume('.')) {
      if (cur_ == end_ || !(*cur_ >= '0' && *cur_ <= '9')) {
        return Fail("invalid number fraction");
      }
      while (cur_ != end_ && *cur_ >= '0' && *cur_ <= '9') ++cur_;
    }
    if (cur_ != end_ && (*cur_ == 'e' || *cur_ == 'E')) {
      ++cur_;
      if (cur_ != end_ && (*cur_ == '+' || *cur_ == '-')) ++cur_;
      if (cur_ == end_ || !(*cur_ >= '0' && *cur_ <= '9')) {
        return Fail("invalid number exponent");
      }
      while (cur_ != end_ && *cur_ >= '0' && *cur_ <= '9') ++cur_;
    }
    // strtod needs NUL-terminated input; numbers are short, copy is cheap.
    const std::string token(start, cur_);
    errno = 0;
    char* parsed_end = nullptr;
    const double v = std::strtod(token.c_str(), &parsed_end);
    if (parsed_end != token.c_str() + token.size()) {
      return Fail("invalid number");
    }
    *out = JsonValue::Number(v);
    return Status::OK();
  }

  const char* cur_;
  const char* end_;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace uots

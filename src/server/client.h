// Blocking client for the UOTS wire protocol.
//
// One connection, synchronous request/response. This is the reference
// implementation of the protocol from the client side — the load generator
// (apps/uots_client) and the loopback integration tests both drive it.
// Pipelining is supported by splitting Call into Send + Receive: queue any
// number of Sends, then Receive responses in order.

#ifndef UOTS_SERVER_CLIENT_H_
#define UOTS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "server/protocol.h"
#include "util/status.h"

namespace uots {

/// \brief Synchronous TCP client speaking the length-prefixed JSON protocol.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connects (blocking) to host:port. `host` is a dotted-quad address.
  Status Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request frame (blocking until fully written).
  Status Send(const QueryRequest& req);

  /// Receives the next response frame (blocking).
  Result<QueryResponse> Receive();

  /// Send + Receive.
  Result<QueryResponse> Call(const QueryRequest& req);

  /// Sends one ingest batch frame (blocking until fully written).
  Status Send(const IngestRequest& req);

  /// Receives the next frame as an ingest response (blocking). Do not
  /// interleave with Receive() expectations — responses arrive in request
  /// order.
  Result<IngestResponse> ReceiveIngest();

  /// Send + ReceiveIngest.
  Result<IngestResponse> Call(const IngestRequest& req);

  /// Sends one trip-assembly request frame (blocking until fully written).
  Status Send(const TripRequest& req);

  /// Receives the next frame as a trip response (blocking; responses
  /// arrive in request order).
  Result<TripResponse> ReceiveTrip();

  /// Send + ReceiveTrip.
  Result<TripResponse> Call(const TripRequest& req);

 private:
  Status WriteAll(const char* data, size_t n);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace uots

#endif  // UOTS_SERVER_CLIENT_H_

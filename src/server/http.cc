#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace uots {

namespace {

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string HttpRequest::QueryParam(std::string_view key) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    const size_t amp = rest.find('&');
    const std::string_view pair = rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
  }
  return "";
}

HttpRequestParser::Next HttpRequestParser::Poll(HttpRequest* out) {
  const size_t header_end = buf_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    // Tolerate bare-LF clients for the header terminator check only after
    // the cap: a well-formed block always arrives long before the cap.
    if (buf_.size() > max_header_bytes_) return Next::kTooLarge;
    return Next::kNeedMore;
  }
  if (header_end > max_header_bytes_) return Next::kTooLarge;

  const size_t line_end = buf_.find("\r\n");
  const std::string_view line(buf_.data(), line_end);
  // METHOD SP target SP HTTP/x.y
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Next::kBad;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method) || target.empty() || target[0] != '/' ||
      version.substr(0, 5) != "HTTP/") {
    return Next::kBad;
  }
  out->method = std::string(method);
  const size_t qmark = target.find('?');
  out->path = std::string(target.substr(0, qmark));
  out->query = qmark == std::string_view::npos
                   ? std::string()
                   : std::string(target.substr(qmark + 1));
  buf_.erase(0, header_end + 4);
  return Next::kRequest;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

std::string EncodeHttpResponse(int status, std::string_view content_type,
                               std::string_view body) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.0 ";
  out += std::to_string(status);
  out += ' ';
  out += HttpStatusText(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

Result<HttpFetchResult> HttpFetch(const std::string& host, uint16_t port,
                                  const std::string& path_and_query,
                                  const std::string& method,
                                  double timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Status::IOError("connect: " + std::string(std::strerror(errno)));
  }

  std::string req = method + " " + path_and_query + " HTTP/1.0\r\nHost: " +
                    host + "\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("admin fetch timed out");
      }
      return Status::IOError("recv: " + std::string(std::strerror(errno)));
    }
    raw.append(buf, static_cast<size_t>(n));
  }

  const size_t header_end = raw.find("\r\n\r\n");
  if (raw.compare(0, 5, "HTTP/") != 0 || header_end == std::string::npos) {
    return Status::IOError("malformed HTTP response");
  }
  HttpFetchResult out;
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return Status::IOError("malformed HTTP status line");
  }
  out.status = std::atoi(raw.c_str() + sp + 1);
  out.body = raw.substr(header_end + 4);
  return out;
}

namespace promtext {

bool FindValue(const std::string& text, const std::string& series,
               double* value) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    if (line.size() > series.size() &&
        line.compare(0, series.size(), series) == 0 &&
        line[series.size()] == ' ') {
      *value = std::strtod(line.data() + series.size() + 1, nullptr);
      return true;
    }
  }
  return false;
}

std::vector<HistogramBucket> ParseHistogramBuckets(const std::string& text,
                                                   const std::string& family) {
  const std::string prefix = family + "_bucket{le=\"";
  std::vector<HistogramBucket> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.size() <= prefix.size() ||
        line.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string_view rest = line.substr(prefix.size());
    const size_t close = rest.find("\"} ");
    if (close == std::string_view::npos) continue;
    HistogramBucket b;
    // strtod understands both the numeric labels and "+Inf".
    b.le_seconds = std::strtod(std::string(rest.substr(0, close)).c_str(),
                               nullptr);
    b.cumulative = static_cast<int64_t>(
        std::strtod(std::string(rest.substr(close + 3)).c_str(), nullptr));
    out.push_back(b);
  }
  return out;
}

double DeltaQuantileSeconds(const std::vector<HistogramBucket>& before,
                            const std::vector<HistogramBucket>& after,
                            double p) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  // An absent family on the first scrape (no samples recorded yet) reads
  // as an all-zero "before".
  const bool no_before = before.empty();
  if (after.empty() || (!no_before && before.size() != after.size())) {
    return kNan;
  }
  const int64_t total =
      after.back().cumulative - (no_before ? 0 : before.back().cumulative);
  if (total <= 0) return kNan;
  int64_t target = static_cast<int64_t>(
      (p / 100.0) * static_cast<double>(total) + 0.9999999);
  if (target < 1) target = 1;
  if (target > total) target = total;
  for (size_t i = 0; i < after.size(); ++i) {
    if (!no_before && after[i].le_seconds != before[i].le_seconds) {
      return kNan;
    }
    const int64_t cum =
        after[i].cumulative - (no_before ? 0 : before[i].cumulative);
    if (cum >= target) return after[i].le_seconds;
  }
  return after.back().le_seconds;
}

}  // namespace promtext

}  // namespace uots

// Length-prefixed JSON wire protocol for UOTS queries.
//
// Framing: each message is a 4-byte big-endian unsigned payload length
// followed by that many bytes of UTF-8 JSON. Length prefixes keep the
// parser trivial and make pipelining natural (any number of frames may sit
// in one TCP segment). Frames above the configured maximum are rejected
// with a clean error response and *skipped* — the declared length still
// tells the decoder exactly how many bytes to discard, so the connection
// resynchronizes on the next frame instead of being dropped.
//
// Request object (all ids are numbers except request_id):
//   {"id": 7,                      // caller-chosen correlation id
//    "request_id": "cli-42",       // optional; server generates when absent
//    "locations": [12, 904, 77],   // query vertices, 1..64
//    "keywords": [3, 15],          // term ids
//    "lambda": 0.5, "k": 10,
//    "algorithm": "UOTS",          // optional; ToString(AlgorithmKind) name
//    "deadline_ms": 50}            // optional; 0/absent = server default
//
// Response object:
//   {"id": 7, "request_id": "cli-42",  // echoed byte-for-byte (or generated)
//    "status": "ok",                   // see ResponseStatus below
//    "results": [{"traj": 5, "score": 0.93, "spatial": 0.9, "textual": 1.0}],
//    "stats": {...},               // QueryStats::ToJson schema
//    "server": {"queue_wait_ms": 0.1, "execute_ms": 2.3}}
// or on failure:
//   {"id": 7, "request_id": "s3-17", "status": "overloaded",
//    "retryable": true, "error": "..."}
//
// The request_id is the observability correlation key: the server attaches
// it to trace spans and slow-query-log entries (see server/admin.h), so a
// response, a /slowqueries row, and a sampled span tree can all be joined
// on one string.
//
// Scores are serialized with round-trip precision, so a client can compare
// results bit-for-bit against an in-process RunQuery.

#ifndef UOTS_SERVER_PROTOCOL_H_
#define UOTS_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/algorithm.h"
#include "core/query.h"
#include "server/json.h"
#include "traj/trajectory.h"
#include "trip/trip_query.h"
#include "util/counters.h"
#include "util/status.h"

namespace uots {

/// Frames larger than this are rejected (and skipped) by default.
inline constexpr size_t kDefaultMaxFrameBytes = size_t{1} << 20;  // 1 MiB
inline constexpr size_t kFrameHeaderBytes = 4;

/// Appends `payload` as one wire frame (header + body) to `out`.
void AppendFrame(std::string_view payload, std::string* out);
std::string EncodeFrame(std::string_view payload);

/// \brief Incremental frame decoder over a byte stream.
///
/// Feed arbitrary chunks with Append, then call Poll until kNeedMore.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t n);

  enum class Next {
    kFrame,     ///< *payload holds one complete frame body
    kNeedMore,  ///< no complete frame buffered; feed more bytes
    kOversized  ///< a frame exceeded the maximum; reported once, then skipped
  };

  /// Extracts the next event. On kOversized, *oversized_bytes (if non-null)
  /// receives the declared length; the decoder then discards exactly that
  /// many payload bytes as they arrive and continues with the next frame.
  Next Poll(std::string* payload, size_t* oversized_bytes = nullptr);

  size_t buffered_bytes() const { return buf_.size() - consumed_; }
  size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  void Compact();

  std::string buf_;
  size_t consumed_ = 0;        ///< prefix of buf_ already handed out
  size_t skip_remaining_ = 0;  ///< oversized payload bytes left to discard
  size_t max_frame_bytes_;
};

/// \brief Machine-readable outcome of one request.
enum class ResponseStatus {
  kOk,
  kParseError,        ///< unparseable frame (malformed JSON / bad fields)
  kInvalidArgument,   ///< well-formed but semantically invalid query
  kOverloaded,        ///< admission control rejected; retryable
  kDeadlineExceeded,  ///< deadline passed before a result was produced
  kShuttingDown,      ///< server is draining; retryable elsewhere
  kInternal,
};

/// Stable lower_snake wire name ("ok", "overloaded", ...).
const char* ToString(ResponseStatus s);
/// Inverse of ToString; kInternal when unknown.
ResponseStatus ParseResponseStatus(std::string_view name);
/// True for statuses a client should retry (overload, shutdown).
bool IsRetryable(ResponseStatus s);
/// Maps an engine/validation Status to the wire status.
ResponseStatus FromStatus(const Status& st);

/// \brief Per-request result-cache policy.
enum class CacheMode {
  kDefault,  ///< use the server's result cache when it has one
  kBypass,   ///< always compute; do not read or populate the cache
};

/// Client-supplied request_id values longer than this are rejected as a
/// parse error (they would bloat logs and slow-log entries).
inline constexpr size_t kMaxRequestIdBytes = 128;

/// \brief A decoded query request.
struct QueryRequest {
  int64_t id = 0;
  /// Optional client-chosen correlation string; the server generates one
  /// when empty and echoes it (either way) in the response.
  std::string request_id;
  UotsQuery query;
  AlgorithmKind algorithm = AlgorithmKind::kUots;
  bool has_algorithm = false;  ///< request named one explicitly
  double deadline_ms = 0.0;    ///< 0 = use the server default
  /// Wire field "cache": "default" (omitted) or "bypass".
  CacheMode cache = CacheMode::kDefault;
};

std::string EncodeQueryRequest(const QueryRequest& req);
/// Strict parse: unknown algorithm names, non-numeric ids, or missing
/// required fields are errors (the server turns them into kParseError).
Result<QueryRequest> ParseQueryRequest(std::string_view json);
/// Same, over an already-parsed object (the server parses each frame once
/// and dispatches on its "type" field; see RequestTypeOf).
Result<QueryRequest> ParseQueryRequest(const JsonValue& o);

/// \brief Wire request kinds, dispatched on the optional "type" field.
enum class RequestType {
  kQuery,    ///< "type" absent or "query"
  kIngest,   ///< "type": "ingest"
  kTrip,     ///< "type": "trip"
  kUnknown,  ///< anything else -> parse error
};

/// Classifies a parsed request object (object-ness is NOT checked here).
RequestType RequestTypeOf(const JsonValue& o);

/// Batches above this are rejected outright (atomic apply keeps the whole
/// batch in memory twice while validating; a megabatch belongs in multiple
/// frames).
inline constexpr size_t kMaxIngestBatchTrajectories = 4096;
/// Per-trajectory shape caps, mirroring what the generator/snapshot paths
/// produce; anything larger is almost certainly a corrupt or hostile frame.
inline constexpr size_t kMaxIngestSamplesPerTrajectory = 65536;
inline constexpr size_t kMaxIngestKeywordsPerTrajectory = 4096;

/// \brief A decoded ingest request: a batch of new trajectories.
///
/// Wire form (type distinguishes it from a query on the same connection):
///   {"id": 9, "type": "ingest", "request_id": "cli-7",
///    "trajectories": [
///      {"samples": [[12, 3600], [13, 3660]], "keywords": [3, 15]}, ...]}
/// Samples are [vertex, time_of_day_seconds] pairs, nondecreasing in time;
/// keywords are term ids (deduplicated/sorted server-side).
struct IngestRequest {
  int64_t id = 0;
  std::string request_id;
  std::vector<Trajectory> trajectories;
};

std::string EncodeIngestRequest(const IngestRequest& req);
Result<IngestRequest> ParseIngestRequest(const JsonValue& o);
Result<IngestRequest> ParseIngestRequest(std::string_view json);

/// \brief The ingest reply.
///
///   {"id": 9, "request_id": "cli-7", "status": "ok", "accepted": 128,
///    "first_traj": 250128, "generation": 3, "delta_trajectories": 384}
/// Batches are atomic: on any non-ok status, accepted == 0 and nothing was
/// ingested ("error" names the first offending trajectory).
struct IngestResponse {
  int64_t id = 0;
  std::string request_id;
  ResponseStatus status = ResponseStatus::kOk;
  std::string error;
  int64_t accepted = 0;
  /// Global TrajId of the first trajectory in the batch (contiguous ids
  /// follow); -1 on failure.
  int64_t first_traj = -1;
  /// Delta generation now serving (bumped by this batch).
  int64_t generation = 0;
  /// Total uncompacted delta trips after this batch.
  int64_t delta_trajectories = 0;

  bool ok() const { return status == ResponseStatus::kOk; }
  bool retryable() const { return IsRetryable(status); }
};

std::string EncodeIngestResponse(const IngestResponse& resp);
Result<IngestResponse> ParseIngestResponse(std::string_view json);

/// \brief A decoded (or to-be-encoded) query response.
struct QueryResponse {
  int64_t id = 0;
  /// Echo of the request's request_id (server-generated when the request
  /// carried none). Set on every response the server sends, errors
  /// included.
  std::string request_id;
  ResponseStatus status = ResponseStatus::kOk;
  std::string error;
  std::vector<ScoredTrajectory> results;
  bool has_stats = false;
  QueryStats stats;           ///< engine counters (subset survives decode)
  /// True when the answer came from the server's result cache (the stats
  /// are then those of the run that populated the entry).
  bool cached = false;
  double queue_wait_ms = 0.0; ///< time between admission and worker pickup
  double execute_ms = 0.0;    ///< engine wall time on the worker

  bool ok() const { return status == ResponseStatus::kOk; }
  bool retryable() const { return IsRetryable(status); }
};

std::string EncodeQueryResponse(const QueryResponse& resp);
Result<QueryResponse> ParseQueryResponse(std::string_view json);

/// \brief A decoded trip-assembly request.
///
/// Wire form ("type" distinguishes it from a query on the same
/// connection):
///   {"id": 3, "type": "trip", "request_id": "cli-9",
///    "locations": [12, 904, 77], "keywords": [3, 15],
///    "lambda": 0.5, "k": 3,
///    "ordered": true,             // optional; visit locations in order
///    "categories": true,          // optional; category-hierarchy matching
///    "gap_budget_m": 1500.0,      // optional; 0/absent = unlimited
///    "segments_per_location": 8,  // optional harvest shape
///    "window": 4,                 // optional harvest shape
///    "deadline_ms": 50, "cache": "bypass"}  // as on query requests
struct TripRequest {
  int64_t id = 0;
  std::string request_id;
  TripQuery query;
  double deadline_ms = 0.0;  ///< 0 = use the server default
  CacheMode cache = CacheMode::kDefault;
};

std::string EncodeTripRequest(const TripRequest& req);
Result<TripRequest> ParseTripRequest(const JsonValue& o);
Result<TripRequest> ParseTripRequest(std::string_view json);

/// \brief The trip reply: assembled trips with per-segment provenance.
///
///   {"id": 3, "request_id": "cli-9", "status": "ok",
///    "trips": [{"score": 0.91, "spatial": 0.88, "textual": 0.95,
///               "connector_m": 812.5,
///               "segments": [{"traj": 5, "begin": 2, "end": 11,
///                             "entry": 40, "exit": 61,
///                             "loc_distance": 120.5, "connector_m": 0},
///                            ...]}],
///    "stats": {...}, "server": {...}}
/// All doubles round-trip exactly (JsonAppendDouble), so a client can
/// compare trips bit-for-bit against an in-process TripPlanner.
struct TripResponse {
  int64_t id = 0;
  std::string request_id;
  ResponseStatus status = ResponseStatus::kOk;
  std::string error;
  std::vector<AssembledTrip> trips;
  bool has_stats = false;
  QueryStats stats;
  bool cached = false;
  double queue_wait_ms = 0.0;
  double execute_ms = 0.0;

  bool ok() const { return status == ResponseStatus::kOk; }
  bool retryable() const { return IsRetryable(status); }
};

std::string EncodeTripResponse(const TripResponse& resp);
Result<TripResponse> ParseTripResponse(std::string_view json);

/// Parses a ToString(AlgorithmKind) name ("UOTS", "BF", ...), case-
/// insensitively. kNotFound for unknown names.
Result<AlgorithmKind> ParseAlgorithmKind(std::string_view name);

}  // namespace uots

#endif  // UOTS_SERVER_PROTOCOL_H_

// Per-connection state: a non-blocking socket with buffered frame I/O.
//
// A Connection owns its fd, the incremental FrameDecoder for the inbound
// byte stream, and the outbound buffer. It performs the raw reads/writes;
// everything above (frame handling, timers, epoll registration) belongs to
// the server, which is the only thread that ever touches a Connection.

#ifndef UOTS_SERVER_CONNECTION_H_
#define UOTS_SERVER_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "server/protocol.h"
#include "server/timer_heap.h"

namespace uots {

/// \brief Lifetime counters for one connection (reported at close/shutdown).
struct ConnectionStats {
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t frames_in = 0;
  int64_t frames_out = 0;
  int64_t protocol_errors = 0;  ///< malformed JSON / oversized frames
};

/// \brief One accepted client connection (single-threaded use).
class Connection {
 public:
  /// Takes ownership of `fd` (closed on destruction or Close()).
  Connection(uint64_t id, int fd, size_t max_frame_bytes);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  bool closed() const { return fd_ < 0; }

  enum class IoResult {
    kOk,     ///< progress made (possibly zero bytes, EAGAIN)
    kClosed  ///< peer closed or fatal socket error; caller should drop us
  };

  /// Drains the socket into the frame decoder (until EAGAIN).
  IoResult ReadAvailable();

  /// The inbound frame stream; Poll after every ReadAvailable.
  FrameDecoder& decoder() { return decoder_; }

  /// Queues one response frame; call Flush (or wait for writability).
  void QueueFrame(std::string_view payload);

  /// Writes as much buffered output as the socket accepts.
  IoResult Flush();

  /// True while buffered output remains (caller keeps EPOLLOUT armed).
  bool want_write() const { return out_offset_ < out_.size(); }
  size_t pending_out_bytes() const { return out_.size() - out_offset_; }

  /// Closes the fd early (destructor is a no-op afterwards).
  void Close();

  ConnectionStats& stats() { return stats_; }
  const ConnectionStats& stats() const { return stats_; }

  // --- fields owned by the server's orchestration (not by this class) ---
  TimerHeap::TimerId idle_timer = TimerHeap::kInvalidTimer;
  int inflight = 0;          ///< requests admitted and not yet responded
  bool close_after_flush = false;

 private:
  uint64_t id_;
  int fd_;
  FrameDecoder decoder_;
  std::string out_;
  size_t out_offset_ = 0;
  ConnectionStats stats_;
};

}  // namespace uots

#endif  // UOTS_SERVER_CONNECTION_H_

// Minimal JSON value, parser, and writer for the wire protocol.
//
// The repo already *writes* JSON in several places (QueryStats::ToJson,
// bench JsonReport, Chrome traces); the server is the first component that
// must *parse* untrusted JSON off a socket, so this is a small, strict
// recursive-descent parser: UTF-8 pass-through, \uXXXX escapes (surrogate
// pairs included), doubles via strtod so that %.17g-encoded values
// round-trip bit-for-bit, a nesting-depth cap against stack abuse, and no
// trailing garbage. Numbers are doubles — every id the protocol carries
// (vertex, trajectory, request) is well inside the 2^53 exact range.

#ifndef UOTS_SERVER_JSON_H_
#define UOTS_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace uots {

/// \brief A parsed JSON document node (tree-owning, movable).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Int(int64_t v) { return Number(static_cast<double>(v)); }
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed getters with fallbacks for optional protocol fields.
  double NumberOr(double fallback) const {
    return is_number() ? number_ : fallback;
  }
  bool BoolOr(bool fallback) const { return is_bool() ? bool_ : fallback; }
  std::string StringOr(std::string fallback) const {
    return is_string() ? string_ : std::move(fallback);
  }

  /// Builders (no-ops unless the value has the matching type).
  JsonValue& Append(JsonValue v);                  // arrays
  JsonValue& Set(std::string key, JsonValue v);    // objects

  /// Compact serialization. Doubles use %.17g (shortened where exact), so
  /// parse(serialize(x)) reproduces every double bit-for-bit.
  std::string Serialize() const;
  void SerializeTo(std::string* out) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses a complete JSON document (object, array, or scalar). Rejects
/// trailing non-whitespace and nesting deeper than 64 levels.
Result<JsonValue> ParseJson(std::string_view text);

/// Appends `s` JSON-escaped (without quotes) to `out`.
void JsonEscape(std::string_view s, std::string* out);

/// Appends a double formatted for exact round-trip to `out`.
void JsonAppendDouble(double v, std::string* out);

}  // namespace uots

#endif  // UOTS_SERVER_JSON_H_

file(REMOVE_RECURSE
  "CMakeFiles/near_duplicate_detection.dir/near_duplicate_detection.cc.o"
  "CMakeFiles/near_duplicate_detection.dir/near_duplicate_detection.cc.o.d"
  "near_duplicate_detection"
  "near_duplicate_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/near_duplicate_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

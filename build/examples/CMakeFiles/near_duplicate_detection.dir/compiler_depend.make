# Empty compiler generated dependencies file for near_duplicate_detection.
# This may be replaced when dependencies are built.

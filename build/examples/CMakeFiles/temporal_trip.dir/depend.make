# Empty dependencies file for temporal_trip.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/temporal_trip.dir/temporal_trip.cc.o"
  "CMakeFiles/temporal_trip.dir/temporal_trip.cc.o.d"
  "temporal_trip"
  "temporal_trip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_trip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

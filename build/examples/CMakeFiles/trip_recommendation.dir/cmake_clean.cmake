file(REMOVE_RECURSE
  "CMakeFiles/trip_recommendation.dir/trip_recommendation.cc.o"
  "CMakeFiles/trip_recommendation.dir/trip_recommendation.cc.o.d"
  "trip_recommendation"
  "trip_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trip_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

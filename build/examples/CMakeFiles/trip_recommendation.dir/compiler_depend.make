# Empty compiler generated dependencies file for trip_recommendation.
# This may be replaced when dependencies are built.

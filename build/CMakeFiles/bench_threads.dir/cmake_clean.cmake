file(REMOVE_RECURSE
  "CMakeFiles/bench_threads.dir/bench/bench_threads.cc.o"
  "CMakeFiles/bench_threads.dir/bench/bench_threads.cc.o.d"
  "bench/bench_threads"
  "bench/bench_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

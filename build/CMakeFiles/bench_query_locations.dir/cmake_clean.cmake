file(REMOVE_RECURSE
  "CMakeFiles/bench_query_locations.dir/bench/bench_query_locations.cc.o"
  "CMakeFiles/bench_query_locations.dir/bench/bench_query_locations.cc.o.d"
  "bench/bench_query_locations"
  "bench/bench_query_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

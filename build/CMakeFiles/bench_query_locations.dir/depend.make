# Empty dependencies file for bench_query_locations.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_pairs.dir/bench/bench_pairs.cc.o"
  "CMakeFiles/bench_pairs.dir/bench/bench_pairs.cc.o.d"
  "bench/bench_pairs"
  "bench/bench_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

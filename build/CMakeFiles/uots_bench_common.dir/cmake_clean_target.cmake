file(REMOVE_RECURSE
  "libuots_bench_common.a"
)

# Empty compiler generated dependencies file for uots_bench_common.
# This may be replaced when dependencies are built.

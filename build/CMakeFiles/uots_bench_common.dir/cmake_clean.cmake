file(REMOVE_RECURSE
  "CMakeFiles/uots_bench_common.dir/bench/common/datasets.cc.o"
  "CMakeFiles/uots_bench_common.dir/bench/common/datasets.cc.o.d"
  "CMakeFiles/uots_bench_common.dir/bench/common/report.cc.o"
  "CMakeFiles/uots_bench_common.dir/bench/common/report.cc.o.d"
  "libuots_bench_common.a"
  "libuots_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

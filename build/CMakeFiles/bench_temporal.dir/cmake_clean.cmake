file(REMOVE_RECURSE
  "CMakeFiles/bench_temporal.dir/bench/bench_temporal.cc.o"
  "CMakeFiles/bench_temporal.dir/bench/bench_temporal.cc.o.d"
  "bench/bench_temporal"
  "bench/bench_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

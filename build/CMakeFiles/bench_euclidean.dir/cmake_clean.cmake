file(REMOVE_RECURSE
  "CMakeFiles/bench_euclidean.dir/bench/bench_euclidean.cc.o"
  "CMakeFiles/bench_euclidean.dir/bench/bench_euclidean.cc.o.d"
  "bench/bench_euclidean"
  "bench/bench_euclidean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_euclidean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_lambda.dir/bench/bench_lambda.cc.o"
  "CMakeFiles/bench_lambda.dir/bench/bench_lambda.cc.o.d"
  "bench/bench_lambda"
  "bench/bench_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

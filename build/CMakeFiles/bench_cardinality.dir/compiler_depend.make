# Empty compiler generated dependencies file for bench_cardinality.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/astar.cc" "src/net/CMakeFiles/uots_net.dir/astar.cc.o" "gcc" "src/net/CMakeFiles/uots_net.dir/astar.cc.o.d"
  "/root/repo/src/net/bidirectional.cc" "src/net/CMakeFiles/uots_net.dir/bidirectional.cc.o" "gcc" "src/net/CMakeFiles/uots_net.dir/bidirectional.cc.o.d"
  "/root/repo/src/net/dijkstra.cc" "src/net/CMakeFiles/uots_net.dir/dijkstra.cc.o" "gcc" "src/net/CMakeFiles/uots_net.dir/dijkstra.cc.o.d"
  "/root/repo/src/net/expansion.cc" "src/net/CMakeFiles/uots_net.dir/expansion.cc.o" "gcc" "src/net/CMakeFiles/uots_net.dir/expansion.cc.o.d"
  "/root/repo/src/net/generators.cc" "src/net/CMakeFiles/uots_net.dir/generators.cc.o" "gcc" "src/net/CMakeFiles/uots_net.dir/generators.cc.o.d"
  "/root/repo/src/net/graph.cc" "src/net/CMakeFiles/uots_net.dir/graph.cc.o" "gcc" "src/net/CMakeFiles/uots_net.dir/graph.cc.o.d"
  "/root/repo/src/net/io.cc" "src/net/CMakeFiles/uots_net.dir/io.cc.o" "gcc" "src/net/CMakeFiles/uots_net.dir/io.cc.o.d"
  "/root/repo/src/net/landmarks.cc" "src/net/CMakeFiles/uots_net.dir/landmarks.cc.o" "gcc" "src/net/CMakeFiles/uots_net.dir/landmarks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/uots_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uots_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libuots_net.a"
)

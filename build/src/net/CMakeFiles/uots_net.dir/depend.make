# Empty dependencies file for uots_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_net.dir/astar.cc.o"
  "CMakeFiles/uots_net.dir/astar.cc.o.d"
  "CMakeFiles/uots_net.dir/bidirectional.cc.o"
  "CMakeFiles/uots_net.dir/bidirectional.cc.o.d"
  "CMakeFiles/uots_net.dir/dijkstra.cc.o"
  "CMakeFiles/uots_net.dir/dijkstra.cc.o.d"
  "CMakeFiles/uots_net.dir/expansion.cc.o"
  "CMakeFiles/uots_net.dir/expansion.cc.o.d"
  "CMakeFiles/uots_net.dir/generators.cc.o"
  "CMakeFiles/uots_net.dir/generators.cc.o.d"
  "CMakeFiles/uots_net.dir/graph.cc.o"
  "CMakeFiles/uots_net.dir/graph.cc.o.d"
  "CMakeFiles/uots_net.dir/io.cc.o"
  "CMakeFiles/uots_net.dir/io.cc.o.d"
  "CMakeFiles/uots_net.dir/landmarks.cc.o"
  "CMakeFiles/uots_net.dir/landmarks.cc.o.d"
  "libuots_net.a"
  "libuots_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

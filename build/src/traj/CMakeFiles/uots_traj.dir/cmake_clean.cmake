file(REMOVE_RECURSE
  "CMakeFiles/uots_traj.dir/generator.cc.o"
  "CMakeFiles/uots_traj.dir/generator.cc.o.d"
  "CMakeFiles/uots_traj.dir/io.cc.o"
  "CMakeFiles/uots_traj.dir/io.cc.o.d"
  "CMakeFiles/uots_traj.dir/simplify.cc.o"
  "CMakeFiles/uots_traj.dir/simplify.cc.o.d"
  "CMakeFiles/uots_traj.dir/stats.cc.o"
  "CMakeFiles/uots_traj.dir/stats.cc.o.d"
  "CMakeFiles/uots_traj.dir/store.cc.o"
  "CMakeFiles/uots_traj.dir/store.cc.o.d"
  "CMakeFiles/uots_traj.dir/time_index.cc.o"
  "CMakeFiles/uots_traj.dir/time_index.cc.o.d"
  "CMakeFiles/uots_traj.dir/vertex_index.cc.o"
  "CMakeFiles/uots_traj.dir/vertex_index.cc.o.d"
  "libuots_traj.a"
  "libuots_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

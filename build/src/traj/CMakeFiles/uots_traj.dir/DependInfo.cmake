
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traj/generator.cc" "src/traj/CMakeFiles/uots_traj.dir/generator.cc.o" "gcc" "src/traj/CMakeFiles/uots_traj.dir/generator.cc.o.d"
  "/root/repo/src/traj/io.cc" "src/traj/CMakeFiles/uots_traj.dir/io.cc.o" "gcc" "src/traj/CMakeFiles/uots_traj.dir/io.cc.o.d"
  "/root/repo/src/traj/simplify.cc" "src/traj/CMakeFiles/uots_traj.dir/simplify.cc.o" "gcc" "src/traj/CMakeFiles/uots_traj.dir/simplify.cc.o.d"
  "/root/repo/src/traj/stats.cc" "src/traj/CMakeFiles/uots_traj.dir/stats.cc.o" "gcc" "src/traj/CMakeFiles/uots_traj.dir/stats.cc.o.d"
  "/root/repo/src/traj/store.cc" "src/traj/CMakeFiles/uots_traj.dir/store.cc.o" "gcc" "src/traj/CMakeFiles/uots_traj.dir/store.cc.o.d"
  "/root/repo/src/traj/time_index.cc" "src/traj/CMakeFiles/uots_traj.dir/time_index.cc.o" "gcc" "src/traj/CMakeFiles/uots_traj.dir/time_index.cc.o.d"
  "/root/repo/src/traj/vertex_index.cc" "src/traj/CMakeFiles/uots_traj.dir/vertex_index.cc.o" "gcc" "src/traj/CMakeFiles/uots_traj.dir/vertex_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/uots_net.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/uots_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uots_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/uots_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libuots_traj.a"
)

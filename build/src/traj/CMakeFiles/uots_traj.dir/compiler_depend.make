# Empty compiler generated dependencies file for uots_traj.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for uots_text.
# This may be replaced when dependencies are built.

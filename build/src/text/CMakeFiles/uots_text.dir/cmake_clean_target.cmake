file(REMOVE_RECURSE
  "libuots_text.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/uots_text.dir/inverted_index.cc.o"
  "CMakeFiles/uots_text.dir/inverted_index.cc.o.d"
  "CMakeFiles/uots_text.dir/similarity.cc.o"
  "CMakeFiles/uots_text.dir/similarity.cc.o.d"
  "CMakeFiles/uots_text.dir/vocabulary.cc.o"
  "CMakeFiles/uots_text.dir/vocabulary.cc.o.d"
  "libuots_text.a"
  "libuots_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/uots_util.dir/counters.cc.o"
  "CMakeFiles/uots_util.dir/counters.cc.o.d"
  "CMakeFiles/uots_util.dir/status.cc.o"
  "CMakeFiles/uots_util.dir/status.cc.o.d"
  "CMakeFiles/uots_util.dir/string_util.cc.o"
  "CMakeFiles/uots_util.dir/string_util.cc.o.d"
  "CMakeFiles/uots_util.dir/thread_pool.cc.o"
  "CMakeFiles/uots_util.dir/thread_pool.cc.o.d"
  "libuots_util.a"
  "libuots_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libuots_util.a"
)

# Empty compiler generated dependencies file for uots_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_core.dir/algorithm.cc.o"
  "CMakeFiles/uots_core.dir/algorithm.cc.o.d"
  "CMakeFiles/uots_core.dir/batch.cc.o"
  "CMakeFiles/uots_core.dir/batch.cc.o.d"
  "CMakeFiles/uots_core.dir/brute_force.cc.o"
  "CMakeFiles/uots_core.dir/brute_force.cc.o.d"
  "CMakeFiles/uots_core.dir/database.cc.o"
  "CMakeFiles/uots_core.dir/database.cc.o.d"
  "CMakeFiles/uots_core.dir/euclid_baseline.cc.o"
  "CMakeFiles/uots_core.dir/euclid_baseline.cc.o.d"
  "CMakeFiles/uots_core.dir/pairs.cc.o"
  "CMakeFiles/uots_core.dir/pairs.cc.o.d"
  "CMakeFiles/uots_core.dir/query.cc.o"
  "CMakeFiles/uots_core.dir/query.cc.o.d"
  "CMakeFiles/uots_core.dir/search.cc.o"
  "CMakeFiles/uots_core.dir/search.cc.o.d"
  "CMakeFiles/uots_core.dir/temporal.cc.o"
  "CMakeFiles/uots_core.dir/temporal.cc.o.d"
  "CMakeFiles/uots_core.dir/text_first.cc.o"
  "CMakeFiles/uots_core.dir/text_first.cc.o.d"
  "CMakeFiles/uots_core.dir/workload.cc.o"
  "CMakeFiles/uots_core.dir/workload.cc.o.d"
  "libuots_core.a"
  "libuots_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

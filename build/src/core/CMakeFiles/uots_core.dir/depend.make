# Empty dependencies file for uots_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libuots_core.a"
)

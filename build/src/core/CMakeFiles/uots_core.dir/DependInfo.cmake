
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithm.cc" "src/core/CMakeFiles/uots_core.dir/algorithm.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/algorithm.cc.o.d"
  "/root/repo/src/core/batch.cc" "src/core/CMakeFiles/uots_core.dir/batch.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/batch.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/core/CMakeFiles/uots_core.dir/brute_force.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/brute_force.cc.o.d"
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/uots_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/database.cc.o.d"
  "/root/repo/src/core/euclid_baseline.cc" "src/core/CMakeFiles/uots_core.dir/euclid_baseline.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/euclid_baseline.cc.o.d"
  "/root/repo/src/core/pairs.cc" "src/core/CMakeFiles/uots_core.dir/pairs.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/pairs.cc.o.d"
  "/root/repo/src/core/query.cc" "src/core/CMakeFiles/uots_core.dir/query.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/query.cc.o.d"
  "/root/repo/src/core/search.cc" "src/core/CMakeFiles/uots_core.dir/search.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/search.cc.o.d"
  "/root/repo/src/core/temporal.cc" "src/core/CMakeFiles/uots_core.dir/temporal.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/temporal.cc.o.d"
  "/root/repo/src/core/text_first.cc" "src/core/CMakeFiles/uots_core.dir/text_first.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/text_first.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/uots_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/uots_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traj/CMakeFiles/uots_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/uots_net.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/uots_text.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/uots_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uots_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/uots_geo.dir/grid_index.cc.o"
  "CMakeFiles/uots_geo.dir/grid_index.cc.o.d"
  "libuots_geo.a"
  "libuots_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uots_geo.
# This may be replaced when dependencies are built.

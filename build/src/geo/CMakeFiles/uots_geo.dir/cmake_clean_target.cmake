file(REMOVE_RECURSE
  "libuots_geo.a"
)

# Empty compiler generated dependencies file for uots_rng_test.
# This may be replaced when dependencies are built.

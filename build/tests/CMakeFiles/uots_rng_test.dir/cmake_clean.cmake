file(REMOVE_RECURSE
  "CMakeFiles/uots_rng_test.dir/rng_test.cc.o"
  "CMakeFiles/uots_rng_test.dir/rng_test.cc.o.d"
  "uots_rng_test"
  "uots_rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/uots_model_test.dir/model_test.cc.o"
  "CMakeFiles/uots_model_test.dir/model_test.cc.o.d"
  "uots_model_test"
  "uots_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for uots_model_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for uots_expansion_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_expansion_test.dir/expansion_test.cc.o"
  "CMakeFiles/uots_expansion_test.dir/expansion_test.cc.o.d"
  "uots_expansion_test"
  "uots_expansion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_expansion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uots_astar_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_astar_test.dir/astar_test.cc.o"
  "CMakeFiles/uots_astar_test.dir/astar_test.cc.o.d"
  "uots_astar_test"
  "uots_astar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_astar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

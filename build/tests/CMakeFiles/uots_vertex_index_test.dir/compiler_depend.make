# Empty compiler generated dependencies file for uots_vertex_index_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_vertex_index_test.dir/vertex_index_test.cc.o"
  "CMakeFiles/uots_vertex_index_test.dir/vertex_index_test.cc.o.d"
  "uots_vertex_index_test"
  "uots_vertex_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_vertex_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/uots_temporal_test.dir/temporal_test.cc.o"
  "CMakeFiles/uots_temporal_test.dir/temporal_test.cc.o.d"
  "uots_temporal_test"
  "uots_temporal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_temporal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

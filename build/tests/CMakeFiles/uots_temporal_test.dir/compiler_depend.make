# Empty compiler generated dependencies file for uots_temporal_test.
# This may be replaced when dependencies are built.

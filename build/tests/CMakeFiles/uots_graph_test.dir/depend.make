# Empty dependencies file for uots_graph_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_graph_test.dir/graph_test.cc.o"
  "CMakeFiles/uots_graph_test.dir/graph_test.cc.o.d"
  "uots_graph_test"
  "uots_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uots_database_test.
# This may be replaced when dependencies are built.

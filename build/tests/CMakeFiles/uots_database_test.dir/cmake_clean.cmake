file(REMOVE_RECURSE
  "CMakeFiles/uots_database_test.dir/database_test.cc.o"
  "CMakeFiles/uots_database_test.dir/database_test.cc.o.d"
  "uots_database_test"
  "uots_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uots_dijkstra_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_dijkstra_test.dir/dijkstra_test.cc.o"
  "CMakeFiles/uots_dijkstra_test.dir/dijkstra_test.cc.o.d"
  "uots_dijkstra_test"
  "uots_dijkstra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_dijkstra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

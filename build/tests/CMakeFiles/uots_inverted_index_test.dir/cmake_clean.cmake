file(REMOVE_RECURSE
  "CMakeFiles/uots_inverted_index_test.dir/inverted_index_test.cc.o"
  "CMakeFiles/uots_inverted_index_test.dir/inverted_index_test.cc.o.d"
  "uots_inverted_index_test"
  "uots_inverted_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_inverted_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for uots_inverted_index_test.

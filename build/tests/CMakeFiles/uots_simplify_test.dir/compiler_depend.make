# Empty compiler generated dependencies file for uots_simplify_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_simplify_test.dir/simplify_test.cc.o"
  "CMakeFiles/uots_simplify_test.dir/simplify_test.cc.o.d"
  "uots_simplify_test"
  "uots_simplify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for uots_traj_generator_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_traj_generator_test.dir/traj_generator_test.cc.o"
  "CMakeFiles/uots_traj_generator_test.dir/traj_generator_test.cc.o.d"
  "uots_traj_generator_test"
  "uots_traj_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_traj_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/uots_util_test.dir/util_test.cc.o"
  "CMakeFiles/uots_util_test.dir/util_test.cc.o.d"
  "uots_util_test"
  "uots_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uots_util_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_bidirectional_stats_test.dir/bidirectional_stats_test.cc.o"
  "CMakeFiles/uots_bidirectional_stats_test.dir/bidirectional_stats_test.cc.o.d"
  "uots_bidirectional_stats_test"
  "uots_bidirectional_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_bidirectional_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for uots_bidirectional_stats_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for uots_fuzz_consistency_test.
# This may be replaced when dependencies are built.

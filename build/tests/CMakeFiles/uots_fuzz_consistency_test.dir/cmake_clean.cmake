file(REMOVE_RECURSE
  "CMakeFiles/uots_fuzz_consistency_test.dir/fuzz_consistency_test.cc.o"
  "CMakeFiles/uots_fuzz_consistency_test.dir/fuzz_consistency_test.cc.o.d"
  "uots_fuzz_consistency_test"
  "uots_fuzz_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_fuzz_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uots_batch_workload_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_batch_workload_test.dir/batch_workload_test.cc.o"
  "CMakeFiles/uots_batch_workload_test.dir/batch_workload_test.cc.o.d"
  "uots_batch_workload_test"
  "uots_batch_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_batch_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uots_threshold_pairs_test.
# This may be replaced when dependencies are built.

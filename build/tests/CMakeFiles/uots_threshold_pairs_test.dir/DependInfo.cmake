
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/threshold_pairs_test.cc" "tests/CMakeFiles/uots_threshold_pairs_test.dir/threshold_pairs_test.cc.o" "gcc" "tests/CMakeFiles/uots_threshold_pairs_test.dir/threshold_pairs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uots_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/uots_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/uots_net.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/uots_text.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/uots_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/uots_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/uots_threshold_pairs_test.dir/threshold_pairs_test.cc.o"
  "CMakeFiles/uots_threshold_pairs_test.dir/threshold_pairs_test.cc.o.d"
  "uots_threshold_pairs_test"
  "uots_threshold_pairs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_threshold_pairs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/uots_status_test.dir/status_test.cc.o"
  "CMakeFiles/uots_status_test.dir/status_test.cc.o.d"
  "uots_status_test"
  "uots_status_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uots_status_test.
# This may be replaced when dependencies are built.

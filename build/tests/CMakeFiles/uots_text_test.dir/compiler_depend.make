# Empty compiler generated dependencies file for uots_text_test.
# This may be replaced when dependencies are built.

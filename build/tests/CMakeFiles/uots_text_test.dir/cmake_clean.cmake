file(REMOVE_RECURSE
  "CMakeFiles/uots_text_test.dir/text_test.cc.o"
  "CMakeFiles/uots_text_test.dir/text_test.cc.o.d"
  "uots_text_test"
  "uots_text_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/uots_search_equivalence_test.dir/search_equivalence_test.cc.o"
  "CMakeFiles/uots_search_equivalence_test.dir/search_equivalence_test.cc.o.d"
  "uots_search_equivalence_test"
  "uots_search_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_search_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for uots_search_equivalence_test.
# This may be replaced when dependencies are built.

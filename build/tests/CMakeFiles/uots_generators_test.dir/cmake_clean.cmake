file(REMOVE_RECURSE
  "CMakeFiles/uots_generators_test.dir/generators_test.cc.o"
  "CMakeFiles/uots_generators_test.dir/generators_test.cc.o.d"
  "uots_generators_test"
  "uots_generators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

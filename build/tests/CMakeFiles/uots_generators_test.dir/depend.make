# Empty dependencies file for uots_generators_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uots_store_test.dir/store_test.cc.o"
  "CMakeFiles/uots_store_test.dir/store_test.cc.o.d"
  "uots_store_test"
  "uots_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

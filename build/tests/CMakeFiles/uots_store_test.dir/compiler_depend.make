# Empty compiler generated dependencies file for uots_store_test.
# This may be replaced when dependencies are built.

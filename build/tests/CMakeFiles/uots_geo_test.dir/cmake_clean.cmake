file(REMOVE_RECURSE
  "CMakeFiles/uots_geo_test.dir/geo_test.cc.o"
  "CMakeFiles/uots_geo_test.dir/geo_test.cc.o.d"
  "uots_geo_test"
  "uots_geo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_geo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uots_geo_test.
# This may be replaced when dependencies are built.

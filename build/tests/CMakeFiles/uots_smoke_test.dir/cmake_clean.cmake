file(REMOVE_RECURSE
  "CMakeFiles/uots_smoke_test.dir/smoke_test.cc.o"
  "CMakeFiles/uots_smoke_test.dir/smoke_test.cc.o.d"
  "uots_smoke_test"
  "uots_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uots_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

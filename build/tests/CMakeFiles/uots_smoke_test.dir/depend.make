# Empty dependencies file for uots_smoke_test.
# This may be replaced when dependencies are built.

// Data cleaning via the similar-pairs self join — one of the paper's
// motivating applications: a trajectory database may hold several copies
// or near-copies of the same trip; the join finds them so only a
// representative needs to be kept.
//
// This example plants noisy duplicates into a generated trip set, runs
// FindSimilarPairs, and reports precision/recall of the planted set.

#include <cstdio>
#include <set>

#include "core/pairs.h"
#include "net/generators.h"
#include "traj/generator.h"
#include "traj/simplify.h"
#include "util/rng.h"

int main() {
  using namespace uots;

  GridNetworkOptions net_opts;
  net_opts.rows = 40;
  net_opts.cols = 40;
  auto network = MakeGridNetwork(net_opts);
  if (!network.ok()) return 1;
  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 2000;
  auto trips = GenerateTrips(*network, trip_opts);
  if (!trips.ok()) return 1;
  TrajectoryStore store = std::move(trips->store);

  // Plant duplicates: 25 random trajectories get a noisy copy (downsampled
  // to 2/3 of the samples — a typical effect of a different GPS logger).
  Rng rng(99);
  std::set<std::pair<TrajId, TrajId>> planted;
  const size_t originals = store.size();
  for (int i = 0; i < 25; ++i) {
    const TrajId src = static_cast<TrajId>(rng.Uniform(originals));
    Trajectory copy = store.Materialize(src);
    copy = DownsampleUniform(copy, std::max<size_t>(2, copy.samples.size() * 2 / 3));
    auto id = store.Add(copy);
    if (!id.ok()) return 1;
    planted.emplace(src, *id);
  }

  TrajectoryDatabase db(std::move(*network), std::move(store),
                        std::move(trips->vocabulary));
  std::printf("database: %zu trajectories (%d noisy duplicates planted)\n",
              db.store().size(), 25);

  PairJoinOptions opts;
  opts.theta = 0.90;  // near-duplicates score ~lambda*~1 + (1-lambda)*1
  opts.threads = 4;
  auto pairs = FindSimilarPairs(db, opts);
  if (!pairs.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 pairs.status().ToString().c_str());
    return 1;
  }

  int found_planted = 0;
  for (const auto& p : *pairs) {
    if (planted.count({p.a, p.b})) ++found_planted;
  }
  std::printf("join found %zu mutually-similar pairs at theta=%.2f\n",
              pairs->size(), opts.theta);
  std::printf("planted duplicates recovered: %d / %zu (recall %.2f)\n",
              found_planted, planted.size(),
              static_cast<double>(found_planted) / planted.size());
  std::printf("top pairs:\n");
  for (size_t i = 0; i < std::min<size_t>(5, pairs->size()); ++i) {
    const auto& p = (*pairs)[i];
    std::printf("  (%u, %u) score %.4f%s\n", p.a, p.b, p.score,
                planted.count({p.a, p.b}) ? "  [planted]" : "");
  }
  return found_planted == static_cast<int>(planted.size()) ? 0 : 1;
}

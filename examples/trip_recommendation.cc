// Trip recommendation scenario — the paper's motivating application.
//
// A tourist in a ring-radial ("Beijing-like") city wants a day trip that
// passes near their hotel, a landmark, and a market, and matches their
// interests. The example shows how the preference parameter lambda changes
// what gets recommended: lambda -> 1 returns the spatially closest past
// trips regardless of interests; lambda -> 0 returns trips by travelers
// with the same interests regardless of geometry.

#include <cstdio>

#include "core/algorithm.h"
#include "net/generators.h"
#include "traj/generator.h"

namespace {

void PrintResult(const uots::TrajectoryDatabase& db, double lambda,
                 const uots::SearchResult& result) {
  std::printf("\nlambda = %.1f:\n", lambda);
  for (const auto& item : result.items) {
    std::printf("  #%-6u score=%.3f spatial=%.3f textual=%.3f  keywords:",
                item.id, item.score, item.spatial_sim, item.textual_sim);
    int shown = 0;
    for (uots::TermId t : db.store().KeywordsOf(item.id).terms()) {
      if (shown++ == 4) {
        std::printf(" ...");
        break;
      }
      std::printf(" %s", db.vocabulary().TermOf(t).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace uots;

  RingRadialNetworkOptions net_opts;
  net_opts.rings = 25;
  net_opts.inner_ring_vertices = 10;
  auto network = MakeRingRadialNetwork(net_opts);
  if (!network.ok()) return 1;

  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 5000;
  trip_opts.vocabulary_size = 300;
  trip_opts.topic_affinity = 0.6;
  auto trips = GenerateTrips(*network, trip_opts);
  if (!trips.ok()) return 1;

  TrajectoryDatabase db(std::move(*network), std::move(trips->store),
                        std::move(trips->vocabulary));
  std::printf("city: %zu intersections; %zu past trips\n",
              db.network().NumVertices(), db.store().size());

  // Hotel near the centre, a landmark mid-town, a market further out.
  UotsQuery query;
  query.locations = {1, static_cast<VertexId>(db.network().NumVertices() / 3),
                     static_cast<VertexId>(db.network().NumVertices() / 2)};
  query.keywords =
      KeywordSet({db.vocabulary().Lookup("museum_0"),
                  db.vocabulary().Lookup("food_1"),
                  db.vocabulary().Lookup("scenic_0")});
  query.k = 4;

  auto engine = CreateAlgorithm(db, AlgorithmKind::kUots);
  for (double lambda : {0.9, 0.5, 0.1}) {
    query.lambda = lambda;
    auto result = engine->Search(query);
    if (!result.ok()) {
      std::fprintf(stderr, "search failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintResult(db, lambda, *result);
  }

  std::printf("\nNote how high lambda ranks by geometry while low lambda "
              "ranks by shared interests.\n");
  return 0;
}

// Side-by-side comparison of every search algorithm on one workload.
//
// Demonstrates: (a) the exact algorithms (BF, TF, UOTS, UOTS-w/o-h) return
// identical answers; (b) how much less work UOTS does; (c) how far off the
// Euclidean approximation is. A miniature of the benchmark suite, runnable
// in a second.

#include <cstdio>

#include "core/batch.h"
#include "core/euclid_baseline.h"
#include "core/workload.h"
#include "net/generators.h"
#include "traj/generator.h"

int main() {
  using namespace uots;

  GridNetworkOptions net_opts;
  net_opts.rows = 50;
  net_opts.cols = 50;
  auto network = MakeGridNetwork(net_opts);
  if (!network.ok()) return 1;
  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 5000;
  auto trips = GenerateTrips(*network, trip_opts);
  if (!trips.ok()) return 1;
  TrajectoryDatabase db(std::move(*network), std::move(trips->store),
                        std::move(trips->vocabulary));

  WorkloadOptions wopts;
  wopts.num_queries = 10;
  wopts.k = 10;
  auto queries = MakeWorkload(db, wopts);
  if (!queries.ok()) return 1;

  // Ground truth for overlap checks.
  BatchOptions bf_opts;
  bf_opts.algorithm = AlgorithmKind::kBruteForce;
  auto truth = RunBatch(db, *queries, bf_opts);
  if (!truth.ok()) return 1;

  std::printf("%-12s %10s %12s %12s %10s\n", "algorithm", "avg ms", "visited",
              "settled", "overlap");
  for (AlgorithmKind kind :
       {AlgorithmKind::kBruteForce, AlgorithmKind::kTextFirst,
        AlgorithmKind::kUots, AlgorithmKind::kUotsNoHeuristic,
        AlgorithmKind::kEuclidean}) {
    BatchOptions opts;
    opts.algorithm = kind;
    auto r = RunBatch(db, *queries, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", ToString(kind),
                   r.status().ToString().c_str());
      return 1;
    }
    double overlap = 0.0;
    for (size_t i = 0; i < queries->size(); ++i) {
      overlap += ResultOverlap(truth->answers[i], r->answers[i]);
    }
    overlap /= static_cast<double>(queries->size());
    const double q = static_cast<double>(queries->size());
    std::printf("%-12s %10.2f %12.0f %12.0f %10.3f\n", ToString(kind),
                r->total.elapsed_ms / q,
                static_cast<double>(r->total.visited_trajectories) / q,
                static_cast<double>(r->total.settled_vertices) / q, overlap);
  }
  std::printf("\nThe exact algorithms overlap 1.000 with brute force (up to "
              "score ties);\nEU's lower overlap is the error of ignoring the "
              "road network.\n");
  return 0;
}

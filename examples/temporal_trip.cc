// Three-domain trip planning (the temporal extension, core/temporal.h).
//
// A commuter wants a trip that passes near two places, happens around
// 08:00, and matches their interests. The example contrasts the answers
// with and without the temporal domain: without it, an identical route
// driven at midnight ranks the same; with it, the morning trips win.

#include <cstdio>

#include "core/temporal.h"
#include "net/generators.h"
#include "traj/generator.h"

namespace {

void Print(const char* label, const uots::TemporalSearchResult& r) {
  std::printf("%s\n", label);
  for (const auto& item : r.items) {
    std::printf("  #%-6u score=%.3f spatial=%.3f temporal=%.3f textual=%.3f\n",
                item.id, item.score, item.spatial_sim, item.temporal_sim,
                item.textual_sim);
  }
}

}  // namespace

int main() {
  using namespace uots;

  RingRadialNetworkOptions net_opts;
  net_opts.rings = 20;
  auto network = MakeRingRadialNetwork(net_opts);
  if (!network.ok()) return 1;
  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 4000;
  auto trips = GenerateTrips(*network, trip_opts);
  if (!trips.ok()) return 1;
  TrajectoryDatabase db(std::move(*network), std::move(trips->store),
                        std::move(trips->vocabulary));

  TemporalUotsQuery q;
  q.locations = {2, static_cast<VertexId>(db.network().NumVertices() / 2)};
  q.times = {8 * 3600};  // around eight in the morning
  q.keywords = KeywordSet({db.vocabulary().Lookup("transit_0"),
                           db.vocabulary().Lookup("food_0")});
  q.k = 4;

  TemporalUotsSearcher searcher(db);

  q.weight_spatial = 0.5;
  q.weight_temporal = 0.0;
  q.weight_textual = 0.5;
  auto without = searcher.Search(q);
  if (!without.ok()) return 1;
  Print("without temporal preference (ws=0.5, wt=0, wk=0.5):", *without);

  q.weight_spatial = 0.4;
  q.weight_temporal = 0.3;
  q.weight_textual = 0.3;
  auto with = searcher.Search(q);
  if (!with.ok()) return 1;
  Print("\nwith 08:00 preference (ws=0.4, wt=0.3, wk=0.3):", *with);

  std::printf("\nsearch effort with temporal domain: visited %lld, settled "
              "%lld events\n",
              static_cast<long long>(with->stats.visited_trajectories),
              static_cast<long long>(with->stats.settled_vertices));
  return 0;
}

// Dataset inspection: verify a generated (or imported) trajectory set has
// the properties the search algorithms assume before indexing it.
//
//   $ ./dataset_stats [dataset.snap | dataset.network]
//   $ ./dataset_stats [trajectories.txt network.txt]
//
// Without arguments, generates the default demo dataset. One argument is
// resolved by storage/resolver.h (binary snapshot or text dataset); two
// arguments load an explicit text pair (formats: traj/io.h, net/io.h).

#include <cstdio>
#include <optional>

#include "net/generators.h"
#include "net/io.h"
#include "storage/resolver.h"
#include "traj/generator.h"
#include "traj/io.h"
#include "traj/stats.h"

int main(int argc, char** argv) {
  using namespace uots;

  std::optional<RoadNetwork> network;
  TrajectoryStore store;
  if (argc == 2) {
    auto loaded = storage::LoadDatabaseFromPath(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::printf("source: %s (loaded in %.3fs)\n",
                storage::ToString(loaded->source), loaded->load_seconds);
    // Stats need owning copies; a snapshot-backed database views its file.
    const TrajectoryStore& s = loaded->db->store();
    GraphBuilder gb;
    for (const Point& p : loaded->db->network().positions()) gb.AddVertex(p);
    for (VertexId v = 0; v < loaded->db->network().NumVertices(); ++v) {
      for (const AdjacencyEntry& e : loaded->db->network().Neighbors(v)) {
        if (e.to > v) gb.AddEdge(v, e.to, e.weight);
      }
    }
    auto g = std::move(gb).Finalize(false);
    if (!g.ok()) return 1;
    network = std::move(*g);
    for (TrajId id = 0; id < s.size(); ++id) {
      if (!store.Add(s.Materialize(id)).ok()) return 1;
    }
  } else if (argc == 3) {
    auto g = LoadNetwork(argv[2]);
    auto s = LoadTrajectories(argv[1]);
    if (!g.ok() || !s.ok()) {
      std::fprintf(stderr, "load failed: %s / %s\n",
                   g.ok() ? "ok" : g.status().ToString().c_str(),
                   s.ok() ? "ok" : s.status().ToString().c_str());
      return 1;
    }
    network = std::move(*g);
    store = std::move(*s);
  } else {
    GridNetworkOptions net_opts;
    net_opts.rows = 40;
    net_opts.cols = 40;
    auto g = MakeGridNetwork(net_opts);
    if (!g.ok()) return 1;
    TripGeneratorOptions trip_opts;
    trip_opts.num_trajectories = 3000;
    auto trips = GenerateTrips(*g, trip_opts);
    if (!trips.ok()) return 1;
    network = std::move(*g);
    store = std::move(trips->store);
  }

  std::printf("network: %zu vertices, %zu edges, %.1f km of road\n",
              network->NumVertices(), network->NumEdges(),
              network->TotalEdgeLength() / 1000.0);
  const DatasetStats stats = ComputeDatasetStats(*network, store);
  std::printf("%s\n", stats.ToString().c_str());

  // The properties the UOTS algorithms rely on, as explicit checks:
  const bool trips_are_trip_sized = stats.samples_per_trajectory.mean >= 5 &&
                                    stats.duration_minutes.p90 <= 240;
  const bool keywords_present = stats.keywords_per_trajectory.min >= 1;
  const bool rush_hours_visible = stats.temporal_skew > 2.0 / 24.0;
  std::printf("\nchecks: trip-sized=%s keywords=%s rush-hours=%s\n",
              trips_are_trip_sized ? "yes" : "NO",
              keywords_present ? "yes" : "NO",
              rush_hours_visible ? "yes" : "NO");
  return trips_are_trip_sized && keywords_present ? 0 : 1;
}

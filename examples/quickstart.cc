// Quickstart: build a small city, generate trips, ask for a recommendation.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines:
// network generation -> trip generation -> database -> UOTS query.

#include <cstdio>

#include "core/algorithm.h"
#include "net/generators.h"
#include "traj/generator.h"

int main() {
  using namespace uots;

  // 1. A road network. Real deployments load one with LoadNetwork(); here
  //    we generate a Manhattan-style grid (~40 km^2, 900 intersections).
  GridNetworkOptions net_opts;
  net_opts.rows = 30;
  net_opts.cols = 30;
  auto network = MakeGridNetwork(net_opts);
  if (!network.ok()) {
    std::fprintf(stderr, "network: %s\n", network.status().ToString().c_str());
    return 1;
  }
  std::printf("network: %zu vertices, %zu edges\n", network->NumVertices(),
              network->NumEdges());

  // 2. Trajectories of previous travelers, tagged with activity keywords.
  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 2000;
  trip_opts.vocabulary_size = 200;
  auto trips = GenerateTrips(*network, trip_opts);
  if (!trips.ok()) {
    std::fprintf(stderr, "trips: %s\n", trips.status().ToString().c_str());
    return 1;
  }
  std::printf("trajectories: %zu (avg %.1f samples)\n", trips->store.size(),
              trips->store.AverageLength());

  // 3. The database indexes everything once; queries share it read-only.
  TrajectoryDatabase db(std::move(*network), std::move(trips->store),
                        std::move(trips->vocabulary));

  // 4. A user-oriented query: "I want to visit these three places, I care
  //    about food and museums, weigh location and interests equally."
  UotsQuery query;
  query.locations = {45, 420, 860};
  query.keywords = KeywordSet({db.vocabulary().Lookup("food_0"),
                               db.vocabulary().Lookup("museum_0")});
  query.lambda = 0.5;
  query.k = 3;

  auto engine = CreateAlgorithm(db, AlgorithmKind::kUots);
  auto result = engine->Search(query);
  if (!result.ok()) {
    std::fprintf(stderr, "search: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\ntop-%d recommended trajectories:\n", query.k);
  for (const auto& item : result->items) {
    std::printf("  trajectory %-6u score=%.4f (spatial=%.4f textual=%.4f)\n",
                item.id, item.score, item.spatial_sim, item.textual_sim);
  }
  std::printf("\nsearch effort: visited %lld of %zu trajectories, settled "
              "%lld vertices\n",
              static_cast<long long>(result->stats.visited_trajectories),
              db.store().size(),
              static_cast<long long>(result->stats.settled_vertices));
  return 0;
}

// Trace a query end to end and dump a Chrome/Perfetto trace.
//
//   $ ./trace_query [trace.json]
//
// Builds a small city, turns the span tracer on, runs one query per
// engine, and writes every recorded span to a trace_event JSON file.
// Open the file in chrome://tracing or https://ui.perfetto.dev to see the
// nested phase spans (textual filter, expansion rounds, bound
// maintenance, scheduling, refinement) per engine. Also prints the
// per-phase wall-time breakdown from QueryStats and the process-wide
// latency histograms from MetricsRegistry.

#include <cstdio>

#include "core/algorithm.h"
#include "net/generators.h"
#include "traj/generator.h"
#include "util/metrics.h"
#include "util/trace.h"

int main(int argc, char** argv) {
  using namespace uots;
  const char* out_path = argc > 1 ? argv[1] : "trace.json";

  GridNetworkOptions net_opts;
  net_opts.rows = 30;
  net_opts.cols = 30;
  auto network = MakeGridNetwork(net_opts);
  if (!network.ok()) {
    std::fprintf(stderr, "network: %s\n", network.status().ToString().c_str());
    return 1;
  }
  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 2000;
  trip_opts.vocabulary_size = 200;
  auto trips = GenerateTrips(*network, trip_opts);
  if (!trips.ok()) {
    std::fprintf(stderr, "trips: %s\n", trips.status().ToString().c_str());
    return 1;
  }
  TrajectoryDatabase db(std::move(*network), std::move(trips->store),
                        std::move(trips->vocabulary));

  UotsQuery query;
  query.locations = {45, 420, 860};
  query.keywords = KeywordSet({db.vocabulary().Lookup("food_0"),
                               db.vocabulary().Lookup("museum_0")});
  query.lambda = 0.5;
  query.k = 5;

  Trace::Clear();
  Trace::Start();
  for (AlgorithmKind kind :
       {AlgorithmKind::kUots, AlgorithmKind::kTextFirst,
        AlgorithmKind::kBruteForce, AlgorithmKind::kEuclidean}) {
    auto engine = CreateAlgorithm(db, kind);
    auto result = engine->Search(query);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", ToString(kind),
                   result.status().ToString().c_str());
      return 1;
    }
    MetricsRegistry::Global().Record(
        std::string("engine.") + ToString(kind),
        static_cast<int64_t>(result->stats.elapsed_ms * 1e6));
    std::printf("%-14s %s\n", ToString(kind),
                result->stats.ToString().c_str());
  }
  Trace::Stop();

  std::printf("\nmetrics registry:\n%s",
              MetricsRegistry::Global().ToString().c_str());

  const size_t events = Trace::Snapshot().size();
  if (!Trace::WriteChromeJson(out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::printf("\nwrote %s (%zu spans) — open in chrome://tracing or "
              "https://ui.perfetto.dev\n",
              out_path, events);
#if !UOTS_TRACE
  std::printf("note: built with -DUOTS_TRACE=OFF, spans compile to nothing\n");
#endif
  return 0;
}

// Dataset pipeline: generate a city + trips, persist them, load them back.
//
//   $ ./build_dataset [output_dir]    (default /tmp/uots_dataset)
//
// The text formats (net/io.h, traj/io.h) are the interchange point for
// plugging in real data: convert your OSM extract / GPS logs to these
// files and the whole library runs on them unchanged.

#include <cstdio>
#include <string>
#include <sys/stat.h>

#include "net/generators.h"
#include "net/io.h"
#include "traj/generator.h"
#include "traj/io.h"

int main(int argc, char** argv) {
  using namespace uots;
  const std::string dir = argc > 1 ? argv[1] : "/tmp/uots_dataset";
  ::mkdir(dir.c_str(), 0755);

  RingRadialNetworkOptions net_opts;
  net_opts.rings = 30;
  auto network = MakeRingRadialNetwork(net_opts);
  if (!network.ok()) {
    std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
    return 1;
  }
  TripGeneratorOptions trip_opts;
  trip_opts.num_trajectories = 3000;
  auto trips = GenerateTrips(*network, trip_opts);
  if (!trips.ok()) {
    std::fprintf(stderr, "%s\n", trips.status().ToString().c_str());
    return 1;
  }

  const std::string net_path = dir + "/city.network";
  const std::string traj_path = dir + "/city.trajectories";
  if (Status s = SaveNetwork(*network, net_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = SaveTrajectories(trips->store, traj_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu vertices) and %s (%zu trajectories)\n",
              net_path.c_str(), network->NumVertices(), traj_path.c_str(),
              trips->store.size());

  // Round-trip check: load both back and verify the shapes.
  auto net2 = LoadNetwork(net_path);
  auto traj2 = LoadTrajectories(traj_path);
  if (!net2.ok() || !traj2.ok()) {
    std::fprintf(stderr, "reload failed\n");
    return 1;
  }
  std::printf("reloaded: %zu vertices, %zu edges, %zu trajectories, "
              "%zu samples total\n",
              net2->NumVertices(), net2->NumEdges(), traj2->size(),
              traj2->TotalSamples());
  return net2->NumVertices() == network->NumVertices() &&
                 traj2->size() == trips->store.size()
             ? 0
             : 1;
}

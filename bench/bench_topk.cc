// Experiment F4 — effect of the result size k (the paper's future-work
// top-k variant, which this implementation supports natively).
//
// A larger k weakens the termination bound (the k-th best score is lower),
// so UOTS must expand further. Expected shape: UOTS cost grows moderately
// with k; BF is flat (it always scores everything).

#include "common/datasets.h"
#include "common/report.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

void Run() {
  JsonReport report("F4 effect of k");
  for (City city : {City::kBRN, City::kNRN}) {
    auto db = LoadCity(city);
    PrintBanner(std::string("F4 effect of k, ") + CityName(city), *db);
    Table table({"city", "k", "algorithm", "avg ms", "visited"});
    table.PrintHeader();
    for (int k : {1, 5, 10, 20, 50}) {
      WorkloadOptions wopts;
      wopts.num_queries = 10;
      wopts.k = k;
      wopts.seed = 781;
      const auto queries = DefaultWorkload(*db, wopts);
      for (AlgorithmKind kind :
           {AlgorithmKind::kBruteForce, AlgorithmKind::kTextFirst,
            AlgorithmKind::kUots}) {
        const RunMeasurement m = Measure(*db, queries, kind);
        table.PrintRow({CityName(city), std::to_string(k), ToString(kind),
                        FormatDouble(m.avg_ms, 2),
                        FormatDouble(m.avg_visited, 0)});
        auto& row = report.AddRow()
                        .Set("city", CityName(city))
                        .Set("k", static_cast<int64_t>(k))
                        .Set("algorithm", ToString(kind));
        AddMeasurementFields(row, m);
      }
      table.PrintRule();
    }
  }
  report.WriteFile("BENCH_topk.json");
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

// Table printing and experiment helpers shared by the bench binaries.

#ifndef UOTS_BENCH_COMMON_REPORT_H_
#define UOTS_BENCH_COMMON_REPORT_H_

#include <string>
#include <vector>

#include "core/batch.h"
#include "core/database.h"
#include "core/workload.h"

namespace uots {
namespace bench {

/// \brief Fixed-width table printer for experiment output.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14);

  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;
  void PrintRule() const;

 private:
  std::vector<std::string> columns_;
  int width_;
};

/// \brief One measured experiment cell: an algorithm run over a workload.
struct RunMeasurement {
  double avg_ms = 0.0;           ///< mean per-query wall time
  double avg_visited = 0.0;      ///< mean visited trajectories per query
  double avg_candidates = 0.0;   ///< mean refined candidates per query
  double avg_settled = 0.0;      ///< mean settled vertices per query
  double wall_seconds = 0.0;     ///< whole-batch wall time
  double candidate_ratio = 0.0;  ///< avg_candidates / |T|
};

/// Runs `queries` with the given algorithm (single thread) and aggregates.
RunMeasurement Measure(const TrajectoryDatabase& db,
                       const std::vector<UotsQuery>& queries,
                       AlgorithmKind kind, int threads = 1);

/// Builds the default experiment workload on `db` with overrides applied.
std::vector<UotsQuery> DefaultWorkload(const TrajectoryDatabase& db,
                                       const WorkloadOptions& opts);

/// Prints the standard experiment banner (dataset sizes etc.).
void PrintBanner(const std::string& experiment, const TrajectoryDatabase& db);

}  // namespace bench
}  // namespace uots

#endif  // UOTS_BENCH_COMMON_REPORT_H_

// Table printing and experiment helpers shared by the bench binaries.

#ifndef UOTS_BENCH_COMMON_REPORT_H_
#define UOTS_BENCH_COMMON_REPORT_H_

#include <string>
#include <vector>

#include "core/batch.h"
#include "core/database.h"
#include "core/workload.h"

namespace uots {
namespace bench {

/// \brief Fixed-width table printer for experiment output.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int width = 14);

  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;
  void PrintRule() const;

 private:
  std::vector<std::string> columns_;
  int width_;
};

/// \brief One measured experiment cell: an algorithm run over a workload.
struct RunMeasurement {
  double avg_ms = 0.0;           ///< mean per-query wall time
  double avg_visited = 0.0;      ///< mean visited trajectories per query
  double avg_candidates = 0.0;   ///< mean refined candidates per query
  double avg_settled = 0.0;      ///< mean settled vertices per query
  double wall_seconds = 0.0;     ///< whole-batch wall time
  double candidate_ratio = 0.0;  ///< avg_candidates / |T|
  double p50_ms = 0.0;           ///< median per-query latency
  double p95_ms = 0.0;           ///< 95th-percentile per-query latency
  double p99_ms = 0.0;           ///< 99th-percentile per-query latency
  double max_ms = 0.0;           ///< slowest query
};

/// Runs `queries` with the given algorithm (single thread) and aggregates.
RunMeasurement Measure(const TrajectoryDatabase& db,
                       const std::vector<UotsQuery>& queries,
                       AlgorithmKind kind, int threads = 1);

/// Summarises a latency histogram into the RunMeasurement percentile
/// fields (p50/p95/p99/max); the averaged counters are left untouched.
void FillLatencyFields(const LatencyHistogram& h, RunMeasurement* m);

/// Builds the default experiment workload on `db` with overrides applied.
std::vector<UotsQuery> DefaultWorkload(const TrajectoryDatabase& db,
                                       const WorkloadOptions& opts);

/// Prints the standard experiment banner (dataset sizes etc.).
void PrintBanner(const std::string& experiment, const TrajectoryDatabase& db);

/// \brief Machine-readable sidecar for a bench binary: accumulates flat
/// rows of string/number fields and serialises them as
/// `{"experiment": ..., "rows": [{...}, ...]}` so runs can be diffed by
/// scripts instead of scraping the console tables.
class JsonReport {
 public:
  /// One row under "rows"; fields keep insertion order. Returned by
  /// AddRow() by reference — the report owns the storage.
  class Row {
   public:
    Row& Set(const std::string& key, const std::string& value);
    Row& Set(const std::string& key, double value);
    Row& Set(const std::string& key, int64_t value);

   private:
    friend class JsonReport;
    std::vector<std::pair<std::string, std::string>> fields_;  // key -> JSON
  };

  explicit JsonReport(std::string experiment);

  Row& AddRow();
  size_t NumRows() const { return rows_.size(); }

  std::string ToJson() const;

  /// Writes ToJson() to `path`; reports (not aborts) on I/O failure.
  /// \return true when the file was written completely.
  bool WriteFile(const std::string& path) const;

 private:
  std::string experiment_;
  std::vector<Row> rows_;
};

/// Appends the standard RunMeasurement fields (averages, wall time, and
/// the p50/p95/p99/max latency summary) to a JSON row, so every bench
/// binary reports the same machine-readable schema.
JsonReport::Row& AddMeasurementFields(JsonReport::Row& row,
                                      const RunMeasurement& m);

}  // namespace bench
}  // namespace uots

#endif  // UOTS_BENCH_COMMON_REPORT_H_

// Shared benchmark datasets: a Beijing-like ring-radial network ("BRN") and
// a New-York-like perturbed grid ("NRN"), each with a taxi-trip set.
//
// Scale note: the paper's networks have 28k/96k vertices and its trajectory
// sets reach 10M (on a 10-node cluster). This harness is laptop-scale —
// ~19k/25k vertices and tens of thousands of trips — which preserves every
// trend the experiments measure (who wins, how cost scales) while keeping
// each bench binary under a couple of minutes. EXPERIMENTS.md discusses the
// scaling.
//
// Datasets are generated deterministically and cached as text files under
// $UOTS_BENCH_CACHE_DIR (default /tmp/uots_bench_cache) so the suite of
// bench binaries only pays generation once. On top of the text cache sits a
// per-cardinality binary snapshot cache (<CITY>.<n>.snap, src/storage/):
// after the first build of a given (city, cardinality) the database is
// persisted and later LoadCity calls mmap it back in without parsing or
// index building. Set UOTS_SNAPSHOT_CACHE=0 to bypass the snapshot layer
// (benches that measure the build path itself need the slow route).

#ifndef UOTS_BENCH_COMMON_DATASETS_H_
#define UOTS_BENCH_COMMON_DATASETS_H_

#include <memory>
#include <string>

#include "core/database.h"

namespace uots {
namespace bench {

/// Which benchmark city to load.
enum class City { kBRN, kRingRadial = kBRN, kNRN, kGrid = kNRN };

inline const char* CityName(City c) { return c == City::kBRN ? "BRN" : "NRN"; }

/// Default trajectory cardinalities (the paper's "default" setting, scaled).
inline constexpr int kDefaultTrajectoriesBRN = 15000;
inline constexpr int kDefaultTrajectoriesNRN = 30000;

/// Largest cardinality any bench sweeps to; the cache stores this many.
inline constexpr int kMaxTrajectoriesBRN = 20000;
inline constexpr int kMaxTrajectoriesNRN = 40000;

/// \brief Loads (or generates+caches) a city network plus `num_trajectories`
/// trips, fully indexed. `num_trajectories <= kMaxTrajectories*`.
std::unique_ptr<TrajectoryDatabase> LoadCity(City city, int num_trajectories);

/// Convenience: default-size database for the city.
std::unique_ptr<TrajectoryDatabase> LoadCity(City city);

/// The benchmark cache directory ($UOTS_BENCH_CACHE_DIR or the default),
/// created if missing.
std::string EnsureCacheDir();

/// Text-cache paths for a city (may not exist yet; LoadCity fills them).
std::string CachedNetworkPath(City city);
std::string CachedTrajectoriesPath(City city);

/// Snapshot-cache path for one (city, cardinality) pair.
std::string CachedSnapshotPath(City city, int num_trajectories);

/// False when UOTS_SNAPSHOT_CACHE=0 disables the snapshot layer.
bool SnapshotCacheEnabled();

}  // namespace bench
}  // namespace uots

#endif  // UOTS_BENCH_COMMON_DATASETS_H_

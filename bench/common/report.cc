#include "common/report.h"

#include <cstdio>
#include <cstdlib>

namespace uots {
namespace bench {

Table::Table(std::vector<std::string> columns, int width)
    : columns_(std::move(columns)), width_(width) {}

void Table::PrintHeader() const {
  PrintRule();
  for (const auto& c : columns_) std::printf("%-*s", width_, c.c_str());
  std::printf("\n");
  PrintRule();
}

void Table::PrintRow(const std::vector<std::string>& cells) const {
  for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
  std::printf("\n");
}

void Table::PrintRule() const {
  for (size_t i = 0; i < columns_.size() * static_cast<size_t>(width_); ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

RunMeasurement Measure(const TrajectoryDatabase& db,
                       const std::vector<UotsQuery>& queries,
                       AlgorithmKind kind, int threads) {
  BatchOptions opts;
  opts.algorithm = kind;
  opts.threads = threads;
  auto result = RunBatch(db, queries, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "batch failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  RunMeasurement m;
  const double q = static_cast<double>(queries.size());
  m.avg_ms = result->total.elapsed_ms / q;
  m.avg_visited = static_cast<double>(result->total.visited_trajectories) / q;
  m.avg_candidates = static_cast<double>(result->total.candidates) / q;
  m.avg_settled = static_cast<double>(result->total.settled_vertices) / q;
  m.wall_seconds = result->wall_seconds;
  m.candidate_ratio =
      m.avg_candidates / static_cast<double>(db.store().size());
  return m;
}

std::vector<UotsQuery> DefaultWorkload(const TrajectoryDatabase& db,
                                       const WorkloadOptions& opts) {
  auto queries = MakeWorkload(db, opts);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 queries.status().ToString().c_str());
    std::abort();
  }
  return std::move(*queries);
}

void PrintBanner(const std::string& experiment, const TrajectoryDatabase& db) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("network: |V|=%zu |E|=%zu   trajectories: |T|=%zu (avg len %.1f)\n",
              db.network().NumVertices(), db.network().NumEdges(),
              db.store().size(), db.store().AverageLength());
}

}  // namespace bench
}  // namespace uots

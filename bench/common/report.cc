#include "common/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace uots {
namespace bench {
namespace {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

}  // namespace

Table::Table(std::vector<std::string> columns, int width)
    : columns_(std::move(columns)), width_(width) {}

void Table::PrintHeader() const {
  PrintRule();
  for (const auto& c : columns_) std::printf("%-*s", width_, c.c_str());
  std::printf("\n");
  PrintRule();
}

void Table::PrintRow(const std::vector<std::string>& cells) const {
  for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
  std::printf("\n");
}

void Table::PrintRule() const {
  for (size_t i = 0; i < columns_.size() * static_cast<size_t>(width_); ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

RunMeasurement Measure(const TrajectoryDatabase& db,
                       const std::vector<UotsQuery>& queries,
                       AlgorithmKind kind, int threads) {
  BatchOptions opts;
  opts.algorithm = kind;
  opts.threads = threads;
  auto result = RunBatch(db, queries, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "batch failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  RunMeasurement m;
  const double q = static_cast<double>(queries.size());
  m.avg_ms = result->total.elapsed_ms / q;
  m.avg_visited = static_cast<double>(result->total.visited_trajectories) / q;
  m.avg_candidates = static_cast<double>(result->total.candidates) / q;
  m.avg_settled = static_cast<double>(result->total.settled_vertices) / q;
  m.wall_seconds = result->wall_seconds;
  m.candidate_ratio =
      m.avg_candidates / static_cast<double>(db.store().size());
  FillLatencyFields(result->latency, &m);
  return m;
}

void FillLatencyFields(const LatencyHistogram& h, RunMeasurement* m) {
  m->p50_ms = h.PercentileMs(50.0);
  m->p95_ms = h.PercentileMs(95.0);
  m->p99_ms = h.PercentileMs(99.0);
  m->max_ms = static_cast<double>(h.max_ns()) / 1e6;
}

std::vector<UotsQuery> DefaultWorkload(const TrajectoryDatabase& db,
                                       const WorkloadOptions& opts) {
  auto queries = MakeWorkload(db, opts);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 queries.status().ToString().c_str());
    std::abort();
  }
  return std::move(*queries);
}

void PrintBanner(const std::string& experiment, const TrajectoryDatabase& db) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("network: |V|=%zu |E|=%zu   trajectories: |T|=%zu (avg len %.1f)\n",
              db.network().NumVertices(), db.network().NumEdges(),
              db.store().size(), db.store().AverageLength());
}

JsonReport::Row& JsonReport::Row::Set(const std::string& key,
                                      const std::string& value) {
  fields_.emplace_back(key, JsonQuote(value));
  return *this;
}

JsonReport::Row& JsonReport::Row::Set(const std::string& key, double value) {
  fields_.emplace_back(key, JsonNumber(value));
  return *this;
}

JsonReport::Row& JsonReport::Row::Set(const std::string& key, int64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonReport::JsonReport(std::string experiment)
    : experiment_(std::move(experiment)) {}

JsonReport::Row& JsonReport::AddRow() {
  rows_.emplace_back();
  return rows_.back();
}

std::string JsonReport::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"experiment\": " << JsonQuote(experiment_)
     << ",\n  \"rows\": [";
  for (size_t i = 0; i < rows_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {";
    const auto& fields = rows_[i].fields_;
    for (size_t j = 0; j < fields.size(); ++j) {
      if (j != 0) os << ", ";
      os << JsonQuote(fields[j].first) << ": " << fields[j].second;
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

JsonReport::Row& AddMeasurementFields(JsonReport::Row& row,
                                      const RunMeasurement& m) {
  return row.Set("avg_ms", m.avg_ms)
      .Set("avg_visited", m.avg_visited)
      .Set("avg_candidates", m.avg_candidates)
      .Set("avg_settled", m.avg_settled)
      .Set("candidate_ratio", m.candidate_ratio)
      .Set("wall_seconds", m.wall_seconds)
      .Set("p50_ms", m.p50_ms)
      .Set("p95_ms", m.p95_ms)
      .Set("p99_ms", m.p99_ms)
      .Set("max_ms", m.max_ms);
}

bool JsonReport::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonReport: cannot open %s\n", path.c_str());
    return false;
  }
  const std::string body = ToJson();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "JsonReport: short write to %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  return true;
}

}  // namespace bench
}  // namespace uots

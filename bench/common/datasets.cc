#include "common/datasets.h"

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

#include "net/generators.h"
#include "net/io.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "traj/generator.h"
#include "traj/io.h"

namespace uots {
namespace bench {

namespace {

std::string CacheDir() {
  const char* env = std::getenv("UOTS_BENCH_CACHE_DIR");
  return env != nullptr ? env : "/tmp/uots_bench_cache";
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

RoadNetwork BuildNetwork(City city) {
  if (city == City::kBRN) {
    RingRadialNetworkOptions opts;
    opts.rings = 52;
    opts.inner_ring_vertices = 12;
    opts.ring_spacing_m = 220.0;
    opts.radial_rate = 0.35;
    opts.seed = 1001;
    auto g = MakeRingRadialNetwork(opts);
    if (!g.ok()) {
      std::fprintf(stderr, "BRN generation failed: %s\n",
                   g.status().ToString().c_str());
      std::abort();
    }
    return std::move(*g);
  }
  GridNetworkOptions opts;
  opts.rows = 160;
  opts.cols = 160;
  opts.spacing_m = 150.0;
  opts.removal_rate = 0.12;
  opts.seed = 1002;
  auto g = MakeGridNetwork(opts);
  if (!g.ok()) {
    std::fprintf(stderr, "NRN generation failed: %s\n",
                 g.status().ToString().c_str());
    std::abort();
  }
  return std::move(*g);
}

TrajectoryStore BuildTrips(const RoadNetwork& g, City city) {
  TripGeneratorOptions opts;
  opts.num_trajectories =
      city == City::kBRN ? kMaxTrajectoriesBRN : kMaxTrajectoriesNRN;
  opts.num_hotspots = 10;
  opts.vocabulary_size = 1000;
  opts.sample_stride = 3;
  opts.seed = city == City::kBRN ? 2001 : 2002;
  auto data = GenerateTrips(g, opts);
  if (!data.ok()) {
    std::fprintf(stderr, "trip generation failed: %s\n",
                 data.status().ToString().c_str());
    std::abort();
  }
  return std::move(data->store);
}

/// Copies the first n trajectories of `full` (cardinality sweeps).
TrajectoryStore Slice(const TrajectoryStore& full, int n) {
  TrajectoryStore out;
  const TrajId limit = std::min<TrajId>(static_cast<TrajId>(n),
                                        static_cast<TrajId>(full.size()));
  for (TrajId id = 0; id < limit; ++id) {
    auto added = out.Add(full.Materialize(id));
    if (!added.ok()) std::abort();
  }
  return out;
}

}  // namespace

std::string EnsureCacheDir() {
  const std::string dir = CacheDir();
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string CachedNetworkPath(City city) {
  return CacheDir() + "/" + CityName(city) + ".network";
}

std::string CachedTrajectoriesPath(City city) {
  return CacheDir() + "/" + CityName(city) + ".trajectories";
}

std::string CachedSnapshotPath(City city, int num_trajectories) {
  return CacheDir() + "/" + CityName(city) + "." +
         std::to_string(num_trajectories) + ".snap";
}

bool SnapshotCacheEnabled() {
  const char* env = std::getenv("UOTS_SNAPSHOT_CACHE");
  return env == nullptr || std::string(env) != "0";
}

std::unique_ptr<TrajectoryDatabase> LoadCity(City city, int num_trajectories) {
  EnsureCacheDir();
  const std::string net_path = CachedNetworkPath(city);
  const std::string traj_path = CachedTrajectoriesPath(city);

  // Fast path: a previously persisted snapshot of this exact (city,
  // cardinality) pair loads zero-copy, skipping parse and index builds.
  const std::string snap_path = CachedSnapshotPath(city, num_trajectories);
  if (SnapshotCacheEnabled() && FileExists(snap_path)) {
    auto snap = storage::LoadSnapshot(snap_path);
    if (snap.ok()) return std::move(*snap);
    std::fprintf(stderr, "snapshot cache load failed (%s); rebuilding\n",
                 snap.status().ToString().c_str());
  }

  RoadNetwork network = [&] {
    if (FileExists(net_path)) {
      auto g = LoadNetwork(net_path);
      if (g.ok()) return std::move(*g);
      std::fprintf(stderr, "cache load failed (%s); regenerating\n",
                   g.status().ToString().c_str());
    }
    RoadNetwork g = BuildNetwork(city);
    if (!SaveNetwork(g, net_path).ok()) {
      std::fprintf(stderr, "warning: cannot write cache %s\n",
                   net_path.c_str());
    }
    return g;
  }();

  TrajectoryStore full = [&] {
    if (FileExists(traj_path)) {
      auto s = LoadTrajectories(traj_path);
      if (s.ok()) return std::move(*s);
      std::fprintf(stderr, "cache load failed (%s); regenerating\n",
                   s.status().ToString().c_str());
    }
    TrajectoryStore s = BuildTrips(network, city);
    if (!SaveTrajectories(s, traj_path).ok()) {
      std::fprintf(stderr, "warning: cannot write cache %s\n",
                   traj_path.c_str());
    }
    return s;
  }();

  TrajectoryStore store =
      num_trajectories >= static_cast<int>(full.size())
          ? std::move(full)
          : Slice(full, num_trajectories);
  auto db = std::make_unique<TrajectoryDatabase>(
      std::move(network), std::move(store), Vocabulary::Synthetic(1000));
  if (SnapshotCacheEnabled()) {
    const Status st = storage::WriteSnapshot(*db, snap_path);
    if (!st.ok()) {
      std::fprintf(stderr, "warning: cannot write snapshot cache %s: %s\n",
                   snap_path.c_str(), st.ToString().c_str());
    }
  }
  return db;
}

std::unique_ptr<TrajectoryDatabase> LoadCity(City city) {
  return LoadCity(city, city == City::kBRN ? kDefaultTrajectoriesBRN
                                           : kDefaultTrajectoriesNRN);
}

}  // namespace bench
}  // namespace uots

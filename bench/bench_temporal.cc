// Experiment F7 — the three-domain (temporal) extension.
//
// Compares the three-domain expansion search against its brute-force
// evaluation while sweeping the temporal weight. Expected shape: the
// expansion search stays well below brute force at every weight, and the
// temporal domain is cheap to add (timeline walks settle samples much
// faster than network expansions settle vertices).

#include <cstdio>

#include "common/datasets.h"
#include "common/report.h"
#include "core/temporal.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

std::vector<TemporalUotsQuery> MakeQueries(const TrajectoryDatabase& db,
                                           double wt, int count) {
  Rng rng(801);
  std::vector<TemporalUotsQuery> out;
  for (int qi = 0; qi < count; ++qi) {
    const TrajId seed = static_cast<TrajId>(rng.Uniform(db.store().size()));
    const auto samples = db.store().SamplesOf(seed);
    TemporalUotsQuery q;
    q.weight_temporal = wt;
    q.weight_spatial = (1.0 - wt) * 0.6;
    q.weight_textual = 1.0 - wt - q.weight_spatial;
    q.k = 10;
    for (int i = 0; i < 4; ++i) {
      q.locations.push_back(samples[rng.Uniform(samples.size())].vertex);
    }
    for (int i = 0; i < 2; ++i) {
      q.times.push_back(samples[rng.Uniform(samples.size())].time_s);
    }
    // Keywords mix the seed's terms with vocabulary noise (matching the
    // two-domain workload generator) — full seed keyword sets would give
    // the textual domain unrealistically perfect selectivity.
    const auto& seed_keys = db.store().KeywordsOf(seed).terms();
    std::vector<TermId> keys;
    for (int i = 0; i < 5; ++i) {
      if (!seed_keys.empty() && !rng.Bernoulli(0.3)) {
        keys.push_back(seed_keys[rng.Uniform(seed_keys.size())]);
      } else {
        keys.push_back(static_cast<TermId>(rng.Uniform(1000)));
      }
    }
    q.keywords = KeywordSet(std::move(keys));
    out.push_back(std::move(q));
  }
  return out;
}

void AddTemporalRow(JsonReport* report, double wt, const char* algorithm,
                    const QueryStats& stats, const LatencyHistogram& hist,
                    double n) {
  report->AddRow()
      .Set("weight_temporal", wt)
      .Set("algorithm", algorithm)
      .Set("avg_ms", stats.elapsed_ms / n)
      .Set("avg_visited", stats.visited_trajectories / n)
      .Set("p50_ms", hist.PercentileMs(50.0))
      .Set("p95_ms", hist.PercentileMs(95.0))
      .Set("p99_ms", hist.PercentileMs(99.0))
      .Set("max_ms", static_cast<double>(hist.max_ns()) / 1e6);
}

void Run() {
  auto db = LoadCity(City::kBRN);
  PrintBanner("F7 three-domain temporal extension, BRN", *db);
  JsonReport report("F7 three-domain temporal extension");
  Table table({"wt", "algorithm", "avg ms", "visited"});
  table.PrintHeader();
  TemporalUotsSearcher searcher(*db);
  for (double wt : {0.1, 0.3, 0.5}) {
    const auto queries = MakeQueries(*db, wt, 10);
    QueryStats uots_stats, bf_stats;
    LatencyHistogram uots_hist, bf_hist;
    for (const auto& q : queries) {
      auto ru = searcher.Search(q);
      auto rb = BruteForceTemporalSearch(*db, q);
      if (!ru.ok() || !rb.ok()) std::abort();
      uots_stats += ru->stats;
      bf_stats += rb->stats;
      uots_hist.Record(static_cast<int64_t>(ru->stats.elapsed_ms * 1e6));
      bf_hist.Record(static_cast<int64_t>(rb->stats.elapsed_ms * 1e6));
      // Cross-check while we are here: the bench doubles as a validation.
      for (size_t i = 0; i < rb->items.size(); ++i) {
        if (std::abs(rb->items[i].score - ru->items[i].score) > 1e-9) {
          std::fprintf(stderr, "MISMATCH at rank %zu\n", i);
          std::abort();
        }
      }
    }
    const double n = static_cast<double>(queries.size());
    table.PrintRow({FormatDouble(wt, 1), "UOTS-3D",
                    FormatDouble(uots_stats.elapsed_ms / n, 2),
                    FormatDouble(uots_stats.visited_trajectories / n, 0)});
    table.PrintRow({FormatDouble(wt, 1), "BF-3D",
                    FormatDouble(bf_stats.elapsed_ms / n, 2),
                    FormatDouble(bf_stats.visited_trajectories / n, 0)});
    table.PrintRule();
    AddTemporalRow(&report, wt, "UOTS-3D", uots_stats, uots_hist, n);
    AddTemporalRow(&report, wt, "BF-3D", bf_stats, bf_hist, n);
  }
  report.WriteFile("BENCH_temporal.json");
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

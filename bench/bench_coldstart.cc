// Cold-start experiment: text parse-and-index vs snapshot mmap load.
//
//   $ ./bench/bench_coldstart [--city=BRN] [--trajectories=N] [--reps=3]
//
// For one (city, cardinality) dataset the harness materializes both
// artifact forms — the text pair (.network/.trajectories) and a binary
// snapshot (.snap) — then measures, in a FRESH PROCESS per repetition
// (fork/exec of this binary with --child=MODE), how long each load path
// takes and how much memory it peaks at (/proc/self/status VmHWM). Modes:
//
//   none        process starts and loads nothing (overhead baseline)
//   text        LoadDatabaseFromPath on the .network file: parse + index
//   snap        LoadSnapshot with checksum sweep (the default load path)
//   snap-nocrc  LoadSnapshot without the checksum sweep
//   snap-oracle LoadSnapshot of a snapshot with baked oracle sections
//               (measures the mmap-load delta the oracle columns add; its
//               canary answers run WITH the oracle and must still match)
//
// Every child also answers the same 4-query workload and prints a result
// checksum; the parent requires all modes to agree — a snapshot that loads
// fast but answers differently is a failure, not a win. Results land in
// BENCH_coldstart.json.

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/datasets.h"
#include "common/report.h"
#include "core/batch.h"
#include "core/workload.h"
#include "net/io.h"
#include "oracle/ch_oracle.h"
#include "storage/resolver.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"
#include "traj/io.h"
#include "util/timer.h"

namespace {

using uots::bench::City;

struct Flags {
  std::string city = "BRN";
  int trajectories = 0;  // 0 = city default
  int reps = 3;
  std::string json_out = "BENCH_coldstart.json";
  std::string child;  // set in child processes: none|text|snap|snap-nocrc
  std::string path;   // dataset path for the child
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

/// Peak resident set of this process so far, from /proc/self/status.
long ReadPeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

/// Order-sensitive checksum over the canary workload's answers.
uint64_t ResultChecksum(const uots::TrajectoryDatabase& db) {
  uots::WorkloadOptions wopts;
  wopts.num_queries = 4;
  wopts.seed = 99;
  auto queries = uots::MakeWorkload(db, wopts);
  if (!queries.ok()) return 0;
  uint64_t sum = 0xcbf29ce484222325ull;
  for (const auto& q : *queries) {
    auto r = uots::RunQuery(db, q, {});
    if (!r.ok()) return 0;
    for (const auto& item : r->items) {
      uint64_t bits;
      std::memcpy(&bits, &item.score, sizeof(bits));
      sum = (sum ^ (item.id + bits)) * 0x100000001b3ull;
    }
  }
  return sum;
}

/// Child body: load per `mode`, answer the canary workload, report one
/// machine-readable line, exit.
int RunChild(const std::string& mode, const std::string& path) {
  double load_seconds = 0.0;
  uint64_t checksum = 0;
  double heap_mb = 0.0, mmap_mb = 0.0;
  size_t trajectories = 0;
  if (mode != "none") {
    std::unique_ptr<uots::TrajectoryDatabase> db;
    uots::WallTimer timer;
    if (mode == "text") {
      auto loaded = uots::storage::LoadDatabaseFromPath(path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "child: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      db = std::move(loaded->db);
    } else {
      uots::storage::LoadOptions opts;
      opts.verify_checksums = mode != "snap-nocrc";
      auto loaded = uots::storage::LoadSnapshot(path, opts);
      if (!loaded.ok()) {
        std::fprintf(stderr, "child: %s\n",
                     loaded.status().ToString().c_str());
        return 1;
      }
      db = std::move(*loaded);
    }
    load_seconds = timer.ElapsedSeconds();
    const uots::MemoryBreakdown mem = db->Memory();
    heap_mb = static_cast<double>(mem.heap_bytes) / (1024.0 * 1024.0);
    mmap_mb = static_cast<double>(mem.mmap_bytes) / (1024.0 * 1024.0);
    trajectories = db->store().size();
    checksum = ResultChecksum(*db);
  }
  std::printf("COLDSTART load_s=%.6f peak_rss_kb=%ld heap_mb=%.2f "
              "mmap_mb=%.2f trajs=%zu checksum=%" PRIu64 "\n",
              load_seconds, ReadPeakRssKb(), heap_mb, mmap_mb, trajectories,
              checksum);
  return 0;
}

struct ChildResult {
  double load_s = 0.0;
  long peak_rss_kb = 0;
  double heap_mb = 0.0;
  double mmap_mb = 0.0;
  size_t trajs = 0;
  uint64_t checksum = 0;
};

/// Absolute path of this binary (/proc/self/exe resolved in THIS process —
/// the literal link must not reach popen's shell, which would resolve it
/// to the shell itself).
std::string SelfExePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return buf;
}

bool SpawnChild(const std::string& mode, const std::string& path,
                ChildResult* out) {
  const std::string cmd = SelfExePath() + " --child=" + mode +
                          " --path=" + path;
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  char line[512];
  bool parsed = false;
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    if (std::sscanf(line,
                    "COLDSTART load_s=%lf peak_rss_kb=%ld heap_mb=%lf "
                    "mmap_mb=%lf trajs=%zu checksum=%" SCNu64,
                    &out->load_s, &out->peak_rss_kb, &out->heap_mb,
                    &out->mmap_mb, &out->trajs, &out->checksum) == 6) {
      parsed = true;
    }
  }
  return ::pclose(pipe) == 0 && parsed;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--city", &v)) {
      flags.city = v;
    } else if (ParseFlag(argv[i], "--trajectories", &v)) {
      flags.trajectories = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--reps", &v)) {
      flags.reps = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--json-out", &v)) {
      flags.json_out = v;
    } else if (ParseFlag(argv[i], "--child", &v)) {
      flags.child = v;
    } else if (ParseFlag(argv[i], "--path", &v)) {
      flags.path = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (!flags.child.empty()) return RunChild(flags.child, flags.path);

  const City city = flags.city == "NRN" ? City::kNRN : City::kBRN;
  const int n = flags.trajectories > 0
                    ? flags.trajectories
                    : (city == City::kBRN ? uots::bench::kDefaultTrajectoriesBRN
                                          : uots::bench::kDefaultTrajectoriesNRN);

  // Materialize both artifact forms of the same dataset.
  std::printf("preparing %s n=%d artifacts...\n", flags.city.c_str(), n);
  std::fflush(stdout);
  auto db = uots::bench::LoadCity(city, n);
  const std::string stem = uots::bench::EnsureCacheDir() + "/coldstart." +
                           uots::bench::CityName(city) + "." +
                           std::to_string(n);
  const std::string net_path = stem + ".network";
  const std::string traj_path = stem + ".trajectories";
  const std::string snap_path = stem + ".snap";
  const std::string oracle_snap_path = stem + ".oracle.snap";
  if (!uots::SaveNetwork(db->network(), net_path).ok() ||
      !uots::SaveTrajectories(db->store(), traj_path).ok()) {
    std::fprintf(stderr, "artifact write failed under %s\n", stem.c_str());
    return 1;
  }
  // The text format stores coordinates and weights at 3-decimal precision,
  // so a text round-trip yields a database whose low float bits differ
  // from the generator's. Build the snapshots FROM the round-tripped
  // database: every child then answers over bit-identical data and the
  // checksum gate compares load paths, not serialization precision.
  db.reset();
  {
    auto rt = uots::storage::LoadDatabaseFromPath(net_path);
    if (!rt.ok()) {
      std::fprintf(stderr, "text round-trip failed: %s\n",
                   rt.status().ToString().c_str());
      return 1;
    }
    db = std::move(rt->db);
  }
  if (!uots::storage::WriteSnapshot(*db, snap_path).ok()) {
    std::fprintf(stderr, "artifact write failed under %s\n", stem.c_str());
    return 1;
  }
  // Same dataset with the distance oracle baked in: three extra columns
  // (ranks, upward offsets, upward edges) whose exact serialized size is
  // reported so the mmap-load delta below has its denominator.
  std::printf("contracting network for the oracle snapshot...\n");
  std::fflush(stdout);
  auto oracle = uots::DistanceOracle::Build(db->network(), {}, nullptr);
  if (!oracle.ok()) {
    std::fprintf(stderr, "oracle build failed: %s\n",
                 oracle.status().ToString().c_str());
    return 1;
  }
  const double oracle_section_mb =
      static_cast<double>(oracle->ranks().size_bytes() +
                          oracle->up_offsets().size_bytes() +
                          oracle->up_edges().size_bytes()) /
      (1024.0 * 1024.0);
  db->AttachOracle(std::make_shared<uots::DistanceOracle>(std::move(*oracle)));
  if (!uots::storage::WriteSnapshot(*db, oracle_snap_path).ok()) {
    std::fprintf(stderr, "artifact write failed under %s\n", stem.c_str());
    return 1;
  }
  db.reset();

  const struct {
    const char* mode;
    const std::string* path;
  } modes[] = {{"none", &net_path},
               {"text", &net_path},
               {"snap", &snap_path},
               {"snap-nocrc", &snap_path},
               {"snap-oracle", &oracle_snap_path}};

  uots::bench::Table table({"mode", "load_s", "peak_rss_mb", "heap_mb",
                            "mmap_mb"});
  table.PrintHeader();
  uots::bench::JsonReport report("coldstart");
  double text_mean = 0.0, snap_mean = 0.0, snap_oracle_mean = 0.0;
  long baseline_rss_kb = 0;
  uint64_t want_checksum = 0;
  bool checksums_agree = true;
  for (const auto& m : modes) {
    double sum_s = 0.0, min_s = 1e300;
    long sum_rss = 0;
    ChildResult last;
    for (int rep = 0; rep < std::max(1, flags.reps); ++rep) {
      if (!SpawnChild(m.mode, *m.path, &last)) {
        std::fprintf(stderr, "child %s failed\n", m.mode);
        return 1;
      }
      sum_s += last.load_s;
      min_s = std::min(min_s, last.load_s);
      sum_rss += last.peak_rss_kb;
    }
    const int reps = std::max(1, flags.reps);
    const double mean_s = sum_s / reps;
    const double mean_rss_mb = static_cast<double>(sum_rss) / reps / 1024.0;
    if (std::strcmp(m.mode, "none") == 0) {
      baseline_rss_kb = sum_rss / reps;
    } else if (std::strcmp(m.mode, "text") == 0) {
      text_mean = mean_s;
      want_checksum = last.checksum;
    } else {
      if (std::strcmp(m.mode, "snap") == 0) snap_mean = mean_s;
      if (std::strcmp(m.mode, "snap-oracle") == 0) snap_oracle_mean = mean_s;
      if (last.checksum != want_checksum) checksums_agree = false;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", mean_s);
    std::string load_cell = buf;
    std::snprintf(buf, sizeof(buf), "%.1f", mean_rss_mb);
    std::string rss_cell = buf;
    std::snprintf(buf, sizeof(buf), "%.1f", last.heap_mb);
    std::string heap_cell = buf;
    std::snprintf(buf, sizeof(buf), "%.1f", last.mmap_mb);
    std::string mmap_cell = buf;
    table.PrintRow({m.mode, load_cell, rss_cell, heap_cell, mmap_cell});

    auto& row = report.AddRow();
    row.Set("city", flags.city)
        .Set("trajectories", static_cast<int64_t>(n))
        .Set("mode", std::string(m.mode))
        .Set("reps", static_cast<int64_t>(reps))
        .Set("load_seconds_mean", mean_s)
        .Set("load_seconds_min", min_s)
        .Set("peak_rss_mb_mean", mean_rss_mb)
        .Set("peak_rss_over_baseline_mb",
             static_cast<double>(sum_rss / reps - baseline_rss_kb) / 1024.0)
        .Set("heap_mb", last.heap_mb)
        .Set("mmap_mb", last.mmap_mb)
        .Set("result_checksum", static_cast<int64_t>(last.checksum));
    if (std::strcmp(m.mode, "snap-oracle") == 0) {
      row.Set("oracle_section_mb", oracle_section_mb);
    }
  }

  if (!checksums_agree) {
    std::fprintf(stderr,
                 "FAIL: snapshot-loaded results differ from text-loaded\n");
    return 1;
  }
  if (snap_mean > 0.0 && text_mean > 0.0) {
    std::printf("\nresults identical across modes; snapshot speedup: %.1fx\n",
                text_mean / snap_mean);
  }
  if (snap_oracle_mean > 0.0 && snap_mean > 0.0) {
    std::printf("oracle sections: %.1f MB, mmap-load delta: %+.4fs "
                "(%.4fs vs %.4fs)\n",
                oracle_section_mb, snap_oracle_mean - snap_mean,
                snap_oracle_mean, snap_mean);
  }
  if (!flags.json_out.empty()) report.WriteFile(flags.json_out);
  return 0;
}

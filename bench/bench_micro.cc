// Experiment M1 — substrate micro-benchmarks (google-benchmark).
//
// Costs of the primitives the search is built from: full Dijkstra,
// incremental expansion steps, A* with Euclidean vs ALT heuristics,
// keyword-index probes, and textual similarity. Useful for spotting
// regressions and for the ALT ablation (A*/ALT settled-vertex reduction).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/datasets.h"
#include "common/report.h"
#include "net/astar.h"
#include "net/bidirectional.h"
#include "net/dijkstra.h"
#include "net/expansion.h"
#include "net/generators.h"
#include "net/landmarks.h"
#include "text/inverted_index.h"
#include "util/rng.h"
#include "util/trace.h"

namespace uots {
namespace bench {
namespace {

const TrajectoryDatabase& Db() {
  static auto* db = LoadCity(City::kBRN, 10000).release();
  return *db;
}

void BM_DijkstraFullTree(benchmark::State& state) {
  const auto& g = Db().network();
  Rng rng(1);
  for (auto _ : state) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    benchmark::DoNotOptimize(ComputeShortestPathTree(g, s));
  }
}
BENCHMARK(BM_DijkstraFullTree)->Unit(benchmark::kMillisecond);

void BM_ExpansionSteps(benchmark::State& state) {
  const auto& g = Db().network();
  NetworkExpansion ex(g);
  Rng rng(2);
  const int64_t steps = state.range(0);
  for (auto _ : state) {
    ex.Reset(static_cast<VertexId>(rng.Uniform(g.NumVertices())));
    VertexId v;
    double d;
    for (int64_t i = 0; i < steps && ex.Step(&v, &d); ++i) {
    }
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_ExpansionSteps)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ExpansionStepsDense(benchmark::State& state) {
  // Denser substrate than the generated cities (k=8 vs 3 nearest
  // neighbors): decrease-key traffic grows with degree, which is the
  // regime where the indexed frontier separates from a lazy queue.
  static const RoadNetwork* dense = [] {
    RandomGeometricOptions opts;
    opts.num_vertices = 50000;
    opts.k_nearest = 8;
    opts.seed = 11;
    auto g = MakeRandomGeometricNetwork(opts);
    return new RoadNetwork(std::move(*g));
  }();
  NetworkExpansion ex(*dense);
  Rng rng(6);
  const int64_t steps = state.range(0);
  for (auto _ : state) {
    ex.Reset(static_cast<VertexId>(rng.Uniform(dense->NumVertices())));
    VertexId v;
    double d;
    for (int64_t i = 0; i < steps && ex.Step(&v, &d); ++i) {
    }
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_ExpansionStepsDense)->Arg(1000)->Arg(5000);

void BM_AStarEuclidean(benchmark::State& state) {
  const auto& g = Db().network();
  AStarEngine astar(g);
  Rng rng(3);
  int64_t settled = 0;
  for (auto _ : state) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const PathResult r = astar.FindPath(s, t);
    settled += r.settled;
    benchmark::DoNotOptimize(r.distance);
  }
  state.counters["settled/query"] =
      static_cast<double>(settled) / state.iterations();
}
BENCHMARK(BM_AStarEuclidean)->Unit(benchmark::kMicrosecond);

void BM_AStarALT(benchmark::State& state) {
  const auto& g = Db().network();
  static const LandmarkIndex* landmarks = new LandmarkIndex(g, 8);
  AStarEngine astar(g);
  Rng rng(3);  // same seed: same (s, t) pairs as the Euclidean variant
  int64_t settled = 0;
  for (auto _ : state) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const PathResult r = astar.FindPath(s, t, landmarks->HeuristicFor(t));
    settled += r.settled;
    benchmark::DoNotOptimize(r.distance);
  }
  state.counters["settled/query"] =
      static_cast<double>(settled) / state.iterations();
}
BENCHMARK(BM_AStarALT)->Unit(benchmark::kMicrosecond);

void BM_BidirectionalDijkstra(benchmark::State& state) {
  const auto& g = Db().network();
  BidirectionalDijkstra bidir(g);
  Rng rng(3);  // same pairs as the A* benchmarks
  int64_t settled = 0;
  for (auto _ : state) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    const VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    benchmark::DoNotOptimize(bidir.Distance(s, t));
    settled += bidir.last_settled();
  }
  state.counters["settled/query"] =
      static_cast<double>(settled) / state.iterations();
}
BENCHMARK(BM_BidirectionalDijkstra)->Unit(benchmark::kMicrosecond);

void BM_KeywordIndexProbe(benchmark::State& state) {
  const auto& db = Db();
  Rng rng(4);
  TextualSimilarity sim;
  std::vector<ScoredDoc> out;
  for (auto _ : state) {
    std::vector<TermId> terms;
    for (int i = 0; i < 5; ++i) {
      terms.push_back(static_cast<TermId>(rng.Uniform(1000)));
    }
    db.keyword_index().ScoreCandidates(KeywordSet(std::move(terms)), sim, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_KeywordIndexProbe)->Unit(benchmark::kMicrosecond);

void BM_JaccardScore(benchmark::State& state) {
  TextualSimilarity sim;
  const KeywordSet a({1, 5, 9, 13, 17, 21});
  const KeywordSet b({5, 9, 10, 21, 30});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Score(a, b));
  }
}
BENCHMARK(BM_JaccardScore);

void BM_VertexIndexLookup(benchmark::State& state) {
  const auto& db = Db();
  Rng rng(5);
  size_t total = 0;
  for (auto _ : state) {
    const VertexId v =
        static_cast<VertexId>(rng.Uniform(db.network().NumVertices()));
    total += db.vertex_index().TrajectoriesAt(v).size();
  }
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_VertexIndexLookup);

void BM_UotsQuery(benchmark::State& state) {
  // Whole-engine benchmark over the instrumented search path; with
  // UOTS_TRACE_ACTIVE=1 (see main) it doubles as the tracer-overhead
  // measurement: compare against a run without the variable, and against
  // a -DUOTS_TRACE=OFF build.
  const auto& db = Db();
  static const std::vector<UotsQuery>* queries = [] {
    WorkloadOptions wopts;
    wopts.num_queries = 16;
    wopts.seed = 7;
    return new std::vector<UotsQuery>(DefaultWorkload(Db(), wopts));
  }();
  auto engine = CreateAlgorithm(db, AlgorithmKind::kUots);
  size_t qi = 0;
  for (auto _ : state) {
    auto r = engine->Search((*queries)[qi]);
    if (!r.ok()) {
      state.SkipWithError("search failed");
      break;
    }
    benchmark::DoNotOptimize(r->items.data());
    qi = (qi + 1) % queries->size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UotsQuery)->Unit(benchmark::kMillisecond);

// Forwards every run to the normal console table while capturing it as a
// JsonReport row, so the binary emits BENCH_micro.json as a side effect.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(JsonReport* report)
      : ConsoleReporter(isatty(fileno(stdout)) ? OO_Defaults : OO_Tabular),
        report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      auto& row = report_->AddRow();
      row.Set("name", run.benchmark_name())
          .Set("time_unit", benchmark::GetTimeUnitString(run.time_unit))
          .Set("real_time", run.GetAdjustedRealTime())
          .Set("cpu_time", run.GetAdjustedCPUTime())
          .Set("iterations", static_cast<int64_t>(run.iterations));
      for (const auto& [key, counter] : run.counters) {
        row.Set(key, static_cast<double>(counter));
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  JsonReport* report_;
};

}  // namespace
}  // namespace bench
}  // namespace uots

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // UOTS_TRACE_ACTIVE=1 turns span recording on for the whole run, which
  // makes BM_UotsQuery measure the tracing-enabled cost of the search.
  const char* trace_env = std::getenv("UOTS_TRACE_ACTIVE");
  const bool tracing = trace_env != nullptr && trace_env[0] != '0';
  if (tracing) uots::Trace::Start();
  uots::bench::JsonReport report("M1 substrate micro-benchmarks");
  uots::bench::JsonTeeReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (tracing) {
    uots::Trace::Stop();
    std::printf("tracing was active: %zu events captured, %lld dropped\n",
                uots::Trace::Snapshot().size(),
                static_cast<long long>(uots::Trace::dropped()));
  }
  report.WriteFile("BENCH_micro.json");
  return 0;
}

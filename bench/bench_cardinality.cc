// Experiment F1 — effect of trajectory cardinality |T| (paper Fig. "effect
// of trajectory cardinalities", scaled; see DESIGN.md §4).
//
// Sweeps |T| on both cities and reports per-query CPU time and visited
// trajectories for BF, TF, UOTS, and UOTS without the scheduling heuristic.
// Expected shape: all costs grow with |T|; UOTS stays an order of magnitude
// below TF/BF; the heuristic buys roughly a constant factor.

#include <cstdio>
#include <vector>

#include "common/datasets.h"
#include "common/report.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

void RunCity(City city, const std::vector<int>& sizes, JsonReport* report) {
  Table table({"city", "|T|", "algorithm", "avg ms", "visited", "settled"});
  bool banner = false;
  for (int size : sizes) {
    auto db = LoadCity(city, size);
    if (!banner) {
      PrintBanner(std::string("F1 effect of |T|, ") + CityName(city), *db);
      table.PrintHeader();
      banner = true;
    }
    WorkloadOptions wopts;
    wopts.num_queries = 10;
    wopts.seed = 778;
    const auto queries = DefaultWorkload(*db, wopts);
    for (AlgorithmKind kind :
         {AlgorithmKind::kBruteForce, AlgorithmKind::kTextFirst,
          AlgorithmKind::kUots, AlgorithmKind::kUotsNoHeuristic}) {
      const RunMeasurement m = Measure(*db, queries, kind);
      table.PrintRow({CityName(city), std::to_string(size), ToString(kind),
                      FormatDouble(m.avg_ms, 2), FormatDouble(m.avg_visited, 0),
                      FormatDouble(m.avg_settled, 0)});
      auto& row = report->AddRow()
                      .Set("city", CityName(city))
                      .Set("size", static_cast<int64_t>(size))
                      .Set("algorithm", ToString(kind));
      AddMeasurementFields(row, m);
    }
    table.PrintRule();
  }
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::JsonReport report("F1 effect of |T| (cardinality)");
  uots::bench::RunCity(uots::bench::City::kBRN, {5000, 10000, 15000, 20000},
                       &report);
  uots::bench::RunCity(uots::bench::City::kNRN, {10000, 20000, 30000, 40000},
                       &report);
  report.WriteFile("BENCH_cardinality.json");
  return 0;
}

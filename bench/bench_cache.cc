// Experiment C1 — cross-query caching (ISSUE 5).
//
// Tier 1 (result cache): an in-process emulation of the serving path — a
// Zipf-skewed closed loop over a fixed query pool, probing the sharded LRU
// before falling back to the engine — swept over request skews with the
// cache on and off. Real POI traffic is heavily repeated (the same "museum
// + food" trip is asked for constantly), which is exactly what the skew
// knob models; the interesting numbers are the hit rate the skew buys, the
// hit/miss latency split, and the throughput uplift.
//
// Tier 2 (distance-field cache): the same workload of *distinct* queries
// (no result-cache effect possible) run cold and warm over a shared
// expansion-prefix cache, against the cache-off baseline. The answers are
// bit-identical by construction (tests assert it); what this measures is
// the heap work a warm prefix store saves.

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "cache/distance_field_cache.h"
#include "cache/query_key.h"
#include "cache/result_cache.h"
#include "common/datasets.h"
#include "common/report.h"
#include "core/batch.h"
#include "text/zipf.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RunResultCacheSweep(const TrajectoryDatabase& db, JsonReport* report) {
  // The pool is deliberately larger than the cache (512 distinct queries vs
  // 64 entries): with uniform traffic the working set cannot fit and the
  // cache thrashes; as the skew rises the head of the distribution fits and
  // the hit rate climbs. That capacity pressure is what makes the sweep
  // informative — a cache bigger than the query universe trivially hits.
  WorkloadOptions wopts;
  wopts.num_queries = 512;
  wopts.num_locations = 3;
  wopts.k = 5;
  wopts.seed = 911;
  const std::vector<UotsQuery> pool = DefaultWorkload(db, wopts);
  constexpr int kRequests = 1500;
  const UotsSearchOptions search_opts;

  Table table({"skew", "cache", "qps", "hit rate", "hit p50 ms",
               "miss p50 ms", "uplift"});
  table.PrintHeader();

  for (double skew : {0.0, 0.6, 0.99, 1.2}) {
    double qps_off = 0.0;
    for (const bool cache_on : {false, true}) {
      auto engine = CreateAlgorithm(db, AlgorithmKind::kUots, search_opts);
      ResultCache::Options copts;
      copts.max_entries = 64;
      ResultCache cache(copts);
      ZipfSampler zipf(pool.size(), skew);
      Rng rng(4242);
      LatencyHistogram hit_lat, miss_lat;
      int64_t hits = 0;

      const double t0 = Now();
      for (int i = 0; i < kRequests; ++i) {
        const UotsQuery& q = pool[zipf.Sample(rng)];
        const double r0 = Now();
        if (cache_on) {
          const std::string key = EncodeResultCacheKey(
              q, AlgorithmKind::kUots, search_opts, db.fingerprint());
          if (auto hit = cache.Lookup(key)) {
            hit_lat.Record(static_cast<int64_t>((Now() - r0) * 1e9));
            ++hits;
            continue;
          }
          auto r = engine->Search(q);
          if (!r.ok()) std::abort();
          auto value = std::make_shared<CachedResult>();
          value->items = r->items;
          value->stats = r->stats;
          cache.Insert(key, std::move(value));
        } else {
          auto r = engine->Search(q);
          if (!r.ok()) std::abort();
        }
        miss_lat.Record(static_cast<int64_t>((Now() - r0) * 1e9));
      }
      const double wall = Now() - t0;
      const double qps = kRequests / wall;
      if (!cache_on) qps_off = qps;
      const double hit_rate = static_cast<double>(hits) / kRequests;
      const double uplift = cache_on && qps_off > 0.0 ? qps / qps_off : 1.0;

      table.PrintRow({FormatDouble(skew, 2), cache_on ? "on" : "off",
                      FormatDouble(qps, 0),
                      FormatDouble(100.0 * hit_rate, 1) + "%",
                      hits > 0 ? FormatDouble(hit_lat.PercentileMs(50), 4)
                               : std::string("-"),
                      FormatDouble(miss_lat.PercentileMs(50), 3),
                      cache_on ? FormatDouble(uplift, 2) + "x" : std::string("-")});
      report->AddRow()
          .Set("tier", std::string("result"))
          .Set("skew", skew)
          .Set("cache", std::string(cache_on ? "on" : "off"))
          .Set("requests", static_cast<int64_t>(kRequests))
          .Set("queries_per_second", qps)
          .Set("hit_rate", hit_rate)
          .Set("hit_p50_ms", hits > 0 ? hit_lat.PercentileMs(50) : 0.0)
          .Set("hit_p99_ms", hits > 0 ? hit_lat.PercentileMs(99) : 0.0)
          .Set("miss_p50_ms", miss_lat.PercentileMs(50))
          .Set("miss_p99_ms", miss_lat.PercentileMs(99))
          .Set("uplift", uplift);
    }
    table.PrintRule();
  }
}

void RunDistanceCacheComparison(const TrajectoryDatabase& db,
                                JsonReport* report) {
  WorkloadOptions wopts;
  wopts.num_queries = 96;
  wopts.num_locations = 3;
  wopts.k = 5;
  wopts.seed = 912;
  const std::vector<UotsQuery> queries = DefaultWorkload(db, wopts);

  Table table({"pass", "wall s", "avg ms", "settled/q", "replayed/q",
               "dcache hits"});
  table.PrintHeader();

  auto run_pass = [&](const char* label, SearchAlgorithm* engine) {
    QueryStats total;
    const double t0 = Now();
    for (const UotsQuery& q : queries) {
      auto r = engine->Search(q);
      if (!r.ok()) std::abort();
      total += r->stats;
    }
    const double wall = Now() - t0;
    const double n = static_cast<double>(queries.size());
    table.PrintRow({label, FormatDouble(wall, 3),
                    FormatDouble(1e3 * wall / n, 3),
                    FormatDouble(total.settled_vertices / n, 0),
                    FormatDouble(total.dcache_replayed / n, 0),
                    std::to_string(total.dcache_hits)});
    report->AddRow()
        .Set("tier", std::string("distance"))
        .Set("pass", std::string(label))
        .Set("wall_seconds", wall)
        .Set("avg_ms", 1e3 * wall / n)
        .Set("settled_per_query", total.settled_vertices / n)
        .Set("replayed_per_query", total.dcache_replayed / n)
        .Set("dcache_hits", total.dcache_hits)
        .Set("dcache_published", total.dcache_published);
  };

  UotsSearchOptions off;
  auto engine_off = CreateAlgorithm(db, AlgorithmKind::kUots, off);
  run_pass("cache off", engine_off.get());

  UotsSearchOptions on;
  on.distance_cache = std::make_shared<DistanceFieldCache>();
  auto engine_on = CreateAlgorithm(db, AlgorithmKind::kUots, on);
  run_pass("cold", engine_on.get());
  run_pass("warm", engine_on.get());
  table.PrintRule();
}

void Run() {
  auto db = LoadCity(City::kBRN);
  PrintBanner("C1 cross-query caching, BRN", *db);
  JsonReport report("C1 cross-query caching");
  std::printf("tier 1: result cache over a Zipf-skewed closed loop "
              "(512-query pool, 64-entry cache, m=3, k=5)\n");
  RunResultCacheSweep(*db, &report);
  std::printf("\ntier 2: distance-field cache over distinct queries "
              "(bit-identical answers; see uots_cache_test)\n");
  RunDistanceCacheComparison(*db, &report);
  report.WriteFile("BENCH_cache.json");
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

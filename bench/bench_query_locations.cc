// Experiment F2 — effect of the number of query locations m.
//
// More query locations mean more query sources (expansions) in the spatial
// domain. Expected shape: cost grows roughly linearly in m for every
// algorithm; UOTS keeps its margin because each expansion terminates
// earlier (the bound tightens with more sources).

#include <vector>

#include "common/datasets.h"
#include "common/report.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

void Run() {
  JsonReport report("F2 effect of m (query locations)");
  for (City city : {City::kBRN, City::kNRN}) {
    auto db = LoadCity(city);
    PrintBanner(std::string("F2 effect of m (query locations), ") +
                    CityName(city),
                *db);
    Table table({"city", "m", "algorithm", "avg ms", "visited", "settled"});
    table.PrintHeader();
    for (int m : {2, 4, 6, 8, 10}) {
      WorkloadOptions wopts;
      wopts.num_queries = 10;
      wopts.num_locations = m;
      wopts.seed = 779;
      const auto queries = DefaultWorkload(*db, wopts);
      for (AlgorithmKind kind :
           {AlgorithmKind::kBruteForce, AlgorithmKind::kTextFirst,
            AlgorithmKind::kUots, AlgorithmKind::kUotsNoHeuristic}) {
        const RunMeasurement meas = Measure(*db, queries, kind);
        table.PrintRow({CityName(city), std::to_string(m), ToString(kind),
                        FormatDouble(meas.avg_ms, 2),
                        FormatDouble(meas.avg_visited, 0),
                        FormatDouble(meas.avg_settled, 0)});
        auto& row = report.AddRow()
                        .Set("city", CityName(city))
                        .Set("m", static_cast<int64_t>(m))
                        .Set("algorithm", ToString(kind));
        AddMeasurementFields(row, meas);
      }
      table.PrintRule();
    }
  }
  report.WriteFile("BENCH_query_locations.json");
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

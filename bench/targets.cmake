# Experiment harness: one binary per table/figure (DESIGN.md §4).
# Included from the top-level CMakeLists so that ${CMAKE_BINARY_DIR}/bench
# holds only executables.

set(UOTS_BENCH_DIR ${CMAKE_SOURCE_DIR}/bench)

add_library(uots_bench_common
  ${UOTS_BENCH_DIR}/common/datasets.cc
  ${UOTS_BENCH_DIR}/common/report.cc
)
target_link_libraries(uots_bench_common PUBLIC uots_core uots_storage)
target_include_directories(uots_bench_common PUBLIC ${UOTS_BENCH_DIR})

function(uots_add_bench name)
  add_executable(${name} ${UOTS_BENCH_DIR}/${name}.cc)
  target_link_libraries(${name} PRIVATE uots_bench_common benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

uots_add_bench(bench_pruning)          # T1
uots_add_bench(bench_cardinality)      # F1
uots_add_bench(bench_query_locations)  # F2
uots_add_bench(bench_lambda)           # F3
uots_add_bench(bench_topk)             # F4
uots_add_bench(bench_threads)          # F6
uots_add_bench(bench_euclidean)        # A2
uots_add_bench(bench_micro)            # M1
uots_add_bench(bench_pairs)            # T2
uots_add_bench(bench_temporal)         # F7
uots_add_bench(bench_coldstart)        # S1 (snapshot load vs text build)
uots_add_bench(bench_cache)            # C1 (cross-query caching tiers)
uots_add_bench(bench_oracle)           # O1 (CH distance oracle)
uots_add_bench(bench_ingest)           # I1 (live ingest + compaction)
uots_add_bench(bench_trip)             # T1 (trip assembly)
target_link_libraries(bench_trip PRIVATE uots_trip)

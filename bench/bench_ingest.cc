// Experiment I1 — live ingest (DESIGN.md §11).
//
// Three measurements over BRN:
//
//   1. Quiescent query latency: the UOTS engine over the loaded base, no
//      writer anywhere. This is the baseline the ingest gate compares
//      against.
//   2. Ingest throughput: batches applied flat-out through the Ingestor
//      (validate + dedup + wholesale DeltaIndex rebuild + publish per
//      batch). The per-batch apply cost grows with the pending delta —
//      that growth is the pressure that motivates compaction, so the
//      first/last batch costs are reported alongside trips/s.
//   3. Queries under sustained ingest: a writer thread lands paced batches
//      while a reader measures the same workload as (1). The delta overlay
//      adds a second posting-list source to every candidate walk, so some
//      slowdown is expected; the acceptance gate is
//
//          sustained p95 <= 1.5 x quiescent p95
//
//      recorded in BENCH_ingest.json (gate_pass) and printed here.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/datasets.h"
#include "common/report.h"
#include "core/batch.h"
#include "ingest/ingestor.h"
#include "traj/generator.h"
#include "util/histogram.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

constexpr int kIngestTrips = 2560;
constexpr size_t kBatch = 64;
constexpr int kReadPasses = 8;  ///< workload sweeps per latency measurement
constexpr double kGateLimit = 1.5;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<Trajectory> MakeIngestPool(const TrajectoryDatabase& db) {
  TripGeneratorOptions opts;
  opts.num_trajectories = kIngestTrips;
  opts.vocabulary_size = static_cast<int>(db.vocabulary().size());
  opts.seed = 90210;  // displaced from the dataset seed: no duplicates
  auto gen = GenerateTrips(db.network(), opts);
  if (!gen.ok()) std::abort();
  std::vector<Trajectory> rows;
  rows.reserve(gen->store.size());
  for (size_t i = 0; i < gen->store.size(); ++i) {
    rows.push_back(gen->store.Materialize(static_cast<TrajId>(i)));
  }
  return rows;
}

/// One sweep of `queries` through a fresh UOTS engine; latencies recorded
/// per query.
void MeasureQueries(const TrajectoryDatabase& db,
                    const std::vector<UotsQuery>& queries, int passes,
                    LatencyHistogram* lat) {
  auto engine = CreateAlgorithm(db, AlgorithmKind::kUots, {});
  for (int p = 0; p < passes; ++p) {
    for (const UotsQuery& q : queries) {
      const double t0 = Now();
      auto r = engine->Search(q);
      if (!r.ok()) std::abort();
      lat->Record(static_cast<int64_t>((Now() - t0) * 1e9));
    }
  }
}

void Run() {
  auto db = LoadCity(City::kBRN);
  PrintBanner("I1 live ingest, BRN", *db);
  JsonReport report("I1 live ingest");

  WorkloadOptions wopts;
  wopts.num_queries = 64;
  wopts.num_locations = 3;
  wopts.k = 5;
  wopts.seed = 913;
  const std::vector<UotsQuery> queries = DefaultWorkload(*db, wopts);
  const std::vector<Trajectory> pool = MakeIngestPool(*db);

  Table table({"phase", "trips/s", "apply p50 ms", "apply p95 ms",
               "query p50 ms", "query p95 ms"});
  table.PrintHeader();

  // Phase 1: quiescent baseline.
  LatencyHistogram quiescent;
  MeasureQueries(*db, queries, kReadPasses, &quiescent);
  table.PrintRow({"quiescent", "-", "-", "-",
                  FormatDouble(quiescent.PercentileMs(50), 3),
                  FormatDouble(quiescent.PercentileMs(95), 3)});
  report.AddRow()
      .Set("phase", std::string("quiescent"))
      .Set("queries", static_cast<int64_t>(queries.size() * kReadPasses))
      .Set("query_p50_ms", quiescent.PercentileMs(50))
      .Set("query_p95_ms", quiescent.PercentileMs(95))
      .Set("query_p99_ms", quiescent.PercentileMs(99));

  // Phase 2: ingest throughput, no readers.
  {
    Ingestor ingestor(db.get());
    LatencyHistogram apply_lat;
    double first_ms = 0.0, last_ms = 0.0;
    const double t0 = Now();
    for (size_t off = 0; off < pool.size(); off += kBatch) {
      const size_t end = std::min(off + kBatch, pool.size());
      const double a0 = Now();
      auto r = ingestor.Apply(
          {pool.begin() + static_cast<ptrdiff_t>(off),
           pool.begin() + static_cast<ptrdiff_t>(end)});
      if (!r.ok()) std::abort();
      const double ms = 1e3 * (Now() - a0);
      apply_lat.Record(static_cast<int64_t>(ms * 1e6));
      if (off == 0) first_ms = ms;
      last_ms = ms;
    }
    const double wall = Now() - t0;
    const double trips_per_s = pool.size() / wall;
    table.PrintRow({"ingest only", FormatDouble(trips_per_s, 0),
                    FormatDouble(apply_lat.PercentileMs(50), 3),
                    FormatDouble(apply_lat.PercentileMs(95), 3), "-", "-"});
    std::printf("  (per-batch apply grows with the delta: first %.3f ms, "
                "last %.3f ms over %zu batches — the case for compaction)\n",
                first_ms, last_ms,
                (pool.size() + kBatch - 1) / kBatch);
    report.AddRow()
        .Set("phase", std::string("ingest_only"))
        .Set("trips", static_cast<int64_t>(pool.size()))
        .Set("batch", static_cast<int64_t>(kBatch))
        .Set("wall_seconds", wall)
        .Set("trips_per_second", trips_per_s)
        .Set("apply_p50_ms", apply_lat.PercentileMs(50))
        .Set("apply_p95_ms", apply_lat.PercentileMs(95))
        .Set("apply_first_ms", first_ms)
        .Set("apply_last_ms", last_ms);
  }

  // Phase 3: queries while batches land. Fresh base (the phase-2 delta
  // would otherwise be pre-paid). The writer models the compaction-bounded
  // steady state the server actually runs in — periodic compaction keeps
  // the pending delta small, and arrivals are paced, not flat-out — so the
  // delta here is capped at a fraction of the phase-2 pool and batches
  // land on a fixed cadence. (Flat-out ingest of an ever-growing delta is
  // phase 2's job; overlapping it with readers measures CPU contention,
  // not the overlay's query cost.)
  auto db2 = LoadCity(City::kBRN);
  constexpr size_t kSustainedTrips = 512;
  constexpr size_t kSustainedBatch = 16;
  {
    Ingestor ingestor(db2.get());
    std::thread writer([&] {
      for (size_t off = 0; off < kSustainedTrips; off += kSustainedBatch) {
        auto r = ingestor.Apply(
            {pool.begin() + static_cast<ptrdiff_t>(off),
             pool.begin() + static_cast<ptrdiff_t>(off + kSustainedBatch)});
        if (!r.ok()) std::abort();
        std::this_thread::sleep_for(std::chrono::milliseconds(15));
      }
    });
    LatencyHistogram sustained;
    MeasureQueries(*db2, queries, kReadPasses, &sustained);
    writer.join();

    const double ratio = quiescent.PercentileMs(95) > 0.0
                             ? sustained.PercentileMs(95) /
                                   quiescent.PercentileMs(95)
                             : 1.0;
    const bool gate_pass = ratio <= kGateLimit;
    table.PrintRow({"sustained ingest", "-", "-", "-",
                    FormatDouble(sustained.PercentileMs(50), 3),
                    FormatDouble(sustained.PercentileMs(95), 3)});
    table.PrintRule();
    std::printf("gate: sustained p95 / quiescent p95 = %.2fx (limit %.1fx) "
                "— %s\n",
                ratio, kGateLimit, gate_pass ? "PASS" : "FAIL");
    report.AddRow()
        .Set("phase", std::string("sustained_ingest"))
        .Set("queries", static_cast<int64_t>(queries.size() * kReadPasses))
        .Set("delta_trajectories_final",
             static_cast<int64_t>(ingestor.delta_trajectories()))
        .Set("query_p50_ms", sustained.PercentileMs(50))
        .Set("query_p95_ms", sustained.PercentileMs(95))
        .Set("query_p99_ms", sustained.PercentileMs(99))
        .Set("gate_p95_ratio", ratio)
        .Set("gate_limit", kGateLimit)
        .Set("gate_pass", static_cast<int64_t>(gate_pass ? 1 : 0));
  }

  report.WriteFile("BENCH_ingest.json");
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

// Experiment F3 — effect of the preference parameter lambda.
//
// lambda = 1 makes the query purely spatial, lambda = 0 purely textual.
// Expected shape (matching the paper family's lambda figures): the spatial
// domain needs more search effort than the textual domain, so cost rises
// with lambda; at lambda = 0 the UOTS search answers from the keyword
// index alone.

#include "common/datasets.h"
#include "common/report.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

void Run() {
  JsonReport report("F3 effect of lambda");
  for (City city : {City::kBRN, City::kNRN}) {
    auto db = LoadCity(city);
    PrintBanner(std::string("F3 effect of lambda, ") + CityName(city), *db);
    Table table({"city", "lambda", "algorithm", "avg ms", "visited"});
    table.PrintHeader();
    for (double lambda : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      WorkloadOptions wopts;
      wopts.num_queries = 10;
      wopts.lambda = lambda;
      wopts.seed = 780;
      const auto queries = DefaultWorkload(*db, wopts);
      for (AlgorithmKind kind :
           {AlgorithmKind::kTextFirst, AlgorithmKind::kUots,
            AlgorithmKind::kUotsNoHeuristic, AlgorithmKind::kUotsSequential}) {
        const RunMeasurement m = Measure(*db, queries, kind);
        table.PrintRow({CityName(city), FormatDouble(lambda, 1),
                        ToString(kind), FormatDouble(m.avg_ms, 2),
                        FormatDouble(m.avg_visited, 0)});
        auto& row = report.AddRow()
                        .Set("city", CityName(city))
                        .Set("lambda", lambda)
                        .Set("algorithm", ToString(kind));
        AddMeasurementFields(row, m);
      }
      table.PrintRule();
    }
  }
  report.WriteFile("BENCH_lambda.json");
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

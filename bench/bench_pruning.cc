// Experiment T1 — pruning effectiveness (the paper family's
// candidate-ratio / pruning-ratio table).
//
// For each city and algorithm, reports the fraction of the trajectory set
// that had to be refined to an exact score (candidate ratio) and its
// complement (pruning ratio), under the default workload. Expected shape:
// UOTS's candidate ratio is a fraction of TF's, and the heuristic improves
// on round-robin scheduling.

#include <cstdio>

#include "common/datasets.h"
#include "common/report.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

void Run() {
  JsonReport report("T1 pruning effectiveness");
  Table table({"city", "algorithm", "cand.ratio", "prune.ratio", "avg ms"});
  table.PrintHeader();
  for (City city : {City::kBRN, City::kNRN}) {
    auto db = LoadCity(city);
    PrintBanner(std::string("T1 pruning effectiveness, ") + CityName(city),
                *db);
    WorkloadOptions wopts;
    wopts.num_queries = 12;
    wopts.seed = 777;
    const auto queries = DefaultWorkload(*db, wopts);
    for (AlgorithmKind kind :
         {AlgorithmKind::kTextFirst, AlgorithmKind::kUots,
          AlgorithmKind::kUotsNoHeuristic, AlgorithmKind::kUotsSequential}) {
      const RunMeasurement m = Measure(*db, queries, kind);
      table.PrintRow({CityName(city), ToString(kind),
                      FormatDouble(m.candidate_ratio, 4),
                      FormatDouble(1.0 - m.candidate_ratio, 4),
                      FormatDouble(m.avg_ms, 2)});
      auto& row = report.AddRow()
                      .Set("city", CityName(city))
                      .Set("algorithm", ToString(kind))
                      .Set("prune_ratio", 1.0 - m.candidate_ratio);
      AddMeasurementFields(row, m);
    }
    table.PrintRule();
  }
  report.WriteFile("BENCH_pruning.json");
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

// Experiment A2 — Euclidean vs network distance (motivates the spatial-
// network setting: Euclidean scoring returns measurably different results).
//
// Reports the overlap@k between the Euclidean ranking and the exact
// network ranking, per city. Ring-radial topologies (BRN) detour more than
// grids, so their overlap should be lower.

#include "common/datasets.h"
#include "common/report.h"
#include "core/euclid_baseline.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

void Run() {
  Table table({"city", "k", "overlap@k", "EU ms", "BF ms"});
  table.PrintHeader();
  for (City city : {City::kBRN, City::kNRN}) {
    auto db = LoadCity(city);
    PrintBanner(std::string("A2 Euclidean vs network ranking, ") +
                    CityName(city),
                *db);
    for (int k : {1, 10, 50}) {
      WorkloadOptions wopts;
      wopts.num_queries = 8;
      wopts.k = k;
      wopts.seed = 783;
      const auto queries = DefaultWorkload(*db, wopts);
      auto bf = CreateAlgorithm(*db, AlgorithmKind::kBruteForce);
      auto eu = CreateAlgorithm(*db, AlgorithmKind::kEuclidean);
      double overlap = 0.0, eu_ms = 0.0, bf_ms = 0.0;
      for (const auto& q : queries) {
        auto rb = bf->Search(q);
        auto re = eu->Search(q);
        if (!rb.ok() || !re.ok()) std::abort();
        overlap += ResultOverlap(rb->items, re->items);
        bf_ms += rb->stats.elapsed_ms;
        eu_ms += re->stats.elapsed_ms;
      }
      const double n = static_cast<double>(queries.size());
      table.PrintRow({CityName(city), std::to_string(k),
                      FormatDouble(overlap / n, 3), FormatDouble(eu_ms / n, 2),
                      FormatDouble(bf_ms / n, 2)});
    }
    table.PrintRule();
  }
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

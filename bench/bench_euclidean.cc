// Experiment A2 — Euclidean vs network distance (motivates the spatial-
// network setting: Euclidean scoring returns measurably different results).
//
// Reports the overlap@k between the Euclidean ranking and the exact
// network ranking, per city. Ring-radial topologies (BRN) detour more than
// grids, so their overlap should be lower.

#include "common/datasets.h"
#include "common/report.h"
#include "core/euclid_baseline.h"
#include "util/histogram.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

void Run() {
  JsonReport report("A2 Euclidean vs network ranking");
  Table table({"city", "k", "overlap@k", "EU ms", "BF ms"});
  table.PrintHeader();
  for (City city : {City::kBRN, City::kNRN}) {
    auto db = LoadCity(city);
    PrintBanner(std::string("A2 Euclidean vs network ranking, ") +
                    CityName(city),
                *db);
    for (int k : {1, 10, 50}) {
      WorkloadOptions wopts;
      wopts.num_queries = 8;
      wopts.k = k;
      wopts.seed = 783;
      const auto queries = DefaultWorkload(*db, wopts);
      auto bf = CreateAlgorithm(*db, AlgorithmKind::kBruteForce);
      auto eu = CreateAlgorithm(*db, AlgorithmKind::kEuclidean);
      double overlap = 0.0, eu_ms = 0.0, bf_ms = 0.0;
      LatencyHistogram eu_hist, bf_hist;
      for (const auto& q : queries) {
        auto rb = bf->Search(q);
        auto re = eu->Search(q);
        if (!rb.ok() || !re.ok()) std::abort();
        overlap += ResultOverlap(rb->items, re->items);
        bf_ms += rb->stats.elapsed_ms;
        eu_ms += re->stats.elapsed_ms;
        bf_hist.Record(static_cast<int64_t>(rb->stats.elapsed_ms * 1e6));
        eu_hist.Record(static_cast<int64_t>(re->stats.elapsed_ms * 1e6));
      }
      const double n = static_cast<double>(queries.size());
      table.PrintRow({CityName(city), std::to_string(k),
                      FormatDouble(overlap / n, 3), FormatDouble(eu_ms / n, 2),
                      FormatDouble(bf_ms / n, 2)});
      report.AddRow()
          .Set("city", CityName(city))
          .Set("k", static_cast<int64_t>(k))
          .Set("overlap", overlap / n)
          .Set("eu_avg_ms", eu_ms / n)
          .Set("bf_avg_ms", bf_ms / n)
          .Set("eu_p50_ms", eu_hist.PercentileMs(50.0))
          .Set("eu_p95_ms", eu_hist.PercentileMs(95.0))
          .Set("eu_p99_ms", eu_hist.PercentileMs(99.0))
          .Set("bf_p50_ms", bf_hist.PercentileMs(50.0))
          .Set("bf_p95_ms", bf_hist.PercentileMs(95.0))
          .Set("bf_p99_ms", bf_hist.PercentileMs(99.0));
    }
    table.PrintRule();
  }
  report.WriteFile("BENCH_euclidean.json");
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

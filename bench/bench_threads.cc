// Experiment F6 — batch throughput vs thread count.
//
// UOTS per-query searches are independent, so a recommendation service
// scales across queries. This machine may have few physical cores (the
// banner prints hardware_concurrency); speedups flatten at that point —
// the paper's cluster ran 24-120 threads, the shape (monotone until the
// physical core count) is what carries over.

#include <thread>

#include "common/datasets.h"
#include "common/report.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

void Run() {
  auto db = LoadCity(City::kNRN);
  PrintBanner("F6 batch throughput vs thread count, NRN", *db);
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());
  WorkloadOptions wopts;
  wopts.num_queries = 48;
  wopts.seed = 782;
  const auto queries = DefaultWorkload(*db, wopts);
  Table table({"algorithm", "threads", "batch s", "queries/s"});
  table.PrintHeader();
  for (AlgorithmKind kind : {AlgorithmKind::kUots, AlgorithmKind::kTextFirst}) {
    for (int threads : {1, 2, 4, 8}) {
      const RunMeasurement m = Measure(*db, queries, kind, threads);
      table.PrintRow({ToString(kind), std::to_string(threads),
                      FormatDouble(m.wall_seconds, 3),
                      FormatDouble(queries.size() / m.wall_seconds, 1)});
    }
    table.PrintRule();
  }
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

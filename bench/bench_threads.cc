// Experiment F6 — batch throughput vs thread count.
//
// UOTS per-query searches are independent, so a recommendation service
// scales across queries. This machine may have few physical cores (the
// banner prints hardware_concurrency); speedups flatten at that point —
// the paper's cluster ran 24-120 threads, the shape (monotone until the
// physical core count) is what carries over.

#include <thread>

#include "common/datasets.h"
#include "common/report.h"
#include "util/string_util.h"

namespace uots {
namespace bench {
namespace {

void Run() {
  auto db = LoadCity(City::kNRN);
  PrintBanner("F6 batch throughput vs thread count, NRN", *db);
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());
  JsonReport report("F6 batch throughput vs thread count");
  WorkloadOptions wopts;
  wopts.num_queries = 48;
  wopts.seed = 782;
  const auto queries = DefaultWorkload(*db, wopts);
  Table table({"algorithm", "threads", "batch s", "queries/s", "p50 ms",
               "p95 ms", "p99 ms"});
  table.PrintHeader();
  for (AlgorithmKind kind : {AlgorithmKind::kUots, AlgorithmKind::kTextFirst}) {
    for (int threads : {1, 2, 4, 8}) {
      const RunMeasurement m = Measure(*db, queries, kind, threads);
      table.PrintRow({ToString(kind), std::to_string(threads),
                      FormatDouble(m.wall_seconds, 3),
                      FormatDouble(queries.size() / m.wall_seconds, 1),
                      FormatDouble(m.p50_ms, 2), FormatDouble(m.p95_ms, 2),
                      FormatDouble(m.p99_ms, 2)});
      auto& row = report.AddRow()
                      .Set("algorithm", ToString(kind))
                      .Set("threads", static_cast<int64_t>(threads))
                      .Set("queries_per_second",
                           queries.size() / m.wall_seconds);
      AddMeasurementFields(row, m);
    }
    table.PrintRule();
  }
  report.WriteFile("BENCH_threads.json");
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

// Trip-assembly experiment (EXPERIMENTS.md T1, trip edition).
//
//   $ ./bench/bench_trip [--city=BRN] [--trajectories=15000] [--queries=60]
//                        [--locations=2,4,6,8] [--k=3] [--oracle=1]
//
// For each query-location count m the harness runs the same trip workload
// twice — Dijkstra connectors, then oracle connectors — on the default
// city dataset (BRN, 15k trajectories unless overridden):
//
//   1. latency — per-query wall time distribution (mean/p50/p95/p99) of
//      the oracle run, plus the harvest/assemble phase split;
//   2. speedup — Dijkstra-connector mean over oracle-connector mean;
//   3. determinism — the two passes must produce bit-identical trips
//      (scores, similarities, connectors, provenance); the run FAILS
//      otherwise. This is the CI-facing restatement of the planner's
//      oracle on/off contract at full dataset scale.
//
// Results land in BENCH_trip.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/datasets.h"
#include "common/report.h"
#include "oracle/ch_oracle.h"
#include "trip/planner.h"
#include "trip/workload.h"
#include "util/timer.h"

namespace {

struct Flags {
  std::string city = "BRN";
  int trajectories = 0;  // 0 = the city default (15k BRN / 30k NRN)
  int queries = 60;
  std::string locations = "2,4,6,8";
  int k = 3;
  double gap_budget_m = 0.0;
  bool use_oracle = true;
  std::string json_out = "BENCH_trip.json";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

std::vector<int> ParseCsv(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

double Quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// One pass over the workload. Appends per-query wall seconds and answers;
/// accumulates engine stats.
double RunPass(uots::TripPlanner* planner,
               const std::vector<uots::TripQuery>& queries,
               std::vector<double>* latencies,
               std::vector<std::vector<uots::AssembledTrip>>* answers,
               uots::QueryStats* total) {
  uots::WallTimer pass;
  for (const auto& q : queries) {
    uots::WallTimer one;
    auto r = planner->Plan(q);
    if (!r.ok()) {
      std::fprintf(stderr, "trip query failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    if (latencies != nullptr) latencies->push_back(one.ElapsedSeconds());
    if (answers != nullptr) answers->push_back(std::move(r->trips));
    if (total != nullptr) *total += r->stats;
  }
  return pass.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--city", &v)) {
      flags.city = v;
    } else if (ParseFlag(argv[i], "--trajectories", &v)) {
      flags.trajectories = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--queries", &v)) {
      flags.queries = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--locations", &v)) {
      flags.locations = v;
    } else if (ParseFlag(argv[i], "--k", &v)) {
      flags.k = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--gap", &v)) {
      flags.gap_budget_m = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "--oracle", &v)) {
      flags.use_oracle = std::atoi(v.c_str()) != 0;
    } else if (ParseFlag(argv[i], "--json-out", &v)) {
      flags.json_out = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const uots::bench::City city =
      flags.city == "NRN" ? uots::bench::City::kNRN : uots::bench::City::kBRN;
  auto db = flags.trajectories > 0
                ? uots::bench::LoadCity(city, flags.trajectories)
                : uots::bench::LoadCity(city);
  if (db == nullptr) {
    std::fprintf(stderr, "failed to load city dataset\n");
    return 1;
  }
  std::printf("dataset: %s, %zu vertices, %zu trajectories\n",
              uots::bench::CityName(city), db->network().NumVertices(),
              db->store().size());

  if (flags.use_oracle && db->oracle() == nullptr) {
    uots::WallTimer build;
    auto oracle = uots::DistanceOracle::Build(db->network());
    if (!oracle.ok()) {
      std::fprintf(stderr, "oracle: %s\n", oracle.status().ToString().c_str());
      return 1;
    }
    db->AttachOracle(
        std::make_shared<uots::DistanceOracle>(std::move(*oracle)));
    std::printf("oracle built in %.2fs\n", build.ElapsedSeconds());
  }

  uots::bench::Table table({"locs", "dijkstra_ms", "oracle_ms", "speedup",
                            "p50_ms", "p95_ms", "p99_ms", "harvest_pct",
                            "assemble_pct", "avg_segments"});
  table.PrintHeader();
  uots::bench::JsonReport report("trip");

  for (const int locs : ParseCsv(flags.locations)) {
    uots::TripWorkloadOptions wopts;
    wopts.num_queries = flags.queries;
    wopts.num_locations = locs;
    wopts.k = flags.k;
    wopts.gap_budget_m = flags.gap_budget_m;
    wopts.seed = 11;
    auto queries = uots::MakeTripWorkload(*db, wopts);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   queries.status().ToString().c_str());
      return 1;
    }

    uots::TripPlannerOptions dij_opts;
    dij_opts.use_oracle = false;
    uots::TripPlanner dijkstra(*db, dij_opts);
    std::vector<std::vector<uots::AssembledTrip>> dij_answers;
    // Warm one pass (page in postings and the expansion scratch), measure
    // the second.
    RunPass(&dijkstra, *queries, nullptr, nullptr, nullptr);
    const double dij_s =
        RunPass(&dijkstra, *queries, nullptr, &dij_answers, nullptr);

    uots::TripPlannerOptions ora_opts;
    ora_opts.use_oracle = flags.use_oracle;
    uots::TripPlanner oracle_planner(*db, ora_opts);
    std::vector<double> latencies;
    std::vector<std::vector<uots::AssembledTrip>> ora_answers;
    uots::QueryStats stats;
    RunPass(&oracle_planner, *queries, nullptr, nullptr, nullptr);
    const double ora_s =
        RunPass(&oracle_planner, *queries, &latencies, &ora_answers, &stats);

    // The oracle on/off contract, at dataset scale, on every answer.
    if (dij_answers != ora_answers) {
      std::fprintf(stderr,
                   "FAIL: oracle trips differ from Dijkstra trips (locs=%d)\n",
                   locs);
      return 1;
    }

    size_t total_segments = 0;
    size_t assembled = 0;
    double connector_m = 0.0;
    for (const auto& trips : ora_answers) {
      for (const auto& t : trips) {
        total_segments += t.segments.size();
        connector_m += t.connector_total_m;
        ++assembled;
      }
    }
    std::sort(latencies.begin(), latencies.end());
    const double n = static_cast<double>(queries->size());
    const double dij_ms = dij_s / n * 1e3;
    const double ora_ms = ora_s / n * 1e3;
    const double p50 = Quantile(latencies, 0.50) * 1e3;
    const double p95 = Quantile(latencies, 0.95) * 1e3;
    const double p99 = Quantile(latencies, 0.99) * 1e3;
    const double total_ns = static_cast<double>(
        std::max<int64_t>(1, stats.TotalPhaseNs()));
    const double harvest_pct =
        100.0 * static_cast<double>(
                    stats.PhaseNs(uots::QueryPhase::kTripHarvest)) /
        total_ns;
    const double assemble_pct =
        100.0 * static_cast<double>(
                    stats.PhaseNs(uots::QueryPhase::kTripAssemble)) /
        total_ns;
    const double avg_segments =
        assembled == 0 ? 0.0
                       : static_cast<double>(total_segments) /
                             static_cast<double>(assembled);

    char c[10][32];
    std::snprintf(c[0], sizeof(c[0]), "%d", locs);
    std::snprintf(c[1], sizeof(c[1]), "%.3f", dij_ms);
    std::snprintf(c[2], sizeof(c[2]), "%.3f", ora_ms);
    std::snprintf(c[3], sizeof(c[3]), "%.1fx", dij_ms / ora_ms);
    std::snprintf(c[4], sizeof(c[4]), "%.3f", p50);
    std::snprintf(c[5], sizeof(c[5]), "%.3f", p95);
    std::snprintf(c[6], sizeof(c[6]), "%.3f", p99);
    std::snprintf(c[7], sizeof(c[7]), "%.1f", harvest_pct);
    std::snprintf(c[8], sizeof(c[8]), "%.1f", assemble_pct);
    std::snprintf(c[9], sizeof(c[9]), "%.2f", avg_segments);
    table.PrintRow(
        {c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7], c[8], c[9]});

    auto& row = report.AddRow();
    row.Set("city", std::string(uots::bench::CityName(city)))
        .Set("trajectories", static_cast<int64_t>(db->store().size()))
        .Set("num_locations", static_cast<int64_t>(locs))
        .Set("queries", static_cast<int64_t>(queries->size()))
        .Set("k", static_cast<int64_t>(flags.k))
        .Set("dijkstra_ms_per_query", dij_ms)
        .Set("oracle_ms_per_query", ora_ms)
        .Set("connector_speedup", dij_ms / ora_ms)
        .Set("p50_ms", p50)
        .Set("p95_ms", p95)
        .Set("p99_ms", p99)
        .Set("harvest_pct", harvest_pct)
        .Set("assemble_pct", assemble_pct)
        .Set("avg_segments_per_trip", avg_segments)
        .Set("avg_connector_m",
             assembled == 0 ? 0.0 : connector_m / static_cast<double>(assembled))
        .Set("assembled_trips", static_cast<int64_t>(assembled))
        .Set("oracle_lookups", stats.oracle_lookups)
        .Set("answers_identical", static_cast<int64_t>(1));
  }

  if (!flags.json_out.empty()) report.WriteFile(flags.json_out);
  return 0;
}

// Distance-oracle experiment (EXPERIMENTS.md O1).
//
//   $ ./bench/bench_oracle [--sizes=40,80,126] [--queries=24] [--pairs=20000]
//
// Three measurements per network scale (s x s perturbed grids spanning
// roughly 1.5k vertices up to ~10x that; --sizes overrides):
//
//   1. construction — DistanceOracle::Build wall time, shortcut count,
//      upward-arc count, and serialized column bytes;
//   2. kernel — mean exact sd(u, v) latency of the bidirectional CH query
//      versus a plain point-to-point Dijkstra on the same random pairs
//      (Dijkstra gets proportionally fewer pairs; it is the slow side);
//   3. end-to-end — the same UOTS workload with the oracle on vs off.
//      Answers must be bit-identical (ids, scores, spatial, textual); the
//      run FAILS otherwise. The speedup column is the paper-facing number.
//
// Results land in BENCH_oracle.json.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/report.h"
#include "core/batch.h"
#include "core/workload.h"
#include "net/dijkstra.h"
#include "net/generators.h"
#include "oracle/ch_oracle.h"
#include "oracle/querier.h"
#include "traj/generator.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

struct Flags {
  std::string sizes = "40,80,126";
  int queries = 24;
  int pairs = 20000;
  int trips = 0;  // 0 = scale with the network (2 per vertex, min 2000)
  std::string json_out = "BENCH_oracle.json";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

std::vector<int> ParseSizes(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// One workload pass with a fresh engine per query (the RunQuery service
/// path). Returns total wall seconds; appends each query's answer.
double RunPass(const uots::TrajectoryDatabase& db,
               const std::vector<uots::UotsQuery>& queries, bool use_oracle,
               std::vector<std::vector<uots::ScoredTrajectory>>* answers,
               uots::QueryStats* total) {
  uots::QueryOptions opts;
  opts.algorithm = uots::AlgorithmKind::kUots;
  opts.uots.use_oracle = use_oracle;
  uots::WallTimer timer;
  for (const auto& q : queries) {
    auto r = uots::RunQuery(db, q, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    if (answers != nullptr) answers->push_back(std::move(r->items));
    if (total != nullptr) *total += r->stats;
  }
  return timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--sizes", &v)) {
      flags.sizes = v;
    } else if (ParseFlag(argv[i], "--queries", &v)) {
      flags.queries = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--pairs", &v)) {
      flags.pairs = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--trips", &v)) {
      flags.trips = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--json-out", &v)) {
      flags.json_out = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  uots::bench::Table table({"vertices", "build_s", "shortcuts", "oracle_us",
                            "dijkstra_us", "kernel_x", "uots_ms", "oracle_ms",
                            "e2e_x"});
  table.PrintHeader();
  uots::bench::JsonReport report("oracle");

  for (const int side : ParseSizes(flags.sizes)) {
    uots::GridNetworkOptions net_opts;
    net_opts.rows = side;
    net_opts.cols = side;
    net_opts.seed = 5;
    auto g = uots::MakeGridNetwork(net_opts);
    if (!g.ok()) {
      std::fprintf(stderr, "network: %s\n", g.status().ToString().c_str());
      return 1;
    }
    const int n_trips =
        flags.trips > 0
            ? flags.trips
            : std::max(2000, static_cast<int>(g->NumVertices()) * 2);
    uots::TripGeneratorOptions trip_opts;
    trip_opts.num_trajectories = n_trips;
    trip_opts.seed = 6;
    auto trips = uots::GenerateTrips(*g, trip_opts);
    if (!trips.ok()) {
      std::fprintf(stderr, "trips: %s\n", trips.status().ToString().c_str());
      return 1;
    }
    auto db = std::make_unique<uots::TrajectoryDatabase>(
        std::move(*g), std::move(trips->store), std::move(trips->vocabulary));
    const auto num_vertices =
        static_cast<uots::VertexId>(db->network().NumVertices());

    // 1. Construction.
    uots::OracleBuildStats build_stats;
    auto oracle = uots::DistanceOracle::Build(db->network(), {}, &build_stats);
    if (!oracle.ok()) {
      std::fprintf(stderr, "oracle: %s\n", oracle.status().ToString().c_str());
      return 1;
    }
    const uots::MemoryBreakdown mem = oracle->Memory();
    const double oracle_mb = static_cast<double>(mem.heap_bytes +
                                                 mem.mmap_bytes) /
                             (1024.0 * 1024.0);

    // 2. Kernel latency on identical random pairs. The Dijkstra side runs
    // a smaller prefix of the same pair sequence — it is 100-10000x
    // slower, and mean latency stabilizes quickly.
    std::vector<std::pair<uots::VertexId, uots::VertexId>> pairs;
    uots::Rng rng(17);
    for (int i = 0; i < std::max(1, flags.pairs); ++i) {
      pairs.emplace_back(static_cast<uots::VertexId>(rng.Next() % num_vertices),
                         static_cast<uots::VertexId>(rng.Next() % num_vertices));
    }
    uots::OracleQuerier querier(*oracle);
    double sink = 0.0;
    uots::WallTimer oracle_timer;
    for (const auto& [s, t] : pairs) sink += querier.Distance(s, t);
    const double oracle_us =
        oracle_timer.ElapsedSeconds() / pairs.size() * 1e6;
    // Hierarchy quality: settled vertices per pairwise query (both upward
    // searches combined). Grows ~polylog(n) for a healthy ordering.
    const double settles_per_pair =
        static_cast<double>(querier.SettledVertices()) /
        static_cast<double>(pairs.size());

    const size_t dij_pairs = std::min(pairs.size(), size_t{64});
    uots::WallTimer dij_timer;
    for (size_t i = 0; i < dij_pairs; ++i) {
      sink += uots::ShortestPathDistance(db->network(), pairs[i].first,
                                         pairs[i].second);
    }
    const double dij_us = dij_timer.ElapsedSeconds() / dij_pairs * 1e6;
    if (sink < 0.0) std::printf("impossible\n");  // keep `sink` live

    // Cross-check the sampled prefix while we are here: the two kernels
    // must agree bit-for-bit (the full property test lives in tests/).
    for (size_t i = 0; i < dij_pairs; ++i) {
      const double a = querier.Distance(pairs[i].first, pairs[i].second);
      const double b = uots::ShortestPathDistance(db->network(),
                                                  pairs[i].first,
                                                  pairs[i].second);
      if (a != b) {
        std::fprintf(stderr, "FAIL: sd mismatch on pair %zu\n", i);
        return 1;
      }
    }

    // 3. End-to-end UOTS with the oracle off, then on, same workload.
    // Expansion-heavy regime: fully decoupled preference keywords (the
    // user asks for qualities, not places they already stand at), so the
    // high-SimT candidates are scattered across the whole network and the
    // baseline must drag every expansion out to each of them before its
    // bound lets go. This is the paper's user-oriented scenario and the
    // case the oracle finisher targets.
    uots::WorkloadOptions wopts;
    wopts.num_queries = flags.queries;
    wopts.decouple_keywords = true;
    wopts.keyword_noise = 0.1;
    wopts.num_keywords = 8;
    wopts.seed = 23;
    auto queries = uots::MakeWorkload(*db, wopts);
    if (!queries.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   queries.status().ToString().c_str());
      return 1;
    }
    std::vector<std::vector<uots::ScoredTrajectory>> base_answers;
    uots::QueryStats base_stats;
    // Warm one pass (page in indexes), then measure.
    RunPass(*db, *queries, /*use_oracle=*/false, nullptr, nullptr);
    const double base_s =
        RunPass(*db, *queries, false, &base_answers, &base_stats);

    db->AttachOracle(
        std::make_shared<uots::DistanceOracle>(std::move(*oracle)));
    std::vector<std::vector<uots::ScoredTrajectory>> oracle_answers;
    uots::QueryStats oracle_stats;
    RunPass(*db, *queries, /*use_oracle=*/true, nullptr, nullptr);
    const double oracle_s =
        RunPass(*db, *queries, true, &oracle_answers, &oracle_stats);

    bool identical = base_answers.size() == oracle_answers.size();
    for (size_t i = 0; identical && i < base_answers.size(); ++i) {
      identical = base_answers[i].size() == oracle_answers[i].size();
      for (size_t j = 0; identical && j < base_answers[i].size(); ++j) {
        const auto& a = base_answers[i][j];
        const auto& b = oracle_answers[i][j];
        identical = a.id == b.id && a.score == b.score &&
                    a.spatial_sim == b.spatial_sim &&
                    a.textual_sim == b.textual_sim;
      }
    }
    if (!identical) {
      std::fprintf(stderr,
                   "FAIL: oracle answers differ from expansion baseline "
                   "(side=%d)\n",
                   side);
      return 1;
    }

    const double base_ms = base_s / queries->size() * 1e3;
    const double oracle_ms = oracle_s / queries->size() * 1e3;
    char c[10][32];
    std::snprintf(c[0], sizeof(c[0]), "%u", num_vertices);
    std::snprintf(c[1], sizeof(c[1]), "%.3f", build_stats.seconds);
    std::snprintf(c[2], sizeof(c[2]), "%" PRIu64, build_stats.shortcuts);
    std::snprintf(c[3], sizeof(c[3]), "%.2f", oracle_us);
    std::snprintf(c[4], sizeof(c[4]), "%.1f", dij_us);
    std::snprintf(c[5], sizeof(c[5]), "%.0fx", dij_us / oracle_us);
    std::snprintf(c[6], sizeof(c[6]), "%.3f", base_ms);
    std::snprintf(c[7], sizeof(c[7]), "%.3f", oracle_ms);
    std::snprintf(c[8], sizeof(c[8]), "%.1fx", base_ms / oracle_ms);
    table.PrintRow({c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7], c[8]});

    auto& row = report.AddRow();
    row.Set("vertices", static_cast<int64_t>(num_vertices))
        .Set("trajectories", static_cast<int64_t>(n_trips))
        .Set("build_seconds", build_stats.seconds)
        .Set("shortcuts", static_cast<int64_t>(build_stats.shortcuts))
        .Set("up_edges",
             static_cast<int64_t>(db->oracle()->NumUpEdges()))
        .Set("witness_searches",
             static_cast<int64_t>(build_stats.witness_searches))
        .Set("oracle_mb", oracle_mb)
        .Set("kernel_oracle_us", oracle_us)
        .Set("kernel_settled_per_pair", settles_per_pair)
        .Set("kernel_dijkstra_us", dij_us)
        .Set("kernel_speedup", dij_us / oracle_us)
        .Set("e2e_baseline_ms_per_query", base_ms)
        .Set("e2e_oracle_ms_per_query", oracle_ms)
        .Set("e2e_speedup", base_ms / oracle_ms)
        .Set("answers_identical", static_cast<int64_t>(identical ? 1 : 0))
        .Set("oracle_lookups", oracle_stats.oracle_lookups)
        .Set("oracle_pruned_candidates",
             oracle_stats.oracle_pruned_candidates)
        .Set("baseline_settled", base_stats.settled_vertices)
        .Set("oracle_settled", oracle_stats.settled_vertices);
  }

  if (!flags.json_out.empty()) report.WriteFile(flags.json_out);
  return 0;
}

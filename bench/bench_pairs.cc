// Experiment T2 — similar-pairs self join (the data-cleaning application).
//
// Generated trips are all distinct, so — like a real deduplication
// scenario — the dataset is salted with noisy duplicates (2% of the set,
// downsampled copies) and the join is swept over theta. Reported: join
// wall time, qualifying pairs, recall of the planted duplicates, and the
// per-trajectory search rate. Expected shape: planted pairs are recovered
// with high recall down to moderate theta; time is dominated by the
// per-trajectory threshold searches and grows as theta falls.

#include <cstdio>
#include <set>

#include "common/datasets.h"
#include "common/report.h"
#include "core/pairs.h"
#include "traj/simplify.h"
#include "util/histogram.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace uots {
namespace bench {
namespace {

void Run() {
  // The self join touches every trajectory; a smaller slice keeps each
  // theta point in seconds.
  auto base = LoadCity(City::kBRN, 4000);

  // Salt with noisy duplicates: copy 2% of the trajectories, downsampled
  // to 2/3 of their samples (a different GPS logger's view of the trip).
  TrajectoryStore store;
  for (TrajId id = 0; id < base->store().size(); ++id) {
    if (!store.Add(base->store().Materialize(id)).ok()) std::abort();
  }
  Rng rng(901);
  std::set<std::pair<TrajId, TrajId>> planted;
  const size_t originals = store.size();
  const int dup_count = static_cast<int>(originals / 50);
  for (int i = 0; i < dup_count; ++i) {
    const TrajId src = static_cast<TrajId>(rng.Uniform(originals));
    Trajectory copy = base->store().Materialize(src);
    copy = DownsampleUniform(copy,
                             std::max<size_t>(2, copy.samples.size() * 2 / 3));
    auto id = store.Add(copy);
    if (!id.ok()) std::abort();
    planted.emplace(src, *id);
  }
  // Rebuild the network for the salted database (the loaded one moved
  // into `base`; regenerating from cache is cheap).
  auto fresh = LoadCity(City::kBRN, 1);  // network only matters
  TrajectoryDatabase db(fresh->network(), std::move(store),
                        Vocabulary::Synthetic(1000));

  PrintBanner("T2 similar-pairs self join, BRN subset (salted)", db);
  std::printf("planted noisy duplicates: %d\n", dup_count);
  JsonReport report("T2 similar-pairs self join");
  Table table({"theta", "pairs", "recall", "join s", "searches/s"});
  table.PrintHeader();
  for (double theta : {0.95, 0.90, 0.85, 0.80}) {
    PairJoinOptions opts;
    opts.theta = theta;
    opts.threads = 4;
    // The join merges its per-search latencies into the global registry;
    // clearing first makes the snapshot below per-theta.
    MetricsRegistry::Global().Clear();
    WallTimer timer;
    auto pairs = FindSimilarPairs(db, opts);
    const double secs = timer.ElapsedSeconds();
    if (!pairs.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   pairs.status().ToString().c_str());
      std::abort();
    }
    int recovered = 0;
    for (const auto& p : *pairs) {
      if (planted.count({p.a, p.b})) ++recovered;
    }
    table.PrintRow({FormatDouble(theta, 2), std::to_string(pairs->size()),
                    FormatDouble(static_cast<double>(recovered) / dup_count, 2),
                    FormatDouble(secs, 2),
                    FormatDouble(db.store().size() / secs, 0)});
    const LatencyHistogram lat =
        MetricsRegistry::Global().Get("pairs.search_latency");
    report.AddRow()
        .Set("theta", theta)
        .Set("pairs", static_cast<int64_t>(pairs->size()))
        .Set("recall", static_cast<double>(recovered) / dup_count)
        .Set("join_seconds", secs)
        .Set("searches_per_second", db.store().size() / secs)
        .Set("search_p50_ms", lat.PercentileMs(50.0))
        .Set("search_p95_ms", lat.PercentileMs(95.0))
        .Set("search_p99_ms", lat.PercentileMs(99.0))
        .Set("search_max_ms", static_cast<double>(lat.max_ns()) / 1e6);
  }
  table.PrintRule();
  report.WriteFile("BENCH_pairs.json");
}

}  // namespace
}  // namespace bench
}  // namespace uots

int main() {
  uots::bench::Run();
  return 0;
}

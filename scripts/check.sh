#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite in
# Release, again under ASan+UBSan, and once more with the span tracer
# compiled out (-DUOTS_TRACE=OFF). Run from the repo root:
#
#   scripts/check.sh            # all three presets
#   scripts/check.sh release    # just the fast one
#   scripts/check.sh asan       # just the sanitizer pass
#   scripts/check.sh trace-off  # just the tracer-compiled-out pass
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 2)
presets=("$@")
if [[ $# -eq 0 ]]; then presets=(release asan trace-off); fi

declare -A builddir=([release]=build [asan]=build-asan [trace-off]=build-trace-off)

for preset in "${presets[@]}"; do
  echo "==> preset: ${preset}"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
  if [[ "${preset}" == "asan" ]]; then
    # The loopback server test drives real sockets through the epoll loop,
    # timer heap, and cross-thread completion path; run it again explicitly
    # under the sanitizers with full output so a race or leak is attributed
    # to the serving layer rather than buried in the suite summary.
    echo "==> asan: loopback server integration"
    ctest --preset "${preset}" -R uots_server_integration_test \
      --output-on-failure
    # Cache drill: the concurrent Zipf hammer races result-cache hits,
    # inserts, evictions, and tier-2 prefix publication across worker
    # threads — exactly the shared-state paths the sanitizers should sweep.
    echo "==> asan: cross-query cache hammer"
    ctest --preset "${preset}" -R "uots_cache_test|uots_batch_abort_test" \
      --output-on-failure
  fi
  if [[ "${preset}" == "release" || "${preset}" == "asan" ]]; then
    # Snapshot drill: end-to-end through the real tool — build a small
    # snapshot, check it verifies, and run the corruption/round-trip suite
    # with full output. Under asan this sweeps the mmap'd validation paths
    # for out-of-bounds reads on crafted input.
    echo "==> ${preset}: snapshot build + verify drill"
    snap="${builddir[${preset}]}/check-drill.snap"
    "${builddir[${preset}]}/apps/uots_snapshot" build --out="${snap}" \
      --gen-rows=20 --gen-cols=20 --gen-trips=400
    "${builddir[${preset}]}/apps/uots_snapshot" verify "${snap}"
    rm -f "${snap}"
    ctest --preset "${preset}" -R uots_snapshot_test --output-on-failure
    # Oracle drill: contract a network, bake the CH oracle into a v2
    # snapshot, check the checksum sweep and structural validation accept
    # it, and confirm inspect reports the oracle sections. The randomized
    # oracle-vs-Dijkstra exactness suite then runs with full output; under
    # asan this sweeps the contraction, rank-space CSR assembly, and the
    # bidirectional query kernel.
    echo "==> ${preset}: distance-oracle drill"
    osnap="${builddir[${preset}]}/check-oracle.snap"
    "${builddir[${preset}]}/apps/uots_snapshot" build --out="${osnap}" \
      --gen-rows=24 --gen-cols=24 --gen-trips=600 --oracle
    "${builddir[${preset}]}/apps/uots_snapshot" verify "${osnap}"
    "${builddir[${preset}]}/apps/uots_snapshot" inspect "${osnap}" \
      | grep -q "distance oracle"
    rm -f "${osnap}"
    ctest --preset "${preset}" -R uots_oracle_test --output-on-failure
    # Admin-plane drill: serve a generated city with the admin listener on,
    # drive a closed loop that also scrapes server-side quantiles, then hit
    # every endpoint and check the exported metric families by name. Under
    # asan this sweeps the HTTP parser, the slow-query ring, and the
    # scrape-time render path against live traffic. SIGTERM at the end
    # proves the drain still exits cleanly with the admin plane attached.
    # (Plain backgrounding, no compound command: $! must be the server.)
    echo "==> ${preset}: admin plane smoke"
    if [[ "${preset}" == "release" ]]; then qport=7781 aport=7785
    else qport=7782 aport=7786; fi
    "${builddir[${preset}]}/apps/uots_server" --city=BRN --port="${qport}" \
      --trajectories=1500 --cache-max-entries=256 --admin-port="${aport}" &
    server_pid=$!
    sleep 1
    "${builddir[${preset}]}/apps/uots_client" --port="${qport}" \
      --trajectories=1500 --zipf=0.99 --connections=2 --requests=300 \
      --scrape-admin="${aport}"
    admin="http://127.0.0.1:${aport}"
    curl -fsS "${admin}/healthz" | grep -q "ok"
    curl -fsS "${admin}/metrics" | grep -q "^uots_server_requests_total 3"
    curl -fsS "${admin}/metrics" \
      | grep -q "uots_server_request_latency_seconds_bucket"
    curl -fsS "${admin}/statusz" | grep -q '"fingerprint"'
    curl -fsS -X POST "${admin}/tracing?sample=4" \
      | grep -q '"sample_every":4'
    curl -fsS "${admin}/slowqueries" | grep -q '"request_id"'
    kill -TERM "${server_pid}"
    wait "${server_pid}"
    # Live-ingest drill: serve with a compaction path, wire-ingest fresh
    # trips, verify the served answers bit-for-bit against a local cold
    # rebuild (base + ingested), fold the delta through POST /compact, and
    # re-verify against the compacted snapshot itself — the file the fold
    # wrote must both pass the standalone validator and describe exactly
    # what the swapped-in server is serving. Under asan this sweeps the
    # delta publication, the reactor-side apply, and the background
    # merge/swap against live queries.
    echo "==> ${preset}: live ingest + compaction drill"
    if [[ "${preset}" == "release" ]]; then iqport=7783 iaport=7787
    else iqport=7784 iaport=7788; fi
    isnap="${builddir[${preset}]}/check-ingest.snap"
    "${builddir[${preset}]}/apps/uots_server" --city=BRN --port="${iqport}" \
      --trajectories=1500 --admin-port="${iaport}" \
      --compact-snapshot="${isnap}" &
    ingest_pid=$!
    sleep 1
    "${builddir[${preset}]}/apps/uots_client" --port="${iqport}" \
      --trajectories=1500 --ingest=200 --num-queries=16
    iadmin="http://127.0.0.1:${iaport}"
    curl -fsS "${iadmin}/statusz" | grep -q '"delta_trajectories":200'
    curl -fsS -X POST "${iadmin}/compact" | grep -q '"compacting":true'
    for _ in $(seq 1 50); do
      if curl -fsS "${iadmin}/statusz" | grep -q '"compactions":1'; then
        break
      fi
      sleep 0.2
    done
    curl -fsS "${iadmin}/statusz" | grep -q '"compactions":1'
    curl -fsS "${iadmin}/metrics" \
      | grep -q "^uots_server_ingest_accepted_trips_total 200"
    "${builddir[${preset}]}/apps/uots_snapshot" verify "${isnap}"
    "${builddir[${preset}]}/apps/uots_client" --port="${iqport}" \
      --dataset="${isnap}" --verify --num-queries=16
    kill -TERM "${ingest_pid}"
    wait "${ingest_pid}"
    rm -f "${isnap}"
    ctest --preset "${preset}" -R uots_ingest_test --output-on-failure
    # Trip-assembly drill: construct connected trips over the wire and
    # demand byte equality against a cold in-process planner (cache
    # default, repeat, and bypass passes), then a short closed loop that
    # folds the trip.* histogram deltas scraped from the admin plane into
    # the client report. Under asan this sweeps the harvester's expansion
    # reuse, the k-best assembly DP, and the version-tagged trip-planner
    # pool against live traffic.
    echo "==> ${preset}: trip assembly drill"
    if [[ "${preset}" == "release" ]]; then tqport=7789 taport=7791
    else tqport=7790 taport=7792; fi
    "${builddir[${preset}]}/apps/uots_server" --city=BRN --port="${tqport}" \
      --trajectories=1500 --cache-max-entries=256 --admin-port="${taport}" &
    trip_pid=$!
    sleep 1
    "${builddir[${preset}]}/apps/uots_client" --port="${tqport}" \
      --trajectories=1500 --trip --verify --num-queries=16
    "${builddir[${preset}]}/apps/uots_client" --port="${tqport}" \
      --trajectories=1500 --trip --num-queries=16 --connections=2 \
      --requests=200 --scrape-admin="${taport}" \
      --json-out="${builddir[${preset}]}/check-trip.json"
    curl -fsS "http://127.0.0.1:${taport}/metrics" \
      | grep -q "uots_trip_plan_seconds_bucket"
    curl -fsS "http://127.0.0.1:${taport}/slowqueries" | grep -q '"segments"'
    kill -TERM "${trip_pid}"
    wait "${trip_pid}"
    rm -f "${builddir[${preset}]}/check-trip.json"
    ctest --preset "${preset}" -R "uots_trip_test|uots_trip_server_test" \
      --output-on-failure
  fi
done
echo "==> all checks passed"

#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite in
# Release, then again under ASan+UBSan. Run from the repo root:
#
#   scripts/check.sh            # both presets
#   scripts/check.sh release    # just the fast one
#   scripts/check.sh asan       # just the sanitizer pass
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 2)
presets=("${@:-release asan}")
# Split the default string into two presets when invoked with no args.
if [[ $# -eq 0 ]]; then presets=(release asan); fi

for preset in "${presets[@]}"; do
  echo "==> preset: ${preset}"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done
echo "==> all checks passed"

#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite in
# Release, again under ASan+UBSan, and once more with the span tracer
# compiled out (-DUOTS_TRACE=OFF). Run from the repo root:
#
#   scripts/check.sh            # all three presets
#   scripts/check.sh release    # just the fast one
#   scripts/check.sh asan       # just the sanitizer pass
#   scripts/check.sh trace-off  # just the tracer-compiled-out pass
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 2)
presets=("$@")
if [[ $# -eq 0 ]]; then presets=(release asan trace-off); fi

for preset in "${presets[@]}"; do
  echo "==> preset: ${preset}"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
  if [[ "${preset}" == "asan" ]]; then
    # The loopback server test drives real sockets through the epoll loop,
    # timer heap, and cross-thread completion path; run it again explicitly
    # under the sanitizers with full output so a race or leak is attributed
    # to the serving layer rather than buried in the suite summary.
    echo "==> asan: loopback server integration"
    ctest --preset "${preset}" -R uots_server_integration_test \
      --output-on-failure
  fi
done
echo "==> all checks passed"

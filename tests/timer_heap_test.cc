#include "server/timer_heap.h"

#include <gtest/gtest.h>

#include <vector>

namespace uots {
namespace {

TEST(TimerHeapTest, FiresInDeadlineOrder) {
  TimerHeap heap;
  std::vector<int> fired;
  heap.Add(300, [&] { fired.push_back(3); });
  heap.Add(100, [&] { fired.push_back(1); });
  heap.Add(200, [&] { fired.push_back(2); });

  EXPECT_EQ(heap.NextDeadlineNs(), 100);
  EXPECT_EQ(heap.RunExpired(250), 2);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(heap.NextDeadlineNs(), 300);
  EXPECT_EQ(heap.RunExpired(300), 1);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(heap.NextDeadlineNs(), -1);
  EXPECT_EQ(heap.pending(), 0u);
}

TEST(TimerHeapTest, EqualDeadlinesFireInInsertionOrder) {
  TimerHeap heap;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    heap.Add(100, [&fired, i] { fired.push_back(i); });
  }
  EXPECT_EQ(heap.RunExpired(100), 5);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimerHeapTest, CancelPreventsFiring) {
  TimerHeap heap;
  int fired = 0;
  const TimerHeap::TimerId a = heap.Add(100, [&] { ++fired; });
  const TimerHeap::TimerId b = heap.Add(200, [&] { ++fired; });
  EXPECT_TRUE(heap.Cancel(a));
  EXPECT_FALSE(heap.Cancel(a)) << "double cancel must report failure";
  EXPECT_EQ(heap.RunExpired(1000), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(heap.Cancel(b)) << "cancel after firing must report failure";
}

TEST(TimerHeapTest, CancelInvalidIdIsHarmless) {
  TimerHeap heap;
  EXPECT_FALSE(heap.Cancel(TimerHeap::kInvalidTimer));
  EXPECT_FALSE(heap.Cancel(12345));
}

TEST(TimerHeapTest, RescheduleMovesDeadline) {
  TimerHeap heap;
  std::vector<int> fired;
  const TimerHeap::TimerId a = heap.Add(100, [&] { fired.push_back(1); });
  heap.Add(150, [&] { fired.push_back(2); });

  EXPECT_TRUE(heap.Reschedule(a, 500));
  EXPECT_EQ(heap.RunExpired(200), 1);  // only the 150 timer
  EXPECT_EQ(fired, (std::vector<int>{2}));
  EXPECT_EQ(heap.RunExpired(500), 1);
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
  EXPECT_FALSE(heap.Reschedule(a, 900)) << "fired timers cannot reschedule";
}

TEST(TimerHeapTest, RescheduleEarlierFiresEarlier) {
  TimerHeap heap;
  int fired = 0;
  const TimerHeap::TimerId a = heap.Add(1000, [&] { ++fired; });
  EXPECT_TRUE(heap.Reschedule(a, 50));
  EXPECT_EQ(heap.NextDeadlineNs(), 50);
  EXPECT_EQ(heap.RunExpired(60), 1);
  EXPECT_EQ(fired, 1);
  // The stale node for deadline 1000 must not re-fire.
  EXPECT_EQ(heap.RunExpired(2000), 0);
  EXPECT_EQ(fired, 1);
}

TEST(TimerHeapTest, CallbackMayReArm) {
  TimerHeap heap;
  int fired = 0;
  std::function<void()> tick = [&] {
    ++fired;
    if (fired < 3) heap.Add(fired * 100, tick);
  };
  heap.Add(50, tick);
  EXPECT_EQ(heap.RunExpired(50), 1);
  EXPECT_EQ(heap.RunExpired(100), 1);
  EXPECT_EQ(heap.RunExpired(200), 1);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(heap.pending(), 0u);
}

TEST(TimerHeapTest, PendingTracksLiveTimers) {
  TimerHeap heap;
  const TimerHeap::TimerId a = heap.Add(100, [] {});
  heap.Add(200, [] {});
  EXPECT_EQ(heap.pending(), 2u);
  heap.Cancel(a);
  EXPECT_EQ(heap.pending(), 1u);
  heap.RunExpired(1000);
  EXPECT_EQ(heap.pending(), 0u);
}

}  // namespace
}  // namespace uots

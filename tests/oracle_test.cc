// Distance-oracle correctness: contraction-hierarchy answers must be
// EXACTLY (bitwise) equal to plain Dijkstra on every pair — the property
// the search layer relies on for oracle-on/oracle-off bit-identity — and
// the oracle-driven search itself must return bit-identical results to the
// expansion baseline and match brute force.

#include "oracle/ch_oracle.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithm.h"
#include "core/search.h"
#include "core/workload.h"
#include "net/dijkstra.h"
#include "net/generators.h"
#include "oracle/distance_provider.h"
#include "oracle/querier.h"
#include "traj/generator.h"
#include "util/rng.h"

namespace uots {
namespace {

DistanceOracle BuildOracle(const RoadNetwork& g,
                           OracleBuildStats* stats = nullptr) {
  auto oracle = DistanceOracle::Build(g, {}, stats);
  EXPECT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_TRUE(oracle->Validate().ok());
  return std::move(*oracle);
}

/// Exact (EXPECT_EQ on doubles, infinity included) all-pairs comparison
/// against full Dijkstra trees. Only feasible on small networks.
void ExpectAllPairsExact(const RoadNetwork& g) {
  const DistanceOracle oracle = BuildOracle(g);
  OracleQuerier querier(oracle);
  const size_t n = g.NumVertices();
  for (VertexId s = 0; s < static_cast<VertexId>(n); ++s) {
    const ShortestPathTree tree = ComputeShortestPathTree(g, s);
    for (VertexId t = 0; t < static_cast<VertexId>(n); ++t) {
      EXPECT_EQ(querier.Distance(s, t), tree.dist[t])
          << "sd(" << s << ", " << t << ")";
    }
  }
}

TEST(ChOracle, AllPairsExactOnGrid) {
  GridNetworkOptions opts;
  opts.rows = 9;
  opts.cols = 9;
  opts.removal_rate = 0.1;
  opts.seed = 7;
  auto g = MakeGridNetwork(opts);
  ASSERT_TRUE(g.ok());
  ExpectAllPairsExact(*g);
}

TEST(ChOracle, AllPairsExactOnRingRadial) {
  RingRadialNetworkOptions opts;
  opts.rings = 6;
  opts.inner_ring_vertices = 6;
  opts.seed = 9;
  auto g = MakeRingRadialNetwork(opts);
  ASSERT_TRUE(g.ok());
  ExpectAllPairsExact(*g);
}

TEST(ChOracle, AllPairsExactOnRandomGeometric) {
  RandomGeometricOptions opts;
  opts.num_vertices = 80;
  opts.k_nearest = 4;
  opts.seed = 21;
  auto g = MakeRandomGeometricNetwork(opts);
  ASSERT_TRUE(g.ok());
  ExpectAllPairsExact(*g);
}

TEST(ChOracle, SampledPairsExactOnLargerNetworks) {
  // BRN-style (ring-radial) and NRN-style (grid) networks at a size where
  // all-pairs is too slow: sample pairs, still demand exact equality.
  std::vector<RoadNetwork> nets;
  {
    GridNetworkOptions gopts;
    gopts.rows = 40;
    gopts.cols = 40;
    gopts.removal_rate = 0.05;
    gopts.seed = 3;
    auto g = MakeGridNetwork(gopts);
    ASSERT_TRUE(g.ok());
    nets.push_back(std::move(*g));
  }
  {
    RingRadialNetworkOptions ropts;
    ropts.rings = 18;
    ropts.inner_ring_vertices = 10;
    ropts.seed = 4;
    auto g = MakeRingRadialNetwork(ropts);
    ASSERT_TRUE(g.ok());
    nets.push_back(std::move(*g));
  }
  Rng rng(0xfeedu);
  for (const RoadNetwork& g : nets) {
    const DistanceOracle oracle = BuildOracle(g);
    OracleQuerier querier(oracle);
    const size_t n = g.NumVertices();
    for (int i = 0; i < 40; ++i) {
      const auto s = static_cast<VertexId>(rng.Next() % n);
      const ShortestPathTree tree = ComputeShortestPathTree(g, s);
      for (int j = 0; j < 25; ++j) {
        const auto t = static_cast<VertexId>(rng.Next() % n);
        EXPECT_EQ(querier.Distance(s, t), tree.dist[t])
            << "sd(" << s << ", " << t << ")";
      }
    }
  }
}

TEST(ChOracle, DisconnectedPairsAreInfinite) {
  // Two components: a path 0-1-2 and a path 3-4. Within-component
  // distances stay exact; cross-component pairs must come back infinite.
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) {
    b.AddVertex(Point{static_cast<float>(100 * i), 0});
  }
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  auto g = std::move(b).Finalize(/*require_connected=*/false);
  ASSERT_TRUE(g.ok());

  const DistanceOracle oracle = BuildOracle(*g);
  OracleQuerier querier(oracle);
  EXPECT_EQ(querier.Distance(0, 2), ShortestPathDistance(*g, 0, 2));
  EXPECT_EQ(querier.Distance(3, 4), ShortestPathDistance(*g, 3, 4));
  EXPECT_EQ(querier.Distance(0, 3), kInfDistance);
  EXPECT_EQ(querier.Distance(4, 2), kInfDistance);
  EXPECT_EQ(querier.Distance(2, 2), 0.0);

  const std::vector<VertexId> sources = {0, 4};
  querier.BeginQuery(sources);
  const auto row = querier.DistancesTo(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], ShortestPathDistance(*g, 0, 1));
  EXPECT_EQ(row[1], kInfDistance);
}

TEST(ChOracle, BucketOneToManyMatchesPairwise) {
  GridNetworkOptions opts;
  opts.rows = 14;
  opts.cols = 14;
  opts.seed = 31;
  auto g = MakeGridNetwork(opts);
  ASSERT_TRUE(g.ok());
  const DistanceOracle oracle = BuildOracle(*g);
  OracleQuerier bucket(oracle);
  OracleQuerier pairwise(oracle);

  Rng rng(0x5eedu);
  const size_t n = g->NumVertices();
  for (int round = 0; round < 6; ++round) {
    std::vector<VertexId> sources;
    for (int i = 0; i < 4; ++i) {
      sources.push_back(static_cast<VertexId>(rng.Next() % n));
    }
    bucket.BeginQuery(sources);
    for (int j = 0; j < 30; ++j) {
      const auto v = static_cast<VertexId>(rng.Next() % n);
      const auto row = bucket.DistancesTo(v);
      ASSERT_EQ(row.size(), sources.size());
      for (size_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(row[i], pairwise.Distance(sources[i], v))
            << "source " << sources[i] << " target " << v;
      }
    }
  }
}

TEST(ChOracle, BuildStatsAreReported) {
  GridNetworkOptions opts;
  opts.rows = 12;
  opts.cols = 12;
  opts.seed = 5;
  auto g = MakeGridNetwork(opts);
  ASSERT_TRUE(g.ok());
  OracleBuildStats stats;
  const DistanceOracle oracle = BuildOracle(*g, &stats);
  EXPECT_EQ(oracle.NumVertices(), g->NumVertices());
  EXPECT_GE(oracle.NumUpEdges(), g->NumEdges());  // every road arc kept once
  EXPECT_EQ(oracle.NumShortcuts(), oracle.NumUpEdges() - g->NumEdges());
  EXPECT_EQ(stats.shortcuts, oracle.NumShortcuts());
  EXPECT_GT(stats.witness_searches, 0u);
  EXPECT_GT(oracle.Memory().total(), 0u);
}

TEST(ChOracle, FromColumnsRoundTripsAndValidates) {
  GridNetworkOptions opts;
  opts.rows = 8;
  opts.cols = 8;
  opts.seed = 17;
  auto g = MakeGridNetwork(opts);
  ASSERT_TRUE(g.ok());
  const DistanceOracle built = BuildOracle(*g);
  const DistanceOracle viewed = DistanceOracle::FromColumns(
      ColumnVec<uint32_t>::View(built.ranks().data(), built.ranks().size()),
      ColumnVec<uint64_t>::View(built.up_offsets().data(),
                                built.up_offsets().size()),
      ColumnVec<OracleEdge>::View(built.up_edges().data(),
                                  built.up_edges().size()));
  EXPECT_TRUE(viewed.Validate().ok());
  OracleQuerier a(built);
  OracleQuerier b(viewed);
  for (VertexId v = 0; v < 20; ++v) {
    EXPECT_EQ(a.Distance(0, v), b.Distance(0, v));
  }

  // Corruption must be caught: a rank collision breaks the permutation.
  std::vector<uint32_t> bad_ranks(built.ranks().begin(), built.ranks().end());
  bad_ranks[1] = bad_ranks[0];
  const DistanceOracle corrupt = DistanceOracle::FromColumns(
      ColumnVec<uint32_t>::View(bad_ranks.data(), bad_ranks.size()),
      ColumnVec<uint64_t>::View(built.up_offsets().data(),
                                built.up_offsets().size()),
      ColumnVec<OracleEdge>::View(built.up_edges().data(),
                                  built.up_edges().size()));
  EXPECT_FALSE(corrupt.Validate().ok());
}

// ---- Search-layer integration: oracle on/off bit-identity. ----

std::unique_ptr<TrajectoryDatabase> MakeDatabase(bool attach_oracle) {
  GridNetworkOptions gopts;
  gopts.rows = 20;
  gopts.cols = 20;
  gopts.seed = 41;
  auto g = MakeGridNetwork(gopts);
  TripGeneratorOptions topts;
  topts.num_trajectories = 350;
  topts.vocabulary_size = 120;
  topts.seed = 42;
  auto data = GenerateTrips(*g, topts);
  auto db = std::make_unique<TrajectoryDatabase>(
      std::move(*g), std::move(data->store), std::move(data->vocabulary));
  if (attach_oracle) {
    auto oracle = DistanceOracle::Build(db->network());
    EXPECT_TRUE(oracle.ok());
    db->AttachOracle(std::make_shared<DistanceOracle>(std::move(*oracle)));
  }
  return db;
}

TEST(OracleSearch, BitIdenticalToExpansionBaselineAndBruteForce) {
  auto db = MakeDatabase(/*attach_oracle=*/true);

  UotsSearchOptions with;
  with.use_oracle = true;
  UotsSearchOptions without;
  without.use_oracle = false;

  WorkloadOptions wopts;
  wopts.num_queries = 10;
  wopts.num_locations = 3;
  wopts.lambda = 0.6;
  wopts.k = 10;
  wopts.seed = 77;
  auto queries = MakeWorkload(*db, wopts);
  ASSERT_TRUE(queries.ok());

  auto on = CreateAlgorithm(*db, AlgorithmKind::kUots, with);
  auto off = CreateAlgorithm(*db, AlgorithmKind::kUots, without);
  auto bf = CreateAlgorithm(*db, AlgorithmKind::kBruteForce);

  for (const UotsQuery& q : *queries) {
    auto r_on = on->Search(q);
    auto r_off = off->Search(q);
    auto r_bf = bf->Search(q);
    ASSERT_TRUE(r_on.ok() && r_off.ok() && r_bf.ok());

    // Bit-identity, not tolerance: same ids, same exact doubles.
    ASSERT_EQ(r_on->items.size(), r_off->items.size());
    ASSERT_EQ(r_on->items.size(), r_bf->items.size());
    for (size_t i = 0; i < r_on->items.size(); ++i) {
      EXPECT_EQ(r_on->items[i].id, r_off->items[i].id) << "rank " << i;
      EXPECT_EQ(r_on->items[i].score, r_off->items[i].score) << "rank " << i;
      EXPECT_EQ(r_on->items[i].id, r_bf->items[i].id) << "rank " << i;
      EXPECT_EQ(r_on->items[i].score, r_bf->items[i].score) << "rank " << i;
      EXPECT_EQ(r_on->items[i].spatial_sim, r_bf->items[i].spatial_sim);
      EXPECT_EQ(r_on->items[i].textual_sim, r_bf->items[i].textual_sim);
    }

    // The oracle path actually ran and did less expansion work.
    EXPECT_GT(r_on->stats.oracle_lookups, 0);
    EXPECT_EQ(r_off->stats.oracle_lookups, 0);
  }
}

TEST(OracleSearch, ThresholdModeBitIdentical) {
  auto db = MakeDatabase(/*attach_oracle=*/true);

  UotsSearchOptions with;
  with.use_oracle = true;
  UotsSearchOptions without;
  without.use_oracle = false;
  UotsSearcher on(*db, with);
  UotsSearcher off(*db, without);

  WorkloadOptions wopts;
  wopts.num_queries = 6;
  wopts.num_locations = 2;
  wopts.lambda = 0.5;
  wopts.k = 5;
  wopts.seed = 99;
  auto queries = MakeWorkload(*db, wopts);
  ASSERT_TRUE(queries.ok());

  for (const UotsQuery& q : *queries) {
    for (const double theta : {0.2, 0.5, 0.8}) {
      auto r_on = on.SearchThreshold(q, theta);
      auto r_off = off.SearchThreshold(q, theta);
      ASSERT_TRUE(r_on.ok() && r_off.ok());
      ASSERT_EQ(r_on->items.size(), r_off->items.size()) << "theta " << theta;
      for (size_t i = 0; i < r_on->items.size(); ++i) {
        EXPECT_EQ(r_on->items[i].id, r_off->items[i].id);
        EXPECT_EQ(r_on->items[i].score, r_off->items[i].score);
      }
    }
  }
}

TEST(OracleSearch, NoOracleAttachedFallsBackCleanly) {
  auto db = MakeDatabase(/*attach_oracle=*/false);
  UotsSearchOptions with;
  with.use_oracle = true;  // requested but unavailable: plain expansion
  auto engine = CreateAlgorithm(*db, AlgorithmKind::kUots, with);

  WorkloadOptions wopts;
  wopts.num_queries = 2;
  wopts.num_locations = 2;
  wopts.seed = 13;
  auto queries = MakeWorkload(*db, wopts);
  ASSERT_TRUE(queries.ok());
  for (const UotsQuery& q : *queries) {
    auto r = engine->Search(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats.oracle_lookups, 0);
  }
}

}  // namespace
}  // namespace uots

// The scheduling policy decides which query source expands next — it may
// change how much work the search does, never what it returns. All three
// policies (heuristic, round-robin, sequential) must produce identical
// result sets on a fuzzed workload, in both top-k and threshold modes.
//
// Identity is checked as: same size, matching score sequence (to 1e-9 —
// a trajectory's sum of spatial decays accumulates in scan order, which
// the policy controls, so the last ulp may legitimately differ), and the
// same trajectory id at every rank whose score is isolated from its
// neighbors (ties are legitimately order-dependent at the top-k boundary).

#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "core/search.h"
#include "net/generators.h"
#include "traj/generator.h"
#include "util/rng.h"

namespace uots {
namespace {

constexpr double kScoreTol = 1e-9;  ///< summation-order noise allowance
constexpr double kTieGap = 1e-6;    ///< isolation required to pin an id

void ExpectSameResults(const SearchResult& a, const SearchResult& b,
                       const char* what) {
  ASSERT_EQ(a.items.size(), b.items.size()) << what;
  for (size_t i = 0; i < a.items.size(); ++i) {
    ASSERT_NEAR(a.items[i].score, b.items[i].score, kScoreTol)
        << what << " rank " << i;
    const bool tied_above =
        i > 0 && a.items[i - 1].score - a.items[i].score < kTieGap;
    const bool tied_below = i + 1 < a.items.size() &&
                            a.items[i].score - a.items[i + 1].score < kTieGap;
    const bool at_boundary =
        i + 1 == a.items.size();  // k-th may tie with unreturned items
    if (!tied_above && !tied_below && !at_boundary) {
      EXPECT_EQ(a.items[i].id, b.items[i].id) << what << " rank " << i;
      EXPECT_NEAR(a.items[i].spatial_sim, b.items[i].spatial_sim, kScoreTol)
          << what << " rank " << i;
      EXPECT_NEAR(a.items[i].textual_sim, b.items[i].textual_sim, kScoreTol)
          << what << " rank " << i;
    }
  }
}

class SchedulingPolicyFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulingPolicyFuzzTest, AllPoliciesReturnIdenticalResultSets) {
  Rng rng(GetParam() * 1013);
  auto g = MakeRandomGeometricNetwork({
      .num_vertices = 120 + static_cast<int>(rng.Uniform(160)),
      .extent_m = 5000.0,
      .k_nearest = 3,
      .seed = GetParam() + 500,
  });
  ASSERT_TRUE(g.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = 150 + static_cast<int>(rng.Uniform(100));
  topts.vocabulary_size = 60;
  topts.seed = GetParam() + 900;
  auto data = GenerateTrips(*g, topts);
  ASSERT_TRUE(data.ok());
  TrajectoryDatabase db(std::move(*g), std::move(data->store),
                        std::move(data->vocabulary));

  UotsSearchOptions heur, rr, seq;
  heur.scheduling = SchedulingPolicy::kHeuristic;
  rr.scheduling = SchedulingPolicy::kRoundRobin;
  seq.scheduling = SchedulingPolicy::kSequential;
  // Small batches force many scheduling decisions per query.
  heur.batch_size = rr.batch_size = seq.batch_size =
      1 + static_cast<int>(rng.Uniform(16));
  UotsSearcher s_heur(db, heur), s_rr(db, rr), s_seq(db, seq);

  for (int trial = 0; trial < 10; ++trial) {
    UotsQuery q;
    const int m = 1 + static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < m; ++i) {
      q.locations.push_back(
          static_cast<VertexId>(rng.Uniform(db.network().NumVertices())));
    }
    std::vector<TermId> keys;
    for (int i = 0; i < static_cast<int>(rng.Uniform(6)); ++i) {
      keys.push_back(static_cast<TermId>(rng.Uniform(60)));
    }
    q.keywords = KeywordSet(std::move(keys));
    q.lambda = rng.UniformDouble();
    q.k = 1 + static_cast<int>(rng.Uniform(25));

    auto r_heur = s_heur.Search(q);
    auto r_rr = s_rr.Search(q);
    auto r_seq = s_seq.Search(q);
    ASSERT_TRUE(r_heur.ok() && r_rr.ok() && r_seq.ok());
    ExpectSameResults(*r_heur, *r_rr, "heuristic vs round-robin");
    ExpectSameResults(*r_heur, *r_seq, "heuristic vs sequential");

    // Threshold mode: every qualifying trajectory is returned, so the id
    // sets must agree (up to summation-order noise straddling theta, which
    // the deterministic seeds below do not produce).
    const double theta = rng.UniformDouble(0.3, 0.9);
    auto t_heur = s_heur.SearchThreshold(q, theta);
    auto t_rr = s_rr.SearchThreshold(q, theta);
    auto t_seq = s_seq.SearchThreshold(q, theta);
    ASSERT_TRUE(t_heur.ok() && t_rr.ok() && t_seq.ok());
    ASSERT_EQ(t_heur->items.size(), t_rr->items.size());
    ASSERT_EQ(t_heur->items.size(), t_seq->items.size());
    for (size_t i = 0; i < t_heur->items.size(); ++i) {
      ASSERT_EQ(t_heur->items[i].id, t_rr->items[i].id) << "rank " << i;
      ASSERT_NEAR(t_heur->items[i].score, t_rr->items[i].score, kScoreTol)
          << "rank " << i;
      ASSERT_EQ(t_heur->items[i].id, t_seq->items[i].id) << "rank " << i;
      ASSERT_NEAR(t_heur->items[i].score, t_seq->items[i].score, kScoreTol)
          << "rank " << i;
    }

    // The no-stale-pops invariant holds for every policy's expansions.
    for (const auto* r : {&*r_heur, &*r_rr, &*r_seq}) {
      EXPECT_EQ(r->stats.heap_stale_pops, 0);
      if (q.lambda > 0.0) {
        EXPECT_EQ(r->stats.heap_pops, r->stats.settled_vertices);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingPolicyFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace uots

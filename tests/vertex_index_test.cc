#include "traj/vertex_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/generators.h"
#include "traj/generator.h"

namespace uots {
namespace {

TEST(VertexTrajectoryIndex, MembershipMatchesStore) {
  GridNetworkOptions gopts;
  gopts.rows = 15;
  gopts.cols = 15;
  auto g = MakeGridNetwork(gopts);
  ASSERT_TRUE(g.ok());
  TripGeneratorOptions topts;
  topts.num_trajectories = 80;
  auto data = GenerateTrips(*g, topts);
  ASSERT_TRUE(data.ok());
  const auto& store = data->store;

  const VertexTrajectoryIndex index(store, g->NumVertices());

  // Reference: per-vertex sets built directly.
  std::vector<std::set<TrajId>> expected(g->NumVertices());
  for (TrajId id = 0; id < store.size(); ++id) {
    for (const Sample& s : store.SamplesOf(id)) expected[s.vertex].insert(id);
  }
  size_t total = 0;
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    const auto got = index.TrajectoriesAt(v);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(std::set<TrajId>(got.begin(), got.end()), expected[v])
        << "vertex " << v;
    EXPECT_EQ(got.size(), expected[v].size()) << "duplicates at vertex " << v;
    total += got.size();
  }
  EXPECT_EQ(index.TotalEntries(), total);
  EXPECT_GT(index.MemoryUsage(), 0u);
}

TEST(VertexTrajectoryIndex, EmptyStore) {
  TrajectoryStore store;
  const VertexTrajectoryIndex index(store, 10);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_TRUE(index.TrajectoriesAt(v).empty());
  }
  EXPECT_EQ(index.TotalEntries(), 0u);
}

TEST(VertexTrajectoryIndex, RepeatedVertexWithinTrajectoryDeduplicated) {
  TrajectoryStore store;
  Trajectory t;
  t.samples = {{3, 0}, {4, 10}, {3, 20}};  // revisits vertex 3
  ASSERT_TRUE(store.Add(t).ok());
  const VertexTrajectoryIndex index(store, 5);
  EXPECT_EQ(index.TrajectoriesAt(3).size(), 1u);
  EXPECT_EQ(index.TrajectoriesAt(4).size(), 1u);
  EXPECT_EQ(index.TotalEntries(), 2u);
}

}  // namespace
}  // namespace uots

// Randomized consistency fuzzing: adversarially-shaped databases and
// queries must never break the UOTS == brute-force equivalence.
//
// Unlike the workload-driven equivalence suite (which mirrors realistic
// usage), this suite generates degenerate structure on purpose:
// single-sample trajectories, vertex-revisiting loops, keyword-less trips,
// duplicate trajectories, path- and star-shaped graphs, and random queries
// that have no relation to any trajectory.

#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "core/search.h"
#include "net/generators.h"
#include "util/rng.h"

namespace uots {
namespace {

/// A degenerate little road network: a path chained to a star.
Result<RoadNetwork> MakePathStarNetwork(int path_len, int star_arms) {
  GraphBuilder b;
  std::vector<VertexId> path;
  for (int i = 0; i < path_len; ++i) {
    path.push_back(b.AddVertex(Point{i * 100.0, 0.0}));
    if (i > 0) b.AddEdge(path[i - 1], path[i]);
  }
  const VertexId hub = path.back();
  for (int a = 0; a < star_arms; ++a) {
    const VertexId leaf =
        b.AddVertex(Point{path_len * 100.0 + 80.0, (a - star_arms / 2) * 90.0});
    b.AddEdge(hub, leaf);
  }
  return std::move(b).Finalize();
}

/// Fills a store with intentionally nasty trajectory shapes.
TrajectoryStore MakeNastyStore(const RoadNetwork& g, Rng& rng, int count) {
  TrajectoryStore store;
  for (int i = 0; i < count; ++i) {
    Trajectory t;
    const int kind = static_cast<int>(rng.Uniform(4));
    const int32_t t0 = static_cast<int32_t>(rng.Uniform(kSecondsPerDay - 4000));
    switch (kind) {
      case 0: {  // single sample
        t.samples = {
            Sample{static_cast<VertexId>(rng.Uniform(g.NumVertices())), t0}};
        break;
      }
      case 1: {  // ping-pong between two vertices (revisits)
        const VertexId a = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
        const auto nbrs = g.Neighbors(a);
        const VertexId c = nbrs.empty() ? a : nbrs[0].to;
        for (int s = 0; s < 6; ++s) {
          t.samples.push_back(Sample{s % 2 == 0 ? a : c, t0 + s * 60});
        }
        break;
      }
      case 2: {  // random walk
        VertexId v = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
        for (int s = 0; s < 8; ++s) {
          t.samples.push_back(Sample{v, t0 + s * 45});
          const auto nbrs = g.Neighbors(v);
          if (!nbrs.empty()) v = nbrs[rng.Uniform(nbrs.size())].to;
        }
        break;
      }
      default: {  // all samples at the same timestamp
        for (int s = 0; s < 4; ++s) {
          t.samples.push_back(Sample{
              static_cast<VertexId>(rng.Uniform(g.NumVertices())), t0});
        }
        break;
      }
    }
    // Keywords: sometimes none, sometimes heavy overlap.
    if (!rng.Bernoulli(0.3)) {
      std::vector<TermId> keys;
      const int nk = 1 + static_cast<int>(rng.Uniform(6));
      for (int k = 0; k < nk; ++k) {
        keys.push_back(static_cast<TermId>(rng.Uniform(12)));
      }
      t.keywords = KeywordSet(std::move(keys));
    }
    EXPECT_TRUE(store.Add(t).ok());
  }
  // Exact duplicates of a few entries.
  for (int d = 0; d < 3 && store.size() > 0; ++d) {
    EXPECT_TRUE(
        store.Add(store.Materialize(static_cast<TrajId>(
                      rng.Uniform(store.size()))))
            .ok());
  }
  return store;
}

class FuzzConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzConsistencyTest, UotsAlwaysMatchesBruteForce) {
  Rng rng(GetParam());
  // Alternate between a degenerate path-star graph and a random one.
  Result<RoadNetwork> g =
      GetParam() % 2 == 0
          ? MakePathStarNetwork(10 + static_cast<int>(rng.Uniform(20)),
                                3 + static_cast<int>(rng.Uniform(5)))
          : MakeRandomGeometricNetwork({
                .num_vertices = 80 + static_cast<int>(rng.Uniform(120)),
                .extent_m = 4000.0,
                .k_nearest = 3,
                .seed = GetParam(),
            });
  ASSERT_TRUE(g.ok());
  TrajectoryStore store = MakeNastyStore(*g, rng, 120);
  TrajectoryDatabase db(std::move(*g), std::move(store));

  auto bf = CreateAlgorithm(db, AlgorithmKind::kBruteForce);
  auto uots = CreateAlgorithm(db, AlgorithmKind::kUots);
  UotsSearcher threshold_searcher(db);

  for (int trial = 0; trial < 8; ++trial) {
    UotsQuery q;
    const int m = 1 + static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < m; ++i) {
      q.locations.push_back(
          static_cast<VertexId>(rng.Uniform(db.network().NumVertices())));
    }
    std::vector<TermId> keys;
    for (int i = 0; i < static_cast<int>(rng.Uniform(5)); ++i) {
      keys.push_back(static_cast<TermId>(rng.Uniform(14)));
    }
    q.keywords = KeywordSet(std::move(keys));
    q.lambda = rng.UniformDouble();
    q.k = 1 + static_cast<int>(rng.Uniform(20));

    auto rb = bf->Search(q);
    auto ru = uots->Search(q);
    ASSERT_TRUE(rb.ok() && ru.ok());
    ASSERT_EQ(rb->items.size(), ru->items.size());
    for (size_t i = 0; i < rb->items.size(); ++i) {
      ASSERT_NEAR(rb->items[i].score, ru->items[i].score, 1e-9)
          << "seed=" << GetParam() << " trial=" << trial << " rank=" << i;
    }

    // Threshold mode at a random theta agrees with the filtered BF list.
    const double theta = rng.UniformDouble(0.2, 0.9);
    auto rt = threshold_searcher.SearchThreshold(q, theta);
    ASSERT_TRUE(rt.ok());
    UotsQuery all = q;
    all.k = static_cast<int>(db.store().size());
    auto rall = bf->Search(all);
    ASSERT_TRUE(rall.ok());
    size_t expected = 0;
    for (const auto& item : rall->items) {
      if (item.score >= theta) ++expected;
    }
    ASSERT_EQ(rt->items.size(), expected)
        << "seed=" << GetParam() << " trial=" << trial << " theta=" << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConsistencyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace uots
